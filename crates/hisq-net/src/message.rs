//! Network-level message envelopes.

use hisq_core::NodeAddr;

/// The payload of a network message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Payload {
    /// BISP nearby-sync 1-bit signal.
    SyncPulse,
    /// Region-sync booking: "`target` should synchronize its region; my
    /// synchronization point is `time_point`".
    BookTime {
        /// The destination router coordinating the region.
        target: NodeAddr,
        /// Booked time-point (max-reduced along the way up).
        time_point: u64,
    },
    /// Region-sync resolution: the earliest common start time.
    MaxTime {
        /// The agreed region start time `T_m`.
        t_m: u64,
        /// The router that coordinated this sync (controllers match the
        /// broadcast against their pending booking by this address).
        target: NodeAddr,
    },
    /// Classical data (measurement results, feedback operands).
    Classical {
        /// Payload value.
        value: u32,
    },
}

/// A routed message: payload plus addressing and delivery time.
///
/// `deliver_at` is an absolute wall-clock cycle computed by the sender's
/// side of the link (`sent_at + link latency`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Envelope {
    /// Sending node.
    pub from: NodeAddr,
    /// Receiving node.
    pub to: NodeAddr,
    /// Message content.
    pub payload: Payload,
    /// Absolute delivery cycle.
    pub deliver_at: u64,
}

impl Envelope {
    /// Convenience constructor.
    pub fn new(from: NodeAddr, to: NodeAddr, payload: Payload, deliver_at: u64) -> Envelope {
        Envelope {
            from,
            to,
            payload,
            deliver_at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_round_trip_fields() {
        let e = Envelope::new(1, 2, Payload::SyncPulse, 77);
        assert_eq!(e.from, 1);
        assert_eq!(e.to, 2);
        assert_eq!(e.deliver_at, 77);
        assert_eq!(e.payload, Payload::SyncPulse);
    }
}
