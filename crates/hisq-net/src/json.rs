//! JSON serialization of the network-layer types, for the
//! scenario-file surface (`hisq run`).
//!
//! Formats (all decoders reject unknown fields):
//!
//! ```json
//! {"serialization_ns": 100, "capacity": 2,
//!  "drop": {"loss_ppm": 10000, "seed": 7, "max_attempts": 16}}
//! ```
//!
//! A [`Topology`] serializes its grid dimensions, latencies, link
//! model, and the router tree (routers plus parent/children maps); the
//! controller mesh is *not* serialized — it is always the
//! 4-neighbourhood of the `width × height` grid and is rebuilt on
//! decode, which keeps scenario files compact and prevents them from
//! describing a mesh the engine cannot route.

use std::collections::BTreeMap;

use hisq_core::NodeAddr;
use hisq_json::{Json, JsonError, ObjReader};

use crate::router::Router;
use crate::topology::{grid_mesh, DropPolicy, FabricMap, LinkModel, Topology};

impl DropPolicy {
    /// Serializes the loss model.
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("loss_ppm".into(), self.loss_ppm.into()),
            ("seed".into(), self.seed.into()),
            ("max_attempts".into(), self.max_attempts.into()),
        ])
    }

    /// Parses a loss model serialized by [`DropPolicy::to_json`].
    /// Omitted fields take the [`DropPolicy::default`] values.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] at `path` for unknown fields, wrong
    /// types, or `max_attempts == 0`.
    pub fn from_json(value: &Json, path: &str) -> Result<DropPolicy, JsonError> {
        let mut obj = ObjReader::new(value, path)?;
        let mut policy = DropPolicy::default();
        if let Some(v) = obj.optional("loss_ppm") {
            policy.loss_ppm = v.as_u32(&obj.field_path("loss_ppm"))?;
        }
        if let Some(v) = obj.optional("seed") {
            policy.seed = v.as_u64(&obj.field_path("seed"))?;
        }
        if let Some(v) = obj.optional("max_attempts") {
            policy.max_attempts = v.as_u32(&obj.field_path("max_attempts"))?;
        }
        if policy.max_attempts == 0 {
            return Err(JsonError::decode(
                obj.field_path("max_attempts"),
                "max_attempts must be at least 1",
            ));
        }
        obj.reject_unknown()?;
        Ok(policy)
    }
}

impl LinkModel {
    /// Serializes the contention model. The `drop` field is omitted
    /// when the link is lossless, so the transparent default renders as
    /// `{"serialization_ns":0,"capacity":1}`.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("serialization_ns".into(), self.serialization_ns.into()),
            ("capacity".into(), self.capacity.into()),
        ];
        if let Some(drop) = &self.drop {
            fields.push(("drop".into(), drop.to_json()));
        }
        Json::Object(fields)
    }

    /// Parses a contention model serialized by [`LinkModel::to_json`].
    /// Omitted fields take the transparent [`LinkModel::default`]
    /// values; `"drop": null` also means lossless.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] at `path` for unknown fields, wrong
    /// types, or `capacity == 0`.
    pub fn from_json(value: &Json, path: &str) -> Result<LinkModel, JsonError> {
        let mut obj = ObjReader::new(value, path)?;
        let mut model = LinkModel::default();
        if let Some(v) = obj.optional("serialization_ns") {
            model.serialization_ns = v.as_u64(&obj.field_path("serialization_ns"))?;
        }
        if let Some(v) = obj.optional("capacity") {
            model.capacity = v.as_u32(&obj.field_path("capacity"))?;
        }
        if let Some(v) = obj.optional("drop") {
            if !matches!(v, Json::Null) {
                model.drop = Some(DropPolicy::from_json(v, &obj.field_path("drop"))?);
            }
        }
        if model.capacity == 0 {
            return Err(JsonError::decode(
                obj.field_path("capacity"),
                "capacity must be at least 1",
            ));
        }
        obj.reject_unknown()?;
        Ok(model)
    }
}

/// Serializes one per-edge override as
/// `{"from": a, "to": b, "model": {...}}`.
pub fn edge_override_to_json(from: NodeAddr, to: NodeAddr, model: &LinkModel) -> Json {
    Json::Object(vec![
        ("from".into(), from.into()),
        ("to".into(), to.into()),
        ("model".into(), model.to_json()),
    ])
}

/// Parses one per-edge override serialized by [`edge_override_to_json`].
pub fn edge_override_from_json(
    value: &Json,
    path: &str,
) -> Result<(NodeAddr, NodeAddr, LinkModel), JsonError> {
    let mut obj = ObjReader::new(value, path)?;
    let from = obj.required("from")?.as_u16(&obj.field_path("from"))?;
    let to = obj.required("to")?.as_u16(&obj.field_path("to"))?;
    let model = LinkModel::from_json(obj.required("model")?, &obj.field_path("model"))?;
    obj.reject_unknown()?;
    Ok((from, to, model))
}

impl FabricMap {
    /// Serializes the fabric map. The `overrides` field is omitted when
    /// the map is uniform, so a uniform fabric renders exactly as
    /// `{"default": <link model>}`.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![("default".into(), self.default_model().to_json())];
        if !self.is_uniform() {
            fields.push((
                "overrides".into(),
                Json::Array(
                    self.overrides()
                        .map(|(f, t, m)| edge_override_to_json(f, t, &m))
                        .collect(),
                ),
            ));
        }
        Json::Object(fields)
    }

    /// Parses a fabric map serialized by [`FabricMap::to_json`]. An
    /// omitted `default` is the transparent model; an omitted
    /// `overrides` list is a uniform map.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] at `path` for unknown fields, wrong
    /// types, a malformed model, or two overrides naming the same
    /// directed edge.
    pub fn from_json(value: &Json, path: &str) -> Result<FabricMap, JsonError> {
        let mut obj = ObjReader::new(value, path)?;
        let mut fabric = FabricMap::default();
        if let Some(v) = obj.optional("default") {
            fabric.set_default(LinkModel::from_json(v, &obj.field_path("default"))?);
        }
        if let Some(v) = obj.optional("overrides") {
            let list_path = obj.field_path("overrides");
            let mut seen = std::collections::BTreeSet::new();
            for (i, entry) in v.as_array(&list_path)?.iter().enumerate() {
                let entry_path = format!("{list_path}[{i}]");
                let (from, to, model) = edge_override_from_json(entry, &entry_path)?;
                if !seen.insert((from, to)) {
                    return Err(JsonError::decode(
                        entry_path,
                        format!("duplicate override for edge {from} -> {to}"),
                    ));
                }
                fabric.set_edge(from, to, model);
            }
        }
        obj.reject_unknown()?;
        Ok(fabric)
    }
}

impl Router {
    /// Serializes the router's tree position (its dynamic session state
    /// is not part of a scenario and is not serialized).
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("addr".into(), self.addr().into()),
            (
                "parent".into(),
                match self.parent() {
                    Some(p) => p.into(),
                    None => Json::Null,
                },
            ),
            (
                "children".into(),
                Json::Array(self.children().iter().map(|&c| c.into()).collect()),
            ),
        ])
    }

    /// Parses a router serialized by [`Router::to_json`], yielding a
    /// fresh (session-free) router.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] at `path` for missing/unknown fields or
    /// wrong types.
    pub fn from_json(value: &Json, path: &str) -> Result<Router, JsonError> {
        let mut obj = ObjReader::new(value, path)?;
        let addr = obj.required("addr")?.as_u16(&obj.field_path("addr"))?;
        let parent = match obj.required("parent")? {
            Json::Null => None,
            v => Some(v.as_u16(&obj.field_path("parent"))?),
        };
        let children_path = obj.field_path("children");
        let children = obj
            .required("children")?
            .as_array(&children_path)?
            .iter()
            .enumerate()
            .map(|(i, v)| v.as_u16(&format!("{children_path}[{i}]")))
            .collect::<Result<Vec<NodeAddr>, JsonError>>()?;
        obj.reject_unknown()?;
        Ok(Router::new(addr, parent, children))
    }
}

impl Topology {
    /// Serializes the topology: grid dimensions, latencies, link
    /// model, and the router tree. The mesh layer is implied by
    /// `width × height` and is not emitted.
    pub fn to_json(&self) -> Json {
        let tree = self
            .routers
            .iter()
            .map(|&r| {
                Json::Object(vec![
                    ("addr".into(), r.into()),
                    (
                        "parent".into(),
                        match self.parent_of(r) {
                            Some(p) => p.into(),
                            None => Json::Null,
                        },
                    ),
                    (
                        "children".into(),
                        Json::Array(self.children_of(r).iter().map(|&c| c.into()).collect()),
                    ),
                ])
            })
            .collect();
        let mut fields = vec![
            ("width".into(), self.width.into()),
            ("height".into(), self.height.into()),
            ("neighbor_latency".into(), self.neighbor_latency.into()),
            ("router_latency".into(), self.router_latency.into()),
            ("pipeline_headroom".into(), self.pipeline_headroom.into()),
            ("link_model".into(), self.fabric.default_model().to_json()),
        ];
        // Per-edge overrides are emitted only when present, so a
        // uniform-fabric topology serializes byte-identically to the
        // single-model era.
        if !self.fabric.is_uniform() {
            fields.push((
                "link_overrides".into(),
                Json::Array(
                    self.fabric
                        .overrides()
                        .map(|(f, t, m)| edge_override_to_json(f, t, &m))
                        .collect(),
                ),
            ));
        }
        fields.push(("routers".into(), Json::Array(tree)));
        Json::Object(fields)
    }

    /// Parses a topology serialized by [`Topology::to_json`],
    /// rebuilding the controller mesh from the grid dimensions and the
    /// parent map from the router tree.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] at `path` for missing/unknown fields,
    /// wrong types, or an inconsistent router tree (no routers, zero
    /// grid area, duplicate routers, a child claimed by two routers, a
    /// child list naming an address that is neither a controller nor a
    /// listed router, or `parent` disagreeing with the child lists).
    pub fn from_json(value: &Json, path: &str) -> Result<Topology, JsonError> {
        let mut obj = ObjReader::new(value, path)?;
        let width = obj.required("width")?.as_usize(&obj.field_path("width"))?;
        let height = obj
            .required("height")?
            .as_usize(&obj.field_path("height"))?;
        if width * height == 0 {
            return Err(JsonError::decode(
                path,
                "topology must have at least one controller (width * height > 0)",
            ));
        }
        let num_controllers = width * height;
        let neighbor_latency = obj
            .required("neighbor_latency")?
            .as_u64(&obj.field_path("neighbor_latency"))?;
        let router_latency = obj
            .required("router_latency")?
            .as_u64(&obj.field_path("router_latency"))?;
        let pipeline_headroom = obj
            .required("pipeline_headroom")?
            .as_u64(&obj.field_path("pipeline_headroom"))?;
        let link_model =
            LinkModel::from_json(obj.required("link_model")?, &obj.field_path("link_model"))?;
        let mut fabric = FabricMap::uniform(link_model);
        if let Some(v) = obj.optional("link_overrides") {
            let list_path = obj.field_path("link_overrides");
            let mut seen = std::collections::BTreeSet::new();
            for (i, entry) in v.as_array(&list_path)?.iter().enumerate() {
                let entry_path = format!("{list_path}[{i}]");
                let (from, to, model) = edge_override_from_json(entry, &entry_path)?;
                if !seen.insert((from, to)) {
                    return Err(JsonError::decode(
                        entry_path,
                        format!("duplicate override for edge {from} -> {to}"),
                    ));
                }
                fabric.set_edge(from, to, model);
            }
        }

        let routers_path = obj.field_path("routers");
        let entries = obj.required("routers")?;
        let entries = entries.as_array(&routers_path)?;
        if entries.is_empty() {
            return Err(JsonError::decode(
                routers_path,
                "topology must have at least one router",
            ));
        }
        let mut routers: Vec<NodeAddr> = Vec::with_capacity(entries.len());
        let mut parent: BTreeMap<NodeAddr, NodeAddr> = BTreeMap::new();
        let mut children: BTreeMap<NodeAddr, Vec<NodeAddr>> = BTreeMap::new();
        let mut declared_parent: BTreeMap<NodeAddr, Option<NodeAddr>> = BTreeMap::new();
        for (i, entry) in entries.iter().enumerate() {
            let entry_path = format!("{routers_path}[{i}]");
            let router = Router::from_json(entry, &entry_path)?;
            let addr = router.addr();
            if (addr as usize) < num_controllers {
                return Err(JsonError::decode(
                    entry_path,
                    format!("router address {addr} collides with the controller grid"),
                ));
            }
            if children.contains_key(&addr) {
                return Err(JsonError::decode(
                    entry_path,
                    format!("duplicate router {addr}"),
                ));
            }
            routers.push(addr);
            declared_parent.insert(addr, router.parent());
            children.insert(addr, router.children().to_vec());
        }
        let mut roots = 0usize;
        for (i, &addr) in routers.iter().enumerate() {
            let entry_path = format!("{routers_path}[{i}]");
            for &child in &children[&addr] {
                let is_controller = (child as usize) < num_controllers;
                if !is_controller && !children.contains_key(&child) {
                    return Err(JsonError::decode(
                        entry_path.clone(),
                        format!("child {child} is neither a controller nor a listed router"),
                    ));
                }
                if parent.insert(child, addr).is_some() {
                    return Err(JsonError::decode(
                        entry_path.clone(),
                        format!("node {child} is claimed as a child by two routers"),
                    ));
                }
            }
            if declared_parent[&addr].is_none() {
                roots += 1;
            }
        }
        if roots != 1 {
            return Err(JsonError::decode(
                routers_path.clone(),
                format!("the router tree must have exactly one root, found {roots}"),
            ));
        }
        for (i, &addr) in routers.iter().enumerate() {
            if parent.get(&addr).copied() != declared_parent[&addr] {
                return Err(JsonError::decode(
                    format!("{routers_path}[{i}]"),
                    format!("router {addr}'s `parent` disagrees with the child lists"),
                ));
            }
        }
        for controller in 0..num_controllers as NodeAddr {
            if !parent.contains_key(&controller) {
                return Err(JsonError::decode(
                    routers_path.clone(),
                    format!("controller {controller} is not attached to any router"),
                ));
            }
        }
        obj.reject_unknown()?;
        Ok(Topology {
            width,
            height,
            num_controllers,
            neighbor_latency,
            router_latency,
            pipeline_headroom,
            fabric,
            parent,
            children,
            routers,
            mesh: grid_mesh(width, height),
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::topology::TopologyBuilder;
    use crate::{DropPolicy, LinkModel, Router, Topology};
    use hisq_json::Json;

    #[test]
    fn link_model_round_trips() {
        for model in [
            LinkModel::default(),
            LinkModel::serialized(100).with_capacity(2),
            LinkModel::serialized(25).with_drop(DropPolicy {
                loss_ppm: 50_000,
                seed: u64::MAX,
                max_attempts: 3,
            }),
        ] {
            let text = model.to_json().to_string_compact();
            let back = LinkModel::from_json(&Json::parse(&text).unwrap(), "lm").unwrap();
            assert_eq!(model, back, "{text}");
        }
    }

    #[test]
    fn link_model_rejects_bad_input() {
        for (text, needle) in [
            (r#"{"capacity": 0}"#, "capacity must be at least 1"),
            (r#"{"lanes": 4}"#, "unknown field `lanes`"),
            (
                r#"{"drop": {"max_attempts": 0}}"#,
                "max_attempts must be at least 1",
            ),
            (r#"{"drop": {"loss": 1}}"#, "lm.drop: unknown field `loss`"),
        ] {
            let err = LinkModel::from_json(&Json::parse(text).unwrap(), "lm").unwrap_err();
            assert!(err.to_string().contains(needle), "{text}: {err}");
        }
    }

    #[test]
    fn router_round_trips() {
        let router = Router::new(9, Some(12), vec![0, 1, 2, 3]);
        let text = router.to_json().to_string_compact();
        assert_eq!(text, r#"{"addr":9,"parent":12,"children":[0,1,2,3]}"#);
        let back = Router::from_json(&Json::parse(&text).unwrap(), "r").unwrap();
        assert_eq!(router, back);
    }

    #[test]
    fn topology_round_trips() {
        let topo = TopologyBuilder::grid(4, 4)
            .router_arity(4)
            .link_model(LinkModel::serialized(50))
            .build();
        let text = topo.to_json().to_string_compact();
        let back = Topology::from_json(&Json::parse(&text).unwrap(), "topo").unwrap();
        assert_eq!(topo, back);
    }

    #[test]
    fn fabric_map_round_trips_and_rejects_bad_input() {
        let mut fabric = crate::FabricMap::uniform(LinkModel::serialized(8));
        // Uniform maps render exactly as {"default": ...}.
        assert_eq!(
            fabric.to_json().to_string_compact(),
            r#"{"default":{"serialization_ns":8,"capacity":1}}"#
        );
        fabric.set_edge(0, 1, LinkModel::serialized(64).with_capacity(2));
        let text = fabric.to_json().to_string_compact();
        let back = crate::FabricMap::from_json(&Json::parse(&text).unwrap(), "fm").unwrap();
        assert_eq!(fabric, back, "{text}");

        for (text, needle) in [
            (
                r#"{"default": {}, "overrides": [{"from": 0, "to": 1, "model": {}},
                    {"from": 0, "to": 1, "model": {"serialization_ns": 4}}]}"#,
                "duplicate override for edge 0 -> 1",
            ),
            (
                r#"{"overrides": [{"from": 0, "model": {}}]}"#,
                "missing field `to`",
            ),
            (r#"{"edges": []}"#, "unknown field `edges`"),
            (
                r#"{"overrides": [{"from": 0, "to": 1, "model": {"lanes": 2}}]}"#,
                "unknown field `lanes`",
            ),
        ] {
            let err = crate::FabricMap::from_json(&Json::parse(text).unwrap(), "fm").unwrap_err();
            assert!(err.to_string().contains(needle), "{text}: {err}");
        }
    }

    #[test]
    fn heterogeneous_topology_round_trips() {
        let topo = TopologyBuilder::grid(4, 4)
            .link_model(LinkModel::serialized(8))
            .link_model_for(5, 6, LinkModel::serialized(64))
            .link_model_for(6, 5, LinkModel::serialized(64))
            .build();
        let text = topo.to_json().to_string_compact();
        assert!(text.contains("\"link_overrides\""), "{text}");
        let back = Topology::from_json(&Json::parse(&text).unwrap(), "topo").unwrap();
        assert_eq!(topo, back);

        // A uniform topology never emits the overrides field, keeping
        // single-model-era documents byte-identical.
        let uniform = TopologyBuilder::grid(4, 4).build();
        assert!(!uniform
            .to_json()
            .to_string_compact()
            .contains("link_overrides"));
    }

    #[test]
    fn surgered_topology_round_trips() {
        let mut topo = TopologyBuilder::grid(4, 4).build();
        topo.drop_router_level().unwrap();
        let back = Topology::from_json(&topo.to_json(), "topo").unwrap();
        assert_eq!(topo, back);

        let mut topo = TopologyBuilder::grid(4, 4).build();
        let donor = topo.routers()[0];
        let target = topo.routers()[1];
        let moved = topo.children_of(donor)[0];
        topo.rewire_subtree(moved, target).unwrap();
        let back = Topology::from_json(&topo.to_json(), "topo").unwrap();
        assert_eq!(topo, back);
    }

    #[test]
    fn inconsistent_trees_are_rejected() {
        let topo = TopologyBuilder::grid(2, 2).build();
        let Json::Object(mut fields) = topo.to_json() else {
            unreachable!()
        };
        // Orphan controller 0 by removing it from the root's children.
        for (key, value) in &mut fields {
            if key == "routers" {
                let Json::Array(entries) = value else {
                    unreachable!()
                };
                let Json::Object(router_fields) = &mut entries[0] else {
                    unreachable!()
                };
                for (rk, rv) in router_fields {
                    if rk == "children" {
                        let Json::Array(kids) = rv else {
                            unreachable!()
                        };
                        kids.remove(0);
                    }
                }
            }
        }
        let err = Topology::from_json(&Json::Object(fields), "topo").unwrap_err();
        assert!(
            err.to_string().contains("controller 0 is not attached"),
            "{err}"
        );
    }

    #[test]
    fn drop_router_level_flattens_the_tree() {
        // 4×4 grid, arity 4: one level of 4 region routers + a root.
        let mut topo = TopologyBuilder::grid(4, 4).build();
        assert_eq!(topo.num_routers(), 5);
        let root = topo.root_router().unwrap();
        topo.drop_router_level().unwrap();
        assert_eq!(topo.num_routers(), 1);
        assert_eq!(topo.root_router(), Some(root));
        // All 16 controllers now hang off the root directly, in order.
        assert_eq!(
            topo.children_of(root),
            (0..16).collect::<Vec<_>>().as_slice()
        );
        assert!((0..16).all(|c| topo.parent_of(c) == Some(root)));
        // Dropping the root level itself is refused.
        assert!(topo.drop_router_level().is_err());
    }

    #[test]
    fn rewire_subtree_moves_a_region() {
        let mut topo = TopologyBuilder::grid(4, 4).build();
        let donor = topo.routers()[0];
        let target = topo.routers()[1];
        let moved = topo.children_of(donor)[0];
        topo.rewire_subtree(moved, target).unwrap();
        assert_eq!(topo.parent_of(moved), Some(target));
        assert!(!topo.children_of(donor).contains(&moved));
        assert_eq!(*topo.children_of(target).last().unwrap(), moved);

        // Cycle: the root under one of its descendants.
        let root = topo.root_router().unwrap();
        assert!(topo.rewire_subtree(root, donor).is_err());
        // New parent must be a router.
        assert!(topo.rewire_subtree(moved, 0).is_err());
    }
}
