//! # hisq-net — the Distributed-HISQ network substrate
//!
//! Implements §5 of the paper: the **hybrid topology** (a mesh-like
//! intra-layer between neighbouring controllers mirroring the qubit
//! coupling map, plus a balanced tree of routers for region-level
//! coordination) and the **router** with its max-reduction routing
//! mechanism (Figure 8):
//!
//! 1. on receiving a booking from a child, buffer it; on receiving a
//!    broadcast from the parent, forward it to all children;
//! 2. once every participating child has booked, compute the maximum
//!    time-point;
//! 3. if this router is the sync destination, broadcast the maximum to
//!    its children; otherwise forward it to its parent.
//!
//! # Example
//!
//! ```
//! use hisq_net::TopologyBuilder;
//!
//! // A 2×2 controller mesh under a binary router tree.
//! let topo = TopologyBuilder::grid(2, 2)
//!     .neighbor_latency(5)
//!     .router_arity(2)
//!     .router_latency(10)
//!     .build();
//! assert_eq!(topo.num_controllers(), 4);
//! assert!(topo.num_routers() >= 2);
//! // Every controller has a path to the root router.
//! let root = topo.root_router().unwrap();
//! assert!(topo.ancestors(0).contains(&root));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod json;
pub mod message;
pub mod router;
pub mod topology;

pub use message::{Envelope, Payload};
pub use router::{Router, RouterAction, RouterError};
pub use topology::{DropPolicy, FabricMap, LinkModel, Topology, TopologyBuilder};

pub use hisq_core::NodeAddr;
