//! The region-synchronization router (Figure 8 of the paper).
//!
//! Routers participate only in region-level sync: they buffer booking
//! time-points from their children, max-reduce once every participating
//! child has booked, and either forward the partial maximum to their
//! parent or — when they are the sync destination — broadcast the final
//! earliest common start time back down the tree.
//!
//! Bookings for *different* destinations are kept in separate sessions,
//! and repeated synchronizations against the same destination pair up
//! round-by-round in FIFO order.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use hisq_core::NodeAddr;

/// A routing-invariant violation detected by a router.
///
/// These are malformed-but-constructible deployments (a booking from a
/// node that is not a child, a mis-rooted tree with no parent to
/// forward to), not programmer errors: routers report them structurally
/// so the simulation engine can surface the fault instead of tearing
/// the process down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterError {
    /// A booking arrived from a node that is not one of this router's
    /// children (the tree routing invariant says bookings only ever
    /// climb parent links).
    NonChildBooking {
        /// The router that received the booking.
        router: NodeAddr,
        /// The non-child sender.
        from: NodeAddr,
    },
    /// A completed round must be forwarded towards `target`, but this
    /// router has no parent — the tree is mis-rooted (the sync
    /// destination is not an ancestor of the booking controllers).
    MissingParent {
        /// The parentless router.
        router: NodeAddr,
        /// The sync destination the booking was addressed to.
        target: NodeAddr,
    },
}

impl fmt::Display for RouterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RouterError::NonChildBooking { router, from } => {
                write!(
                    f,
                    "router {router} received a booking from non-child {from}"
                )
            }
            RouterError::MissingParent { router, target } => write!(
                f,
                "router {router} must forward a booking for {target} but has no parent \
                 (mis-rooted tree)"
            ),
        }
    }
}

impl Error for RouterError {}

/// An action the router asks the network to perform.
///
/// Actions are `Copy` and carry no owned data: a broadcast names no
/// recipient list — the recipients are always *all* of the router's
/// [`children`](Router::children), which the network reads from the
/// router itself. Relaying a max-time wave down a large tree therefore
/// allocates nothing per hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterAction {
    /// Forward an aggregated booking to the parent router.
    ForwardUp {
        /// Parent router address.
        parent: NodeAddr,
        /// Final sync destination (an ancestor router).
        target: NodeAddr,
        /// Max-reduced time-point of this subtree.
        time_point: u64,
        /// When the forwarding leaves this router (= the latest arrival
        /// among this round's bookings).
        sent_at: u64,
    },
    /// Broadcast the final earliest common start time to every child
    /// (controllers receive it directly; sub-routers relay it
    /// downward).
    Broadcast {
        /// The agreed region start time.
        t_m: u64,
        /// The coordinating router (the original sync destination).
        target: NodeAddr,
    },
}

/// One buffered booking: the claimed time-point and its arrival time at
/// this router. The effective contribution of a booking is
/// `max(time_point, arrival)` — a router cannot act on information it
/// has not yet received (this is the `max({Bᵢ + Lᵢ})` floor of §4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Booking {
    time_point: u64,
    arrival: u64,
}

/// Per-destination synchronization session state. Routers see a
/// handful of distinct targets and have tree-arity children, so both
/// levels are flat linear-scanned vectors, not maps — a booking
/// delivery on the engine's hot path touches no tree nodes and (after
/// the first round warms the slots) allocates nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Session {
    /// The sync destination this session aggregates for.
    target: NodeAddr,
    /// FIFO of bookings per child, in first-booking order.
    per_child: Vec<(NodeAddr, VecDeque<Booking>)>,
}

/// A router node in the inter-layer tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Router {
    addr: NodeAddr,
    parent: Option<NodeAddr>,
    children: Vec<NodeAddr>,
    sessions: Vec<Session>,
    rounds_completed: u64,
}

impl Router {
    /// Creates a router with its tree links.
    pub fn new(addr: NodeAddr, parent: Option<NodeAddr>, children: Vec<NodeAddr>) -> Router {
        Router {
            addr,
            parent,
            children,
            sessions: Vec::new(),
            rounds_completed: 0,
        }
    }

    /// This router's address.
    pub fn addr(&self) -> NodeAddr {
        self.addr
    }

    /// This router's parent in the tree (`None` for the root).
    pub fn parent(&self) -> Option<NodeAddr> {
        self.parent
    }

    /// The router's children.
    pub fn children(&self) -> &[NodeAddr] {
        &self.children
    }

    /// Number of completed max-reduction rounds (diagnostics).
    pub fn rounds_completed(&self) -> u64 {
        self.rounds_completed
    }

    /// Handles a booking from child `from` for destination `target`,
    /// arriving at wall-clock `arrival`. Returns the action to take,
    /// if the booking completed a round.
    ///
    /// # Errors
    ///
    /// - [`RouterError::NonChildBooking`] if `from` is not one of this
    ///   router's children (the tree routing invariant guarantees
    ///   bookings only ever climb parent links);
    /// - [`RouterError::MissingParent`] if a completed round must climb
    ///   further but this router has no parent (mis-rooted tree).
    ///
    /// On error the router's session state is left unchanged — the
    /// offending booking is not buffered.
    pub fn deliver_book_time(
        &mut self,
        from: NodeAddr,
        target: NodeAddr,
        time_point: u64,
        arrival: u64,
    ) -> Result<Option<RouterAction>, RouterError> {
        if !self.children.contains(&from) {
            return Err(RouterError::NonChildBooking {
                router: self.addr,
                from,
            });
        }
        // A round that completes for a foreign target needs a parent to
        // climb to; reject *before* buffering so the error leaves the
        // sessions untouched.
        if target != self.addr && self.parent.is_none() {
            return Err(RouterError::MissingParent {
                router: self.addr,
                target,
            });
        }
        let session = match self.sessions.iter_mut().position(|s| s.target == target) {
            Some(i) => &mut self.sessions[i],
            None => {
                self.sessions.push(Session {
                    target,
                    per_child: Vec::new(),
                });
                self.sessions.last_mut().expect("just pushed")
            }
        };
        match session.per_child.iter_mut().find(|(c, _)| *c == from) {
            Some((_, queue)) => queue.push_back(Booking {
                time_point,
                arrival,
            }),
            None => {
                let mut queue = VecDeque::new();
                queue.push_back(Booking {
                    time_point,
                    arrival,
                });
                session.per_child.push((from, queue));
            }
        }

        // A round completes once every child has a booking queued.
        let complete = self.children.iter().all(|c| {
            session
                .per_child
                .iter()
                .any(|(child, q)| child == c && !q.is_empty())
        });
        if !complete {
            return Ok(None);
        }

        let mut t_m = 0u64;
        let mut latest_arrival = 0u64;
        for child in &self.children {
            let booking = session
                .per_child
                .iter_mut()
                .find(|(c, _)| c == child)
                .expect("round checked complete")
                .1
                .pop_front()
                .expect("round checked complete");
            t_m = t_m.max(booking.time_point).max(booking.arrival);
            latest_arrival = latest_arrival.max(booking.arrival);
        }
        self.rounds_completed += 1;

        if target == self.addr {
            Ok(Some(RouterAction::Broadcast { t_m, target }))
        } else {
            // Checked before buffering; a parentless router cannot
            // reach a completed foreign-target round.
            let parent = self.parent.ok_or(RouterError::MissingParent {
                router: self.addr,
                target,
            })?;
            Ok(Some(RouterAction::ForwardUp {
                parent,
                target,
                time_point: t_m,
                sent_at: latest_arrival,
            }))
        }
    }

    /// Handles a downward broadcast from the parent: relay to children.
    pub fn deliver_max_time(&self, t_m: u64, target: NodeAddr) -> RouterAction {
        RouterAction::Broadcast { t_m, target }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_level_round_max_reduces_with_arrival_floor() {
        let mut r = Router::new(100, None, vec![0, 1, 2]);
        // Paper Figure 7: C2's booking arrives after its claimed
        // time-point, so the arrival becomes the floor.
        assert!(r.deliver_book_time(0, 100, 50, 20).unwrap().is_none());
        assert!(r.deliver_book_time(1, 100, 60, 25).unwrap().is_none());
        let action = r.deliver_book_time(2, 100, 55, 70).unwrap(); // D2 < L2
        assert_eq!(
            action,
            Some(RouterAction::Broadcast {
                t_m: 70, // max(T_i) = 60 but max(B_i + L_i) = 70 wins
                target: 100,
            })
        );
        assert_eq!(r.rounds_completed(), 1);
    }

    #[test]
    fn zero_overhead_when_arrivals_hidden() {
        let mut r = Router::new(100, None, vec![0, 1]);
        assert!(r.deliver_book_time(0, 100, 90, 30).unwrap().is_none());
        let action = r.deliver_book_time(1, 100, 80, 40).unwrap();
        // max(T_i) = 90 dominates max(arrival) = 40: zero-cycle overhead.
        assert_eq!(
            action,
            Some(RouterAction::Broadcast {
                t_m: 90,
                target: 100,
            })
        );
    }

    #[test]
    fn intermediate_router_forwards_up() {
        let mut r = Router::new(100, Some(200), vec![0, 1]);
        assert!(r.deliver_book_time(0, 200, 50, 10).unwrap().is_none());
        let action = r.deliver_book_time(1, 200, 70, 12).unwrap();
        assert_eq!(
            action,
            Some(RouterAction::ForwardUp {
                parent: 200,
                target: 200,
                time_point: 70,
                sent_at: 12,
            })
        );
    }

    #[test]
    fn repeated_rounds_pair_fifo() {
        let mut r = Router::new(100, None, vec![0, 1]);
        // Child 0 books twice before child 1's first booking.
        assert!(r.deliver_book_time(0, 100, 10, 5).unwrap().is_none());
        assert!(r.deliver_book_time(0, 100, 200, 105).unwrap().is_none());
        let first = r.deliver_book_time(1, 100, 20, 6).unwrap();
        assert_eq!(
            first,
            Some(RouterAction::Broadcast {
                t_m: 20,
                target: 100,
            })
        );
        // Second round pairs child 0's second booking.
        let second = r.deliver_book_time(1, 100, 150, 110).unwrap();
        assert_eq!(
            second,
            Some(RouterAction::Broadcast {
                t_m: 200,
                target: 100,
            })
        );
        assert_eq!(r.rounds_completed(), 2);
    }

    #[test]
    fn sessions_for_different_targets_are_independent() {
        // Router coordinates nothing itself; it relays two targets.
        let mut r = Router::new(100, Some(200), vec![0, 1]);
        assert!(r.deliver_book_time(0, 200, 10, 1).unwrap().is_none());
        assert!(r.deliver_book_time(0, 300, 99, 2).unwrap().is_none());
        // Completing target-200's round is unaffected by the 300 session.
        let action = r.deliver_book_time(1, 200, 30, 3).unwrap();
        assert!(matches!(
            action,
            Some(RouterAction::ForwardUp {
                target: 200,
                time_point: 30,
                ..
            })
        ));
    }

    #[test]
    fn downward_broadcast_relays() {
        let r = Router::new(100, Some(200), vec![0, 1]);
        let action = r.deliver_max_time(500, 300);
        assert_eq!(
            action,
            RouterAction::Broadcast {
                t_m: 500,
                target: 300,
            }
        );
    }

    #[test]
    fn booking_from_stranger_is_a_structured_error() {
        let mut r = Router::new(100, None, vec![0, 1]);
        assert_eq!(
            r.deliver_book_time(9, 100, 1, 1),
            Err(RouterError::NonChildBooking {
                router: 100,
                from: 9
            })
        );
        // The rejected booking left no session state behind: a valid
        // round still completes with only the real children.
        assert!(r.deliver_book_time(0, 100, 5, 1).unwrap().is_none());
        assert!(r.deliver_book_time(1, 100, 7, 2).unwrap().is_some());
    }

    #[test]
    fn mis_rooted_forwarding_is_a_structured_error() {
        // A parentless router asked to relay towards a foreign target
        // (the tree was assembled without the upper level).
        let mut r = Router::new(100, None, vec![0, 1]);
        assert_eq!(
            r.deliver_book_time(0, 300, 10, 1),
            Err(RouterError::MissingParent {
                router: 100,
                target: 300
            })
        );
        assert_eq!(r.rounds_completed(), 0);
    }
}
