//! The hybrid topology of Distributed-HISQ (§5.1).
//!
//! - **Intra-layer (mesh)**: controllers are arranged to mirror the qubit
//!   device topology (Insight #2/#3), here a rectangular grid with
//!   4-neighbour edges — two-qubit gates only ever need nearby sync
//!   between adjacent controllers.
//! - **Inter-layer (tree)**: a balanced `k`-ary router tree over the
//!   controllers minimizes edges (`N − 1` for `N` nodes) while keeping
//!   region-level communication within `2 × height` hops.
//!
//! Controllers receive addresses `0..num_controllers`; routers are
//! numbered upwards from `num_controllers`, level by level, with the
//! root last.

use std::collections::BTreeMap;

use hisq_core::{NodeAddr, NodeConfig};

/// Loss model of a contended classical link: each transmission attempt
/// of a packetized classical message is dropped with a fixed
/// probability, drawn from a deterministic seeded stream, and the
/// sender retransmits after a timeout until an attempt survives or the
/// attempt budget runs out.
///
/// Sync pulses and region-sync traffic ride dedicated reliable wires
/// and are never dropped; only [`Classical`](crate::Payload::Classical)
/// payloads are subject to loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DropPolicy {
    /// Per-attempt loss probability in parts per million
    /// (`1_000_000` = every attempt lost).
    pub loss_ppm: u32,
    /// Seed of the deterministic drop stream (per-link streams are
    /// derived from it, so runs are reproducible across thread counts).
    pub seed: u64,
    /// Transmission attempts before the message is abandoned for good
    /// (counted in the per-link `dropped` statistic). Must be ≥ 1.
    pub max_attempts: u32,
}

impl Default for DropPolicy {
    /// 1% loss, seed 0, 16 attempts.
    fn default() -> DropPolicy {
        DropPolicy {
            loss_ppm: 10_000,
            seed: 0,
            max_attempts: 16,
        }
    }
}

/// Contention model of a classical link: how long a message occupies
/// one of the link's serialization slots, how many slots exist, and an
/// optional loss model.
///
/// The default model (`serialization_ns == 0`, no loss) is
/// *transparent*: messages are delivered at `sent_at + latency` exactly
/// as the pure-latency engine always has, so attaching the default
/// model changes nothing — it exists so contention can become a sweep
/// axis without forking the configuration surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkModel {
    /// Time one packetized message occupies a serialization slot, in
    /// nanoseconds (0 = no serialization, the pure-latency model).
    pub serialization_ns: u64,
    /// Parallel serialization slots (lanes) per directed link. Must be
    /// ≥ 1; ignored while the model is transparent.
    pub capacity: u32,
    /// Loss model; `None` = lossless.
    pub drop: Option<DropPolicy>,
}

impl Default for LinkModel {
    /// Transparent: zero serialization, one lane, lossless.
    fn default() -> LinkModel {
        LinkModel {
            serialization_ns: 0,
            capacity: 1,
            drop: None,
        }
    }
}

impl LinkModel {
    /// A lossless model that serializes messages for
    /// `serialization_ns` through a single slot.
    pub fn serialized(serialization_ns: u64) -> LinkModel {
        LinkModel {
            serialization_ns,
            ..LinkModel::default()
        }
    }

    /// Replaces the slot count (builder style).
    #[must_use]
    pub fn with_capacity(mut self, capacity: u32) -> LinkModel {
        self.capacity = capacity;
        self
    }

    /// Attaches a loss model (builder style).
    #[must_use]
    pub fn with_drop(mut self, drop: DropPolicy) -> LinkModel {
        self.drop = Some(drop);
        self
    }

    /// `true` when the model cannot affect delivery: no serialization
    /// and no loss. The engine bypasses all queue bookkeeping for
    /// transparent links, reproducing the pure-latency behavior
    /// byte-for-byte.
    pub fn is_transparent(&self) -> bool {
        self.serialization_ns == 0 && self.drop.is_none()
    }
}

/// Per-directed-edge link contention models with a uniform default —
/// the heterogeneous-fabric generalization of the single topology-wide
/// [`LinkModel`].
///
/// Resolution order is *default → per-edge override*: every directed
/// edge `(from, to)` runs the default model unless an override was
/// registered for exactly that edge ([`FabricMap::set_edge`]). A map
/// with no overrides behaves byte-identically to the legacy single
/// model; overrides equal to the default are normalized away, so
/// [`FabricMap::is_uniform`] is exact.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct FabricMap {
    /// The model every edge runs unless overridden.
    default: LinkModel,
    /// Per-directed-edge overrides (never storing the default).
    overrides: BTreeMap<(NodeAddr, NodeAddr), LinkModel>,
}

impl FabricMap {
    /// A uniform fabric: every edge runs `default`, no overrides.
    pub fn uniform(default: LinkModel) -> FabricMap {
        FabricMap {
            default,
            overrides: BTreeMap::new(),
        }
    }

    /// The uniform default model.
    pub fn default_model(&self) -> LinkModel {
        self.default
    }

    /// Replaces the uniform default (overrides are kept).
    pub fn set_default(&mut self, default: LinkModel) {
        self.default = default;
        let keep_default = self.default;
        self.overrides.retain(|_, m| *m != keep_default);
    }

    /// Overrides the model of the directed edge `from → to`. Setting
    /// an edge back to the default removes the override.
    pub fn set_edge(&mut self, from: NodeAddr, to: NodeAddr, model: LinkModel) {
        if model == self.default {
            self.overrides.remove(&(from, to));
        } else {
            self.overrides.insert((from, to), model);
        }
    }

    /// The model the directed edge `from → to` runs (the override if
    /// one exists, the default otherwise).
    pub fn resolve(&self, from: NodeAddr, to: NodeAddr) -> LinkModel {
        self.overrides
            .get(&(from, to))
            .copied()
            .unwrap_or(self.default)
    }

    /// The per-edge overrides in ascending `(from, to)` order.
    pub fn overrides(&self) -> impl Iterator<Item = (NodeAddr, NodeAddr, LinkModel)> + '_ {
        self.overrides.iter().map(|(&(f, t), &m)| (f, t, m))
    }

    /// `true` when no edge deviates from the default.
    pub fn is_uniform(&self) -> bool {
        self.overrides.is_empty()
    }

    /// `true` when no edge of the fabric can affect delivery (default
    /// and every override transparent) — the engine's fast-path
    /// condition, byte-identical to the pure-latency engine.
    pub fn is_transparent(&self) -> bool {
        self.default.is_transparent() && self.overrides.values().all(LinkModel::is_transparent)
    }
}

impl From<LinkModel> for FabricMap {
    fn from(default: LinkModel) -> FabricMap {
        FabricMap::uniform(default)
    }
}

/// Builder for [`Topology`].
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    width: usize,
    height: usize,
    neighbor_latency: u64,
    router_arity: usize,
    router_latency: u64,
    pipeline_headroom: u64,
    fabric: FabricMap,
}

impl TopologyBuilder {
    /// A `width × height` controller grid.
    pub fn grid(width: usize, height: usize) -> TopologyBuilder {
        assert!(
            width * height > 0,
            "topology must have at least one controller"
        );
        TopologyBuilder {
            width,
            height,
            neighbor_latency: 5,
            router_arity: 4,
            router_latency: 10,
            pipeline_headroom: 32,
            fabric: FabricMap::default(),
        }
    }

    /// A 1-D chain of `n` controllers.
    pub fn linear(n: usize) -> TopologyBuilder {
        TopologyBuilder::grid(n, 1)
    }

    /// Sets the one-way mesh-edge latency in cycles (default 5 = 20 ns).
    pub fn neighbor_latency(mut self, cycles: u64) -> TopologyBuilder {
        self.neighbor_latency = cycles;
        self
    }

    /// Sets the router tree arity (default 4).
    pub fn router_arity(mut self, arity: usize) -> TopologyBuilder {
        assert!(arity >= 2, "router arity must be at least 2");
        self.router_arity = arity;
        self
    }

    /// Sets the one-way tree-edge latency in cycles (default 10 = 40 ns).
    pub fn router_latency(mut self, cycles: u64) -> TopologyBuilder {
        self.router_latency = cycles;
        self
    }

    /// Sets the controllers' TCU queue decoupling margin (default 32).
    pub fn pipeline_headroom(mut self, cycles: u64) -> TopologyBuilder {
        self.pipeline_headroom = cycles;
        self
    }

    /// Sets the *default* contention model of this topology's fabric —
    /// the model every link runs unless overridden per edge via
    /// [`TopologyBuilder::link_model_for`] (default: the transparent
    /// pure-latency model).
    pub fn link_model(mut self, model: LinkModel) -> TopologyBuilder {
        self.fabric.set_default(model);
        self
    }

    /// Overrides the contention model of the single directed edge
    /// `from → to` (a hot link in an otherwise uniform fabric). The
    /// uniform default stays whatever [`TopologyBuilder::link_model`]
    /// set.
    pub fn link_model_for(
        mut self,
        from: NodeAddr,
        to: NodeAddr,
        model: LinkModel,
    ) -> TopologyBuilder {
        self.fabric.set_edge(from, to, model);
        self
    }

    /// Builds the topology: mesh edges plus a balanced router tree.
    pub fn build(self) -> Topology {
        let num_controllers = self.width * self.height;
        let mut parent: BTreeMap<NodeAddr, NodeAddr> = BTreeMap::new();
        let mut children: BTreeMap<NodeAddr, Vec<NodeAddr>> = BTreeMap::new();

        // Build the router tree bottom-up over controller addresses.
        let mut level: Vec<NodeAddr> = (0..num_controllers as u16).collect();
        let mut next_addr = num_controllers as u16;
        let mut routers: Vec<NodeAddr> = Vec::new();
        while level.len() > 1 || routers.is_empty() {
            let mut next_level = Vec::new();
            for group in level.chunks(self.router_arity) {
                let router = next_addr;
                next_addr += 1;
                routers.push(router);
                for &child in group {
                    parent.insert(child, router);
                }
                children.insert(router, group.to_vec());
                next_level.push(router);
            }
            level = next_level;
        }

        // Mesh edges: 4-neighbourhood on the grid.
        let mesh = grid_mesh(self.width, self.height);

        Topology {
            width: self.width,
            height: self.height,
            num_controllers,
            neighbor_latency: self.neighbor_latency,
            router_latency: self.router_latency,
            pipeline_headroom: self.pipeline_headroom,
            fabric: self.fabric,
            parent,
            children,
            routers,
            mesh,
        }
    }
}

/// A built hybrid topology. See the module docs for the addressing
/// scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    pub(crate) width: usize,
    pub(crate) height: usize,
    pub(crate) num_controllers: usize,
    pub(crate) neighbor_latency: u64,
    pub(crate) router_latency: u64,
    pub(crate) pipeline_headroom: u64,
    pub(crate) fabric: FabricMap,
    /// Child → parent router, for controllers and non-root routers.
    pub(crate) parent: BTreeMap<NodeAddr, NodeAddr>,
    /// Router → children (controllers or routers).
    pub(crate) children: BTreeMap<NodeAddr, Vec<NodeAddr>>,
    /// Router addresses, creation (level) order; root last.
    pub(crate) routers: Vec<NodeAddr>,
    /// Controller → mesh neighbours.
    pub(crate) mesh: BTreeMap<NodeAddr, Vec<NodeAddr>>,
}

impl Topology {
    /// Number of controllers (mesh layer).
    pub fn num_controllers(&self) -> usize {
        self.num_controllers
    }

    /// Number of routers (tree layers).
    pub fn num_routers(&self) -> usize {
        self.routers.len()
    }

    /// Grid width of the mesh layer.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height of the mesh layer.
    pub fn height(&self) -> usize {
        self.height
    }

    /// One-way mesh-edge latency in cycles.
    pub fn neighbor_latency(&self) -> u64 {
        self.neighbor_latency
    }

    /// One-way tree-edge latency in cycles.
    pub fn router_latency(&self) -> u64 {
        self.router_latency
    }

    /// The *uniform default* contention model of this topology's
    /// fabric.
    ///
    /// Kept as a compatibility shim from the single-model era: per-edge
    /// overrides are invisible through this accessor. New callers
    /// should read the full per-edge map via [`Topology::fabric`]
    /// (resolution order: default → per-edge override).
    pub fn link_model(&self) -> LinkModel {
        self.fabric.default_model()
    }

    /// The per-directed-edge fabric map this topology's links carry
    /// (uniform and transparent unless set via
    /// [`TopologyBuilder::link_model`] /
    /// [`TopologyBuilder::link_model_for`]).
    pub fn fabric(&self) -> &FabricMap {
        &self.fabric
    }

    /// The controller address at grid position `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the grid.
    pub fn controller_at(&self, x: usize, y: usize) -> NodeAddr {
        assert!(x < self.width && y < self.height, "({x},{y}) outside grid");
        (y * self.width + x) as u16
    }

    /// Grid coordinates of a controller address.
    pub fn coords(&self, addr: NodeAddr) -> (usize, usize) {
        let addr = addr as usize;
        assert!(addr < self.num_controllers, "{addr} is not a controller");
        (addr % self.width, addr / self.width)
    }

    /// `true` if `addr` names a router.
    ///
    /// Membership-based (not an address-range check): spec surgery can
    /// remove router levels, leaving gaps in the router address space.
    pub fn is_router(&self, addr: NodeAddr) -> bool {
        self.children.contains_key(&addr)
    }

    /// The root of the router tree.
    pub fn root_router(&self) -> Option<NodeAddr> {
        self.routers.last().copied()
    }

    /// All router addresses, bottom level first.
    pub fn routers(&self) -> &[NodeAddr] {
        &self.routers
    }

    /// The parent router of a controller or router (None for the root).
    pub fn parent_of(&self, addr: NodeAddr) -> Option<NodeAddr> {
        self.parent.get(&addr).copied()
    }

    /// The children (controllers or routers) of a router.
    pub fn children_of(&self, router: NodeAddr) -> &[NodeAddr] {
        self.children.get(&router).map_or(&[], Vec::as_slice)
    }

    /// Mesh neighbours of a controller.
    pub fn mesh_neighbors(&self, addr: NodeAddr) -> &[NodeAddr] {
        self.mesh.get(&addr).map_or(&[], Vec::as_slice)
    }

    /// Ancestor routers of a node, nearest first (ends at the root).
    pub fn ancestors(&self, addr: NodeAddr) -> Vec<NodeAddr> {
        let mut out = Vec::new();
        let mut cursor = addr;
        while let Some(p) = self.parent_of(cursor) {
            out.push(p);
            cursor = p;
        }
        out
    }

    /// All controllers in the subtree of `router`.
    pub fn subtree_controllers(&self, router: NodeAddr) -> Vec<NodeAddr> {
        let mut out = Vec::new();
        let mut stack = vec![router];
        while let Some(node) = stack.pop() {
            if self.is_router(node) {
                stack.extend(self.children_of(node));
            } else {
                out.push(node);
            }
        }
        out.sort_unstable();
        out
    }

    /// The lowest common ancestor router of a set of controllers — the
    /// natural coordinator for a region-level sync.
    pub fn region_router(&self, controllers: &[NodeAddr]) -> Option<NodeAddr> {
        let first = *controllers.first()?;
        for candidate in self.ancestors(first) {
            let covers_all = controllers
                .iter()
                .all(|&c| c == candidate || self.ancestors(c).contains(&candidate));
            if covers_all {
                return Some(candidate);
            }
        }
        None
    }

    /// Tree height (router levels above the controllers).
    pub fn tree_height(&self) -> usize {
        self.root_router()
            .map(|root| {
                // Depth of the deepest controller below the root.
                self.ancestors(0).len()
                    + usize::from(!self.ancestors(0).contains(&root) && root != 0)
            })
            .unwrap_or(0)
    }

    /// Manhattan distance between two controllers on the mesh (in hops).
    pub fn manhattan(&self, a: NodeAddr, b: NodeAddr) -> usize {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    /// Per-hop store-and-forward overhead for packetized classical
    /// messages (serialization + switching), on top of the wire latency.
    /// Sync pulses ride dedicated 1-bit LVDS wires and do not pay this.
    pub const CLASSICAL_FORWARD_OVERHEAD: u64 = 10;

    /// End-to-end classical message latency between two controllers:
    /// hop-by-hop store-and-forward over the mesh, so it **grows with
    /// distance** (the Distributed-HISQ cost the paper contrasts with
    /// the baseline's assumed-constant latency, §6.4.4) — this is what
    /// makes the long-haul `bv` benchmarks favour the baseline.
    pub fn classical_latency(&self, a: NodeAddr, b: NodeAddr) -> u64 {
        self.manhattan(a, b).max(1) as u64
            * (self.neighbor_latency + Self::CLASSICAL_FORWARD_OVERHEAD)
    }

    /// The one-way latency of the direct link between `a` and `b`,
    /// if such a link exists (mesh edge or tree edge).
    pub fn latency(&self, a: NodeAddr, b: NodeAddr) -> Option<u64> {
        if self.mesh.get(&a).is_some_and(|n| n.contains(&b)) {
            return Some(self.neighbor_latency);
        }
        if self.parent_of(a) == Some(b) || self.parent_of(b) == Some(a) {
            return Some(self.router_latency);
        }
        None
    }

    /// Builds the [`NodeConfig`] for a controller: neighbour links for
    /// every mesh edge and a router link for every ancestor.
    ///
    /// The latency recorded for ancestor links is the **first-hop** edge
    /// latency; multi-hop delivery times emerge from per-hop routing in
    /// the simulator.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not a controller.
    pub fn node_config(&self, addr: NodeAddr) -> NodeConfig {
        assert!(
            (addr as usize) < self.num_controllers,
            "{addr} is not a controller"
        );
        let mut config = NodeConfig::new(addr).with_pipeline_headroom(self.pipeline_headroom);
        for &n in self.mesh_neighbors(addr) {
            config = config.with_neighbor(n, self.neighbor_latency);
        }
        for ancestor in self.ancestors(addr) {
            config = config.with_router(ancestor, self.router_latency);
        }
        config
    }

    /// Node configurations for every controller.
    pub fn all_node_configs(&self) -> BTreeMap<NodeAddr, NodeConfig> {
        (0..self.num_controllers as u16)
            .map(|addr| (addr, self.node_config(addr)))
            .collect()
    }

    /// **Spec surgery**: removes the bottom router level — every router
    /// whose children are all controllers — reattaching those
    /// controllers directly to the removed routers' parents. The tree
    /// flattens by one level (region syncs save two tree hops at the
    /// price of a fatter upper-level fan-in).
    ///
    /// Child positions are preserved (a removed router's controllers
    /// splice into its slot in the parent's child list), so the
    /// operation is deterministic.
    ///
    /// # Errors
    ///
    /// Returns a message when only the root level exists — dropping it
    /// would leave the BISP region-sync protocol with no coordinator.
    pub fn drop_router_level(&mut self) -> Result<(), String> {
        let bottom: Vec<NodeAddr> = self
            .routers
            .iter()
            .copied()
            .filter(|&r| self.children_of(r).iter().all(|&c| !self.is_router(c)))
            .collect();
        if bottom.len() == self.routers.len() {
            return Err(
                "the router tree has only its root level; there is no level to drop".into(),
            );
        }
        for &router in &bottom {
            let parent = self
                .parent
                .remove(&router)
                .expect("a non-root bottom-level router has a parent");
            let kids = self
                .children
                .remove(&router)
                .expect("bottom-level routers have child lists");
            let siblings = self
                .children
                .get_mut(&parent)
                .expect("parents carry child lists");
            let slot = siblings
                .iter()
                .position(|&c| c == router)
                .expect("a child appears in its parent's list");
            siblings.splice(slot..=slot, kids.iter().copied());
            for kid in kids {
                self.parent.insert(kid, parent);
            }
        }
        self.routers.retain(|r| !bottom.contains(r));
        Ok(())
    }

    /// **Spec surgery**: detaches the subtree rooted at `subtree` (a
    /// controller or a router) from its parent and reattaches it under
    /// `new_parent` — rewiring a whole region of the machine to report
    /// through a different coordinator.
    ///
    /// # Errors
    ///
    /// Returns a message when `new_parent` is not a router, `subtree`
    /// has no parent (it is the root), the move would create a cycle
    /// (`new_parent` lies inside the subtree), or it would leave the
    /// old parent with no children.
    pub fn rewire_subtree(
        &mut self,
        subtree: NodeAddr,
        new_parent: NodeAddr,
    ) -> Result<(), String> {
        if !self.is_router(new_parent) {
            return Err(format!("new parent {new_parent} is not a router"));
        }
        let Some(&old_parent) = self.parent.get(&subtree) else {
            return Err(format!(
                "{subtree} has no parent to detach from (is it the root router?)"
            ));
        };
        if subtree == new_parent || self.ancestors(new_parent).contains(&subtree) {
            return Err(format!(
                "rewiring {subtree} under {new_parent} would create a cycle"
            ));
        }
        if old_parent == new_parent {
            return Ok(());
        }
        if self.children_of(old_parent).len() == 1 {
            return Err(format!(
                "rewiring {subtree} would leave router {old_parent} with no children"
            ));
        }
        let siblings = self
            .children
            .get_mut(&old_parent)
            .expect("parents carry child lists");
        siblings.retain(|&c| c != subtree);
        self.children
            .get_mut(&new_parent)
            .expect("is_router verified new_parent")
            .push(subtree);
        self.parent.insert(subtree, new_parent);
        Ok(())
    }
}

/// The 4-neighbourhood mesh edges of a `width × height` controller
/// grid (the mesh layer is always derivable from the grid dimensions,
/// which keeps serialized topologies compact).
pub(crate) fn grid_mesh(width: usize, height: usize) -> BTreeMap<NodeAddr, Vec<NodeAddr>> {
    let mut mesh: BTreeMap<NodeAddr, Vec<NodeAddr>> = BTreeMap::new();
    for y in 0..height {
        for x in 0..width {
            let addr = (y * width + x) as u16;
            let mut neighbors = Vec::new();
            if x > 0 {
                neighbors.push(addr - 1);
            }
            if x + 1 < width {
                neighbors.push(addr + 1);
            }
            if y > 0 {
                neighbors.push(addr - width as u16);
            }
            if y + 1 < height {
                neighbors.push(addr + width as u16);
            }
            mesh.insert(addr, neighbors);
        }
    }
    mesh
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_chain_mesh_edges() {
        let topo = TopologyBuilder::linear(4).build();
        assert_eq!(topo.mesh_neighbors(0), &[1]);
        assert_eq!(topo.mesh_neighbors(1), &[0, 2]);
        assert_eq!(topo.mesh_neighbors(3), &[2]);
    }

    #[test]
    fn grid_mesh_edges() {
        let topo = TopologyBuilder::grid(3, 2).build();
        // Controller 4 is at (1, 1): neighbours 3, 5, 1.
        let mut n = topo.mesh_neighbors(4).to_vec();
        n.sort_unstable();
        assert_eq!(n, vec![1, 3, 5]);
        assert_eq!(topo.controller_at(1, 1), 4);
        assert_eq!(topo.coords(4), (1, 1));
    }

    #[test]
    fn tree_structure_balanced() {
        let topo = TopologyBuilder::linear(8).router_arity(2).build();
        // 8 leaves → 4 + 2 + 1 routers.
        assert_eq!(topo.num_routers(), 7);
        let root = topo.root_router().unwrap();
        assert_eq!(topo.parent_of(root), None);
        // Every controller reaches the root.
        for c in 0..8 {
            let anc = topo.ancestors(c);
            assert_eq!(*anc.last().unwrap(), root);
            assert_eq!(anc.len(), 3);
        }
        assert_eq!(topo.subtree_controllers(root), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn single_controller_still_has_root() {
        let topo = TopologyBuilder::linear(1).build();
        assert_eq!(topo.num_routers(), 1);
        assert!(topo.root_router().is_some());
    }

    #[test]
    fn region_router_is_lowest_common_ancestor() {
        let topo = TopologyBuilder::linear(8).router_arity(2).build();
        // Controllers 0,1 share their leaf router.
        let r01 = topo.region_router(&[0, 1]).unwrap();
        assert_eq!(topo.children_of(r01), &[0, 1]);
        // 0 and 2 need the next level.
        let r02 = topo.region_router(&[0, 2]).unwrap();
        assert!(topo.subtree_controllers(r02).contains(&0));
        assert!(topo.subtree_controllers(r02).contains(&2));
        assert_ne!(r01, r02);
        // 0 and 7 need the root.
        assert_eq!(topo.region_router(&[0, 7]), topo.root_router());
    }

    #[test]
    fn node_config_links() {
        let topo = TopologyBuilder::linear(4)
            .router_arity(2)
            .neighbor_latency(3)
            .router_latency(9)
            .build();
        let cfg = topo.node_config(1);
        assert_eq!(cfg.link(0).unwrap().latency, 3);
        assert_eq!(cfg.link(2).unwrap().latency, 3);
        for r in topo.ancestors(1) {
            assert_eq!(cfg.link(r).unwrap().latency, 9);
            assert_eq!(cfg.link(r).unwrap().kind, hisq_core::LinkKind::Router);
        }
        assert_eq!(topo.all_node_configs().len(), 4);
    }

    #[test]
    fn latency_lookup() {
        let topo = TopologyBuilder::linear(4).router_arity(2).build();
        assert_eq!(topo.latency(0, 1), Some(5));
        assert_eq!(topo.latency(0, 2), None); // not adjacent
        let parent = topo.parent_of(0).unwrap();
        assert_eq!(topo.latency(0, parent), Some(10));
        assert_eq!(topo.latency(parent, 0), Some(10));
    }

    #[test]
    fn fabric_map_resolves_default_then_override() {
        let mut fabric = FabricMap::uniform(LinkModel::serialized(8));
        fabric.set_edge(0, 1, LinkModel::serialized(64));
        assert_eq!(fabric.resolve(0, 1), LinkModel::serialized(64));
        // The reverse direction and every other edge run the default.
        assert_eq!(fabric.resolve(1, 0), LinkModel::serialized(8));
        assert_eq!(fabric.resolve(2, 3), LinkModel::serialized(8));
        assert!(!fabric.is_uniform());
        assert!(!fabric.is_transparent());
        // Setting an edge back to the default removes the override.
        fabric.set_edge(0, 1, LinkModel::serialized(8));
        assert!(fabric.is_uniform());
    }

    #[test]
    fn transparent_fabric_requires_every_edge_transparent() {
        let mut fabric = FabricMap::default();
        assert!(fabric.is_transparent());
        fabric.set_edge(3, 4, LinkModel::serialized(16));
        assert!(
            !fabric.is_transparent(),
            "one hot edge breaks the fast path"
        );
    }

    #[test]
    fn builder_link_model_for_overrides_one_edge() {
        let topo = TopologyBuilder::linear(4)
            .link_model(LinkModel::serialized(4))
            .link_model_for(1, 2, LinkModel::serialized(32))
            .build();
        // The shim accessor reports the uniform default...
        assert_eq!(topo.link_model(), LinkModel::serialized(4));
        // ...while the fabric map carries the per-edge override.
        assert_eq!(topo.fabric().resolve(1, 2), LinkModel::serialized(32));
        assert_eq!(topo.fabric().resolve(2, 1), LinkModel::serialized(4));
        assert_eq!(topo.fabric().overrides().count(), 1);
    }

    #[test]
    fn addresses_partition_controllers_and_routers() {
        let topo = TopologyBuilder::grid(3, 3).router_arity(3).build();
        assert_eq!(topo.num_controllers(), 9);
        for c in 0..9u16 {
            assert!(!topo.is_router(c));
        }
        for &r in topo.routers() {
            assert!(topo.is_router(r));
        }
    }
}
