//! Property-based verification of the router's max-reduction rounds
//! (Figure 8): repeated synchronizations against the same destination
//! must pair up **FIFO round-by-round** no matter how bookings from
//! different children interleave on the wire, and every completed
//! round's broadcast must carry `max(max(Tᵢ, arrivalᵢ))` over exactly
//! that round's bookings.

use proptest::prelude::*;

use hisq_net::{Router, RouterAction};

/// Expands a pick sequence into an arrival interleaving that preserves
/// each child's own booking order (the per-link FIFO the network
/// guarantees): each pick selects the next child among those with
/// bookings left to deliver.
fn interleaving(num_children: usize, rounds: usize, picks: &[u64]) -> Vec<usize> {
    let mut remaining = vec![rounds; num_children];
    let mut order = Vec::with_capacity(num_children * rounds);
    let mut pick_iter = picks.iter().cycle();
    while order.len() < num_children * rounds {
        let live: Vec<usize> = (0..num_children).filter(|&c| remaining[c] > 0).collect();
        let &pick = pick_iter.next().expect("cycled");
        let child = live[(pick as usize) % live.len()];
        remaining[child] -= 1;
        order.push(child);
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// For any interleaving of per-child booking streams, the router
    /// completes exactly `rounds` rounds, in order, and each round's
    /// broadcast is the max-reduction over that round's bookings with
    /// the arrival floor applied (§4.4).
    #[test]
    fn rounds_pair_fifo_under_any_interleaving(
        num_children in 2usize..5,
        rounds in 1usize..5,
        picks in proptest::collection::vec(0u64..1000, 8..32),
        time_points in proptest::collection::vec(0u64..500, 20..40),
        arrivals in proptest::collection::vec(0u64..500, 20..40),
    ) {
        let children: Vec<u16> = (0..num_children as u16).collect();
        let addr = 100u16;
        let mut router = Router::new(addr, None, children.clone());

        // Per-child FIFO booking streams: child c's round k booking.
        let booking = |c: usize, k: usize| {
            let i = c * rounds + k;
            (
                time_points[i % time_points.len()],
                arrivals[i % arrivals.len()],
            )
        };

        let mut sent = vec![0usize; num_children]; // next round per child
        let mut broadcasts = Vec::new();
        for child in interleaving(num_children, rounds, &picks) {
            let k = sent[child];
            sent[child] += 1;
            let (tp, arr) = booking(child, k);
            let action = router.deliver_book_time(child as u16, addr, tp, arr).unwrap();
            match action {
                Some(RouterAction::Broadcast { t_m, target }) => {
                    // A broadcast always reaches every child: the action
                    // carries no recipient list, the router's children
                    // ARE the recipients.
                    prop_assert_eq!(router.children(), children.as_slice());
                    prop_assert_eq!(target, addr);
                    broadcasts.push(t_m);
                }
                Some(RouterAction::ForwardUp { .. }) => {
                    prop_assert!(false, "destination router must broadcast, not forward");
                }
                None => {}
            }
        }

        prop_assert_eq!(router.rounds_completed(), rounds as u64);
        prop_assert_eq!(broadcasts.len(), rounds);
        // FIFO pairing: round k reduces exactly the k-th booking of
        // every child, regardless of the wire interleaving.
        for (k, &t_m) in broadcasts.iter().enumerate() {
            let expected = (0..num_children)
                .map(|c| {
                    let (tp, arr) = booking(c, k);
                    tp.max(arr)
                })
                .max()
                .unwrap();
            prop_assert_eq!(t_m, expected, "round {} max-reduction", k);
        }
    }

    /// Interleaved bookings for *different* destinations never steal
    /// from each other's sessions: each target's round completes with
    /// its own maximum.
    #[test]
    fn sessions_stay_independent_under_interleaving(
        tp_a in proptest::collection::vec(0u64..500, 2..3),
        tp_b in proptest::collection::vec(0u64..500, 2..3),
        a_first in proptest::arbitrary::any::<bool>(),
    ) {
        let mut router = Router::new(100, Some(200), vec![0, 1]);
        // Child 0 books for both targets in either order; child 1 then
        // completes target 300's round, then target 400's.
        let (arr_300, arr_400) = if a_first { (1, 2) } else { (2, 1) };
        if a_first {
            prop_assert!(router.deliver_book_time(0, 300, tp_a[0], arr_300).unwrap().is_none());
            prop_assert!(router.deliver_book_time(0, 400, tp_b[0], arr_400).unwrap().is_none());
        } else {
            prop_assert!(router.deliver_book_time(0, 400, tp_b[0], arr_400).unwrap().is_none());
            prop_assert!(router.deliver_book_time(0, 300, tp_a[0], arr_300).unwrap().is_none());
        }
        let done_a = router.deliver_book_time(1, 300, tp_a[1], 3).unwrap();
        let done_b = router.deliver_book_time(1, 400, tp_b[1], 4).unwrap();
        let expect = |action: Option<RouterAction>, target: u16, t_m: u64| {
            matches!(
                action,
                Some(RouterAction::ForwardUp { target: t, time_point, .. })
                    if t == target && time_point == t_m
            )
        };
        let max_a = tp_a[0].max(arr_300).max(tp_a[1]).max(3);
        let max_b = tp_b[0].max(arr_400).max(tp_b[1]).max(4);
        prop_assert!(expect(done_a, 300, max_a), "target 300: {done_a:?}");
        prop_assert!(expect(done_b, 400, max_b), "target 400: {done_b:?}");
    }
}
