//! # hisq-sim — CACTUS-Light: the Distributed-HISQ system simulator
//!
//! A transaction-level, cycle-exact discrete-event simulator for a full
//! Distributed-HISQ deployment (§6.4.1 of the paper): many HISQ
//! controllers, the router tree, the mesh links, a pluggable quantum
//! backend supplying measurement outcomes, and TELF event logging.
//!
//! The crate is split along the engine/model/spec seam:
//!
//! - [`spec`] — the declarative [`SystemSpec`]: a deployment described
//!   as data (nodes, programs, topology, hubs, quantum bindings,
//!   backend choice), validated once by [`SystemSpec::build`] — the
//!   only way to construct a runnable [`System`];
//! - [`nodes`] — the node models (controllers, routers, broadcast
//!   hubs) living in one arena behind a small dispatch enum;
//! - [`engine`] — the arena-indexed discrete-event core: addresses are
//!   interned into dense node ids at build time, so the hot loop (pop
//!   event → dispatch → route) indexes `Vec`s instead of walking
//!   `BTreeMap`s.
//!
//! The engine advances each controller until it blocks on an external
//! input (sync pulse, region max-time, classical message), routes the
//! controller's outgoing messages with calibrated link latencies, and
//! delivers them in global time order. All quantum-event commit times
//! land on the TCU's 4 ns grid, so waveform-level alignment questions
//! (Figure 13) can be answered exactly.
//!
//! Links can also *contend* and *lose* messages: every directed link
//! runs a [`LinkModel`] (declared on the spec or the topology, swept
//! via the harness's system parameters). The default model is
//! transparent — pure `sent_at + latency` delivery, byte-identical to
//! the historical engine — while a contended model serializes
//! packetized messages through per-link capacity slots and applies a
//! deterministic seeded drop-and-retransmit policy to classical
//! payloads, all visible as per-link counters in
//! [`SimReport::link_stats`]. See the link-model section of
//! `docs/ARCHITECTURE.md` for the queue semantics.
//!
//! The quantum substrate can be noisy too: the backend choice is
//! declarative ([`BackendSpec`]), and the noise-aware variants —
//! [`NoisyStabilizerBackend`] (sampled Pauli channels + readout
//! flips) and [`LeakyRandomBackend`] (sticky leakage) — take a
//! [`NoiseModel`] of per-operation error rates. The engine counts
//! committed quantum operations ([`SimReport::quantum_ops`]) next to
//! its exposure ledger, so schedules can be scored analytically in the
//! gate-error-dominated regime
//! ([`NoiseModel::infidelity`]) as well as under pure
//! decoherence. See the noise-models section of
//! `docs/ARCHITECTURE.md` for the seeding/determinism contract.
//!
//! On top of the single-system engine, the [`sweep`] module provides
//! the batch layer: [`SweepGrid`] expands cartesian parameter grids
//! into scenario lists and [`SweepRunner`] executes them on a worker
//! pool, aggregating per-scenario [`SweepRecord`]s into a
//! deterministic, seed-stable JSON [`SweepReport`].
//!
//! ## Modelled idealizations (documented deviations)
//!
//! - **Downlink broadcasts** of the region max-time are delivered with
//!   zero latency by default, matching the paper's §4.4 accounting where
//!   the synchronization overhead of Figure 7 is exactly `L₂ − D₂`.
//!   Disable [`SimConfig::idealize_downlink`] to model real down-hops
//!   (an ablation the paper does not evaluate).
//! - **Measurement outcomes** resolve at result-delivery time, with
//!   gates replayed in commit-cycle order into the quantum backend; the
//!   [`SimReport::causality_warnings`] counter verifies the replay
//!   ordering was sound.
//!
//! # Example
//!
//! ```
//! use hisq_isa::Assembler;
//! use hisq_core::NodeConfig;
//! use hisq_sim::SystemSpec;
//!
//! // Two controllers synchronize once, then pulse simultaneously.
//! let a = Assembler::new().assemble("waiti 40\nsync 1\nwaiti 6\ncw.i.i 0, 1\nstop").unwrap();
//! let b = Assembler::new().assemble("waiti 90\nsync 0\nwaiti 6\ncw.i.i 0, 1\nstop").unwrap();
//!
//! let mut spec = SystemSpec::new();
//! spec.controller(NodeConfig::new(0).with_neighbor(1, 6), a.insts().to_vec());
//! spec.controller(NodeConfig::new(1).with_neighbor(0, 6), b.insts().to_vec());
//! let mut system = spec.build().unwrap();
//! let report = system.run().unwrap();
//!
//! let telf = system.telf();
//! let t0 = telf.commits_of(0)[0].cycle;
//! let t1 = telf.commits_of(1)[0].cycle;
//! assert_eq!(t0, t1, "BISP commits at the same cycle");
//! assert!(report.all_halted);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod backend;
pub mod config;
pub mod engine;
pub mod events;
pub mod json;
pub mod nodes;
pub mod queue;
pub mod spec;
pub mod sweep;
pub mod telf;

pub use backend::{
    FixedBackend, LeakyRandomBackend, NoisyStabilizerBackend, QuantumBackend, RandomBackend,
    StabilizerBackend, StateVectorBackend,
};
pub use config::{LinkReport, SimConfig, SimError, SimReport};
pub use engine::System;
pub use hisq_net::{DropPolicy, FabricMap, LinkModel, RouterError};
pub use hisq_quantum::{NoiseMap, NoiseModel, OpCounts};
pub use nodes::{Hub, MeasBinding, QuantumAction};
pub use queue::{CalendarQueue, EngineQueue, EventQueue, HeapQueue};
pub use spec::{BackendSpec, SystemSpec};
pub use sweep::{Metric, MetricSummary, SweepGrid, SweepRecord, SweepReport, SweepRunner};
pub use telf::{Telf, TelfRecord};
