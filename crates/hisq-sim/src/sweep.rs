//! The parallel sweep engine: batch execution of many independent
//! simulator instances with deterministic aggregation.
//!
//! Paper figures are parameter sweeps — workload × scheme × topology ×
//! seed — and every scenario is an independent simulation, so the batch
//! is embarrassingly parallel. This module provides the three pieces
//! every harness shares:
//!
//! - [`SweepGrid`] — a cartesian-product builder that expands parameter
//!   axes over a base scenario description;
//! - [`SweepRunner`] — a scoped worker pool (hand-rolled over
//!   `std::thread`; the build environment has no crates.io access) that
//!   executes scenarios concurrently while keeping results in input
//!   order;
//! - [`SweepRecord`] / [`SweepReport`] — per-scenario metric bags and
//!   their aggregate statistics, with deterministic JSON rendering.
//!
//! Determinism is load-bearing: records land in the result vector at
//! their scenario's index regardless of which worker ran them, and the
//! aggregate statistics are folded in that fixed order, so a sweep's
//! JSON output is byte-identical whether it ran on one thread or
//! sixteen. The CI determinism guard
//! (`tests/sweep_determinism.rs`) asserts exactly that.
//!
//! # Example
//!
//! ```
//! use hisq_sim::sweep::{SweepGrid, SweepRecord, SweepRunner};
//!
//! // Expand a 2-axis grid (3 seeds × 2 latencies = 6 scenarios)...
//! let scenarios = SweepGrid::new((0u64, 0u64))
//!     .axis([1u64, 2, 3], |s, &seed| s.0 = seed)
//!     .axis([5u64, 10], |s, &lat| s.1 = lat)
//!     .into_points();
//! assert_eq!(scenarios.len(), 6);
//!
//! // ...and run it on two worker threads.
//! let report = SweepRunner::new(2).run(&scenarios, |i, &(seed, lat)| {
//!     SweepRecord::new(format!("s{seed}/l{lat}"))
//!         .with("index", i as u64)
//!         .with("cost", seed * lat)
//! });
//! assert_eq!(report.records().len(), 6);
//! assert_eq!(report.summary()["cost"].max, 30.0);
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One measured value of a sweep record.
///
/// Metrics are deliberately flat: a record is a bag of named scalars
/// (plus occasional string artifacts such as generated listings) so
/// that aggregation and JSON rendering need no schema.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// An exact counter (cycles, instructions, events).
    U64(u64),
    /// A continuous measurement (infidelity, ratios).
    F64(f64),
    /// A pass/fail flag (aggregated as 0/1).
    Bool(bool),
    /// A textual artifact (excluded from numeric aggregation).
    Str(String),
}

impl Metric {
    /// The metric as a float for aggregation (`true` = 1.0; strings
    /// are non-numeric and return `None`).
    pub fn numeric(&self) -> Option<f64> {
        match *self {
            Metric::U64(v) => Some(v as f64),
            Metric::F64(v) => Some(v),
            Metric::Bool(v) => Some(if v { 1.0 } else { 0.0 }),
            Metric::Str(_) => None,
        }
    }

    /// Renders the metric as a JSON value.
    fn write_json(&self, out: &mut String) {
        match self {
            Metric::U64(v) => out.push_str(&v.to_string()),
            Metric::F64(v) => out.push_str(&json_f64(*v)),
            Metric::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Metric::Str(v) => out.push_str(&json_string(v)),
        }
    }
}

impl From<u64> for Metric {
    fn from(v: u64) -> Metric {
        Metric::U64(v)
    }
}

impl From<f64> for Metric {
    fn from(v: f64) -> Metric {
        Metric::F64(v)
    }
}

impl From<bool> for Metric {
    fn from(v: bool) -> Metric {
        Metric::Bool(v)
    }
}

impl From<String> for Metric {
    fn from(v: String) -> Metric {
        Metric::Str(v)
    }
}

impl From<&str> for Metric {
    fn from(v: &str) -> Metric {
        Metric::Str(v.to_string())
    }
}

/// Formats an `f64` as a JSON number (shortest round-trip form; JSON
/// has no NaN/infinity, so non-finite values render as `null`).
fn json_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".into();
    }
    let s = format!("{v:?}");
    // `{:?}` may print integral floats as `1.0`; that is already valid
    // JSON, keep it (it also preserves the f64/u64 distinction).
    s
}

/// Escapes a string into a JSON string literal (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The measured outcome of one executed scenario: a stable identifier
/// plus a flat, name-ordered bag of metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRecord {
    /// Stable scenario identifier (used for pairing and JSON output).
    pub id: String,
    /// Named metrics, ordered by name (BTreeMap ⇒ deterministic JSON).
    pub metrics: BTreeMap<String, Metric>,
}

impl SweepRecord {
    /// Creates an empty record for scenario `id`.
    pub fn new(id: impl Into<String>) -> SweepRecord {
        SweepRecord {
            id: id.into(),
            metrics: BTreeMap::new(),
        }
    }

    /// Adds a metric (builder style).
    #[must_use]
    pub fn with(mut self, name: impl Into<String>, value: impl Into<Metric>) -> SweepRecord {
        self.metrics.insert(name.into(), value.into());
        self
    }

    /// Inserts or replaces a metric.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<Metric>) {
        self.metrics.insert(name.into(), value.into());
    }

    /// Looks up a metric by name.
    pub fn metric(&self, name: &str) -> Option<&Metric> {
        self.metrics.get(name)
    }

    /// Looks up an exact counter metric.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name) {
            Some(&Metric::U64(v)) => Some(v),
            _ => None,
        }
    }

    /// Looks up a metric as a float (counters and flags convert;
    /// string metrics return `None`).
    pub fn value(&self, name: &str) -> Option<f64> {
        self.metrics.get(name).and_then(Metric::numeric)
    }

    /// Renders the record as one JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"id\":");
        out.push_str(&json_string(&self.id));
        out.push_str(",\"metrics\":{");
        for (i, (name, metric)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(name));
            out.push(':');
            metric.write_json(&mut out);
        }
        out.push_str("}}");
        out
    }
}

/// Aggregate statistics of one metric across every record that
/// reported it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricSummary {
    /// Number of records carrying the metric.
    pub count: u64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Sum over all records (folded in record order).
    pub sum: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl MetricSummary {
    fn fold(values: impl IntoIterator<Item = f64>) -> Option<MetricSummary> {
        let mut count = 0u64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0f64;
        for v in values {
            count += 1;
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        if count == 0 {
            return None;
        }
        Some(MetricSummary {
            count,
            min,
            max,
            sum,
            mean: sum / count as f64,
        })
    }

    fn write_json(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"count\":{},\"min\":{},\"max\":{},\"sum\":{},\"mean\":{}}}",
            self.count,
            json_f64(self.min),
            json_f64(self.max),
            json_f64(self.sum),
            json_f64(self.mean),
        ));
    }
}

/// The aggregated result of one sweep: every per-scenario record, in
/// scenario order, plus per-metric summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    records: Vec<SweepRecord>,
}

impl SweepReport {
    /// Wraps executed records (already in scenario order).
    pub fn from_records(records: Vec<SweepRecord>) -> SweepReport {
        SweepReport { records }
    }

    /// The per-scenario records, in the order their scenarios were
    /// submitted (independent of execution interleaving).
    pub fn records(&self) -> &[SweepRecord] {
        &self.records
    }

    /// Finds a record by scenario id.
    pub fn record(&self, id: &str) -> Option<&SweepRecord> {
        self.records.iter().find(|r| r.id == id)
    }

    /// Aggregates every metric appearing in any record. Values are
    /// folded in record order, so the statistics (including float
    /// rounding) are reproducible run to run.
    pub fn summary(&self) -> BTreeMap<String, MetricSummary> {
        let names: std::collections::BTreeSet<&String> =
            self.records.iter().flat_map(|r| r.metrics.keys()).collect();
        let mut out = BTreeMap::new();
        for name in names {
            let values = self
                .records
                .iter()
                .filter_map(|r| r.metrics.get(name))
                .filter_map(Metric::numeric);
            if let Some(summary) = MetricSummary::fold(values) {
                out.insert(name.clone(), summary);
            }
        }
        out
    }

    /// Renders the whole report as one deterministic JSON document:
    /// scenario count, per-scenario records, per-metric summaries.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{{\"scenarios\":{},", self.records.len()));
        out.push_str("\"records\":[");
        for (i, record) in self.records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&record.to_json());
        }
        out.push_str("],\"summary\":{");
        for (i, (name, summary)) in self.summary().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(name));
            out.push(':');
            summary.write_json(&mut out);
        }
        out.push_str("}}");
        out
    }
}

impl fmt::Display for SweepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

/// Cartesian-product expansion of parameter axes over a base scenario.
///
/// Each [`SweepGrid::axis`] call multiplies the current point set by
/// the axis values, applying a setter to each clone. An empty axis
/// therefore empties the grid (the cartesian product with ∅), and a
/// single-valued axis leaves the point count unchanged.
///
/// # Example
///
/// ```
/// use hisq_sim::sweep::SweepGrid;
///
/// #[derive(Clone)]
/// struct Scenario { workload: &'static str, seed: u64 }
///
/// let points = SweepGrid::new(Scenario { workload: "", seed: 0 })
///     .axis(["adder", "qft", "w_state"], |s, &w| s.workload = w)
///     .axis([1u64, 2], |s, &seed| s.seed = seed)
///     .into_points();
///
/// assert_eq!(points.len(), 6);
/// // Later axes vary fastest: the order is deterministic.
/// assert_eq!(points[0].workload, "adder");
/// assert_eq!(points[1].seed, 2);
/// ```
#[derive(Debug, Clone)]
pub struct SweepGrid<T> {
    points: Vec<T>,
}

impl<T: Clone> SweepGrid<T> {
    /// A grid holding the single base point.
    pub fn new(base: T) -> SweepGrid<T> {
        SweepGrid { points: vec![base] }
    }

    /// A grid over explicit pre-built points.
    pub fn from_points(points: Vec<T>) -> SweepGrid<T> {
        SweepGrid { points }
    }

    /// Multiplies the grid by one parameter axis: every current point
    /// is cloned once per axis value, with `apply` installing the
    /// value on the clone.
    #[must_use]
    pub fn axis<A>(self, values: impl IntoIterator<Item = A>, apply: impl Fn(&mut T, &A)) -> Self {
        let values: Vec<A> = values.into_iter().collect();
        let mut points = Vec::with_capacity(self.points.len() * values.len());
        for point in &self.points {
            for value in &values {
                let mut next = point.clone();
                apply(&mut next, value);
                points.push(next);
            }
        }
        SweepGrid { points }
    }

    /// The expanded scenario points, in axis-major order.
    pub fn points(&self) -> &[T] {
        &self.points
    }

    /// Consumes the grid into its points.
    pub fn into_points(self) -> Vec<T> {
        self.points
    }

    /// Number of expanded points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when an empty axis annihilated the grid.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// A scoped worker pool executing scenarios in parallel.
///
/// Workers pull scenario indices from a shared cursor and write each
/// finished [`SweepRecord`] into the result slot of its scenario, so
/// the report order — and hence the JSON output — is independent of
/// scheduling. With `threads == 1` the sweep runs inline on the caller
/// thread (no spawn overhead, identical results).
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    threads: usize,
}

impl SweepRunner {
    /// A runner over `threads` workers (clamped to at least one).
    pub fn new(threads: usize) -> SweepRunner {
        SweepRunner {
            threads: threads.max(1),
        }
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes `run` for every scenario and aggregates the records
    /// into a [`SweepReport`] in scenario order.
    ///
    /// `run` receives the scenario's index and the scenario itself; it
    /// must be pure up to its own seeding for the determinism guarantee
    /// to hold.
    pub fn run<S, F>(&self, scenarios: &[S], run: F) -> SweepReport
    where
        S: Sync,
        F: Fn(usize, &S) -> SweepRecord + Sync,
    {
        SweepReport::from_records(self.map(scenarios, run))
    }

    /// Executes `run` for every item and returns the results in input
    /// order — the fallible-friendly core of [`SweepRunner::run`]
    /// (map to `Result`s and fold afterwards; the first error in
    /// *input* order is deterministic regardless of scheduling).
    pub fn map<S, R, F>(&self, items: &[S], run: F) -> Vec<R>
    where
        S: Sync,
        R: Send,
        F: Fn(usize, &S) -> R + Sync,
    {
        if self.threads == 1 || items.len() <= 1 {
            return items.iter().enumerate().map(|(i, s)| run(i, s)).collect();
        }

        let cursor = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<R>>> = {
            let mut v = Vec::with_capacity(items.len());
            v.resize_with(items.len(), || None);
            Mutex::new(v)
        };
        let workers = self.threads.min(items.len());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut batch: Vec<(usize, R)> = Vec::new();
                    loop {
                        // Chunked self-scheduling: claim a contiguous
                        // run of indices per fetch instead of one, so
                        // the cursor is touched O(threads · log n)
                        // times rather than once per scenario. The
                        // chunk shrinks as the sweep drains (quarter
                        // of a fair share of what's left), which keeps
                        // the tail balanced when scenario costs are
                        // uneven.
                        let claim_base = cursor.load(Ordering::Relaxed);
                        let remaining = items.len().saturating_sub(claim_base);
                        let chunk = (remaining / (workers * 4)).max(1);
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= items.len() {
                            break;
                        }
                        let end = (start + chunk).min(items.len());
                        batch.clear();
                        batch.extend((start..end).map(|i| (i, run(i, &items[i]))));
                        // One lock round per chunk; every record still
                        // lands at its scenario's own index, so result
                        // order is input order regardless of which
                        // worker claimed which chunk.
                        let mut slots = slots.lock().expect("result lock");
                        for (index, result) in batch.drain(..) {
                            slots[index] = Some(result);
                        }
                    }
                });
            }
        });
        slots
            .into_inner()
            .expect("workers joined")
            .into_iter()
            .map(|slot| slot.expect("every index executed"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_expands_cartesian_product_in_axis_major_order() {
        let points = SweepGrid::new((0u32, 0u32))
            .axis([1u32, 2], |p, &a| p.0 = a)
            .axis([10u32, 20, 30], |p, &b| p.1 = b)
            .into_points();
        assert_eq!(
            points,
            vec![(1, 10), (1, 20), (1, 30), (2, 10), (2, 20), (2, 30)]
        );
    }

    #[test]
    fn empty_axis_annihilates_the_grid() {
        let grid = SweepGrid::new(0u32).axis(Vec::<u32>::new(), |p, &v| *p = v);
        assert!(grid.is_empty());
        assert_eq!(grid.len(), 0);
        // Further axes keep it empty rather than resurrecting points.
        let grid = grid.axis([1u32, 2, 3], |p, &v| *p = v);
        assert!(grid.is_empty());
    }

    #[test]
    fn single_point_axis_keeps_the_count() {
        let grid = SweepGrid::new((0u32, 0u32))
            .axis([7u32], |p, &v| p.0 = v)
            .axis([9u32], |p, &v| p.1 = v);
        assert_eq!(grid.points(), &[(7, 9)]);
    }

    #[test]
    fn runner_is_deterministic_across_thread_counts() {
        let scenarios: Vec<u64> = (0..64).collect();
        let run = |i: usize, s: &u64| {
            // Uneven work so threads genuinely interleave.
            let mut acc = *s;
            for _ in 0..(*s % 7) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            SweepRecord::new(format!("s{s}"))
                .with("index", i as u64)
                .with("acc", acc)
                .with("ratio", (*s as f64) / 64.0)
        };
        let single = SweepRunner::new(1).run(&scenarios, run);
        for threads in [2, 4, 8] {
            let multi = SweepRunner::new(threads).run(&scenarios, run);
            assert_eq!(single.to_json(), multi.to_json(), "threads = {threads}");
        }
    }

    #[test]
    fn chunked_claiming_lands_records_in_input_order() {
        // Sizes chosen to exercise the chunk-size ramp: large enough
        // that early fetches claim multi-index chunks, awkward enough
        // (odd count, more than threads·4 items) that the final chunks
        // shrink to single indices and the last claim is partial.
        for (len, threads) in [(1usize, 4usize), (7, 2), (97, 3), (256, 8)] {
            let items: Vec<usize> = (0..len).collect();
            let results = SweepRunner::new(threads).map(&items, |i, &s| {
                assert_eq!(i, s, "worker received the wrong scenario");
                // Uneven work so chunks finish out of claim order.
                let mut acc = s as u64;
                for _ in 0..(s % 5) * 400 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                (i, acc)
            });
            assert_eq!(results.len(), len, "len={len} threads={threads}");
            for (slot, (index, _)) in results.iter().enumerate() {
                assert_eq!(slot, *index, "len={len} threads={threads}");
            }
        }
    }

    #[test]
    fn report_summary_aggregates_in_record_order() {
        let report = SweepReport::from_records(vec![
            SweepRecord::new("a").with("x", 2u64).with("ok", true),
            SweepRecord::new("b").with("x", 4u64).with("ok", false),
            SweepRecord::new("c").with("x", 6u64),
        ]);
        let summary = report.summary();
        let x = summary["x"];
        assert_eq!(
            (x.count, x.min, x.max, x.sum, x.mean),
            (3, 2.0, 6.0, 12.0, 4.0)
        );
        let ok = summary["ok"];
        assert_eq!((ok.count, ok.sum), (2, 1.0));
        assert!(report.record("b").is_some());
        assert!(report.record("zz").is_none());
    }

    #[test]
    fn json_output_is_escaped_and_stable() {
        let report = SweepReport::from_records(vec![SweepRecord::new("a\"b\\c\nd")
            .with("half", 0.5)
            .with("flag", true)
            .with("n", 3u64)]);
        assert_eq!(
            report.to_json(),
            "{\"scenarios\":1,\"records\":[{\"id\":\"a\\\"b\\\\c\\nd\",\"metrics\":\
             {\"flag\":true,\"half\":0.5,\"n\":3}}],\"summary\":{\
             \"flag\":{\"count\":1,\"min\":1.0,\"max\":1.0,\"sum\":1.0,\"mean\":1.0},\
             \"half\":{\"count\":1,\"min\":0.5,\"max\":0.5,\"sum\":0.5,\"mean\":0.5},\
             \"n\":{\"count\":1,\"min\":3.0,\"max\":3.0,\"sum\":3.0,\"mean\":3.0}}}"
        );
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        let record = SweepRecord::new("x").with("bad", f64::NAN);
        assert_eq!(
            record.to_json(),
            "{\"id\":\"x\",\"metrics\":{\"bad\":null}}"
        );
    }

    #[test]
    fn string_metrics_render_but_do_not_aggregate() {
        let report = SweepReport::from_records(vec![SweepRecord::new("x")
            .with("listing", "sync 1\nstop")
            .with("n", 2u64)]);
        assert!(report.to_json().contains("\"listing\":\"sync 1\\nstop\""));
        let summary = report.summary();
        assert!(summary.contains_key("n"));
        assert!(!summary.contains_key("listing"), "strings are not numeric");
        assert_eq!(report.records()[0].value("listing"), None);
    }
}
