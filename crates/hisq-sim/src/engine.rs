//! The arena-indexed discrete-event engine.
//!
//! The engine owns one arena of `SimNode`s (see [`crate::nodes`]).
//! Every [`NodeAddr`] is
//! interned into a dense `NodeId` when the system is built (see
//! [`crate::spec`]), so the hot loop — pop event, dispatch to node,
//! route its messages — is indexed `Vec` access end to end: no
//! `BTreeMap` walk happens per event. Events carry the *id* of their
//! destination; addresses only appear at the boundary (controller
//! programs name addresses, and unknown destinations are dropped at
//! routing time, surfacing as a deadlocked sender in the report).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::mem;

use hisq_core::{BlockReason, NodeAddr, Status, MEAS_FIFO_ADDR};
use hisq_isa::CYCLE_NS;
use hisq_net::{FabricMap, LinkModel, Payload, RouterAction, Topology};
use hisq_quantum::{ExposureLedger, OpCounts};

use crate::backend::QuantumBackend;
use crate::config::{LinkReport, SimConfig, SimError, SimReport};
use crate::events::{EventKind, LinkQueue, QubitList, ReplayAction};
use crate::nodes::{NodeId, QuantumAction, SimNode};
use crate::queue::{CalendarQueue, EngineQueue, EventQueue, HeapQueue};
use crate::spec::Arena;
use crate::telf::Telf;

/// Hot-loop buffers a [`System`] reuses across its lifetime and — via
/// the per-thread pool below — across *systems* on the same thread, so
/// a [`SweepRunner`](crate::sweep::SweepRunner) worker builds and runs
/// thousands of scenarios without re-growing the calendar rings or the
/// step/commit scratch vectors each time.
#[derive(Default)]
pub(crate) struct Scratch {
    /// The production event queue (pre-sized ring buckets + slab).
    events: CalendarQueue<EventKind>,
    /// The gate-replay queue (items index `gate_store`).
    gates: CalendarQueue<usize>,
    /// Controller-step outbox, drained after every step.
    outbox: Vec<hisq_core::OutboundMessage>,
    /// Commit-harvest staging (copied out so the arena borrow ends).
    commits: Vec<hisq_core::CommitRecord>,
    /// Hub broadcast fan-out staging.
    fanout: Vec<NodeId>,
    /// Router broadcast relay staging (child addresses).
    relay: Vec<NodeAddr>,
    /// Backend operations buffered for in-order replay.
    gate_store: Vec<ReplayAction>,
    /// Arena-side vectors, recycled across built systems.
    pub(crate) arena: ArenaBuffers,
}

/// The arena vectors a retired [`System`] hands back through the
/// scratch pool, so [`SystemSpec::build`](crate::SystemSpec::build) on
/// the same thread re-fills already-grown allocations instead of
/// re-growing the address table, node arena, and link tables for every
/// sweep scenario. All vectors come back *cleared* — only capacity is
/// recycled, never contents.
#[derive(Default)]
pub(crate) struct ArenaBuffers {
    /// address → id interning table (`NodeId::MAX` sentinel filled).
    pub(crate) addr_to_id: Vec<NodeId>,
    /// id → address.
    pub(crate) addrs: Vec<NodeAddr>,
    /// The node arena itself (elements are dropped on retire; the
    /// backing allocation is what survives).
    pub(crate) nodes: Vec<SimNode>,
    /// Controller ids in stepping order.
    pub(crate) controller_ids: Vec<NodeId>,
    /// Per-node tree parent.
    pub(crate) tree_parent: Vec<NodeAddr>,
    /// Per-node direct-link fast path.
    pub(crate) node_links: Vec<Vec<(NodeAddr, u64)>>,
}

/// How many retired [`Scratch`] sets a thread keeps. Sweep workers run
/// one system at a time, so one would do; a little slack covers nested
/// or interleaved systems in tests.
const SCRATCH_POOL_CAP: usize = 4;

thread_local! {
    /// Retired scratch sets, reused by the next [`System`] built on
    /// this thread (see [`take_scratch`] / [`Drop`]).
    static SCRATCH_POOL: RefCell<Vec<Scratch>> = const { RefCell::new(Vec::new()) };
}

/// Pops a retired scratch set off this thread's pool (or starts a
/// fresh one). Called at the head of
/// [`SystemSpec::build`](crate::SystemSpec::build) so the arena
/// buffers are available while the spec lowers, then handed whole to
/// [`System::from_parts`].
pub(crate) fn take_scratch() -> Scratch {
    SCRATCH_POOL
        .with(|pool| pool.borrow_mut().pop())
        .unwrap_or_default()
}

/// The full Distributed-HISQ system under simulation, built from a
/// [`SystemSpec`](crate::SystemSpec).
pub struct System {
    config: SimConfig,
    /// The node arena; [`NodeId`]s index into it.
    nodes: Vec<SimNode>,
    /// id → address (TELF attribution, reports).
    addrs: Vec<NodeAddr>,
    /// address → id (sentinel [`NodeId::MAX`] = unregistered). Sized to
    /// the largest registered address.
    addr_to_id: Vec<NodeId>,
    /// Controller ids in ascending address order (the deterministic
    /// stepping order).
    controller_ids: Vec<NodeId>,
    /// Per-node direct-link table for non-controller senders (routers:
    /// parent + children at the tree-edge latency), sorted by address.
    /// Precomputed from the topology so the per-event router relays
    /// skip the topology's map walks; misses fall through to the full
    /// lookup, so the table is purely an equivalent fast path.
    node_links: Vec<Vec<(NodeAddr, u64)>>,
    /// Per-node tree parent (`NodeAddr::MAX` = none / no topology),
    /// the first hop of every controller booking.
    tree_parent: Vec<NodeAddr>,
    topology: Option<Topology>,
    backend: Box<dyn QuantumBackend>,
    /// The contention model a directed link runs unless overridden
    /// (transparent by default: no queue bookkeeping, pure
    /// `sent_at + latency` sends).
    link_default: LinkModel,
    /// Per-edge link-model overrides, resolved to directed arena-id
    /// pairs at build time (overrides naming unregistered addresses are
    /// dropped — they can never carry traffic). Empty for a uniform
    /// fabric, so the hot path is one `is_empty` check.
    edge_models: BTreeMap<(NodeId, NodeId), LinkModel>,
    /// Precomputed [`FabricMap::is_transparent`]: `true` iff every edge
    /// (default and overrides) is transparent, enabling the historical
    /// no-bookkeeping send path.
    fabric_transparent: bool,
    /// Busy-until queues of the contended links, keyed by the directed
    /// `(from, to)` arena-id pair. Empty while the fabric is transparent.
    link_queues: BTreeMap<(NodeId, NodeId), LinkQueue>,

    /// The future-event queue: the production calendar queue, or the
    /// retained heap reference when [`System::use_reference_queue`]
    /// selected the differential oracle.
    queue: EngineQueue<EventKind>,
    /// Gate-replay ordering folded onto the same queue structure;
    /// items index `gate_store`.
    gate_queue: EngineQueue<usize>,
    gate_store: Vec<ReplayAction>,
    /// Reused controller-step outbox (see [`Scratch`]).
    outbox_scratch: Vec<hisq_core::OutboundMessage>,
    /// Reused commit-harvest staging buffer.
    commit_scratch: Vec<hisq_core::CommitRecord>,
    /// Reused hub fan-out staging buffer.
    fanout_scratch: Vec<NodeId>,
    /// Reused router broadcast relay buffer.
    relay_scratch: Vec<NodeAddr>,
    /// `(cycle, fingerprint)` pop trace, recorded when enabled.
    trace: Option<Vec<(u64, u64)>>,
    applied_through: u64,
    causality_warnings: u64,
    routing_warnings: u64,
    exposure: ExposureLedger,
    /// Committed quantum operations, counted where exposure is recorded
    /// (the denominators of the analytic gate-error scoring).
    quantum_ops: OpCounts,
    /// Per-qubit operation counts, grown on demand. Unlike the global
    /// counts, `gates_2q` here counts **operand occurrences** (a CX
    /// bumps both operands), which is what the per-qubit
    /// [`NoiseMap`](hisq_quantum::NoiseMap) scoring charges.
    ops_by_qubit: Vec<OpCounts>,
    events_processed: u64,
}

impl fmt::Debug for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("System")
            .field("nodes", &self.nodes.len())
            .field("controllers", &self.controller_ids.len())
            .field("events_processed", &self.events_processed)
            .finish_non_exhaustive()
    }
}

impl System {
    /// Assembles a validated system (the tail of
    /// [`SystemSpec::build`](crate::SystemSpec::build)).
    pub(crate) fn from_parts(
        config: SimConfig,
        arena: Arena,
        controller_ids: Vec<NodeId>,
        topology: Option<Topology>,
        backend: Box<dyn QuantumBackend>,
        fabric: FabricMap,
        mut scratch: Scratch,
    ) -> System {
        let fabric_transparent = fabric.is_transparent();
        let link_default = fabric.default_model();
        let mut edge_models = BTreeMap::new();
        for (from, to, model) in fabric.overrides() {
            let resolve = |addr: NodeAddr| {
                arena
                    .addr_to_id
                    .get(addr as usize)
                    .copied()
                    .filter(|&id| id != NodeId::MAX)
            };
            if let (Some(from_id), Some(to_id)) = (resolve(from), resolve(to)) {
                edge_models.insert((from_id, to_id), model);
            }
        }
        let mut tree_parent = mem::take(&mut scratch.arena.tree_parent);
        debug_assert!(tree_parent.is_empty());
        match &topology {
            Some(topo) => tree_parent.extend(
                arena
                    .addrs
                    .iter()
                    .map(|&addr| topo.parent_of(addr).unwrap_or(NodeAddr::MAX)),
            ),
            None => tree_parent.resize(arena.addrs.len(), NodeAddr::MAX),
        }
        let mut node_links = mem::take(&mut scratch.arena.node_links);
        debug_assert!(node_links.is_empty());
        node_links.extend(arena.nodes.iter().map(|node| match (node, &topology) {
            (SimNode::Router(router), Some(topo)) => {
                let mut links: Vec<(NodeAddr, u64)> = router
                    .children()
                    .iter()
                    .chain(router.parent().as_ref())
                    .map(|&addr| (addr, topo.router_latency()))
                    .collect();
                links.sort_unstable_by_key(|&(addr, _)| addr);
                links
            }
            _ => Vec::new(),
        }));
        System {
            config,
            nodes: arena.nodes,
            addrs: arena.addrs,
            addr_to_id: arena.addr_to_id,
            controller_ids,
            node_links,
            tree_parent,
            topology,
            backend,
            link_default,
            edge_models,
            fabric_transparent,
            link_queues: BTreeMap::new(),
            queue: EngineQueue::Calendar(scratch.events),
            gate_queue: EngineQueue::Calendar(scratch.gates),
            gate_store: scratch.gate_store,
            outbox_scratch: scratch.outbox,
            commit_scratch: scratch.commits,
            fanout_scratch: scratch.fanout,
            relay_scratch: scratch.relay,
            trace: None,
            applied_through: 0,
            causality_warnings: 0,
            routing_warnings: 0,
            exposure: ExposureLedger::new(),
            quantum_ops: OpCounts::default(),
            ops_by_qubit: Vec::new(),
            events_processed: 0,
        }
    }

    /// Resolves an address to its arena id, if registered.
    fn resolve(&self, addr: NodeAddr) -> Option<NodeId> {
        self.addr_to_id
            .get(addr as usize)
            .copied()
            .filter(|&id| id != NodeId::MAX)
    }

    /// Replaces the quantum backend (overriding the spec's
    /// [`BackendSpec`](crate::BackendSpec); useful for scripted or
    /// pre-configured backend instances).
    pub fn set_backend(&mut self, backend: impl QuantumBackend + 'static) {
        self.backend = Box::new(backend);
    }

    /// Immutable access to a controller (assertions, TELF, registers).
    pub fn controller(&self, addr: NodeAddr) -> Option<&hisq_core::Controller> {
        let id = self.resolve(addr)?;
        self.nodes[id as usize].as_controller().map(|n| &n.ctrl)
    }

    /// Mutable access to a controller (e.g. preloading registers).
    pub fn controller_mut(&mut self, addr: NodeAddr) -> Option<&mut hisq_core::Controller> {
        let id = self.resolve(addr)?;
        self.nodes[id as usize]
            .as_controller_mut()
            .map(|n| &mut n.ctrl)
    }

    /// The aggregated TELF trace of all controllers.
    pub fn telf(&self) -> Telf {
        Telf::from_commits(self.controller_ids.iter().map(|&id| {
            let node = self.nodes[id as usize]
                .as_controller()
                .expect("controller ids index controllers");
            (self.addrs[id as usize], node.ctrl.commits())
        }))
    }

    /// Per-qubit exposure accounting (drives the Figure 16 fidelity
    /// model).
    pub fn exposure(&self) -> &ExposureLedger {
        &self.exposure
    }

    /// Committed quantum-operation counts (drives the gate-error
    /// scoring of [`hisq_quantum::NoiseModel`]).
    pub fn quantum_ops(&self) -> OpCounts {
        self.quantum_ops
    }

    /// Per-qubit committed operation counts, indexed by qubit (qubits
    /// past the highest one touched are absent). Unlike
    /// [`System::quantum_ops`], the `gates_2q` field counts **operand
    /// occurrences** — a two-qubit gate bumps both operands, so the sum
    /// over qubits is twice the global gate count — matching what
    /// [`hisq_quantum::NoiseMap`] scoring charges per qubit.
    pub fn quantum_ops_by_qubit(&self) -> &[OpCounts] {
        &self.ops_by_qubit
    }

    /// The per-qubit counter for `qubit`, grown on demand.
    fn qubit_ops_mut(&mut self, qubit: usize) -> &mut OpCounts {
        if self.ops_by_qubit.len() <= qubit {
            self.ops_by_qubit.resize(qubit + 1, OpCounts::default());
        }
        &mut self.ops_by_qubit[qubit]
    }

    /// Read-only access to the quantum backend.
    pub fn backend(&self) -> &dyn QuantumBackend {
        self.backend.as_ref()
    }

    /// Mutable access to the quantum backend.
    pub fn backend_mut(&mut self) -> &mut dyn QuantumBackend {
        self.backend.as_mut()
    }

    /// Swaps both event queues for the retained `BinaryHeap` reference
    /// implementation — the differential-oracle half of a wheel-vs-heap
    /// comparison run. Call before [`System::run`]; events already
    /// queued would be dropped.
    pub fn use_reference_queue(&mut self) {
        debug_assert!(self.queue.is_empty() && self.gate_queue.is_empty());
        self.queue = EngineQueue::Reference(HeapQueue::new());
        self.gate_queue = EngineQueue::Reference(HeapQueue::new());
    }

    /// Starts recording the pop order of the main event queue as a
    /// `(cycle, fingerprint)` sequence (see [`System::event_trace`]).
    /// Call before [`System::run`].
    pub fn record_event_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// The recorded pop trace: one `(cycle, fingerprint)` entry per
    /// processed event, in pop order. Two runs processed the same
    /// events in the same order iff their traces are equal. Empty
    /// unless [`System::record_event_trace`] was called before the run.
    pub fn event_trace(&self) -> &[(u64, u64)] {
        self.trace.as_deref().unwrap_or(&[])
    }

    fn push_event(&mut self, at: u64, kind: EventKind) {
        self.queue.push(at, kind);
    }

    /// One-way latency from node `from` to address `to`: the sender's
    /// calibrated link if one exists, else a topology-derived latency,
    /// else the configured default.
    ///
    /// The default is legitimate only when no topology is attached
    /// (e.g. the lock-step star, where it models the uplink). With a
    /// topology attached, every well-wired destination is derivable, so
    /// reaching the fallback is a wiring bug: it debug-asserts in debug
    /// builds and is counted as a [`SimReport::routing_warnings`]
    /// warning in release builds.
    fn link_latency(&mut self, from: NodeId, to: NodeAddr) -> u64 {
        match &self.nodes[from as usize] {
            SimNode::Controller(node) => {
                if let Some(latency) = node.link_latency(to) {
                    return latency;
                }
            }
            _ => {
                // Routers resolve their tree edges from the precomputed
                // table; a miss falls through to the full lookup.
                let links = &self.node_links[from as usize];
                if let Ok(i) = links.binary_search_by_key(&to, |&(addr, _)| addr) {
                    return links[i].1;
                }
            }
        }
        let from_addr = self.addrs[from as usize];
        if let Some(topo) = &self.topology {
            if let Some(l) = topo.latency(from_addr, to) {
                return l;
            }
            // Unlinked controller pairs: hop-by-hop over the mesh, so
            // Distributed-HISQ's classical latency grows with distance.
            let nc = topo.num_controllers() as u16;
            if from_addr < nc && to < nc {
                return topo.classical_latency(from_addr, to);
            }
            self.routing_warnings += 1;
            debug_assert!(
                false,
                "no route from {from_addr} to unknown destination {to}: \
                 falling back to default_classical_latency masks a wiring bug"
            );
        }
        self.config.default_classical_latency
    }

    /// Sends one payload from node `from` to node `to` over the
    /// dedicated directed link between them, delivering after `latency`
    /// cycles.
    ///
    /// With the transparent default [`LinkModel`] this is exactly the
    /// historical `sent_at + latency` push. Under a contended model,
    /// packetized payloads (everything but the dedicated-wire
    /// [`Payload::SyncPulse`]) first serialize through the link's
    /// capacity slots, and classical payloads are additionally subject
    /// to the deterministic drop-and-retransmit policy.
    fn send(&mut self, from: NodeId, to: NodeId, payload: Payload, sent_at: u64, latency: u64) {
        self.send_via((from, to), from, to, payload, sent_at, latency);
    }

    /// [`System::send`] through an explicit serialization queue.
    ///
    /// Dedicated links use their own `(from, to)` queue; the hub's
    /// star fan-out instead shares the `(hub, hub)` egress queue across
    /// every subscriber — the central port is the resource each of the
    /// broadcast's N copies must serialize through, which is what makes
    /// the hub saturate with system size under contention.
    fn send_via(
        &mut self,
        queue_key: (NodeId, NodeId),
        from: NodeId,
        to: NodeId,
        payload: Payload,
        sent_at: u64,
        latency: u64,
    ) {
        if self.fabric_transparent
            || matches!(payload, Payload::SyncPulse)
            || self.edge_model(queue_key).is_transparent()
        {
            let from_addr = self.addrs[from as usize];
            self.push_event(
                sent_at + latency,
                EventKind::Deliver {
                    from: from_addr,
                    to,
                    payload,
                },
            );
            return;
        }
        self.transmit(queue_key, to, payload, sent_at, latency, 1);
    }

    /// The contention model of the directed link behind `key`: its
    /// per-edge override if one exists, else the fabric default. With
    /// no overrides (the uniform fabric) this is one `is_empty` branch.
    fn edge_model(&self, key: (NodeId, NodeId)) -> LinkModel {
        if self.edge_models.is_empty() {
            return self.link_default;
        }
        self.edge_models
            .get(&key)
            .copied()
            .unwrap_or(self.link_default)
    }

    /// One transmission attempt on a contended link: acquire a
    /// serialization slot at `offer`, draw the loss stream, and either
    /// schedule the delivery, schedule a retransmission (as a future
    /// [`EventKind::Resend`], so the slot is *not* reserved during the
    /// ack-wait window and interleaved traffic keeps the wire busy), or
    /// abandon the message once the attempt budget is spent.
    fn transmit(
        &mut self,
        queue_key: (NodeId, NodeId),
        to: NodeId,
        payload: Payload,
        offer: u64,
        latency: u64,
        attempt: u32,
    ) {
        // The sender (and the Deliver `from` address) is the queue's
        // owning endpoint: the dedicated link's sender, or the hub for
        // its shared egress.
        let from_addr = self.addrs[queue_key.0 as usize];
        let to_addr = self.addrs[to as usize];
        let model = self.edge_model(queue_key);
        let hold = model.serialization_ns.div_ceil(CYCLE_NS);
        let droppable = matches!(payload, Payload::Classical { .. });
        let drop_policy = model.drop.filter(|_| droppable);
        let capacity = model.capacity;
        enum Outcome {
            Deliver(u64),
            Resend(u64),
            Abandoned,
        }
        let outcome = {
            let queue = self
                .link_queues
                .entry(queue_key)
                .or_insert_with(|| LinkQueue::new(capacity));
            let start = queue.acquire(offer, hold);
            let done = start + hold;
            let lost = drop_policy.is_some_and(|policy| {
                queue.draw_drop(policy.seed, from_addr, to_addr, policy.loss_ppm)
            });
            match drop_policy {
                Some(policy) if lost => {
                    if attempt >= policy.max_attempts.max(1) {
                        queue.dropped += 1;
                        Outcome::Abandoned
                    } else {
                        queue.retransmits += 1;
                        // The sender detects the loss after an
                        // acknowledgement round trip and re-offers the
                        // message to the link then.
                        Outcome::Resend(done + 2 * latency)
                    }
                }
                _ => Outcome::Deliver(done + latency),
            }
        };
        match outcome {
            Outcome::Deliver(at) => self.push_event(
                at,
                EventKind::Deliver {
                    from: from_addr,
                    to,
                    payload,
                },
            ),
            Outcome::Resend(at) => self.push_event(
                at,
                EventKind::Resend(Box::new(crate::events::ResendEvent {
                    link: queue_key,
                    to,
                    payload,
                    latency,
                    attempt: attempt + 1,
                })),
            ),
            Outcome::Abandoned => {}
        }
    }

    /// Routes one outbound controller message, resolving the
    /// destination address to its arena id. Unknown destinations are
    /// dropped (configuration error surfaces as a deadlocked sender in
    /// the report).
    fn route(&mut self, from: NodeId, message: hisq_core::OutboundMessage) {
        use hisq_core::OutboundMessage;
        match message {
            OutboundMessage::SyncPulse { to, sent_at } => {
                let latency = self.link_latency(from, to);
                let Some(dest) = self.resolve(to) else { return };
                self.send(from, dest, Payload::SyncPulse, sent_at, latency);
            }
            OutboundMessage::BookTime {
                router: target,
                time_point,
                sent_at,
            } => {
                // First hop: the sender's parent in the tree (or the
                // target directly when no topology is attached).
                let hop = match self.tree_parent[from as usize] {
                    NodeAddr::MAX => target,
                    parent => parent,
                };
                let latency = self.link_latency(from, hop);
                let Some(dest) = self.resolve(hop) else {
                    return;
                };
                self.send(
                    from,
                    dest,
                    Payload::BookTime { target, time_point },
                    sent_at,
                    latency,
                );
            }
            OutboundMessage::Classical { to, value, sent_at } => {
                let latency = self.link_latency(from, to);
                let Some(dest) = self.resolve(to) else { return };
                self.send(from, dest, Payload::Classical { value }, sent_at, latency);
            }
        }
    }

    /// Applies buffered gates with commit cycle ≤ `cycle` to the backend.
    fn apply_gates_through(&mut self, cycle: u64) {
        while let Some((commit_cycle, gate_index)) = self.gate_queue.pop_through(cycle) {
            // Disjoint field borrows: the store is read, the backend
            // written — no per-gate clone of the qubit list.
            match &self.gate_store[gate_index] {
                ReplayAction::Gate(gate, qubits) => {
                    self.backend.apply_gate(*gate, qubits.as_slice())
                }
                ReplayAction::Reset(qubit) => self.backend.reset(*qubit),
            }
            self.applied_through = self.applied_through.max(commit_cycle);
        }
    }

    /// Harvests commits a controller produced during its last step:
    /// exposure accounting, gate replay buffering, measurement triggers.
    fn harvest_commits(&mut self, id: NodeId) {
        let mut staged = mem::take(&mut self.commit_scratch);
        staged.clear();
        {
            let node = self.nodes[id as usize]
                .as_controller_mut()
                .expect("harvest targets a controller");
            let commits = node.ctrl.commits();
            if commits.len() == node.watermark {
                // Nothing new since the last harvest — the common case
                // for a step that merely advanced or blocked.
                self.commit_scratch = staged;
                return;
            }
            if node.bindings.is_empty() && node.meas_ports.is_empty() {
                // No codeword is bound to any quantum action, so every
                // new commit would fall through the binding lookup
                // below untouched: advance the watermark and skip the
                // staging copy. (The commits themselves stay on the
                // controller for TELF extraction.)
                node.watermark = commits.len();
                self.commit_scratch = staged;
                return;
            }
            staged.extend_from_slice(&commits[node.watermark..]);
            node.watermark = commits.len();
        }

        // The bound action is copied out compactly (inline qubit list,
        // no `Vec` clone) so the arena borrow ends before the `&mut
        // self` accounting calls.
        enum Bound {
            Gate(hisq_quantum::Gate, QubitList),
            Measure(usize),
            Reset(usize),
            MeasPort { qubit: usize, result_latency: u64 },
            None,
        }
        for &commit in &staged {
            let node = self.nodes[id as usize]
                .as_controller()
                .expect("harvest targets a controller");
            let bound = match node.bindings.get(&(commit.port, commit.codeword)) {
                Some(QuantumAction::Gate { gate, qubits }) => {
                    Bound::Gate(*gate, QubitList::from_slice(qubits))
                }
                Some(QuantumAction::Measure { qubit }) => Bound::Measure(*qubit),
                Some(QuantumAction::Reset { qubit }) => Bound::Reset(*qubit),
                None => match node.meas_ports.get(&commit.port).copied() {
                    Some(binding) => Bound::MeasPort {
                        qubit: binding.qubit,
                        result_latency: binding.result_latency,
                    },
                    None => Bound::None,
                },
            };
            match bound {
                Bound::Gate(gate, qubits) => {
                    let duration = self.config.durations.gate_ns(gate);
                    let single = gate.arity() == 1;
                    for &q in qubits.as_slice() {
                        self.exposure.record_span(
                            q,
                            commit.cycle * CYCLE_NS,
                            commit.cycle * CYCLE_NS + duration,
                        );
                        let per_qubit = self.qubit_ops_mut(q);
                        if single {
                            per_qubit.gates_1q += 1;
                        } else {
                            per_qubit.gates_2q += 1;
                        }
                    }
                    if single {
                        self.quantum_ops.gates_1q += 1;
                    } else {
                        self.quantum_ops.gates_2q += 1;
                    }
                    self.replay(commit.cycle, ReplayAction::Gate(gate, qubits));
                }
                Bound::Measure(qubit) => {
                    let latency = self.config.durations.measurement_ns / CYCLE_NS;
                    self.schedule_measurement(id, qubit, commit.cycle, latency);
                }
                Bound::Reset(qubit) => {
                    let duration = self.config.durations.reset_ns;
                    self.exposure.record_span(
                        qubit,
                        commit.cycle * CYCLE_NS,
                        commit.cycle * CYCLE_NS + duration,
                    );
                    self.quantum_ops.resets += 1;
                    self.qubit_ops_mut(qubit).resets += 1;
                    self.replay(commit.cycle, ReplayAction::Reset(qubit));
                }
                Bound::MeasPort {
                    qubit,
                    result_latency,
                } => {
                    self.schedule_measurement(id, qubit, commit.cycle, result_latency);
                }
                Bound::None => {}
            }
        }
        self.commit_scratch = staged;
    }

    /// Buffers a backend operation for in-order replay; stragglers
    /// behind the replay frontier are applied immediately and counted.
    fn replay(&mut self, cycle: u64, action: ReplayAction) {
        if cycle < self.applied_through {
            self.causality_warnings += 1;
            match action {
                ReplayAction::Gate(gate, qubits) => {
                    self.backend.apply_gate(gate, qubits.as_slice())
                }
                ReplayAction::Reset(qubit) => self.backend.reset(qubit),
            }
            return;
        }
        let gate_index = self.gate_store.len();
        self.gate_store.push(action);
        self.gate_queue.push(cycle, gate_index);
    }

    fn schedule_measurement(
        &mut self,
        node: NodeId,
        qubit: usize,
        trigger_cycle: u64,
        result_latency: u64,
    ) {
        self.exposure.record_span(
            qubit,
            trigger_cycle * CYCLE_NS,
            (trigger_cycle + result_latency) * CYCLE_NS,
        );
        self.quantum_ops.measurements += 1;
        self.qubit_ops_mut(qubit).measurements += 1;
        self.push_event(
            trigger_cycle + result_latency,
            EventKind::MeasResolve {
                node,
                qubit,
                trigger_cycle,
            },
        );
    }

    /// Steps one controller until it blocks or halts, routing its
    /// messages and harvesting its commits.
    fn step_controller(&mut self, id: NodeId) {
        let mut outbox = mem::take(&mut self.outbox_scratch);
        outbox.clear();
        {
            let node = self.nodes[id as usize]
                .as_controller_mut()
                .expect("step targets a controller");
            let _ = node.ctrl.step(&mut outbox);
        }
        self.harvest_commits(id);
        for message in outbox.drain(..) {
            self.route(id, message);
        }
        self.outbox_scratch = outbox;
    }

    fn deliver(
        &mut self,
        from: NodeAddr,
        to: NodeId,
        payload: Payload,
        deliver_at: u64,
    ) -> Result<(), SimError> {
        match &mut self.nodes[to as usize] {
            SimNode::Controller(node) => {
                // The fused `offer_*` delivery completes a matching
                // pending op in place (no inbox round trip) and gates
                // the step: `false` means the input was banked for
                // later — a non-matching delivery, or one to a halted
                // controller — and stepping would be a no-op, so the
                // whole step/harvest/route round trip is skipped.
                let unblocks = match payload {
                    Payload::SyncPulse => node.ctrl.offer_sync_pulse(from, deliver_at),
                    Payload::MaxTime { t_m, target } => node.ctrl.offer_max_time(target, t_m),
                    Payload::Classical { value } => {
                        node.ctrl.offer_classical(from, value, deliver_at)
                    }
                    Payload::BookTime { .. } => {
                        // Controllers never coordinate regions; drop.
                        return Ok(());
                    }
                };
                if unblocks {
                    self.step_controller(to);
                }
            }
            SimNode::Hub(_) => {
                if let Payload::Classical { value } = payload {
                    let mut fanout = mem::take(&mut self.fanout_scratch);
                    fanout.clear();
                    let down_latency = {
                        let SimNode::Hub(hub) = &self.nodes[to as usize] else {
                            unreachable!("matched Hub above")
                        };
                        fanout.extend_from_slice(&hub.subscriber_ids);
                        hub.down_latency
                    };
                    // The hub's downlink fan-out rides the link
                    // machinery through the hub's *shared* egress
                    // queue: the central port emits one copy per
                    // subscriber, so under a contended model each
                    // broadcast serializes N copies back to back — the
                    // saturation the §6.4.3 baseline's constant-latency
                    // star assumption hides.
                    for &subscriber in &fanout {
                        self.send_via(
                            (to, to),
                            to,
                            subscriber,
                            Payload::Classical { value },
                            deliver_at,
                            down_latency,
                        );
                    }
                    self.fanout_scratch = fanout;
                }
            }
            SimNode::Router(router) => {
                // Router actions are Copy and carry no child list, so
                // the arena borrow ends here without any allocation.
                let action = match payload {
                    Payload::BookTime { target, time_point } => {
                        router.deliver_book_time(from, target, time_point, deliver_at)?
                    }
                    Payload::MaxTime { t_m, target } => Some(router.deliver_max_time(t_m, target)),
                    Payload::SyncPulse | Payload::Classical { .. } => None,
                };
                match action {
                    None => {}
                    Some(RouterAction::ForwardUp {
                        parent,
                        target,
                        time_point,
                        sent_at,
                    }) => {
                        let latency = self.link_latency(to, parent);
                        if let Some(dest) = self.resolve(parent) {
                            self.send(
                                to,
                                dest,
                                Payload::BookTime { target, time_point },
                                sent_at,
                                latency,
                            );
                        }
                    }
                    Some(RouterAction::Broadcast { t_m, target }) => {
                        // The recipients are the router's own children;
                        // stage them in the reused relay scratch so the
                        // arena borrow ends before the sends.
                        let mut relay = mem::take(&mut self.relay_scratch);
                        relay.clear();
                        {
                            let SimNode::Router(router) = &self.nodes[to as usize] else {
                                unreachable!("matched Router above")
                            };
                            relay.extend_from_slice(router.children());
                        }
                        for &child in &relay {
                            let payload = Payload::MaxTime { t_m, target };
                            if self.config.idealize_downlink {
                                // The §4.4 idealization bypasses the
                                // wire (and hence any contention).
                                let Some(dest) = self.resolve(child) else {
                                    continue;
                                };
                                let router_addr = self.addrs[to as usize];
                                self.push_event(
                                    deliver_at,
                                    EventKind::Deliver {
                                        from: router_addr,
                                        to: dest,
                                        payload,
                                    },
                                );
                            } else {
                                // Latency first: an unknown child
                                // must still count a routing
                                // warning before being dropped.
                                let latency = self.link_latency(to, child);
                                let Some(dest) = self.resolve(child) else {
                                    continue;
                                };
                                self.send(to, dest, payload, deliver_at, latency);
                            }
                        }
                        self.relay_scratch = relay;
                    }
                }
            }
        }
        Ok(())
    }

    /// Runs the system to quiescence.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventBudgetExceeded`] if the configured event
    /// budget is exhausted (e.g. a program loops forever emitting
    /// messages), or [`SimError::Router`] if a router detects a
    /// routing-invariant violation (e.g. a mis-rooted tree).
    pub fn run(&mut self) -> Result<SimReport, SimError> {
        let ids = self.controller_ids.clone();
        for id in ids {
            self.step_controller(id);
        }
        while let Some((at, kind)) = self.queue.pop() {
            self.events_processed += 1;
            if self.events_processed > self.config.max_events {
                return Err(SimError::EventBudgetExceeded {
                    budget: self.config.max_events,
                });
            }
            if let Some(trace) = &mut self.trace {
                trace.push((at, kind.fingerprint()));
            }
            match kind {
                EventKind::Deliver { from, to, payload } => {
                    self.deliver(from, to, payload, at)?;
                }
                EventKind::Resend(resend) => {
                    self.transmit(
                        resend.link,
                        resend.to,
                        resend.payload,
                        at,
                        resend.latency,
                        resend.attempt,
                    );
                }
                EventKind::MeasResolve {
                    node,
                    qubit,
                    trigger_cycle,
                } => {
                    self.apply_gates_through(trigger_cycle);
                    let outcome = self.backend.measure(qubit);
                    if let Some(ctrl_node) = self.nodes[node as usize].as_controller_mut() {
                        ctrl_node
                            .ctrl
                            .deliver_classical(MEAS_FIFO_ADDR, u32::from(outcome), at);
                    }
                    self.step_controller(node);
                }
            }
        }
        // Flush any trailing gates so post-run backend state is final.
        self.apply_gates_through(u64::MAX);
        Ok(self.report())
    }

    fn report(&self) -> SimReport {
        let mut blocked = Vec::new();
        let mut faulted = Vec::new();
        let mut makespan = 0;
        let mut total_stall = 0;
        let mut total_instructions = 0;
        let mut total_syncs = 0;
        let mut all_stopped = true;
        for &id in &self.controller_ids {
            let addr = self.addrs[id as usize];
            let ctrl = &self.nodes[id as usize]
                .as_controller()
                .expect("controller ids index controllers")
                .ctrl;
            match ctrl.status() {
                Status::Blocked(pending) => {
                    // Re-derive the public reason from the pending op.
                    let reason = match pending {
                        hisq_core::controller::PendingOp::SyncPulse { partner, .. } => {
                            BlockReason::AwaitSyncPulse { partner: *partner }
                        }
                        hisq_core::controller::PendingOp::MaxTime { router, .. } => {
                            BlockReason::AwaitMaxTime { router: *router }
                        }
                        hisq_core::controller::PendingOp::Recv { source, .. } => {
                            BlockReason::AwaitMessage { source: *source }
                        }
                    };
                    blocked.push((addr, reason));
                }
                Status::Faulted(message) => faulted.push((addr, message.clone())),
                Status::Halted | Status::Ready => {}
            }
            all_stopped &= matches!(ctrl.status(), Status::Halted);
            makespan = makespan.max(ctrl.now_wall());
            total_stall += ctrl.total_stall();
            total_instructions += ctrl.stats().executed;
            total_syncs += ctrl.stats().syncs;
        }
        let all_halted = blocked.is_empty() && faulted.is_empty() && all_stopped;
        let mut link_stats: Vec<LinkReport> = self
            .link_queues
            .iter()
            .map(|(&(from, to), queue)| LinkReport {
                from: self.addrs[from as usize],
                to: self.addrs[to as usize],
                messages: queue.messages,
                peak_occupancy: queue.peak_occupancy,
                retransmits: queue.retransmits,
                dropped: queue.dropped,
            })
            .collect();
        // Arena-id order is build-dependent; address order is the
        // stable public contract.
        link_stats.sort_unstable_by_key(|l| (l.from, l.to));
        SimReport {
            all_halted,
            blocked,
            faulted,
            makespan_cycles: makespan,
            makespan_ns: makespan * CYCLE_NS,
            events_processed: self.events_processed,
            causality_warnings: self.causality_warnings,
            routing_warnings: self.routing_warnings,
            total_stall_cycles: total_stall,
            total_instructions,
            total_syncs,
            quantum_ops: self.quantum_ops,
            link_stats,
        }
    }
}

impl Drop for System {
    /// Retires the hot-loop buffers to the per-thread pool so the next
    /// system built on this thread (the common [`SweepRunner`]
    /// worker pattern) starts with pre-grown rings and scratch vectors.
    /// Only the production calendar queues are pooled; a reference-queue
    /// (differential oracle) system just drops its heaps.
    ///
    /// [`SweepRunner`]: crate::sweep::SweepRunner
    fn drop(&mut self) {
        let events = mem::replace(&mut self.queue, EngineQueue::Reference(HeapQueue::new()));
        let gates = mem::replace(
            &mut self.gate_queue,
            EngineQueue::Reference(HeapQueue::new()),
        );
        let (EngineQueue::Calendar(mut events), EngineQueue::Calendar(mut gates)) = (events, gates)
        else {
            return;
        };
        events.clear();
        gates.clear();
        let mut gate_store = mem::take(&mut self.gate_store);
        gate_store.clear();
        let mut outbox = mem::take(&mut self.outbox_scratch);
        outbox.clear();
        let mut commits = mem::take(&mut self.commit_scratch);
        commits.clear();
        let mut fanout = mem::take(&mut self.fanout_scratch);
        fanout.clear();
        let mut relay = mem::take(&mut self.relay_scratch);
        relay.clear();
        let mut arena = ArenaBuffers {
            addr_to_id: mem::take(&mut self.addr_to_id),
            addrs: mem::take(&mut self.addrs),
            nodes: mem::take(&mut self.nodes),
            controller_ids: mem::take(&mut self.controller_ids),
            tree_parent: mem::take(&mut self.tree_parent),
            node_links: mem::take(&mut self.node_links),
        };
        arena.addr_to_id.clear();
        arena.addrs.clear();
        arena.nodes.clear();
        arena.controller_ids.clear();
        arena.tree_parent.clear();
        arena.node_links.clear();
        let scratch = Scratch {
            events,
            gates,
            outbox,
            commits,
            fanout,
            relay,
            gate_store,
            arena,
        };
        SCRATCH_POOL.with(|pool| {
            let mut pool = pool.borrow_mut();
            if pool.len() < SCRATCH_POOL_CAP {
                pool.push(scratch);
            }
        });
    }
}
