//! JSON serialization of the simulator-facing spec types, for the
//! scenario-file surface (`hisq run`).
//!
//! A serialized [`SystemSpec`] is a complete, self-contained
//! description of a deployment — engine configuration, backend choice,
//! every controller with its **encoded** program (u32 instruction
//! words, the exact wire format of `hisq-isa`), routers, hubs,
//! topology, link model, and quantum bindings. `from_json(to_json(s))`
//! reproduces the spec field-for-field; all decoders reject unknown
//! fields with a dotted JSON path.

use hisq_core::{NodeAddr, NodeConfig};
use hisq_isa::Inst;
use hisq_json::{Json, JsonError, ObjReader};
use hisq_net::json::{edge_override_from_json, edge_override_to_json};
use hisq_net::{LinkModel, Router, Topology};
use hisq_quantum::gate::Gate;
use hisq_quantum::noise::NoiseMap;
use hisq_quantum::timing::GateDurations;

use crate::config::SimConfig;
use crate::nodes::{Hub, MeasBinding, QuantumAction};
use crate::spec::{BackendSpec, SystemSpec};

impl SimConfig {
    /// Serializes the engine configuration.
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("idealize_downlink".into(), self.idealize_downlink.into()),
            (
                "default_classical_latency".into(),
                self.default_classical_latency.into(),
            ),
            ("max_events".into(), self.max_events.into()),
            ("durations".into(), self.durations.to_json()),
        ])
    }

    /// Parses a configuration serialized by [`SimConfig::to_json`].
    /// Omitted fields take the [`SimConfig::default`] values.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] at `path` for unknown fields or wrong
    /// types.
    pub fn from_json(value: &Json, path: &str) -> Result<SimConfig, JsonError> {
        let mut obj = ObjReader::new(value, path)?;
        let mut config = SimConfig::default();
        if let Some(v) = obj.optional("idealize_downlink") {
            config.idealize_downlink = v.as_bool(&obj.field_path("idealize_downlink"))?;
        }
        if let Some(v) = obj.optional("default_classical_latency") {
            config.default_classical_latency =
                v.as_u64(&obj.field_path("default_classical_latency"))?;
        }
        if let Some(v) = obj.optional("max_events") {
            config.max_events = v.as_u64(&obj.field_path("max_events"))?;
        }
        if let Some(v) = obj.optional("durations") {
            config.durations = GateDurations::from_json(v, &obj.field_path("durations"))?;
        }
        obj.reject_unknown()?;
        Ok(config)
    }
}

impl BackendSpec {
    /// Serializes the backend choice as a `kind`-tagged object, e.g.
    /// `{"kind":"random","seed":3,"p_one":0.5}`.
    pub fn to_json(&self) -> Json {
        let fields = match self {
            BackendSpec::Random { seed, p_one } => vec![
                ("kind".into(), Json::str("random")),
                ("seed".into(), (*seed).into()),
                ("p_one".into(), Json::float(*p_one)),
            ],
            BackendSpec::Fixed { outcome } => vec![
                ("kind".into(), Json::str("fixed")),
                ("outcome".into(), (*outcome).into()),
            ],
            BackendSpec::Stabilizer { qubits, seed } => vec![
                ("kind".into(), Json::str("stabilizer")),
                ("qubits".into(), (*qubits).into()),
                ("seed".into(), (*seed).into()),
            ],
            BackendSpec::StateVector { qubits, seed } => vec![
                ("kind".into(), Json::str("statevector")),
                ("qubits".into(), (*qubits).into()),
                ("seed".into(), (*seed).into()),
            ],
            BackendSpec::NoisyStabilizer {
                qubits,
                seed,
                noise,
            } => vec![
                ("kind".into(), Json::str("noisy_stabilizer")),
                ("qubits".into(), (*qubits).into()),
                ("seed".into(), (*seed).into()),
                ("noise".into(), noise.to_json()),
            ],
            BackendSpec::Leaky { seed, p_one, noise } => vec![
                ("kind".into(), Json::str("leaky")),
                ("seed".into(), (*seed).into()),
                ("p_one".into(), Json::float(*p_one)),
                ("noise".into(), noise.to_json()),
            ],
        };
        Json::Object(fields)
    }

    /// Parses a backend serialized by [`BackendSpec::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] at `path` for an unknown `kind`,
    /// missing/unknown fields, or wrong types.
    pub fn from_json(value: &Json, path: &str) -> Result<BackendSpec, JsonError> {
        let mut obj = ObjReader::new(value, path)?;
        let kind_path = obj.field_path("kind");
        let kind = obj.required("kind")?.as_str(&kind_path)?.to_owned();
        let spec = match kind.as_str() {
            "random" => BackendSpec::Random {
                seed: obj.required("seed")?.as_u64(&obj.field_path("seed"))?,
                p_one: obj.required("p_one")?.as_f64(&obj.field_path("p_one"))?,
            },
            "fixed" => BackendSpec::Fixed {
                outcome: obj
                    .required("outcome")?
                    .as_bool(&obj.field_path("outcome"))?,
            },
            "stabilizer" => BackendSpec::Stabilizer {
                qubits: obj
                    .required("qubits")?
                    .as_usize(&obj.field_path("qubits"))?,
                seed: obj.required("seed")?.as_u64(&obj.field_path("seed"))?,
            },
            "statevector" => BackendSpec::StateVector {
                qubits: obj
                    .required("qubits")?
                    .as_usize(&obj.field_path("qubits"))?,
                seed: obj.required("seed")?.as_u64(&obj.field_path("seed"))?,
            },
            "noisy_stabilizer" => BackendSpec::NoisyStabilizer {
                qubits: obj
                    .required("qubits")?
                    .as_usize(&obj.field_path("qubits"))?,
                seed: obj.required("seed")?.as_u64(&obj.field_path("seed"))?,
                noise: NoiseMap::from_json(obj.required("noise")?, &obj.field_path("noise"))?,
            },
            "leaky" => BackendSpec::Leaky {
                seed: obj.required("seed")?.as_u64(&obj.field_path("seed"))?,
                p_one: obj.required("p_one")?.as_f64(&obj.field_path("p_one"))?,
                noise: NoiseMap::from_json(obj.required("noise")?, &obj.field_path("noise"))?,
            },
            other => {
                return Err(JsonError::decode(
                    kind_path,
                    format!(
                        "unknown backend kind \"{other}\" (expected \"random\", \"fixed\", \
                         \"stabilizer\", \"statevector\", \"noisy_stabilizer\", or \"leaky\")"
                    ),
                ))
            }
        };
        obj.reject_unknown()?;
        Ok(spec)
    }
}

impl QuantumAction {
    /// Serializes the action as an `action`-tagged object, e.g.
    /// `{"action":"gate","gate":"cx","qubits":[0,1]}`.
    pub fn to_json(&self) -> Json {
        match self {
            QuantumAction::Gate { gate, qubits } => Json::Object(vec![
                ("action".into(), Json::str("gate")),
                ("gate".into(), gate.to_json()),
                (
                    "qubits".into(),
                    Json::Array(qubits.iter().map(|&q| q.into()).collect()),
                ),
            ]),
            QuantumAction::Measure { qubit } => Json::Object(vec![
                ("action".into(), Json::str("measure")),
                ("qubit".into(), (*qubit).into()),
            ]),
            QuantumAction::Reset { qubit } => Json::Object(vec![
                ("action".into(), Json::str("reset")),
                ("qubit".into(), (*qubit).into()),
            ]),
        }
    }

    /// Parses an action serialized by [`QuantumAction::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] at `path` for an unknown `action` tag,
    /// missing/unknown fields, or wrong types.
    pub fn from_json(value: &Json, path: &str) -> Result<QuantumAction, JsonError> {
        let mut obj = ObjReader::new(value, path)?;
        let tag_path = obj.field_path("action");
        let tag = obj.required("action")?.as_str(&tag_path)?.to_owned();
        let action = match tag.as_str() {
            "gate" => {
                let gate = Gate::from_json(obj.required("gate")?, &obj.field_path("gate"))?;
                let qubits_path = obj.field_path("qubits");
                let qubits = obj
                    .required("qubits")?
                    .as_array(&qubits_path)?
                    .iter()
                    .enumerate()
                    .map(|(i, v)| v.as_usize(&format!("{qubits_path}[{i}]")))
                    .collect::<Result<Vec<usize>, JsonError>>()?;
                QuantumAction::Gate { gate, qubits }
            }
            "measure" => QuantumAction::Measure {
                qubit: obj.required("qubit")?.as_usize(&obj.field_path("qubit"))?,
            },
            "reset" => QuantumAction::Reset {
                qubit: obj.required("qubit")?.as_usize(&obj.field_path("qubit"))?,
            },
            other => {
                return Err(JsonError::decode(
                    tag_path,
                    format!(
                        "unknown action \"{other}\" (expected \"gate\", \"measure\", or \"reset\")"
                    ),
                ))
            }
        };
        obj.reject_unknown()?;
        Ok(action)
    }
}

impl MeasBinding {
    /// Serializes the measurement binding.
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("qubit".into(), self.qubit.into()),
            ("result_latency".into(), self.result_latency.into()),
        ])
    }

    /// Parses a binding serialized by [`MeasBinding::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] at `path` for missing/unknown fields or
    /// wrong types.
    pub fn from_json(value: &Json, path: &str) -> Result<MeasBinding, JsonError> {
        let mut obj = ObjReader::new(value, path)?;
        let qubit = obj.required("qubit")?.as_usize(&obj.field_path("qubit"))?;
        let result_latency = obj
            .required("result_latency")?
            .as_u64(&obj.field_path("result_latency"))?;
        obj.reject_unknown()?;
        Ok(MeasBinding {
            qubit,
            result_latency,
        })
    }
}

impl Hub {
    /// Serializes the broadcast hub.
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            (
                "subscribers".into(),
                Json::Array(self.subscribers.iter().map(|&s| s.into()).collect()),
            ),
            ("down_latency".into(), self.down_latency.into()),
        ])
    }

    /// Parses a hub serialized by [`Hub::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] at `path` for missing/unknown fields or
    /// wrong types.
    pub fn from_json(value: &Json, path: &str) -> Result<Hub, JsonError> {
        let mut obj = ObjReader::new(value, path)?;
        let subscribers_path = obj.field_path("subscribers");
        let subscribers = obj
            .required("subscribers")?
            .as_array(&subscribers_path)?
            .iter()
            .enumerate()
            .map(|(i, v)| v.as_u16(&format!("{subscribers_path}[{i}]")))
            .collect::<Result<Vec<NodeAddr>, JsonError>>()?;
        let down_latency = obj
            .required("down_latency")?
            .as_u64(&obj.field_path("down_latency"))?;
        obj.reject_unknown()?;
        Ok(Hub {
            subscribers,
            down_latency,
        })
    }
}

/// Serializes a program as its encoded u32 instruction words (the
/// `hisq-isa` wire format — an exact round-trip, unlike assembly text).
fn program_to_json(program: &[Inst], path: &str) -> Result<Json, JsonError> {
    let words = hisq_isa::encode::encode_all(program)
        .map_err(|e| JsonError::decode(path, format!("unencodable program: {e}")))?;
    Ok(Json::Array(words.into_iter().map(Json::from).collect()))
}

/// Parses a program serialized by [`program_to_json`].
fn program_from_json(value: &Json, path: &str) -> Result<Vec<Inst>, JsonError> {
    let words = value
        .as_array(path)?
        .iter()
        .enumerate()
        .map(|(i, v)| v.as_u32(&format!("{path}[{i}]")))
        .collect::<Result<Vec<u32>, JsonError>>()?;
    hisq_isa::decode::decode_all(&words)
        .map_err(|e| JsonError::decode(path, format!("undecodable program: {e}")))
}

impl SystemSpec {
    /// Serializes the complete deployment description.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] if a controller program contains an
    /// instruction outside the encodable ISA (e.g. an out-of-range
    /// immediate), naming the controller's path.
    pub fn to_json(&self) -> Result<Json, JsonError> {
        let controllers = self
            .controllers
            .iter()
            .enumerate()
            .map(|(i, (config, program))| {
                Ok(Json::Object(vec![
                    ("config".into(), config.to_json()),
                    (
                        "program".into(),
                        program_to_json(program, &format!("spec.controllers[{i}].program"))?,
                    ),
                ]))
            })
            .collect::<Result<Vec<Json>, JsonError>>()?;
        let hubs = self
            .hubs
            .iter()
            .map(|(addr, hub)| {
                let Json::Object(mut fields) = hub.to_json() else {
                    unreachable!("hubs serialize as objects");
                };
                fields.insert(0, ("addr".into(), (*addr).into()));
                Json::Object(fields)
            })
            .collect();
        let bindings = self
            .bindings
            .iter()
            .map(|(node, port, codeword, action)| {
                Json::Object(vec![
                    ("node".into(), (*node).into()),
                    ("port".into(), (*port).into()),
                    ("codeword".into(), (*codeword).into()),
                    ("action".into(), action.to_json()),
                ])
            })
            .collect();
        let meas_ports = self
            .meas_ports
            .iter()
            .map(|(node, port, binding)| {
                let Json::Object(mut fields) = binding.to_json() else {
                    unreachable!("bindings serialize as objects");
                };
                fields.insert(0, ("port".into(), (*port).into()));
                fields.insert(0, ("node".into(), (*node).into()));
                Json::Object(fields)
            })
            .collect();
        let mut fields = vec![
            ("config".into(), self.config.to_json()),
            ("backend".into(), self.backend.to_json()),
            ("controllers".into(), Json::Array(controllers)),
            (
                "routers".into(),
                Json::Array(self.routers.iter().map(Router::to_json).collect()),
            ),
            ("hubs".into(), Json::Array(hubs)),
            (
                "topology".into(),
                match &self.topology {
                    Some(t) => t.to_json(),
                    None => Json::Null,
                },
            ),
            ("link_model".into(), self.fabric.default_model().to_json()),
        ];
        // Per-edge overrides only appear when the fabric is
        // heterogeneous, so uniform specs keep the historical shape.
        if !self.fabric.is_uniform() {
            fields.push((
                "link_overrides".into(),
                Json::Array(
                    self.fabric
                        .overrides()
                        .map(|(from, to, model)| edge_override_to_json(from, to, &model))
                        .collect(),
                ),
            ));
        }
        fields.push(("bindings".into(), Json::Array(bindings)));
        fields.push(("meas_ports".into(), Json::Array(meas_ports)));
        Ok(Json::Object(fields))
    }

    /// Parses a spec serialized by [`SystemSpec::to_json`]. Every
    /// top-level field may be omitted (the [`SystemSpec::new`] empty
    /// defaults apply), so minimal hand-written specs stay short.
    ///
    /// The description is *not* validated here beyond its shape — as
    /// with the builder API, address collisions and dangling binding
    /// targets surface when [`SystemSpec::build`] runs.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] at `path` for unknown fields, wrong
    /// types, or undecodable programs.
    pub fn from_json(value: &Json, path: &str) -> Result<SystemSpec, JsonError> {
        let mut obj = ObjReader::new(value, path)?;
        let mut spec = SystemSpec::new();
        if let Some(v) = obj.optional("config") {
            spec.config = SimConfig::from_json(v, &obj.field_path("config"))?;
        }
        if let Some(v) = obj.optional("backend") {
            spec.backend = BackendSpec::from_json(v, &obj.field_path("backend"))?;
        }
        if let Some(v) = obj.optional("controllers") {
            let list_path = obj.field_path("controllers");
            for (i, entry) in v.as_array(&list_path)?.iter().enumerate() {
                let entry_path = format!("{list_path}[{i}]");
                let mut ctrl = ObjReader::new(entry, &entry_path)?;
                let config =
                    NodeConfig::from_json(ctrl.required("config")?, &ctrl.field_path("config"))?;
                let program =
                    program_from_json(ctrl.required("program")?, &ctrl.field_path("program"))?;
                ctrl.reject_unknown()?;
                spec.controllers.push((config, program));
            }
        }
        if let Some(v) = obj.optional("routers") {
            let list_path = obj.field_path("routers");
            for (i, entry) in v.as_array(&list_path)?.iter().enumerate() {
                spec.routers
                    .push(Router::from_json(entry, &format!("{list_path}[{i}]"))?);
            }
        }
        if let Some(v) = obj.optional("hubs") {
            let list_path = obj.field_path("hubs");
            for (i, entry) in v.as_array(&list_path)?.iter().enumerate() {
                let entry_path = format!("{list_path}[{i}]");
                let mut hub_obj = ObjReader::new(entry, &entry_path)?;
                let addr = hub_obj
                    .required("addr")?
                    .as_u16(&hub_obj.field_path("addr"))?;
                let Json::Object(entries) = entry else {
                    unreachable!("ObjReader verified this is an object");
                };
                let rest: Vec<(String, Json)> = entries
                    .iter()
                    .filter(|(k, _)| k != "addr")
                    .cloned()
                    .collect();
                let hub = Hub::from_json(&Json::Object(rest), &entry_path)?;
                hub_obj.optional("subscribers");
                hub_obj.optional("down_latency");
                hub_obj.reject_unknown()?;
                spec.hubs.push((addr, hub));
            }
        }
        if let Some(v) = obj.optional("topology") {
            if !matches!(v, Json::Null) {
                spec.topology = Some(Topology::from_json(v, &obj.field_path("topology"))?);
            }
        }
        if let Some(v) = obj.optional("link_model") {
            spec.fabric
                .set_default(LinkModel::from_json(v, &obj.field_path("link_model"))?);
        }
        if let Some(v) = obj.optional("link_overrides") {
            let list_path = obj.field_path("link_overrides");
            let mut seen = std::collections::BTreeSet::new();
            for (i, entry) in v.as_array(&list_path)?.iter().enumerate() {
                let entry_path = format!("{list_path}[{i}]");
                let (from, to, model) = edge_override_from_json(entry, &entry_path)?;
                if !seen.insert((from, to)) {
                    return Err(JsonError::decode(
                        entry_path,
                        format!("duplicate override for edge {from} -> {to}"),
                    ));
                }
                spec.fabric.set_edge(from, to, model);
            }
        }
        if let Some(v) = obj.optional("bindings") {
            let list_path = obj.field_path("bindings");
            for (i, entry) in v.as_array(&list_path)?.iter().enumerate() {
                let entry_path = format!("{list_path}[{i}]");
                let mut bind = ObjReader::new(entry, &entry_path)?;
                let node = bind.required("node")?.as_u16(&bind.field_path("node"))?;
                let port = bind.required("port")?.as_u32(&bind.field_path("port"))?;
                let codeword = bind
                    .required("codeword")?
                    .as_u32(&bind.field_path("codeword"))?;
                let action =
                    QuantumAction::from_json(bind.required("action")?, &bind.field_path("action"))?;
                bind.reject_unknown()?;
                spec.bindings.push((node, port, codeword, action));
            }
        }
        if let Some(v) = obj.optional("meas_ports") {
            let list_path = obj.field_path("meas_ports");
            for (i, entry) in v.as_array(&list_path)?.iter().enumerate() {
                let entry_path = format!("{list_path}[{i}]");
                let mut port_obj = ObjReader::new(entry, &entry_path)?;
                let node = port_obj
                    .required("node")?
                    .as_u16(&port_obj.field_path("node"))?;
                let port = port_obj
                    .required("port")?
                    .as_u32(&port_obj.field_path("port"))?;
                let Json::Object(entries) = entry else {
                    unreachable!("ObjReader verified this is an object");
                };
                let rest: Vec<(String, Json)> = entries
                    .iter()
                    .filter(|(k, _)| k != "node" && k != "port")
                    .cloned()
                    .collect();
                let binding = MeasBinding::from_json(&Json::Object(rest), &entry_path)?;
                port_obj.optional("qubit");
                port_obj.optional("result_latency");
                port_obj.reject_unknown()?;
                spec.meas_ports.push((node, port, binding));
            }
        }
        obj.reject_unknown()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    use super::*;
    use hisq_isa::Assembler;
    use hisq_net::TopologyBuilder;
    use hisq_quantum::noise::NoiseModel;

    fn asm(src: &str) -> Vec<Inst> {
        Assembler::new().assemble(src).unwrap().insts().to_vec()
    }

    fn exemplar_spec() -> SystemSpec {
        let topology = TopologyBuilder::grid(2, 2)
            .link_model(LinkModel::serialized(40))
            .build();
        let mut programs = BTreeMap::new();
        for addr in 0..4u16 {
            programs.insert(addr, asm("waiti 10\ncw.i.i 1, 2\nstop"));
        }
        let mut spec = SystemSpec::from_topology(&topology, programs);
        spec.config(SimConfig {
            default_classical_latency: 30,
            ..SimConfig::default()
        });
        spec.backend(BackendSpec::Leaky {
            seed: 7,
            p_one: 0.5,
            noise: NoiseModel::NOISELESS.with_leak(1e-3).into(),
        });
        spec.hub(
            9,
            Hub {
                subscribers: vec![0, 1, 2, 3],
                down_latency: 25,
            },
        );
        spec.bind(
            0,
            1,
            2,
            QuantumAction::Gate {
                gate: Gate::Cphase(0.5),
                qubits: vec![0, 1],
            },
        );
        spec.bind_measurement_port(
            1,
            2,
            MeasBinding {
                qubit: 1,
                result_latency: 75,
            },
        );
        spec
    }

    #[test]
    fn system_spec_round_trips() {
        let spec = exemplar_spec();
        let json = spec.to_json().unwrap();
        let back = SystemSpec::from_json(&json, "spec").unwrap();
        assert_eq!(spec, back);
        // And through text, both compact and pretty.
        let compact = json.to_string_compact();
        let pretty = json.to_string_pretty();
        for text in [compact, pretty] {
            let reparsed = Json::parse(&text).unwrap();
            assert_eq!(SystemSpec::from_json(&reparsed, "spec").unwrap(), spec);
        }
    }

    #[test]
    fn round_tripped_spec_builds_and_runs_identically() {
        let spec = exemplar_spec();
        let back = SystemSpec::from_json(&spec.to_json().unwrap(), "spec").unwrap();
        let report_a = spec.build().unwrap().run().unwrap();
        let report_b = back.build().unwrap().run().unwrap();
        assert_eq!(report_a.makespan_cycles, report_b.makespan_cycles);
        assert_eq!(report_a.events_processed, report_b.events_processed);
    }

    #[test]
    fn empty_object_is_the_empty_spec() {
        let spec = SystemSpec::from_json(&Json::parse("{}").unwrap(), "spec").unwrap();
        assert_eq!(spec, SystemSpec::new());
    }

    #[test]
    fn backend_specs_round_trip() {
        for backend in [
            BackendSpec::Random {
                seed: 3,
                p_one: 0.25,
            },
            BackendSpec::Fixed { outcome: true },
            BackendSpec::Stabilizer { qubits: 8, seed: 1 },
            BackendSpec::StateVector { qubits: 4, seed: 2 },
            BackendSpec::NoisyStabilizer {
                qubits: 8,
                seed: 5,
                noise: NoiseModel::NOISELESS.with_gate_errors(1e-3, 1e-2).into(),
            },
            BackendSpec::Leaky {
                seed: u64::MAX,
                p_one: 0.5,
                noise: NoiseModel::NOISELESS.with_leak(2e-3).into(),
            },
        ] {
            let text = backend.to_json().to_string_compact();
            let back = BackendSpec::from_json(&Json::parse(&text).unwrap(), "b").unwrap();
            assert_eq!(backend, back, "{text}");
        }
    }

    #[test]
    fn unknown_fields_are_rejected_with_paths() {
        for (text, needle) in [
            (
                r#"{"kind": "random", "seed": 0, "p_one": 0.5, "bias": 1}"#,
                "unknown field `bias`",
            ),
            (r#"{"kind": "warp"}"#, "unknown backend kind"),
        ] {
            let err = BackendSpec::from_json(&Json::parse(text).unwrap(), "b").unwrap_err();
            assert!(err.to_string().contains(needle), "{text}: {err}");
        }
        let err = QuantumAction::from_json(
            &Json::parse(r#"{"action": "measure", "qubit": 0, "basis": "z"}"#).unwrap(),
            "a",
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown field `basis`"), "{err}");
    }

    #[test]
    fn programs_survive_as_exact_words() {
        let program = asm("waiti 10\nsync 1\ncw.i.i 3, 7\nstop");
        let json = program_to_json(&program, "p").unwrap();
        let back = program_from_json(&json, "p").unwrap();
        assert_eq!(program, back);
    }
}
