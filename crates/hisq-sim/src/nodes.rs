//! The node models of the simulated system: controllers, routers, and
//! broadcast hubs, plus the quantum bindings attached to controllers.
//!
//! The engine ([`crate::engine`]) stores every node in one arena
//! (`Vec<SimNode>`) indexed by a dense `NodeId`; the enum is the
//! engine's dispatch point — delivering an event is a single indexed
//! load and a match, never a map walk.

use hisq_core::{Controller, NodeAddr, NodeConfig};
use hisq_net::Router;
use hisq_quantum::Gate;

use std::collections::BTreeMap;

/// Dense arena index of a node. Addresses ([`NodeAddr`]) are the wire
/// format programs and topologies speak; `NodeId`s are what the event
/// core indexes with. The interning table lives in the engine.
pub(crate) type NodeId = u32;

/// A quantum action bound to a `(node, port, codeword)` commit.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantumAction {
    /// Apply a gate to the bound qubits.
    Gate {
        /// The gate.
        gate: Gate,
        /// Target qubits.
        qubits: Vec<usize>,
    },
    /// Trigger a measurement; the discrimination result is delivered to
    /// the committing controller's measurement FIFO after the
    /// measurement duration.
    Measure {
        /// Measured qubit.
        qubit: usize,
    },
    /// Reset a qubit to |0⟩ (active reset pulse).
    Reset {
        /// The reset qubit.
        qubit: usize,
    },
}

/// A port-level measurement binding: *any* codeword committed to the
/// port triggers a measurement of `qubit` (the DQCtrl readout boards
/// trigger acquisition per channel, §6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeasBinding {
    /// The measured qubit.
    pub qubit: usize,
    /// Cycles from trigger to result delivery (readout + integration +
    /// discrimination).
    pub result_latency: u64,
}

/// A broadcast hub: any classical message sent to the hub's address is
/// re-delivered to every subscriber after `down_latency` — the star
/// topology of the lock-step baseline (§6.4.3), where a central
/// controller broadcasts each measurement result to all controllers at a
/// constant latency independent of system size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hub {
    /// Controllers receiving every broadcast (usually all of them).
    pub subscribers: Vec<NodeAddr>,
    /// Constant hub→subscriber latency in cycles.
    pub down_latency: u64,
}

/// A controller in the arena: the core model plus everything the
/// engine attributes to this node — calibrated links, the commit
/// harvest watermark, and the quantum bindings its codewords trigger.
#[derive(Debug)]
pub(crate) struct ControllerNode {
    /// The single-node microarchitecture model.
    pub ctrl: Controller,
    /// Calibrated links, sorted by remote address for binary search
    /// (flattened from [`NodeConfig::links`] at build time).
    pub links: Vec<(NodeAddr, u64)>,
    /// Commits harvested so far (index into `ctrl.commits()`).
    pub watermark: usize,
    /// `(port, codeword)` → quantum action.
    pub bindings: BTreeMap<(u32, u32), QuantumAction>,
    /// Port-level measurement triggers.
    pub meas_ports: BTreeMap<u32, MeasBinding>,
}

impl ControllerNode {
    /// Wraps a configured controller; bindings are attached by the
    /// builder afterwards.
    pub fn new(config: NodeConfig, program: Vec<hisq_isa::Inst>) -> ControllerNode {
        let links: Vec<(NodeAddr, u64)> = config
            .links
            .iter()
            .map(|(&addr, link)| (addr, link.latency))
            .collect();
        // BTreeMap iteration is already sorted; keep the invariant
        // explicit for the binary search below.
        debug_assert!(links.windows(2).all(|w| w[0].0 < w[1].0));
        ControllerNode {
            ctrl: Controller::new(config, program),
            links,
            watermark: 0,
            bindings: BTreeMap::new(),
            meas_ports: BTreeMap::new(),
        }
    }

    /// Calibrated one-way latency of this controller's link to
    /// `remote`, if one exists.
    pub fn link_latency(&self, remote: NodeAddr) -> Option<u64> {
        self.links
            .binary_search_by_key(&remote, |&(addr, _)| addr)
            .ok()
            .map(|i| self.links[i].1)
    }
}

/// The hub model in the arena: subscribers pre-resolved to node ids so
/// a broadcast is a loop over indices, not an address lookup per
/// subscriber.
#[derive(Debug, Clone)]
pub(crate) struct HubNode {
    /// Subscriber arena ids (build-time resolved).
    pub subscriber_ids: Vec<NodeId>,
    /// Constant hub→subscriber latency in cycles.
    pub down_latency: u64,
}

/// One node of the simulated system, dispatched by the engine.
#[derive(Debug)]
pub(crate) enum SimNode {
    /// A HISQ controller (boxed: controllers dominate the arena and
    /// carry the large model state).
    Controller(Box<ControllerNode>),
    /// A region-synchronization router.
    Router(Router),
    /// A lock-step broadcast hub.
    Hub(HubNode),
}

impl SimNode {
    /// The controller model, when this node is one.
    pub fn as_controller(&self) -> Option<&ControllerNode> {
        match self {
            SimNode::Controller(node) => Some(node),
            _ => None,
        }
    }

    /// Mutable [`SimNode::as_controller`].
    pub fn as_controller_mut(&mut self) -> Option<&mut ControllerNode> {
        match self {
            SimNode::Controller(node) => Some(node),
            _ => None,
        }
    }
}
