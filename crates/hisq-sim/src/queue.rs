//! The event-queue abstraction of the discrete-event core: a small
//! [`EventQueue`] trait with two implementations — the production
//! [`CalendarQueue`] (a bucketed calendar queue / timing wheel) and the
//! retained [`HeapQueue`] reference (the historical
//! `BinaryHeap<Reverse<_>>` ordering), kept so the two can be run
//! differentially against each other.
//!
//! # Ordering contract
//!
//! Both queues pop strictly by `(at, seq)`: ascending schedule cycle,
//! and *push order within a cycle* (the `seq` tie-break is assigned
//! internally at push time). FIFO-within-cycle is load-bearing — the
//! sweep engine's byte-identical JSON contract rests on same-cycle
//! events replaying in exactly the order they were scheduled, so a
//! queue swap must preserve pop order bit-for-bit, which is what
//! `crates/hisq-sim/tests/queue_equivalence.rs` (proptest differential
//! oracle) and the engine-trace replay tests prove.
//!
//! # Calendar layout
//!
//! [`CalendarQueue`] keeps three rungs:
//!
//! - **near** — a ring of [`CalendarQueue::HORIZON`] buckets covering
//!   cycles `[current, current + HORIZON)`; bucket index is
//!   `cycle & (HORIZON - 1)`, so each in-window cycle owns exactly one
//!   bucket and same-cycle events drain as a FIFO batch;
//! - **overflow** — a `BTreeMap` rung for far-future timers
//!   (`cycle - current >= HORIZON`), migrated into ring buckets when
//!   the window advances past them;
//! - **late** — events pushed *behind* `current` (a scheduler pushing
//!   into the past); these always pop first, exactly as the reference
//!   heap would pop them.
//!
//! The `seq` counter uses **checked** arithmetic: wrapping it would
//! silently reorder same-cycle events, so exhausting the counter
//! panics instead (see [`CalendarQueue::with_seq_base`] for the
//! regression-test hook at the boundary).

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// Panic message shared by both queues when the `seq` counter would
/// wrap (a wrapped counter would silently break FIFO-within-cycle).
const SEQ_OVERFLOW: &str =
    "event-queue seq counter exhausted u64: same-cycle FIFO order can no longer be guaranteed";

/// Width of the calendar's bucket window in cycles (power of two).
const HORIZON: u64 = 256;
/// Bucket-index mask (`cycle & MASK`).
const MASK: u64 = HORIZON - 1;
/// Words of the occupancy bitmap (one bit per bucket).
const WORDS: usize = (HORIZON / 64) as usize;

/// A deterministic future-event queue ordered by `(at, seq)` with
/// `seq` assigned at push.
///
/// `len`/`is_empty` report the resident event count; `next_at` may
/// reorganize internal storage (it takes `&mut self`) but never
/// changes the observable pop order.
pub trait EventQueue<T> {
    /// Schedules `item` at cycle `at`, behind every event already
    /// scheduled at `at`.
    ///
    /// # Panics
    ///
    /// Panics if the internal `seq` counter is exhausted (after
    /// `u64::MAX` pushes) — wrapping would silently reorder same-cycle
    /// events, so the failure is loud instead.
    fn push(&mut self, at: u64, item: T);

    /// Removes and returns the earliest event as `(at, item)`;
    /// same-cycle ties pop in push order.
    fn pop(&mut self) -> Option<(u64, T)>;

    /// The cycle of the event [`pop`](EventQueue::pop) would return,
    /// without removing it.
    fn next_at(&mut self) -> Option<u64>;

    /// Number of events resident in the queue.
    fn len(&self) -> usize;

    /// Empties the queue and resets the `seq` counter, retaining
    /// allocated storage for reuse.
    fn clear(&mut self);

    /// `true` when no events are resident.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pops the earliest event only if it is scheduled at or before
    /// `cycle` — the batched-drain primitive (`pop_through(u64::MAX)`
    /// is a plain pop).
    fn pop_through(&mut self, cycle: u64) -> Option<(u64, T)> {
        if self.next_at()? <= cycle {
            self.pop()
        } else {
            None
        }
    }
}

/// Slab-index sentinel: "no slot" in the free list and bucket chains.
const NIL: u32 = u32::MAX;

/// One slab slot: an event payload plus the intrusive link to the next
/// event of the same bucket (or the next free slot, when retired).
/// `item` is an `Option` only so popping can move the payload out of
/// the slab without `unsafe`; a live slot always holds `Some`.
#[derive(Debug, Clone)]
struct Slot<T> {
    /// Next slot in this bucket's FIFO chain (`NIL` = tail), or the
    /// next free slot while retired.
    next: u32,
    /// The event (`None` only while the slot sits on the free list).
    item: Option<T>,
}

/// The production calendar queue: ring buckets over a cycle horizon,
/// an overflow rung for far-future timers, and a late rung for
/// pushes behind the window. See the module docs for the layout and
/// the ordering contract.
///
/// The near rung stores events in one contiguous **slab** threaded by
/// per-bucket intrusive FIFO chains (`heads`/`tails` index the slab,
/// each slot links to the next of its cycle). The resident set of a
/// simulation is small and slots are recycled through a free list, so
/// the hot push/pop path works a few dense, cache-resident arrays
/// instead of chasing a per-bucket heap allocation — the locality the
/// contiguous `BinaryHeap` had, without its `O(log n)` reordering.
#[derive(Debug, Clone)]
pub struct CalendarQueue<T> {
    /// The near-rung event slab; bucket chains and the free list index
    /// into it.
    slots: Vec<Slot<T>>,
    /// Head of the retired-slot free list (`NIL` = empty).
    free: u32,
    /// Per-bucket chain head (`NIL` = bucket empty); index =
    /// `cycle & (HORIZON - 1)`.
    heads: Vec<u32>,
    /// Per-bucket chain tail (valid while the bucket is non-empty).
    tails: Vec<u32>,
    /// Per-bucket resident cycle (valid while the bucket is non-empty).
    cycles: Vec<u64>,
    /// One bit per bucket: set while the bucket holds events.
    occupancy: [u64; WORDS],
    /// Lower bound of the bucket window (monotonically nondecreasing).
    current: u64,
    /// Events resident in ring buckets.
    near_len: usize,
    /// Far-future rung: cycle → events in push order.
    overflow: BTreeMap<u64, Vec<(u64, T)>>,
    /// Events resident in the overflow rung.
    overflow_len: usize,
    /// Cached smallest overflow cycle (`u64::MAX` when empty).
    overflow_min: u64,
    /// Behind-the-window rung, keyed by `(at, seq)`.
    late: BTreeMap<(u64, u64), T>,
    /// Next sequence number to assign.
    seq: u64,
    /// Head of the detached same-cycle batch chain (`NIL` = no active
    /// batch). The first pop of a cycle detaches the *whole* bucket
    /// chain here, so the remaining same-cycle pops walk the chain
    /// directly — no bucket-head reload, no occupancy update per event
    /// (the bit clears once, at detach). Batch items stay counted in
    /// `near_len` and live in the slab; they are only ahead of the
    /// bucket in pop order.
    batch_head: u32,
    /// Tail of the detached batch chain (valid while `batch_head != NIL`;
    /// needed to splice the remainder back in front of the bucket when a
    /// late push interrupts the batch).
    batch_tail: u32,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> CalendarQueue<T> {
        CalendarQueue::new()
    }
}

impl<T> CalendarQueue<T> {
    /// Width of the bucket window in cycles (power of two). Events
    /// scheduled at `current + HORIZON` or later take the overflow
    /// rung until the window advances to them.
    pub const HORIZON: u64 = HORIZON;

    /// An empty queue with the window anchored at cycle 0.
    pub fn new() -> CalendarQueue<T> {
        CalendarQueue {
            slots: Vec::new(),
            free: NIL,
            heads: vec![NIL; HORIZON as usize],
            tails: vec![NIL; HORIZON as usize],
            cycles: vec![0; HORIZON as usize],
            occupancy: [0; WORDS],
            current: 0,
            near_len: 0,
            overflow: BTreeMap::new(),
            overflow_len: 0,
            overflow_min: u64::MAX,
            late: BTreeMap::new(),
            seq: 0,
            batch_head: NIL,
            batch_tail: NIL,
        }
    }

    /// An empty queue whose *next* push is assigned sequence number
    /// `seq` — the regression-test hook for the counter-exhaustion
    /// boundary (a wrapped `seq` would silently reorder same-cycle
    /// events, so the queue panics instead of wrapping; see the
    /// `queue_equivalence` test suite).
    pub fn with_seq_base(seq: u64) -> CalendarQueue<T> {
        CalendarQueue {
            seq,
            ..CalendarQueue::new()
        }
    }

    /// Assigns the next sequence number, panicking instead of
    /// wrapping (the satellite bugfix: wraparound silently broke
    /// FIFO-within-cycle before the counter moved into the queue).
    fn next_seq(&mut self) -> u64 {
        let seq = self.seq;
        self.seq = seq.checked_add(1).expect(SEQ_OVERFLOW);
        seq
    }

    /// Claims a slab slot for `item` (recycling the free list),
    /// returning its index with `next` reset to `NIL`.
    fn alloc_slot(&mut self, item: T) -> u32 {
        let slot = self.free;
        if slot != NIL {
            self.free = self.slots[slot as usize].next;
            self.slots[slot as usize] = Slot {
                next: NIL,
                item: Some(item),
            };
            slot
        } else {
            assert!(
                self.slots.len() < NIL as usize,
                "event-queue slab exhausted u32 indices"
            );
            self.slots.push(Slot {
                next: NIL,
                item: Some(item),
            });
            (self.slots.len() - 1) as u32
        }
    }

    /// Retires a drained slot onto the free list and moves its event
    /// payload out.
    fn free_slot(&mut self, slot: u32) -> T {
        let item = self.slots[slot as usize]
            .item
            .take()
            .expect("live slots hold an event");
        self.slots[slot as usize].next = self.free;
        self.free = slot;
        item
    }

    /// Unlinks and retires the head slot of bucket `index`, clearing
    /// the occupancy bit when the chain empties.
    fn pop_head(&mut self, index: usize, head: u32) -> T {
        let next = self.slots[head as usize].next;
        self.heads[index] = next;
        if next == NIL {
            self.occupancy[index / 64] &= !(1 << (index % 64));
        }
        self.near_len -= 1;
        self.free_slot(head)
    }

    /// Files `item` at the tail of the ring bucket of in-window cycle
    /// `at`, claiming the bucket if it was empty.
    fn insert_near(&mut self, at: u64, item: T) {
        debug_assert!(at >= self.current && at - self.current < HORIZON);
        let index = (at & MASK) as usize;
        let slot = self.alloc_slot(item);
        if self.heads[index] == NIL {
            self.cycles[index] = at;
            self.occupancy[index / 64] |= 1 << (index % 64);
            self.heads[index] = slot;
        } else {
            debug_assert_eq!(
                self.cycles[index], at,
                "two in-window cycles mapped to one bucket"
            );
            self.slots[self.tails[index] as usize].next = slot;
        }
        self.tails[index] = slot;
        self.near_len += 1;
    }

    /// First occupied bucket index in ring order starting at `start`
    /// (wrapping once around); `None` when every bucket is empty.
    fn next_occupied(&self, start: usize) -> Option<usize> {
        let (start_word, start_bit) = (start / 64, start % 64);
        let first = self.occupancy[start_word] & (!0u64 << start_bit);
        if first != 0 {
            return Some(start_word * 64 + first.trailing_zeros() as usize);
        }
        for step in 1..=WORDS {
            let index = (start_word + step) % WORDS;
            let mask = if step == WORDS {
                // Back at the start word: only the bits below `start`
                // remain unexamined.
                (1u64 << start_bit).wrapping_sub(1)
            } else {
                !0
            };
            let word = self.occupancy[index] & mask;
            if word != 0 {
                return Some(index * 64 + word.trailing_zeros() as usize);
            }
        }
        None
    }

    /// The smallest bucket-resident cycle. In-window cycles map
    /// monotonically onto the ring starting at `current & MASK`, so
    /// the ring-nearest occupied bucket holds the earliest cycle.
    fn next_bucket_cycle(&self) -> u64 {
        debug_assert!(self.near_len > 0);
        let index = self
            .next_occupied((self.current & MASK) as usize)
            .expect("near_len > 0 implies an occupied bucket");
        self.cycles[index]
    }

    /// Moves every overflow cycle that now fits the window into its
    /// ring bucket, advancing `current` to the overflow minimum.
    /// Migrated entries carry older sequence numbers than anything
    /// pushed directly into the window (the window's lower bound only
    /// grows), so the migrated chain is *prepended* — in its own push
    /// order — ahead of any entries already in the bucket, preserving
    /// FIFO-within-cycle.
    fn migrate_overflow(&mut self) {
        debug_assert!(self.overflow_len > 0);
        debug_assert!(self.overflow_min >= self.current);
        self.current = self.overflow_min;
        while let Some(entry) = self.overflow.first_entry() {
            let at = *entry.key();
            if at - self.current >= HORIZON {
                break;
            }
            let moved = entry.remove();
            self.overflow_len -= moved.len();
            self.near_len += moved.len();
            let index = (at & MASK) as usize;
            if self.heads[index] == NIL {
                self.cycles[index] = at;
                self.occupancy[index / 64] |= 1 << (index % 64);
            }
            debug_assert_eq!(self.cycles[index], at);
            // Chain the moved entries back to front, attaching the
            // bucket's existing chain (if any) behind the last one.
            let mut next = self.heads[index];
            let had_entries = next != NIL;
            let mut last = NIL;
            for (_seq, item) in moved.into_iter().rev() {
                let slot = self.alloc_slot(item);
                self.slots[slot as usize].next = next;
                if last == NIL {
                    last = slot;
                }
                next = slot;
            }
            self.heads[index] = next;
            if !had_entries {
                self.tails[index] = last;
            }
        }
        self.overflow_min = self.overflow.keys().next().copied().unwrap_or(u64::MAX);
    }

    /// Unlinks and retires the head of the active batch chain, moving
    /// its event out (the batched twin of [`CalendarQueue::pop_head`]:
    /// one `next` load instead of a bucket-head reload plus an
    /// occupancy branch).
    fn batch_pop_head(&mut self) -> T {
        let head = self.batch_head;
        debug_assert_ne!(head, NIL);
        self.batch_head = self.slots[head as usize].next;
        self.near_len -= 1;
        self.free_slot(head)
    }

    /// Splices the unconsumed remainder of the active batch back in
    /// front of its bucket (cycle `current`), restoring the exact
    /// pre-detach pop order. Needed when a late push interrupts the
    /// batch: the late rung pops first, and whatever ran so far may
    /// have appended *new* `current`-cycle events to the (re-claimed)
    /// bucket — those carry younger seqs than the detached remainder,
    /// so the remainder goes in ahead of them.
    fn reattach_batch(&mut self) {
        debug_assert_ne!(self.batch_head, NIL);
        let index = (self.current & MASK) as usize;
        if self.heads[index] == NIL {
            self.cycles[index] = self.current;
            self.occupancy[index / 64] |= 1 << (index % 64);
            self.tails[index] = self.batch_tail;
        } else {
            debug_assert_eq!(self.cycles[index], self.current);
            self.slots[self.batch_tail as usize].next = self.heads[index];
        }
        self.heads[index] = self.batch_head;
        self.batch_head = NIL;
        self.batch_tail = NIL;
    }

    /// Advances the window until the earliest bucket-or-overflow event
    /// sits in a ring bucket, returning its cycle (`None` when both
    /// rungs are empty; the late rung is the caller's business).
    fn settle(&mut self) -> Option<u64> {
        loop {
            if self.near_len > 0 {
                let near = self.next_bucket_cycle();
                // `==` must migrate too: overflow entries at the same
                // cycle carry older seqs and pop first. The length
                // guard disambiguates the empty-rung `u64::MAX`
                // sentinel from a real event at cycle `u64::MAX`.
                if self.overflow_len > 0 && self.overflow_min <= near {
                    self.migrate_overflow();
                    continue;
                }
                self.current = near;
                return Some(near);
            }
            if self.overflow_len > 0 {
                self.migrate_overflow();
                continue;
            }
            return None;
        }
    }
}

impl<T> EventQueue<T> for CalendarQueue<T> {
    fn push(&mut self, at: u64, item: T) {
        let seq = self.next_seq();
        if at < self.current {
            self.late.insert((at, seq), item);
        } else if at - self.current < HORIZON {
            self.insert_near(at, item);
        } else {
            self.overflow.entry(at).or_default().push((seq, item));
            self.overflow_len += 1;
            self.overflow_min = self.overflow_min.min(at);
        }
    }

    fn pop(&mut self) -> Option<(u64, T)> {
        // Fast path: an active batch, or the window's own bucket still
        // holding events. That bucket can only hold cycle `current`
        // (the one in-window cycle congruent to its index), the
        // overflow minimum is strictly above `current` whenever the
        // rung is non-empty (pushes land `>= current + HORIZON` and
        // migration advances past every in-window cycle), and an empty
        // late rung means nothing precedes the window — so the whole
        // chain is the global minimum run, and the first pop of the
        // cycle detaches it in one batch: the occupancy bit clears
        // once, and the remaining same-cycle pops walk the detached
        // chain without touching the bucket arrays at all.
        if self.late.is_empty() {
            if self.batch_head != NIL {
                return Some((self.current, self.batch_pop_head()));
            }
            let index = (self.current & MASK) as usize;
            let head = self.heads[index];
            if head != NIL {
                debug_assert_eq!(self.cycles[index], self.current);
                debug_assert!(self.overflow_len == 0 || self.overflow_min > self.current);
                self.batch_head = head;
                self.batch_tail = self.tails[index];
                self.heads[index] = NIL;
                self.occupancy[index / 64] &= !(1 << (index % 64));
                return Some((self.current, self.batch_pop_head()));
            }
        } else if self.batch_head != NIL {
            // A late push interrupted the batch: restore the remainder
            // to its bucket so ordering falls back to the rung logic.
            self.reattach_batch();
        }
        // Late events are strictly behind `current`, hence behind every
        // bucket and overflow cycle: always the global minimum.
        if let Some(((at, _seq), item)) = self.late.pop_first() {
            return Some((at, item));
        }
        let cycle = self.settle()?;
        let index = (cycle & MASK) as usize;
        debug_assert_eq!(self.cycles[index], cycle);
        let head = self.heads[index];
        debug_assert!(head != NIL, "settle() returned an occupied bucket");
        Some((cycle, self.pop_head(index, head)))
    }

    fn next_at(&mut self) -> Option<u64> {
        if let Some((&(at, _), _)) = self.late.first_key_value() {
            return Some(at);
        }
        if self.batch_head != NIL {
            // The detached batch is the earliest run (no late events),
            // and it always sits at the window's lower bound.
            return Some(self.current);
        }
        self.settle()
    }

    fn len(&self) -> usize {
        self.near_len + self.overflow_len + self.late.len()
    }

    fn clear(&mut self) {
        self.slots.clear();
        self.free = NIL;
        self.heads.fill(NIL);
        self.tails.fill(NIL);
        self.occupancy = [0; WORDS];
        self.current = 0;
        self.near_len = 0;
        self.overflow.clear();
        self.overflow_len = 0;
        self.overflow_min = u64::MAX;
        self.late.clear();
        self.seq = 0;
        self.batch_head = NIL;
        self.batch_tail = NIL;
    }
}

/// One heap entry; the ordering deliberately ignores the item so `T`
/// needs no `Ord`.
#[derive(Debug, Clone)]
struct HeapEntry<T> {
    at: u64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}

impl<T> Eq for HeapEntry<T> {}

impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The reference implementation: the historical
/// `BinaryHeap<Reverse<(at, seq)>>` ordering, retained as the
/// differential oracle the calendar queue is proven against (and
/// selectable on a built [`System`](crate::System) via
/// [`use_reference_queue`](crate::System::use_reference_queue)).
#[derive(Debug, Clone)]
pub struct HeapQueue<T> {
    heap: BinaryHeap<Reverse<HeapEntry<T>>>,
    seq: u64,
}

impl<T> Default for HeapQueue<T> {
    fn default() -> HeapQueue<T> {
        HeapQueue::new()
    }
}

impl<T> HeapQueue<T> {
    /// An empty reference queue.
    pub fn new() -> HeapQueue<T> {
        HeapQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// An empty queue whose next push takes sequence number `seq`
    /// (the same counter-exhaustion test hook as
    /// [`CalendarQueue::with_seq_base`]).
    pub fn with_seq_base(seq: u64) -> HeapQueue<T> {
        HeapQueue {
            heap: BinaryHeap::new(),
            seq,
        }
    }
}

impl<T> EventQueue<T> for HeapQueue<T> {
    fn push(&mut self, at: u64, item: T) {
        let seq = self.seq;
        self.seq = seq.checked_add(1).expect(SEQ_OVERFLOW);
        self.heap.push(Reverse(HeapEntry { at, seq, item }));
    }

    fn pop(&mut self) -> Option<(u64, T)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.item))
    }

    fn next_at(&mut self) -> Option<u64> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn clear(&mut self) {
        self.heap.clear();
        self.seq = 0;
    }
}

/// The engine's queue slot: the production calendar queue, or the heap
/// reference when a differential run was requested. An enum (not a
/// `dyn` box) so the hot loop dispatches with a predictable branch.
#[derive(Debug, Clone)]
pub enum EngineQueue<T> {
    /// The production bucketed calendar queue.
    Calendar(CalendarQueue<T>),
    /// The retained binary-heap reference implementation.
    Reference(HeapQueue<T>),
}

impl<T> EventQueue<T> for EngineQueue<T> {
    fn push(&mut self, at: u64, item: T) {
        match self {
            EngineQueue::Calendar(q) => q.push(at, item),
            EngineQueue::Reference(q) => q.push(at, item),
        }
    }

    fn pop(&mut self) -> Option<(u64, T)> {
        match self {
            EngineQueue::Calendar(q) => q.pop(),
            EngineQueue::Reference(q) => q.pop(),
        }
    }

    fn next_at(&mut self) -> Option<u64> {
        match self {
            EngineQueue::Calendar(q) => q.next_at(),
            EngineQueue::Reference(q) => q.next_at(),
        }
    }

    fn len(&self) -> usize {
        match self {
            EngineQueue::Calendar(q) => q.len(),
            EngineQueue::Reference(q) => q.len(),
        }
    }

    fn clear(&mut self) {
        match self {
            EngineQueue::Calendar(q) => q.clear(),
            EngineQueue::Reference(q) => q.clear(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drains both queues fully and asserts identical `(at, item)`
    /// sequences.
    fn assert_drain_equal(mut wheel: CalendarQueue<u32>, mut heap: HeapQueue<u32>) {
        loop {
            let (w, h) = (wheel.pop(), heap.pop());
            assert_eq!(w, h, "wheel diverged from heap reference");
            if w.is_none() {
                break;
            }
        }
    }

    #[test]
    fn same_cycle_events_pop_in_push_order() {
        let mut wheel = CalendarQueue::new();
        let mut heap = HeapQueue::new();
        for i in 0..100 {
            wheel.push(7, i);
            heap.push(7, i);
        }
        assert_drain_equal(wheel, heap);
    }

    #[test]
    fn far_future_events_take_the_overflow_rung_and_still_order() {
        let mut wheel = CalendarQueue::new();
        let mut heap = HeapQueue::new();
        for (at, v) in [(5u64, 0u32), (100_000, 1), (6, 2), (100_000, 3), (999, 4)] {
            wheel.push(at, v);
            heap.push(at, v);
        }
        assert_eq!(wheel.len(), 5);
        assert_drain_equal(wheel, heap);
    }

    #[test]
    fn pop_through_only_drains_up_to_the_cycle() {
        let mut wheel: CalendarQueue<u32> = CalendarQueue::new();
        wheel.push(10, 1);
        wheel.push(20, 2);
        assert_eq!(wheel.pop_through(15), Some((10, 1)));
        assert_eq!(wheel.pop_through(15), None);
        assert_eq!(wheel.pop_through(20), Some((20, 2)));
        assert!(wheel.is_empty());
    }

    #[test]
    fn late_push_interrupts_a_batched_drain_in_heap_order() {
        // First pop of cycle 10 detaches the whole 4-event chain as a
        // batch; the late push behind the window must still pop before
        // the batch remainder, exactly as the heap orders it.
        let mut wheel = CalendarQueue::new();
        let mut heap = HeapQueue::new();
        for (at, v) in [(10u64, 0u32), (10, 1), (10, 2), (10, 3)] {
            wheel.push(at, v);
            heap.push(at, v);
        }
        assert_eq!(wheel.pop(), Some((10, 0)));
        assert_eq!(heap.pop(), Some((10, 0)));
        wheel.push(4, 99);
        heap.push(4, 99);
        assert_eq!(wheel.len(), heap.len());
        assert_drain_equal(wheel, heap);
    }

    #[test]
    fn same_cycle_pushes_during_a_batch_pop_after_the_batch() {
        // Events pushed at the batch's own cycle mid-drain carry
        // younger seqs: they re-claim the bucket and pop after the
        // detached chain, preserving FIFO-within-cycle.
        let mut wheel = CalendarQueue::new();
        let mut heap = HeapQueue::new();
        for v in 0..3u32 {
            wheel.push(20, v);
            heap.push(20, v);
        }
        assert_eq!(wheel.pop(), Some((20, 0)));
        assert_eq!(heap.pop(), Some((20, 0)));
        wheel.push(20, 7);
        heap.push(20, 7);
        // A late interruption *after* same-cycle pushes exercises the
        // splice-ahead-of-the-bucket reattach path.
        wheel.push(3, 8);
        heap.push(3, 8);
        assert_eq!(wheel.next_at(), Some(3));
        assert_drain_equal(wheel, heap);
    }

    #[test]
    fn next_at_reports_the_batch_cycle_mid_drain() {
        let mut wheel: CalendarQueue<u32> = CalendarQueue::new();
        wheel.push(12, 1);
        wheel.push(12, 2);
        wheel.push(500_000, 3);
        assert_eq!(wheel.pop(), Some((12, 1)));
        assert_eq!(wheel.next_at(), Some(12));
        assert_eq!(wheel.pop(), Some((12, 2)));
        assert_eq!(wheel.pop(), Some((500_000, 3)));
        assert!(wheel.is_empty());
    }

    #[test]
    fn clear_resets_the_window_and_the_seq_counter() {
        let mut wheel: CalendarQueue<u32> = CalendarQueue::new();
        wheel.push(1_000_000, 1);
        wheel.push(3, 2);
        assert_eq!(wheel.pop(), Some((3, 2)));
        wheel.clear();
        assert!(wheel.is_empty());
        // After clear, cycle 0 is schedulable again (window re-anchored).
        wheel.push(0, 9);
        assert_eq!(wheel.pop(), Some((0, 9)));
        // Clearing mid-batch discards the detached remainder too.
        wheel.push(5, 1);
        wheel.push(5, 2);
        assert_eq!(wheel.pop(), Some((5, 1)));
        wheel.clear();
        assert!(wheel.is_empty());
        assert_eq!(wheel.pop(), None);
    }
}
