//! Internal event-queue and gate-replay plumbing: the ordered records
//! the engine's two binary heaps hold. Events order by `(cycle, seq)`
//! with `seq` assigned at push — the deterministic tie-break the sweep
//! engine's byte-identical JSON contract rests on.

use hisq_core::NodeAddr;
use hisq_net::Payload;
use hisq_quantum::Gate;

use crate::nodes::NodeId;

/// An engine event: a routed message or a resolving measurement. The
/// destination is an arena id — resolution from addresses happened at
/// routing time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum EventKind {
    /// Deliver a routed payload to node `to`.
    Deliver {
        /// Sender address (controllers match mailboxes by address).
        from: NodeAddr,
        /// Destination arena id.
        to: NodeId,
        /// The message content.
        payload: Payload,
    },
    /// A measurement triggered at `trigger_cycle` resolves now.
    MeasResolve {
        /// The controller receiving the discrimination result.
        node: NodeId,
        /// The measured qubit.
        qubit: usize,
        /// When the measurement was triggered (gates replay up to it).
        trigger_cycle: u64,
    },
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct QueuedEvent {
    /// Absolute delivery cycle.
    pub at: u64,
    /// Push-order tie-break.
    pub seq: u64,
    /// What happens at `at`.
    pub kind: EventKind,
}

impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A backend operation to replay in commit-cycle order.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum ReplayAction {
    Gate(Gate, Vec<usize>),
    Reset(usize),
}

/// A pending gate waiting to be replayed into the quantum backend in
/// commit-cycle order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct PendingGate {
    /// Commit cycle of the buffered operation.
    pub cycle: u64,
    /// Push-order tie-break.
    pub seq: u64,
    /// Index into the engine's gate store.
    pub gate_index: usize,
}

impl Ord for PendingGate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.cycle, self.seq).cmp(&(other.cycle, other.seq))
    }
}

impl PartialOrd for PendingGate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
