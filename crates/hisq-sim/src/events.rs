//! Internal event and link-queue plumbing: the event records the
//! engine's [`crate::queue`] structures carry, plus the per-link
//! busy-until state of the contention model. Events order by
//! `(cycle, seq)` with `seq` assigned at push (inside the queue) — the
//! deterministic tie-break the sweep engine's byte-identical JSON
//! contract rests on.

use hisq_core::NodeAddr;
use hisq_net::Payload;
use hisq_quantum::noise::splitmix64;
use hisq_quantum::Gate;

use crate::nodes::NodeId;

/// An engine event: a routed message or a resolving measurement. The
/// destination is an arena id — resolution from addresses happened at
/// routing time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum EventKind {
    /// Deliver a routed payload to node `to`.
    Deliver {
        /// Sender address (controllers match mailboxes by address).
        from: NodeAddr,
        /// Destination arena id.
        to: NodeId,
        /// The message content.
        payload: Payload,
    },
    /// A measurement triggered at `trigger_cycle` resolves now.
    MeasResolve {
        /// The controller receiving the discrimination result.
        node: NodeId,
        /// The measured qubit.
        qubit: usize,
        /// When the measurement was triggered (gates replay up to it).
        trigger_cycle: u64,
    },
    /// A lost classical message's acknowledgement timeout fired: the
    /// sender re-offers the message to the link now. Keeping the
    /// retransmission as an event (instead of booking the future slot
    /// at loss time) keeps contended links work-conserving — traffic
    /// offered during the ack-wait window transmits on the idle wire.
    ///
    /// Boxed because retransmissions exist only on lossy links: the
    /// wide resend record would otherwise double the size of every
    /// slot in the event slab, and the loss-free hot path never pays
    /// the allocation.
    Resend(Box<ResendEvent>),
}

/// The retransmission record carried by [`EventKind::Resend`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ResendEvent {
    /// The serialization queue the message retransmits through.
    pub link: (NodeId, NodeId),
    /// Destination arena id.
    pub to: NodeId,
    /// The message content.
    pub payload: Payload,
    /// Wire latency of the link (cycles).
    pub latency: u64,
    /// 1-based attempt number of this retransmission.
    pub attempt: u32,
}

impl EventKind {
    /// A 64-bit content digest for pop-trace recording (see
    /// [`System::record_event_trace`](crate::System::record_event_trace)):
    /// two runs pop the same event sequence iff their `(cycle,
    /// fingerprint)` traces match. Mixed with splitmix64 so distinct
    /// events collide with negligible probability.
    pub(crate) fn fingerprint(&self) -> u64 {
        fn mix(hash: u64, value: u64) -> u64 {
            splitmix64(hash ^ value.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        }
        fn payload_digest(payload: &Payload) -> u64 {
            match *payload {
                Payload::SyncPulse => mix(0x51, 0),
                Payload::BookTime { target, time_point } => {
                    mix(mix(0x52, u64::from(target)), time_point)
                }
                Payload::MaxTime { t_m, target } => mix(mix(0x53, t_m), u64::from(target)),
                Payload::Classical { value } => mix(0x54, u64::from(value)),
            }
        }
        match *self {
            EventKind::Deliver { from, to, payload } => mix(
                mix(mix(0x01, u64::from(from)), u64::from(to)),
                payload_digest(&payload),
            ),
            EventKind::MeasResolve {
                node,
                qubit,
                trigger_cycle,
            } => mix(mix(mix(0x02, u64::from(node)), qubit as u64), trigger_cycle),
            EventKind::Resend(ref resend) => {
                let link_key = (u64::from(resend.link.0) << 32) | u64::from(resend.link.1);
                mix(
                    mix(
                        mix(
                            mix(mix(0x03, link_key), u64::from(resend.to)),
                            payload_digest(&resend.payload),
                        ),
                        resend.latency,
                    ),
                    u64::from(resend.attempt),
                )
            }
        }
    }
}

/// A backend operation to replay in commit-cycle order.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum ReplayAction {
    Gate(Gate, QubitList),
    Reset(usize),
}

/// A gate's target qubits, stored inline when they fit (real gates
/// touch one or two qubits) so buffering a commit for replay never
/// allocates on the engine's hot path.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum QubitList {
    /// Up to four qubits, inline: `qs[..len]`.
    Inline { len: u8, qs: [usize; 4] },
    /// Oversized bindings spill to the heap (never hit by arity-checked
    /// gate bindings; kept so malformed specs stay well-defined).
    Heap(Vec<usize>),
}

impl QubitList {
    /// Copies a qubit slice, inline when it fits.
    pub(crate) fn from_slice(qubits: &[usize]) -> QubitList {
        if qubits.len() <= 4 {
            let mut qs = [0usize; 4];
            qs[..qubits.len()].copy_from_slice(qubits);
            QubitList::Inline {
                len: qubits.len() as u8,
                qs,
            }
        } else {
            QubitList::Heap(qubits.to_vec())
        }
    }

    /// The qubits as a slice.
    pub(crate) fn as_slice(&self) -> &[usize] {
        match self {
            QubitList::Inline { len, qs } => &qs[..usize::from(*len)],
            QubitList::Heap(qubits) => qubits,
        }
    }
}

/// Busy-until state of one contended directed link: `slot_free[i]` is
/// the cycle at which serialization slot `i` becomes idle again. A
/// message acquires the earliest-free slot (`max(sent_at, free)` start,
/// deterministic lowest-index tie-break), so occupancy can never exceed
/// the slot count.
#[derive(Debug, Clone)]
pub(crate) struct LinkQueue {
    /// Per-slot busy-until cycle (length = the model's capacity).
    pub slot_free: Vec<u64>,
    /// Transmission attempts carried (including retransmissions).
    pub messages: u64,
    /// Peak simultaneous busy slots.
    pub peak_occupancy: u32,
    /// Retransmissions after lossy attempts.
    pub retransmits: u64,
    /// Messages abandoned after the attempt budget.
    pub dropped: u64,
    /// Monotonic drop-draw counter (the per-link RNG stream position).
    pub draws: u64,
}

impl LinkQueue {
    pub fn new(capacity: u32) -> LinkQueue {
        LinkQueue {
            slot_free: vec![0; capacity.max(1) as usize],
            messages: 0,
            peak_occupancy: 0,
            retransmits: 0,
            dropped: 0,
            draws: 0,
        }
    }

    /// Acquires the earliest-free slot for a message offered at
    /// `sent_at`, occupying it for `hold` cycles. Returns the cycle at
    /// which serialization starts (≥ `sent_at`; the wire latency is
    /// paid on top by the caller).
    pub fn acquire(&mut self, sent_at: u64, hold: u64) -> u64 {
        let (index, &free) = self
            .slot_free
            .iter()
            .enumerate()
            .min_by_key(|&(_, &f)| f)
            .expect("capacity >= 1");
        let start = sent_at.max(free);
        self.slot_free[index] = start + hold;
        self.messages += 1;
        // Slots busy while this message serializes (itself included):
        // structurally capped at the slot count.
        let busy = self.slot_free.iter().filter(|&&f| f > start).count() as u32;
        self.peak_occupancy = self.peak_occupancy.max(busy.max(1));
        start
    }

    /// One deterministic loss draw: `true` = this attempt is dropped.
    /// The stream depends only on (policy seed, link endpoints, draw
    /// index), so runs reproduce across processes and thread counts.
    pub fn draw_drop(&mut self, seed: u64, from: NodeAddr, to: NodeAddr, loss_ppm: u32) -> bool {
        let index = self.draws;
        self.draws += 1;
        let key = seed
            ^ ((from as u64) << 48)
            ^ ((to as u64) << 32)
            ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        splitmix64(key) % 1_000_000 < u64::from(loss_ppm)
    }
}
