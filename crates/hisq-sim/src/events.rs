//! Internal event-queue, gate-replay, and link-queue plumbing: the
//! ordered records the engine's two binary heaps hold, plus the
//! per-link busy-until state of the contention model. Events order by
//! `(cycle, seq)` with `seq` assigned at push — the deterministic
//! tie-break the sweep engine's byte-identical JSON contract rests on.

use hisq_core::NodeAddr;
use hisq_net::Payload;
use hisq_quantum::noise::splitmix64;
use hisq_quantum::Gate;

use crate::nodes::NodeId;

/// An engine event: a routed message or a resolving measurement. The
/// destination is an arena id — resolution from addresses happened at
/// routing time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum EventKind {
    /// Deliver a routed payload to node `to`.
    Deliver {
        /// Sender address (controllers match mailboxes by address).
        from: NodeAddr,
        /// Destination arena id.
        to: NodeId,
        /// The message content.
        payload: Payload,
    },
    /// A measurement triggered at `trigger_cycle` resolves now.
    MeasResolve {
        /// The controller receiving the discrimination result.
        node: NodeId,
        /// The measured qubit.
        qubit: usize,
        /// When the measurement was triggered (gates replay up to it).
        trigger_cycle: u64,
    },
    /// A lost classical message's acknowledgement timeout fired: the
    /// sender re-offers the message to the link now. Keeping the
    /// retransmission as an event (instead of booking the future slot
    /// at loss time) keeps contended links work-conserving — traffic
    /// offered during the ack-wait window transmits on the idle wire.
    Resend {
        /// The serialization queue the message retransmits through.
        link: (NodeId, NodeId),
        /// Destination arena id.
        to: NodeId,
        /// The message content.
        payload: Payload,
        /// Wire latency of the link (cycles).
        latency: u64,
        /// 1-based attempt number of this retransmission.
        attempt: u32,
    },
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct QueuedEvent {
    /// Absolute delivery cycle.
    pub at: u64,
    /// Push-order tie-break.
    pub seq: u64,
    /// What happens at `at`.
    pub kind: EventKind,
}

impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A backend operation to replay in commit-cycle order.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum ReplayAction {
    Gate(Gate, Vec<usize>),
    Reset(usize),
}

/// A pending gate waiting to be replayed into the quantum backend in
/// commit-cycle order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct PendingGate {
    /// Commit cycle of the buffered operation.
    pub cycle: u64,
    /// Push-order tie-break.
    pub seq: u64,
    /// Index into the engine's gate store.
    pub gate_index: usize,
}

impl Ord for PendingGate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.cycle, self.seq).cmp(&(other.cycle, other.seq))
    }
}

impl PartialOrd for PendingGate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Busy-until state of one contended directed link: `slot_free[i]` is
/// the cycle at which serialization slot `i` becomes idle again. A
/// message acquires the earliest-free slot (`max(sent_at, free)` start,
/// deterministic lowest-index tie-break), so occupancy can never exceed
/// the slot count.
#[derive(Debug, Clone)]
pub(crate) struct LinkQueue {
    /// Per-slot busy-until cycle (length = the model's capacity).
    pub slot_free: Vec<u64>,
    /// Transmission attempts carried (including retransmissions).
    pub messages: u64,
    /// Peak simultaneous busy slots.
    pub peak_occupancy: u32,
    /// Retransmissions after lossy attempts.
    pub retransmits: u64,
    /// Messages abandoned after the attempt budget.
    pub dropped: u64,
    /// Monotonic drop-draw counter (the per-link RNG stream position).
    pub draws: u64,
}

impl LinkQueue {
    pub fn new(capacity: u32) -> LinkQueue {
        LinkQueue {
            slot_free: vec![0; capacity.max(1) as usize],
            messages: 0,
            peak_occupancy: 0,
            retransmits: 0,
            dropped: 0,
            draws: 0,
        }
    }

    /// Acquires the earliest-free slot for a message offered at
    /// `sent_at`, occupying it for `hold` cycles. Returns the cycle at
    /// which serialization starts (≥ `sent_at`; the wire latency is
    /// paid on top by the caller).
    pub fn acquire(&mut self, sent_at: u64, hold: u64) -> u64 {
        let (index, &free) = self
            .slot_free
            .iter()
            .enumerate()
            .min_by_key(|&(_, &f)| f)
            .expect("capacity >= 1");
        let start = sent_at.max(free);
        self.slot_free[index] = start + hold;
        self.messages += 1;
        // Slots busy while this message serializes (itself included):
        // structurally capped at the slot count.
        let busy = self.slot_free.iter().filter(|&&f| f > start).count() as u32;
        self.peak_occupancy = self.peak_occupancy.max(busy.max(1));
        start
    }

    /// One deterministic loss draw: `true` = this attempt is dropped.
    /// The stream depends only on (policy seed, link endpoints, draw
    /// index), so runs reproduce across processes and thread counts.
    pub fn draw_drop(&mut self, seed: u64, from: NodeAddr, to: NodeAddr, loss_ppm: u32) -> bool {
        let index = self.draws;
        self.draws += 1;
        let key = seed
            ^ ((from as u64) << 48)
            ^ ((to as u64) << 32)
            ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        splitmix64(key) % 1_000_000 < u64::from(loss_ppm)
    }
}
