//! Pluggable quantum backends supplying measurement outcomes to the
//! simulated control system.
//!
//! Timing experiments (Figure 15/16) need only a *distribution* of
//! feedback branches, so they use [`RandomBackend`] or [`FixedBackend`].
//! Correctness verification replays every committed gate into a real
//! simulator ([`StabilizerBackend`] or [`StateVectorBackend`]) so that
//! measurement results are quantum-mechanically consistent.
//!
//! The noise-aware variants extend both families with a declarative
//! per-qubit [`NoiseMap`]: [`NoisyStabilizerBackend`] samples Pauli
//! channels
//! after each Clifford gate and flips readouts, and
//! [`LeakyRandomBackend`] adds sticky leakage to the statistical
//! backend. Both draw from a seeded counter-based
//! [`NoiseStream`], and a rate of exactly zero consumes no draws — so
//! with `NoiseModel::default()` each variant is byte-identical to its
//! noiseless twin (proptest-pinned in `tests/noise_backends.rs`).

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hisq_quantum::{Gate, NoiseMap, NoiseStream, Stabilizer, StateVector};

/// A source of measurement outcomes that optionally tracks gates.
pub trait QuantumBackend {
    /// Applies a committed gate (no-op for statistical backends).
    fn apply_gate(&mut self, gate: Gate, qubits: &[usize]);

    /// Measures `qubit` in the Z basis, collapsing backend state if any.
    fn measure(&mut self, qubit: usize) -> bool;

    /// Resets `qubit` to |0⟩ (no-op for statistical backends).
    fn reset(&mut self, qubit: usize);
}

/// Statistically independent outcomes with probability `p_one` of 1.
///
/// # Example
///
/// ```
/// use hisq_sim::{QuantumBackend, RandomBackend};
///
/// let mut backend = RandomBackend::new(7, 0.5);
/// let _bit = backend.measure(3);
/// ```
#[derive(Debug, Clone)]
pub struct RandomBackend {
    rng: StdRng,
    p_one: f64,
}

impl RandomBackend {
    /// Creates a seeded random backend.
    pub fn new(seed: u64, p_one: f64) -> RandomBackend {
        RandomBackend {
            rng: StdRng::seed_from_u64(seed),
            p_one: p_one.clamp(0.0, 1.0),
        }
    }
}

impl QuantumBackend for RandomBackend {
    fn apply_gate(&mut self, _gate: Gate, _qubits: &[usize]) {}

    fn measure(&mut self, _qubit: usize) -> bool {
        self.rng.gen_bool(self.p_one)
    }

    fn reset(&mut self, _qubit: usize) {}
}

/// Scripted outcomes: per-qubit FIFO with a default for exhaustion.
#[derive(Debug, Clone, Default)]
pub struct FixedBackend {
    outcomes: std::collections::BTreeMap<usize, std::collections::VecDeque<bool>>,
    default: bool,
}

impl FixedBackend {
    /// Creates a backend returning `default` unless scripted otherwise.
    pub fn new(default: bool) -> FixedBackend {
        FixedBackend {
            outcomes: Default::default(),
            default,
        }
    }

    /// Scripts the next outcomes of `qubit` (consumed FIFO).
    pub fn script(&mut self, qubit: usize, outcomes: impl IntoIterator<Item = bool>) {
        self.outcomes.entry(qubit).or_default().extend(outcomes);
    }
}

impl QuantumBackend for FixedBackend {
    fn apply_gate(&mut self, _gate: Gate, _qubits: &[usize]) {}

    fn measure(&mut self, qubit: usize) -> bool {
        self.outcomes
            .get_mut(&qubit)
            .and_then(|q| q.pop_front())
            .unwrap_or(self.default)
    }

    fn reset(&mut self, _qubit: usize) {}
}

/// Stabilizer-tableau backend for Clifford workloads at QEC scale.
#[derive(Debug, Clone)]
pub struct StabilizerBackend {
    tableau: Stabilizer,
    rng: StdRng,
}

impl StabilizerBackend {
    /// Creates a seeded tableau over `num_qubits` qubits in |0…0⟩.
    pub fn new(num_qubits: usize, seed: u64) -> StabilizerBackend {
        StabilizerBackend {
            tableau: Stabilizer::new(num_qubits),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Read-only access to the tableau (verification aid).
    pub fn tableau(&self) -> &Stabilizer {
        &self.tableau
    }
}

impl QuantumBackend for StabilizerBackend {
    fn apply_gate(&mut self, gate: Gate, qubits: &[usize]) {
        self.tableau.apply_gate(gate, qubits);
    }

    fn measure(&mut self, qubit: usize) -> bool {
        self.tableau.measure(qubit, &mut self.rng)
    }

    fn reset(&mut self, qubit: usize) {
        self.tableau.reset(qubit, &mut self.rng);
    }
}

/// Dense state-vector backend for small non-Clifford workloads.
#[derive(Debug, Clone)]
pub struct StateVectorBackend {
    state: StateVector,
    rng: StdRng,
}

impl StateVectorBackend {
    /// Creates a seeded state vector over `num_qubits` qubits in |0…0⟩.
    pub fn new(num_qubits: usize, seed: u64) -> StateVectorBackend {
        StateVectorBackend {
            state: StateVector::new(num_qubits),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Read-only access to the state (verification aid).
    pub fn state(&self) -> &StateVector {
        &self.state
    }
}

impl QuantumBackend for StateVectorBackend {
    fn apply_gate(&mut self, gate: Gate, qubits: &[usize]) {
        self.state.apply_gate(gate, qubits);
    }

    fn measure(&mut self, qubit: usize) -> bool {
        self.state.measure(qubit, &mut self.rng)
    }

    fn reset(&mut self, qubit: usize) {
        self.state.reset(qubit, &mut self.rng);
    }
}

/// Stabilizer backend with sampled Pauli noise: after every committed
/// Clifford gate, each operand qubit suffers a uniform X/Y/Z error with
/// the model's arity-dependent probability, and readouts are flipped
/// with `p_meas` (a classical assignment error — the tableau is not
/// collapsed differently).
///
/// Channel sampling draws from a seeded [`NoiseStream`] that is
/// independent of the tableau's measurement RNG, so with
/// [`NoiseMap::default()`] (no draws at all) this backend's outcome
/// sequence is byte-identical to [`StabilizerBackend`] at the same
/// seed.
///
/// # Example
///
/// ```
/// use hisq_quantum::{Gate, NoiseModel};
/// use hisq_sim::{NoisyStabilizerBackend, QuantumBackend};
///
/// let noise = NoiseModel::default().with_gate_errors(1e-3, 1e-2);
/// let mut backend = NoisyStabilizerBackend::new(2, 7, noise);
/// backend.apply_gate(Gate::X, &[0]);
/// let _bit = backend.measure(0);
/// ```
#[derive(Debug, Clone)]
pub struct NoisyStabilizerBackend {
    tableau: Stabilizer,
    rng: StdRng,
    noise: NoiseMap,
    stream: NoiseStream,
    sampled_errors: u64,
}

impl NoisyStabilizerBackend {
    /// Creates a seeded noisy tableau over `num_qubits` qubits in
    /// |0…0⟩. The measurement RNG and the noise stream both derive
    /// from `seed` (by different generators, so the streams are
    /// independent). `noise` accepts a plain
    /// [`NoiseModel`](hisq_quantum::NoiseModel) (a uniform map) or a
    /// [`NoiseMap`] with per-qubit overrides.
    pub fn new(num_qubits: usize, seed: u64, noise: impl Into<NoiseMap>) -> NoisyStabilizerBackend {
        NoisyStabilizerBackend {
            tableau: Stabilizer::new(num_qubits),
            rng: StdRng::seed_from_u64(seed),
            noise: noise.into(),
            stream: NoiseStream::new(seed),
            sampled_errors: 0,
        }
    }

    /// Read-only access to the tableau (verification aid).
    pub fn tableau(&self) -> &Stabilizer {
        &self.tableau
    }

    /// The configured per-qubit noise map.
    pub fn noise(&self) -> &NoiseMap {
        &self.noise
    }

    /// Number of error events sampled so far (Pauli injections plus
    /// readout flips) — a cheap observability hook for tests.
    pub fn sampled_errors(&self) -> u64 {
        self.sampled_errors
    }

    /// Samples the post-gate Pauli channel on one qubit.
    fn pauli_error(&mut self, p: f64, qubit: usize) {
        if !self.stream.bernoulli(p) {
            return;
        }
        self.sampled_errors += 1;
        match self.stream.next_u64() % 3 {
            0 => self.tableau.x(qubit),
            1 => self.tableau.y(qubit),
            _ => self.tableau.z(qubit),
        }
    }
}

impl QuantumBackend for NoisyStabilizerBackend {
    /// Applies a Clifford gate, then samples one Pauli-error
    /// opportunity per operand qubit.
    ///
    /// # Panics
    ///
    /// Panics on non-Clifford gates, like [`StabilizerBackend`].
    fn apply_gate(&mut self, gate: Gate, qubits: &[usize]) {
        self.tableau.apply_gate(gate, qubits);
        let single = gate.arity() == 1;
        for &q in qubits {
            let model = self.noise.model_for(q);
            let p = if single {
                model.p_gate_1q
            } else {
                model.p_gate_2q
            };
            self.pauli_error(p, q);
        }
    }

    fn measure(&mut self, qubit: usize) -> bool {
        let outcome = self.tableau.measure(qubit, &mut self.rng);
        if self.stream.bernoulli(self.noise.model_for(qubit).p_meas) {
            self.sampled_errors += 1;
            return !outcome;
        }
        outcome
    }

    fn reset(&mut self, qubit: usize) {
        self.tableau.reset(qubit, &mut self.rng);
    }
}

/// Leakage-aware variant of [`RandomBackend`]: every two-qubit-gate
/// operand leaks out of the computational subspace with `p_leak`;
/// a leaked qubit's readout is **sticky** — it discriminates as `1`
/// on every measurement until an active reset returns it to |0⟩.
///
/// Only `p_leak` is *sampled* here (the other rates of the model are
/// scored analytically by
/// [`NoiseModel::infidelity`](hisq_quantum::NoiseModel::infidelity);
/// flipping an
/// already-fair coin would not change the outcome distribution). Leak
/// draws come from a seeded [`NoiseStream`] separate from the outcome
/// RNG, and are taken for every opportunity regardless of the qubit's
/// current state — so the leaked population is monotone in `p_leak`
/// at a fixed seed, and with `p_leak = 0` the backend is
/// byte-identical to [`RandomBackend`].
///
/// # Example
///
/// ```
/// use hisq_quantum::{Gate, NoiseModel};
/// use hisq_sim::{LeakyRandomBackend, QuantumBackend};
///
/// let noise = NoiseModel::default().with_leak(1.0); // always leaks
/// let mut backend = LeakyRandomBackend::new(3, 0.5, noise);
/// backend.apply_gate(Gate::Cx, &[0, 1]);
/// assert!(backend.is_leaked(0) && backend.is_leaked(1));
/// assert!(backend.measure(0), "leaked qubits read out as 1");
/// backend.reset(0);
/// assert!(!backend.is_leaked(0));
/// ```
#[derive(Debug, Clone)]
pub struct LeakyRandomBackend {
    rng: StdRng,
    p_one: f64,
    noise: NoiseMap,
    stream: NoiseStream,
    /// Currently-leaked qubits; membership alone encodes the sticky
    /// `1` readout.
    leaked: BTreeSet<usize>,
}

impl LeakyRandomBackend {
    /// Creates a seeded leaky backend (`p_one` = probability an
    /// unleaked measurement returns 1, as in [`RandomBackend`]).
    /// `noise` accepts a plain [`NoiseModel`](hisq_quantum::NoiseModel)
    /// (a uniform map) or a [`NoiseMap`] with per-qubit overrides.
    pub fn new(seed: u64, p_one: f64, noise: impl Into<NoiseMap>) -> LeakyRandomBackend {
        LeakyRandomBackend {
            rng: StdRng::seed_from_u64(seed),
            p_one: p_one.clamp(0.0, 1.0),
            noise: noise.into(),
            stream: NoiseStream::new(seed),
            leaked: BTreeSet::new(),
        }
    }

    /// The configured per-qubit noise map.
    pub fn noise(&self) -> &NoiseMap {
        &self.noise
    }

    /// `true` if `qubit` is currently leaked.
    pub fn is_leaked(&self, qubit: usize) -> bool {
        self.leaked.contains(&qubit)
    }

    /// Number of currently-leaked qubits (the monotonicity proptest's
    /// observable).
    pub fn leaked_count(&self) -> usize {
        self.leaked.len()
    }
}

impl QuantumBackend for LeakyRandomBackend {
    fn apply_gate(&mut self, gate: Gate, qubits: &[usize]) {
        if gate.arity() < 2 {
            return;
        }
        for &q in qubits {
            // Draw for every operand — even already-leaked ones — so
            // the stream position depends only on the gate sequence,
            // which is what couples runs at different p_leak values.
            if self.stream.bernoulli(self.noise.model_for(q).p_leak) {
                self.leaked.insert(q);
            }
        }
    }

    fn measure(&mut self, qubit: usize) -> bool {
        if self.leaked.contains(&qubit) {
            return true;
        }
        self.rng.gen_bool(self.p_one)
    }

    fn reset(&mut self, qubit: usize) {
        self.leaked.remove(&qubit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisq_quantum::NoiseModel;

    #[test]
    fn random_backend_is_seed_deterministic() {
        let mut a = RandomBackend::new(1, 0.5);
        let mut b = RandomBackend::new(1, 0.5);
        for q in 0..32 {
            assert_eq!(a.measure(q), b.measure(q));
        }
    }

    #[test]
    fn fixed_backend_scripts_then_defaults() {
        let mut f = FixedBackend::new(false);
        f.script(2, [true, true]);
        assert!(f.measure(2));
        assert!(f.measure(2));
        assert!(!f.measure(2)); // exhausted → default
        assert!(!f.measure(5)); // unscripted → default
    }

    #[test]
    fn stabilizer_backend_tracks_gates() {
        let mut s = StabilizerBackend::new(2, 3);
        s.apply_gate(Gate::X, &[0]);
        s.apply_gate(Gate::Cx, &[0, 1]);
        assert!(s.measure(0));
        assert!(s.measure(1));
    }

    #[test]
    fn statevector_backend_tracks_gates() {
        let mut s = StateVectorBackend::new(2, 3);
        s.apply_gate(Gate::X, &[1]);
        assert!(!s.measure(0));
        assert!(s.measure(1));
    }

    #[test]
    fn noisy_stabilizer_with_default_model_matches_noiseless_twin() {
        let mut noiseless = StabilizerBackend::new(4, 11);
        let mut noisy = NoisyStabilizerBackend::new(4, 11, NoiseModel::default());
        for round in 0..16 {
            noiseless.apply_gate(Gate::H, &[round % 4]);
            noisy.apply_gate(Gate::H, &[round % 4]);
            noiseless.apply_gate(Gate::Cx, &[round % 4, (round + 1) % 4]);
            noisy.apply_gate(Gate::Cx, &[round % 4, (round + 1) % 4]);
            for q in 0..4 {
                assert_eq!(noiseless.measure(q), noisy.measure(q));
            }
        }
        assert_eq!(noisy.sampled_errors(), 0);
    }

    #[test]
    fn noisy_stabilizer_certain_error_flips_deterministic_outcome() {
        // p_meas = 1 flips every readout: a fresh |0> measures 1.
        let noise = NoiseModel::default().with_meas_error(1.0);
        let mut backend = NoisyStabilizerBackend::new(1, 0, noise);
        assert!(backend.measure(0));
        assert_eq!(backend.sampled_errors(), 1);

        // p_1q = 1 injects a Pauli after every 1q gate; an X-or-Y error
        // after the identity-like double-X leaves |0> flipped half the
        // time — just assert errors were actually sampled.
        let noise = NoiseModel::default().with_gate_errors(1.0, 1.0);
        let mut backend = NoisyStabilizerBackend::new(1, 0, noise);
        backend.apply_gate(Gate::X, &[0]);
        assert_eq!(backend.sampled_errors(), 1);
    }

    #[test]
    fn leaky_backend_with_default_model_matches_random_twin() {
        let mut plain = RandomBackend::new(5, 0.5);
        let mut leaky = LeakyRandomBackend::new(5, 0.5, NoiseModel::default());
        for q in 0..64 {
            leaky.apply_gate(Gate::Cx, &[q % 4, (q + 1) % 4]);
            assert_eq!(plain.measure(q % 4), leaky.measure(q % 4));
        }
        assert_eq!(leaky.leaked_count(), 0);
    }

    #[test]
    fn leaked_qubits_are_sticky_until_reset() {
        let noise = NoiseModel::default().with_leak(1.0);
        let mut backend = LeakyRandomBackend::new(1, 0.5, noise);
        backend.apply_gate(Gate::H, &[0]);
        assert!(!backend.is_leaked(0), "1q gates never leak");
        backend.apply_gate(Gate::Cz, &[0, 2]);
        assert!(backend.is_leaked(0) && backend.is_leaked(2));
        for _ in 0..8 {
            assert!(backend.measure(0), "sticky outcome");
        }
        backend.reset(0);
        assert!(!backend.is_leaked(0));
        assert_eq!(backend.leaked_count(), 1, "qubit 2 still leaked");
    }
}
