//! Pluggable quantum backends supplying measurement outcomes to the
//! simulated control system.
//!
//! Timing experiments (Figure 15/16) need only a *distribution* of
//! feedback branches, so they use [`RandomBackend`] or [`FixedBackend`].
//! Correctness verification replays every committed gate into a real
//! simulator ([`StabilizerBackend`] or [`StateVectorBackend`]) so that
//! measurement results are quantum-mechanically consistent.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hisq_quantum::{Gate, Stabilizer, StateVector};

/// A source of measurement outcomes that optionally tracks gates.
pub trait QuantumBackend {
    /// Applies a committed gate (no-op for statistical backends).
    fn apply_gate(&mut self, gate: Gate, qubits: &[usize]);

    /// Measures `qubit` in the Z basis, collapsing backend state if any.
    fn measure(&mut self, qubit: usize) -> bool;

    /// Resets `qubit` to |0⟩ (no-op for statistical backends).
    fn reset(&mut self, qubit: usize);
}

/// Statistically independent outcomes with probability `p_one` of 1.
///
/// # Example
///
/// ```
/// use hisq_sim::{QuantumBackend, RandomBackend};
///
/// let mut backend = RandomBackend::new(7, 0.5);
/// let _bit = backend.measure(3);
/// ```
#[derive(Debug, Clone)]
pub struct RandomBackend {
    rng: StdRng,
    p_one: f64,
}

impl RandomBackend {
    /// Creates a seeded random backend.
    pub fn new(seed: u64, p_one: f64) -> RandomBackend {
        RandomBackend {
            rng: StdRng::seed_from_u64(seed),
            p_one: p_one.clamp(0.0, 1.0),
        }
    }
}

impl QuantumBackend for RandomBackend {
    fn apply_gate(&mut self, _gate: Gate, _qubits: &[usize]) {}

    fn measure(&mut self, _qubit: usize) -> bool {
        self.rng.gen_bool(self.p_one)
    }

    fn reset(&mut self, _qubit: usize) {}
}

/// Scripted outcomes: per-qubit FIFO with a default for exhaustion.
#[derive(Debug, Clone, Default)]
pub struct FixedBackend {
    outcomes: std::collections::BTreeMap<usize, std::collections::VecDeque<bool>>,
    default: bool,
}

impl FixedBackend {
    /// Creates a backend returning `default` unless scripted otherwise.
    pub fn new(default: bool) -> FixedBackend {
        FixedBackend {
            outcomes: Default::default(),
            default,
        }
    }

    /// Scripts the next outcomes of `qubit` (consumed FIFO).
    pub fn script(&mut self, qubit: usize, outcomes: impl IntoIterator<Item = bool>) {
        self.outcomes.entry(qubit).or_default().extend(outcomes);
    }
}

impl QuantumBackend for FixedBackend {
    fn apply_gate(&mut self, _gate: Gate, _qubits: &[usize]) {}

    fn measure(&mut self, qubit: usize) -> bool {
        self.outcomes
            .get_mut(&qubit)
            .and_then(|q| q.pop_front())
            .unwrap_or(self.default)
    }

    fn reset(&mut self, _qubit: usize) {}
}

/// Stabilizer-tableau backend for Clifford workloads at QEC scale.
#[derive(Debug, Clone)]
pub struct StabilizerBackend {
    tableau: Stabilizer,
    rng: StdRng,
}

impl StabilizerBackend {
    /// Creates a seeded tableau over `num_qubits` qubits in |0…0⟩.
    pub fn new(num_qubits: usize, seed: u64) -> StabilizerBackend {
        StabilizerBackend {
            tableau: Stabilizer::new(num_qubits),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Read-only access to the tableau (verification aid).
    pub fn tableau(&self) -> &Stabilizer {
        &self.tableau
    }
}

impl QuantumBackend for StabilizerBackend {
    fn apply_gate(&mut self, gate: Gate, qubits: &[usize]) {
        self.tableau.apply_gate(gate, qubits);
    }

    fn measure(&mut self, qubit: usize) -> bool {
        self.tableau.measure(qubit, &mut self.rng)
    }

    fn reset(&mut self, qubit: usize) {
        self.tableau.reset(qubit, &mut self.rng);
    }
}

/// Dense state-vector backend for small non-Clifford workloads.
#[derive(Debug, Clone)]
pub struct StateVectorBackend {
    state: StateVector,
    rng: StdRng,
}

impl StateVectorBackend {
    /// Creates a seeded state vector over `num_qubits` qubits in |0…0⟩.
    pub fn new(num_qubits: usize, seed: u64) -> StateVectorBackend {
        StateVectorBackend {
            state: StateVector::new(num_qubits),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Read-only access to the state (verification aid).
    pub fn state(&self) -> &StateVector {
        &self.state
    }
}

impl QuantumBackend for StateVectorBackend {
    fn apply_gate(&mut self, gate: Gate, qubits: &[usize]) {
        self.state.apply_gate(gate, qubits);
    }

    fn measure(&mut self, qubit: usize) -> bool {
        self.state.measure(qubit, &mut self.rng)
    }

    fn reset(&mut self, qubit: usize) {
        self.state.reset(qubit, &mut self.rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_backend_is_seed_deterministic() {
        let mut a = RandomBackend::new(1, 0.5);
        let mut b = RandomBackend::new(1, 0.5);
        for q in 0..32 {
            assert_eq!(a.measure(q), b.measure(q));
        }
    }

    #[test]
    fn fixed_backend_scripts_then_defaults() {
        let mut f = FixedBackend::new(false);
        f.script(2, [true, true]);
        assert!(f.measure(2));
        assert!(f.measure(2));
        assert!(!f.measure(2)); // exhausted → default
        assert!(!f.measure(5)); // unscripted → default
    }

    #[test]
    fn stabilizer_backend_tracks_gates() {
        let mut s = StabilizerBackend::new(2, 3);
        s.apply_gate(Gate::X, &[0]);
        s.apply_gate(Gate::Cx, &[0, 1]);
        assert!(s.measure(0));
        assert!(s.measure(1));
    }

    #[test]
    fn statevector_backend_tracks_gates() {
        let mut s = StateVectorBackend::new(2, 3);
        s.apply_gate(Gate::X, &[1]);
        assert!(!s.measure(0));
        assert!(s.measure(1));
    }
}
