//! Engine configuration, failure modes, and the post-run report —
//! the plain-data boundary types of the simulator's public API.

use std::error::Error;
use std::fmt;

use hisq_core::{BlockReason, NodeAddr};
use hisq_net::RouterError;
use hisq_quantum::{GateDurations, OpCounts};

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Deliver region max-time broadcasts with zero latency (the paper's
    /// §4.4 accounting — see the crate docs). Default `true`.
    pub idealize_downlink: bool,
    /// Latency for classical `send`s between nodes without a calibrated
    /// link, in cycles. Default 25 (100 ns). (Tree-edge latencies always
    /// come from calibrated links or the attached topology: a `sync`
    /// against an uncalibrated target faults the controller, so no
    /// router-edge default exists.)
    pub default_classical_latency: u64,
    /// Abort the run after this many processed events (runaway guard).
    pub max_events: u64,
    /// Operation durations used for exposure accounting.
    pub durations: GateDurations,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            idealize_downlink: true,
            default_classical_latency: 25,
            max_events: 200_000_000,
            durations: GateDurations::PAPER,
        }
    }
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The event budget was exhausted (runaway program guard).
    EventBudgetExceeded {
        /// The configured budget.
        budget: u64,
    },
    /// A node address was used twice.
    DuplicateAddr(NodeAddr),
    /// A spec referenced an address that is not a registered
    /// controller (dangling hub subscriber, binding, or measurement
    /// port).
    UnknownAddr {
        /// The dangling address.
        addr: NodeAddr,
        /// What referenced it (e.g. `"hub subscriber"`).
        role: &'static str,
    },
    /// A router detected a routing-invariant violation mid-run (a
    /// booking from a non-child, or a mis-rooted tree with no parent
    /// to forward to).
    Router(RouterError),
}

impl From<RouterError> for SimError {
    fn from(e: RouterError) -> SimError {
        SimError::Router(e)
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::EventBudgetExceeded { budget } => {
                write!(f, "event budget of {budget} exceeded (runaway program?)")
            }
            SimError::DuplicateAddr(a) => write!(f, "node address {a} registered twice"),
            SimError::UnknownAddr { addr, role } => {
                write!(f, "{role} references unknown controller address {addr}")
            }
            SimError::Router(e) => write!(f, "routing fault: {e}"),
        }
    }
}

impl Error for SimError {}

/// Post-run statistics of one contended directed link (only links that
/// carried at least one message under a non-transparent
/// [`LinkModel`](hisq_net::LinkModel) appear).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkReport {
    /// Sending node address.
    pub from: NodeAddr,
    /// Receiving node address.
    pub to: NodeAddr,
    /// Transmission attempts carried (including retransmissions).
    pub messages: u64,
    /// Peak number of simultaneously busy serialization slots; never
    /// exceeds the model's `capacity`.
    pub peak_occupancy: u32,
    /// Retransmissions after a lossy attempt.
    pub retransmits: u64,
    /// Messages abandoned after exhausting the drop policy's attempt
    /// budget (the receiver never sees these).
    pub dropped: u64,
}

/// Post-run summary.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// `true` if every controller reached `stop`.
    pub all_halted: bool,
    /// Controllers left blocked (deadlock diagnosis).
    pub blocked: Vec<(NodeAddr, BlockReason)>,
    /// Controllers that faulted, with messages.
    pub faulted: Vec<(NodeAddr, String)>,
    /// Latest wall-clock cycle reached by any controller.
    pub makespan_cycles: u64,
    /// Makespan in nanoseconds.
    pub makespan_ns: u64,
    /// Events processed by the engine.
    pub events_processed: u64,
    /// Gate-replay ordering violations (0 for well-formed programs).
    pub causality_warnings: u64,
    /// Sends whose latency had to fall back to
    /// [`SimConfig::default_classical_latency`] even though a topology
    /// was attached — a wiring bug (the destination is unknown to the
    /// topology), debug-asserted in debug builds and counted here in
    /// release builds. Always 0 for well-wired systems.
    pub routing_warnings: u64,
    /// Total TCU stall cycles across all controllers.
    pub total_stall_cycles: u64,
    /// Total instructions retired across all controllers.
    pub total_instructions: u64,
    /// Total `sync` instructions retired.
    pub total_syncs: u64,
    /// Committed quantum operations (1q/2q gates, measurements,
    /// resets) — the denominators of the analytic gate-error scoring
    /// ([`hisq_quantum::NoiseModel::infidelity`]).
    pub quantum_ops: OpCounts,
    /// Per-link contention statistics, ordered by `(from, to)` address
    /// pair. Empty when every link ran the transparent default model.
    pub link_stats: Vec<LinkReport>,
}

impl SimReport {
    /// Sum of retransmissions across every contended link.
    pub fn total_retransmits(&self) -> u64 {
        self.link_stats.iter().map(|l| l.retransmits).sum()
    }

    /// Sum of abandoned messages across every contended link.
    pub fn total_dropped(&self) -> u64 {
        self.link_stats.iter().map(|l| l.dropped).sum()
    }

    /// Highest peak slot occupancy observed on any contended link.
    pub fn peak_link_occupancy(&self) -> u32 {
        self.link_stats
            .iter()
            .map(|l| l.peak_occupancy)
            .max()
            .unwrap_or(0)
    }
}
