//! Engine configuration, failure modes, and the post-run report —
//! the plain-data boundary types of the simulator's public API.

use std::error::Error;
use std::fmt;

use hisq_core::{BlockReason, NodeAddr};
use hisq_quantum::GateDurations;

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Deliver region max-time broadcasts with zero latency (the paper's
    /// §4.4 accounting — see the crate docs). Default `true`.
    pub idealize_downlink: bool,
    /// Latency for classical `send`s between nodes without a calibrated
    /// link, in cycles. Default 25 (100 ns). (Tree-edge latencies always
    /// come from calibrated links or the attached topology: a `sync`
    /// against an uncalibrated target faults the controller, so no
    /// router-edge default exists.)
    pub default_classical_latency: u64,
    /// Abort the run after this many processed events (runaway guard).
    pub max_events: u64,
    /// Operation durations used for exposure accounting.
    pub durations: GateDurations,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            idealize_downlink: true,
            default_classical_latency: 25,
            max_events: 200_000_000,
            durations: GateDurations::PAPER,
        }
    }
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The event budget was exhausted (runaway program guard).
    EventBudgetExceeded {
        /// The configured budget.
        budget: u64,
    },
    /// A node address was used twice.
    DuplicateAddr(NodeAddr),
    /// A spec referenced an address that is not a registered
    /// controller (dangling hub subscriber, binding, or measurement
    /// port).
    UnknownAddr {
        /// The dangling address.
        addr: NodeAddr,
        /// What referenced it (e.g. `"hub subscriber"`).
        role: &'static str,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::EventBudgetExceeded { budget } => {
                write!(f, "event budget of {budget} exceeded (runaway program?)")
            }
            SimError::DuplicateAddr(a) => write!(f, "node address {a} registered twice"),
            SimError::UnknownAddr { addr, role } => {
                write!(f, "{role} references unknown controller address {addr}")
            }
        }
    }
}

impl Error for SimError {}

/// Post-run summary.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// `true` if every controller reached `stop`.
    pub all_halted: bool,
    /// Controllers left blocked (deadlock diagnosis).
    pub blocked: Vec<(NodeAddr, BlockReason)>,
    /// Controllers that faulted, with messages.
    pub faulted: Vec<(NodeAddr, String)>,
    /// Latest wall-clock cycle reached by any controller.
    pub makespan_cycles: u64,
    /// Makespan in nanoseconds.
    pub makespan_ns: u64,
    /// Events processed by the engine.
    pub events_processed: u64,
    /// Gate-replay ordering violations (0 for well-formed programs).
    pub causality_warnings: u64,
    /// Total TCU stall cycles across all controllers.
    pub total_stall_cycles: u64,
    /// Total instructions retired across all controllers.
    pub total_instructions: u64,
    /// Total `sync` instructions retired.
    pub total_syncs: u64,
}
