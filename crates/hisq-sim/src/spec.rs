//! The declarative system description and its validating builder.
//!
//! A [`SystemSpec`] is *data*: the nodes of a deployment (controllers
//! with their programs, routers, broadcast hubs), the topology the
//! links were calibrated against, the quantum bindings, and the
//! backend choice. Nothing is checked while a spec is being described;
//! [`SystemSpec::build`] validates the whole description once —
//! address collisions, dangling binding targets, unknown hub
//! subscribers — and lowers it into the arena-indexed
//! [`System`], interning every [`NodeAddr`] into a
//! dense node id so the event loop never walks an address map.
//!
//! This is the **only** construction path for a [`System`]: the
//! experiment harness (`distributed_hisq::runner::build_system`), the
//! figure reproductions, the examples, and the integration tests all
//! describe their deployment as a spec and build it.
//!
//! # Example
//!
//! ```
//! use hisq_core::NodeConfig;
//! use hisq_isa::Assembler;
//! use hisq_sim::SystemSpec;
//!
//! let asm = |src| Assembler::new().assemble(src).unwrap().insts().to_vec();
//! let mut spec = SystemSpec::new();
//! spec.controller(
//!     NodeConfig::new(0).with_neighbor(1, 6),
//!     asm("waiti 40\nsync 1\nwaiti 6\ncw.i.i 0, 1\nstop"),
//! );
//! spec.controller(
//!     NodeConfig::new(1).with_neighbor(0, 6),
//!     asm("waiti 90\nsync 0\nwaiti 6\ncw.i.i 0, 1\nstop"),
//! );
//! let mut system = spec.build().unwrap();
//! let report = system.run().unwrap();
//! assert!(report.all_halted);
//! ```

use std::collections::BTreeMap;

use hisq_core::{NodeAddr, NodeConfig};
use hisq_isa::Inst;
use hisq_net::{FabricMap, LinkModel, Router, Topology};

use crate::backend::{
    FixedBackend, LeakyRandomBackend, NoisyStabilizerBackend, QuantumBackend, RandomBackend,
    StabilizerBackend, StateVectorBackend,
};
use crate::config::{SimConfig, SimError};
use crate::engine::System;
use crate::nodes::{ControllerNode, Hub, HubNode, MeasBinding, NodeId, QuantumAction, SimNode};

/// Declarative choice of the quantum backend a built system starts
/// with. Custom backend instances (e.g. a scripted
/// [`FixedBackend`]) can still be swapped in after
/// building via [`System::set_backend`].
#[derive(Debug, Clone, PartialEq)]
pub enum BackendSpec {
    /// Seeded random measurement outcomes (the sweep default).
    Random {
        /// RNG seed.
        seed: u64,
        /// Probability of measuring `1`.
        p_one: f64,
    },
    /// Constant measurement outcomes.
    Fixed {
        /// The outcome every measurement returns.
        outcome: bool,
    },
    /// Stabilizer (Clifford) simulation.
    Stabilizer {
        /// Number of simulated qubits.
        qubits: usize,
        /// RNG seed for non-deterministic outcomes.
        seed: u64,
    },
    /// Full state-vector simulation.
    StateVector {
        /// Number of simulated qubits.
        qubits: usize,
        /// RNG seed for outcome sampling.
        seed: u64,
    },
    /// Stabilizer simulation with sampled Pauli gate noise and readout
    /// flips (see
    /// [`NoisyStabilizerBackend`]). With
    /// `noise == NoiseMap::default()` this is byte-identical to
    /// [`BackendSpec::Stabilizer`] at the same seed.
    NoisyStabilizer {
        /// Number of simulated qubits.
        qubits: usize,
        /// RNG seed (measurement outcomes and channel sampling).
        seed: u64,
        /// Per-operation error rates: a uniform default plus per-qubit
        /// overrides (a plain `NoiseModel` converts into a uniform
        /// map).
        noise: hisq_quantum::NoiseMap,
    },
    /// Seeded random outcomes with sticky leakage (see
    /// [`LeakyRandomBackend`]). With
    /// `noise == NoiseMap::default()` this is byte-identical to
    /// [`BackendSpec::Random`] at the same seed.
    Leaky {
        /// RNG seed.
        seed: u64,
        /// Probability an unleaked measurement returns `1`.
        p_one: f64,
        /// Per-operation error rates (only each qubit's `p_leak` is
        /// sampled here; the rest feed the analytic
        /// [`NoiseModel`](hisq_quantum::NoiseModel) scoring).
        noise: hisq_quantum::NoiseMap,
    },
}

impl Default for BackendSpec {
    /// The historical engine default: seed 0, fair coin.
    fn default() -> BackendSpec {
        BackendSpec::Random {
            seed: 0,
            p_one: 0.5,
        }
    }
}

impl BackendSpec {
    fn instantiate(&self) -> Box<dyn QuantumBackend> {
        match self {
            BackendSpec::Random { seed, p_one } => Box::new(RandomBackend::new(*seed, *p_one)),
            BackendSpec::Fixed { outcome } => Box::new(FixedBackend::new(*outcome)),
            BackendSpec::Stabilizer { qubits, seed } => {
                Box::new(StabilizerBackend::new(*qubits, *seed))
            }
            BackendSpec::StateVector { qubits, seed } => {
                Box::new(StateVectorBackend::new(*qubits, *seed))
            }
            BackendSpec::NoisyStabilizer {
                qubits,
                seed,
                noise,
            } => Box::new(NoisyStabilizerBackend::new(*qubits, *seed, noise.clone())),
            BackendSpec::Leaky { seed, p_one, noise } => {
                Box::new(LeakyRandomBackend::new(*seed, *p_one, noise.clone()))
            }
        }
    }
}

/// A complete, declarative description of a Distributed-HISQ
/// deployment. See the [module docs](self) for the building/validation
/// contract.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SystemSpec {
    pub(crate) config: SimConfig,
    pub(crate) backend: BackendSpec,
    pub(crate) controllers: Vec<(NodeConfig, Vec<Inst>)>,
    pub(crate) routers: Vec<Router>,
    pub(crate) hubs: Vec<(NodeAddr, Hub)>,
    pub(crate) topology: Option<Topology>,
    pub(crate) fabric: FabricMap,
    pub(crate) bindings: Vec<(NodeAddr, u32, u32, QuantumAction)>,
    pub(crate) meas_ports: Vec<(NodeAddr, u32, MeasBinding)>,
}

impl SystemSpec {
    /// An empty spec with default engine configuration and backend.
    pub fn new() -> SystemSpec {
        SystemSpec::default()
    }

    /// A spec pre-populated from a topology: every router of the tree,
    /// one controller per program (with the topology's calibrated
    /// links), and the topology attached for multi-hop latency
    /// derivation. Collisions between program addresses and tree
    /// routers surface as [`SimError::DuplicateAddr`] at build time.
    pub fn from_topology(topology: &Topology, programs: BTreeMap<NodeAddr, Vec<Inst>>) -> Self {
        let mut spec = SystemSpec::new();
        for &router_addr in topology.routers() {
            spec.router(Router::new(
                router_addr,
                topology.parent_of(router_addr),
                topology.children_of(router_addr).to_vec(),
            ));
        }
        for (addr, program) in programs {
            // A program keyed at a router (or otherwise non-controller)
            // address gets a bare config; `build` then reports the
            // address collision instead of silently shadowing the node.
            let config = if (addr as usize) < topology.num_controllers() {
                topology.node_config(addr)
            } else {
                NodeConfig::new(addr)
            };
            spec.controller(config, program);
        }
        spec.topology = Some(topology.clone());
        spec.fabric = topology.fabric().clone();
        spec
    }

    /// Replaces the engine configuration.
    pub fn config(&mut self, config: SimConfig) -> &mut Self {
        self.config = config;
        self
    }

    /// Replaces the declarative backend choice (default: seeded 50/50
    /// random outcomes).
    pub fn backend(&mut self, backend: BackendSpec) -> &mut Self {
        self.backend = backend;
        self
    }

    /// Attaches the topology used for multi-hop latency derivation
    /// (pre-set by [`SystemSpec::from_topology`]).
    ///
    /// A contention fabric configured on the topology
    /// ([`TopologyBuilder::link_model`](hisq_net::TopologyBuilder::link_model)
    /// /
    /// [`TopologyBuilder::link_model_for`](hisq_net::TopologyBuilder::link_model_for))
    /// is adopted — call [`SystemSpec::link_model`] or
    /// [`SystemSpec::link_model_for`] *after* this to override it.
    pub fn topology(&mut self, topology: Topology) -> &mut Self {
        if *topology.fabric() != FabricMap::default() {
            self.fabric = topology.fabric().clone();
        }
        self.topology = Some(topology);
        self
    }

    /// Replaces the contention model every directed link runs by
    /// default (the transparent pure-latency model unless overridden;
    /// pre-set from the topology's fabric by
    /// [`SystemSpec::from_topology`]). Per-edge overrides set earlier
    /// are kept unless they now equal the new default.
    pub fn link_model(&mut self, model: LinkModel) -> &mut Self {
        self.fabric.set_default(model);
        self
    }

    /// Overrides the contention model of one directed link `from → to`
    /// (see [`FabricMap::set_edge`]).
    pub fn link_model_for(&mut self, from: NodeAddr, to: NodeAddr, model: LinkModel) -> &mut Self {
        self.fabric.set_edge(from, to, model);
        self
    }

    /// The per-edge contention fabric the built system will run.
    pub fn fabric(&self) -> &FabricMap {
        &self.fabric
    }

    /// Adds a controller node running `program`.
    pub fn controller(&mut self, config: NodeConfig, program: Vec<Inst>) -> &mut Self {
        self.controllers.push((config, program));
        self
    }

    /// Adds a router node.
    pub fn router(&mut self, router: Router) -> &mut Self {
        self.routers.push(router);
        self
    }

    /// Adds a broadcast hub at `addr` (see [`Hub`]).
    pub fn hub(&mut self, addr: NodeAddr, hub: Hub) -> &mut Self {
        self.hubs.push((addr, hub));
        self
    }

    /// Binds a `(node, port, codeword)` commit to a quantum action
    /// (later bindings of the same key win).
    pub fn bind(
        &mut self,
        node: NodeAddr,
        port: u32,
        codeword: u32,
        action: QuantumAction,
    ) -> &mut Self {
        self.bindings.push((node, port, codeword, action));
        self
    }

    /// Binds every commit on `(node, port)` to a measurement trigger.
    pub fn bind_measurement_port(
        &mut self,
        node: NodeAddr,
        port: u32,
        binding: MeasBinding,
    ) -> &mut Self {
        self.meas_ports.push((node, port, binding));
        self
    }

    /// Number of controllers described so far.
    pub fn num_controllers(&self) -> usize {
        self.controllers.len()
    }

    /// Validates the description and lowers it into a runnable
    /// [`System`]: addresses are interned into dense arena ids, hub
    /// subscribers are pre-resolved, and bindings are attached to
    /// their controllers.
    ///
    /// # Errors
    ///
    /// - [`SimError::DuplicateAddr`] if any two nodes share an address
    ///   (routers and hubs are registered before controllers, so a
    ///   program colliding with infrastructure reports the
    ///   infrastructure address);
    /// - [`SimError::UnknownAddr`] if a hub subscriber, binding, or
    ///   measurement port names an address that is not a controller.
    pub fn build(self) -> Result<System, SimError> {
        // Intern addresses in registration order: routers, hubs,
        // controllers. The arena vectors come from this thread's
        // retired-scratch pool (see [`crate::engine`]) so a sweep
        // worker lowering thousands of specs re-fills already-grown
        // allocations instead of reallocating per scenario.
        let mut scratch = crate::engine::take_scratch();
        let max_addr = self
            .routers
            .iter()
            .map(|r| r.addr())
            .chain(self.hubs.iter().map(|&(addr, _)| addr))
            .chain(self.controllers.iter().map(|(c, _)| c.addr))
            .max();
        let table_len = max_addr.map_or(0, |a| a as usize + 1);
        let mut addr_table = std::mem::take(&mut scratch.arena.addr_to_id);
        addr_table.clear();
        addr_table.resize(table_len, NodeId::MAX);
        let mut arena = Arena {
            addr_to_id: addr_table,
            addrs: std::mem::take(&mut scratch.arena.addrs),
            nodes: std::mem::take(&mut scratch.arena.nodes),
        };
        debug_assert!(arena.addrs.is_empty() && arena.nodes.is_empty());

        for router in self.routers {
            let addr = router.addr();
            arena.intern(addr, SimNode::Router(router))?;
        }
        // Hubs are interned with empty subscriber lists first;
        // subscribers resolve after every controller has an id.
        let mut hub_specs: Vec<(NodeId, Hub)> = Vec::new();
        for (addr, hub) in self.hubs {
            let id = arena.intern(
                addr,
                SimNode::Hub(HubNode {
                    subscriber_ids: Vec::new(),
                    down_latency: hub.down_latency,
                }),
            )?;
            hub_specs.push((id, hub));
        }
        for (config, program) in self.controllers {
            let addr = config.addr;
            arena.intern(
                addr,
                SimNode::Controller(Box::new(ControllerNode::new(config, program))),
            )?;
        }
        let Arena {
            addr_to_id,
            addrs,
            mut nodes,
        } = arena;

        for (hub_id, hub) in hub_specs {
            let ids = hub
                .subscribers
                .iter()
                .map(|&s| resolve_controller(&addr_to_id, &nodes, s, "hub subscriber"))
                .collect::<Result<Vec<NodeId>, SimError>>()?;
            let SimNode::Hub(node) = &mut nodes[hub_id as usize] else {
                unreachable!("interned as hub");
            };
            node.subscriber_ids = ids;
        }
        for (addr, port, codeword, action) in self.bindings {
            let id = resolve_controller(&addr_to_id, &nodes, addr, "binding node")?;
            let node = nodes[id as usize]
                .as_controller_mut()
                .expect("resolved as controller");
            node.bindings.insert((port, codeword), action);
        }
        for (addr, port, binding) in self.meas_ports {
            let id = resolve_controller(&addr_to_id, &nodes, addr, "measurement port node")?;
            let node = nodes[id as usize]
                .as_controller_mut()
                .expect("resolved as controller");
            node.meas_ports.insert(port, binding);
        }

        // Controllers step in ascending address order (the engine's
        // deterministic scheduling contract).
        let mut controller_ids = std::mem::take(&mut scratch.arena.controller_ids);
        debug_assert!(controller_ids.is_empty());
        controller_ids.extend(
            nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| n.as_controller().is_some())
                .map(|(i, _)| i as NodeId),
        );
        controller_ids.sort_by_key(|&id| addrs[id as usize]);

        Ok(System::from_parts(
            self.config,
            Arena {
                addr_to_id,
                addrs,
                nodes,
            },
            controller_ids,
            self.topology,
            self.backend.instantiate(),
            self.fabric,
            scratch,
        ))
    }
}

/// The three parallel arrays [`SystemSpec::build`] populates while
/// interning addresses (and hands to the engine whole).
pub(crate) struct Arena {
    pub(crate) addr_to_id: Vec<NodeId>,
    pub(crate) addrs: Vec<hisq_core::NodeAddr>,
    pub(crate) nodes: Vec<SimNode>,
}

impl Arena {
    fn intern(&mut self, addr: NodeAddr, node: SimNode) -> Result<NodeId, SimError> {
        let slot = &mut self.addr_to_id[addr as usize];
        if *slot != NodeId::MAX {
            return Err(SimError::DuplicateAddr(addr));
        }
        let id = self.nodes.len() as NodeId;
        *slot = id;
        self.addrs.push(addr);
        self.nodes.push(node);
        Ok(id)
    }
}

/// Resolves `addr` to the arena id of a *controller*, the only node
/// kind bindings, measurement ports, and hub subscriptions may target.
fn resolve_controller(
    addr_to_id: &[NodeId],
    nodes: &[SimNode],
    addr: NodeAddr,
    role: &'static str,
) -> Result<NodeId, SimError> {
    addr_to_id
        .get(addr as usize)
        .copied()
        .filter(|&id| id != NodeId::MAX && nodes[id as usize].as_controller().is_some())
        .ok_or(SimError::UnknownAddr { addr, role })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisq_isa::Assembler;
    use hisq_net::TopologyBuilder;

    fn asm(src: &str) -> Vec<Inst> {
        Assembler::new().assemble(src).unwrap().insts().to_vec()
    }

    #[test]
    fn duplicate_controller_addr_is_rejected() {
        let mut spec = SystemSpec::new();
        spec.controller(NodeConfig::new(3), asm("stop"));
        spec.controller(NodeConfig::new(3), asm("stop"));
        assert_eq!(spec.build().unwrap_err(), SimError::DuplicateAddr(3));
    }

    #[test]
    fn program_at_router_address_is_rejected() {
        let topo = TopologyBuilder::linear(2).build();
        let router = topo.root_router().unwrap();
        let mut programs = BTreeMap::new();
        programs.insert(0, asm("stop"));
        programs.insert(router, asm("stop"));
        let spec = SystemSpec::from_topology(&topo, programs);
        assert_eq!(spec.build().unwrap_err(), SimError::DuplicateAddr(router));
    }

    #[test]
    fn controller_at_hub_address_is_rejected() {
        let mut spec = SystemSpec::new();
        spec.hub(
            9,
            Hub {
                subscribers: vec![],
                down_latency: 25,
            },
        );
        spec.controller(NodeConfig::new(9), asm("stop"));
        assert_eq!(spec.build().unwrap_err(), SimError::DuplicateAddr(9));
    }

    #[test]
    fn dangling_hub_subscriber_is_rejected() {
        let mut spec = SystemSpec::new();
        spec.controller(NodeConfig::new(0), asm("stop"));
        spec.hub(
            1,
            Hub {
                subscribers: vec![0, 7],
                down_latency: 25,
            },
        );
        assert_eq!(
            spec.build().unwrap_err(),
            SimError::UnknownAddr {
                addr: 7,
                role: "hub subscriber"
            }
        );
    }

    #[test]
    fn dangling_binding_is_rejected() {
        let mut spec = SystemSpec::new();
        spec.controller(NodeConfig::new(0), asm("stop"));
        spec.bind(5, 0, 1, QuantumAction::Measure { qubit: 0 });
        assert_eq!(
            spec.build().unwrap_err(),
            SimError::UnknownAddr {
                addr: 5,
                role: "binding node"
            }
        );
        let mut spec = SystemSpec::new();
        spec.controller(NodeConfig::new(0), asm("stop"));
        spec.bind_measurement_port(
            6,
            4,
            MeasBinding {
                qubit: 0,
                result_latency: 75,
            },
        );
        assert!(matches!(
            spec.build().unwrap_err(),
            SimError::UnknownAddr { addr: 6, .. }
        ));
    }

    #[test]
    fn binding_at_router_address_is_rejected() {
        let mut spec = SystemSpec::new();
        spec.controller(NodeConfig::new(0), asm("stop"));
        spec.router(Router::new(1, None, vec![0]));
        spec.bind(1, 0, 1, QuantumAction::Measure { qubit: 0 });
        assert!(matches!(
            spec.build().unwrap_err(),
            SimError::UnknownAddr { addr: 1, .. }
        ));
    }

    #[test]
    fn later_bindings_override_earlier_ones() {
        let mut spec = SystemSpec::new();
        spec.controller(NodeConfig::new(0), asm("waiti 5\ncw.i.i 2, 1\nstop"));
        spec.bind(0, 2, 1, QuantumAction::Measure { qubit: 3 });
        spec.bind(
            0,
            2,
            1,
            QuantumAction::Gate {
                gate: hisq_quantum::Gate::X,
                qubits: vec![1],
            },
        );
        let mut system = spec.build().unwrap();
        let report = system.run().unwrap();
        assert!(report.all_halted);
        // The override is a gate, not a measurement: exposure reflects
        // a 20 ns X on qubit 1 and nothing on qubit 3.
        assert!(system.exposure().exposure_ns(1) > 0);
        assert_eq!(system.exposure().exposure_ns(3), 0);
    }

    #[test]
    fn from_topology_wires_links_and_routers() {
        let topo = TopologyBuilder::linear(4)
            .router_arity(2)
            .neighbor_latency(3)
            .router_latency(9)
            .build();
        let mut programs = BTreeMap::new();
        for addr in 0..4u16 {
            programs.insert(addr, asm("stop"));
        }
        let system = SystemSpec::from_topology(&topo, programs).build().unwrap();
        for addr in 0..4u16 {
            assert!(system.controller(addr).is_some());
        }
        assert!(system.controller(topo.root_router().unwrap()).is_none());
    }

    #[test]
    fn backend_spec_selects_the_backend() {
        let mut spec = SystemSpec::new();
        spec.controller(NodeConfig::new(0), asm("stop"));
        spec.backend(BackendSpec::Fixed { outcome: true });
        let mut system = spec.build().unwrap();
        assert!(system.backend_mut().measure(0));
        assert_eq!(
            BackendSpec::default(),
            BackendSpec::Random {
                seed: 0,
                p_one: 0.5
            }
        );
    }
}
