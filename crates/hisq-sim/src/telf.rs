//! TELF — Timing Event Logging Format.
//!
//! The paper verifies CACTUS-Light's timing against the FPGA
//! implementation using TELF traces (§6.4.1). Our TELF aggregates every
//! codeword commit across the system with its controller address, and
//! offers the alignment queries behind Figure 13 plus a textual waveform
//! renderer standing in for the oscilloscope screenshot.

use std::fmt::Write as _;

use hisq_core::{CommitRecord, NodeAddr};
use hisq_isa::CYCLE_NS;

/// One TELF record: a codeword commit on a specific controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelfRecord {
    /// The committing controller.
    pub node: NodeAddr,
    /// Destination port.
    pub port: u32,
    /// Codeword value.
    pub codeword: u32,
    /// Commit time in TCU cycles.
    pub cycle: u64,
}

impl TelfRecord {
    /// Commit time in nanoseconds.
    pub fn time_ns(&self) -> u64 {
        self.cycle * CYCLE_NS
    }
}

/// An aggregated, time-sorted TELF trace.
#[derive(Debug, Clone, Default)]
pub struct Telf {
    records: Vec<TelfRecord>,
}

impl Telf {
    /// Builds a trace from per-controller commit logs.
    pub fn from_commits<'a>(
        commits: impl IntoIterator<Item = (NodeAddr, &'a [CommitRecord])>,
    ) -> Telf {
        let mut records: Vec<TelfRecord> = commits
            .into_iter()
            .flat_map(|(node, list)| {
                list.iter().map(move |c| TelfRecord {
                    node,
                    port: c.port,
                    codeword: c.codeword,
                    cycle: c.cycle,
                })
            })
            .collect();
        records.sort_by_key(|r| (r.cycle, r.node, r.port));
        Telf { records }
    }

    /// All records in time order.
    pub fn records(&self) -> &[TelfRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records committed by one controller, in time order.
    pub fn commits_of(&self, node: NodeAddr) -> Vec<TelfRecord> {
        self.records
            .iter()
            .filter(|r| r.node == node)
            .copied()
            .collect()
    }

    /// Records on a specific (controller, port) channel.
    pub fn channel(&self, node: NodeAddr, port: u32) -> Vec<TelfRecord> {
        self.records
            .iter()
            .filter(|r| r.node == node && r.port == port)
            .copied()
            .collect()
    }

    /// The last commit cycle in the trace (the schedule makespan), or 0.
    pub fn makespan_cycles(&self) -> u64 {
        self.records.iter().map(|r| r.cycle).max().unwrap_or(0)
    }

    /// Pairs the i-th events of two channels and returns their cycle
    /// differences (`b − a`), the Figure 13 alignment check: for a
    /// correctly synchronized pair every difference is a constant.
    pub fn alignment(&self, a: (NodeAddr, u32), b: (NodeAddr, u32)) -> Vec<i64> {
        let ea = self.channel(a.0, a.1);
        let eb = self.channel(b.0, b.1);
        ea.iter()
            .zip(&eb)
            .map(|(x, y)| y.cycle as i64 - x.cycle as i64)
            .collect()
    }

    /// Renders channels as ASCII waveforms (one row per channel, one
    /// column per `resolution` cycles, `|` marking commits) — the
    /// textual stand-in for the paper's oscilloscope view.
    pub fn render_waveform(&self, channels: &[(NodeAddr, u32)], resolution: u64) -> String {
        let resolution = resolution.max(1);
        let end = self.makespan_cycles();
        let columns = (end / resolution + 2) as usize;
        let mut out = String::new();
        for &(node, port) in channels {
            let mut row = vec![b'_'; columns];
            for r in self.channel(node, port) {
                row[(r.cycle / resolution) as usize] = b'|';
            }
            let _ = writeln!(
                out,
                "n{node:03}.p{port:02} {}",
                String::from_utf8(row).expect("ascii row")
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Telf {
        let a = [
            CommitRecord {
                port: 7,
                codeword: 1,
                cycle: 100,
            },
            CommitRecord {
                port: 7,
                codeword: 1,
                cycle: 200,
            },
        ];
        let b = [
            CommitRecord {
                port: 5,
                codeword: 1,
                cycle: 100,
            },
            CommitRecord {
                port: 5,
                codeword: 1,
                cycle: 200,
            },
        ];
        Telf::from_commits([(1u16, a.as_slice()), (2u16, b.as_slice())])
    }

    #[test]
    fn aggregation_sorts_by_time() {
        let telf = sample();
        assert_eq!(telf.len(), 4);
        assert!(!telf.is_empty());
        assert!(telf.records().windows(2).all(|w| w[0].cycle <= w[1].cycle));
        assert_eq!(telf.makespan_cycles(), 200);
        assert_eq!(telf.records()[0].time_ns(), 400);
    }

    #[test]
    fn channel_filtering() {
        let telf = sample();
        assert_eq!(telf.commits_of(1).len(), 2);
        assert_eq!(telf.channel(1, 7).len(), 2);
        assert_eq!(telf.channel(1, 5).len(), 0);
    }

    #[test]
    fn alignment_of_synchronized_channels_is_constant() {
        let telf = sample();
        let diffs = telf.alignment((1, 7), (2, 5));
        assert_eq!(diffs, vec![0, 0]);
    }

    #[test]
    fn waveform_rendering() {
        let telf = sample();
        let art = telf.render_waveform(&[(1, 7), (2, 5)], 50);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains('|'));
        // Both channels pulse in the same columns.
        let strip = |s: &str| s.split_whitespace().nth(1).unwrap().to_string();
        assert_eq!(strip(lines[0]), strip(lines[1]));
    }
}
