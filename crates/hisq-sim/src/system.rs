//! The distributed system model and its discrete-event engine.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::error::Error;
use std::fmt;

use hisq_core::{
    BlockReason, Controller, NodeAddr, NodeConfig, OutboundMessage, Status, MEAS_FIFO_ADDR,
};
use hisq_isa::{Inst, CYCLE_NS};
use hisq_net::{Envelope, Payload, Router, RouterAction, Topology};
use hisq_quantum::{ExposureLedger, Gate, GateDurations};

use crate::backend::{QuantumBackend, RandomBackend};
use crate::telf::Telf;

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Deliver region max-time broadcasts with zero latency (the paper's
    /// §4.4 accounting — see the crate docs). Default `true`.
    pub idealize_downlink: bool,
    /// Latency for classical `send`s between nodes without a calibrated
    /// link, in cycles. Default 25 (100 ns).
    pub default_classical_latency: u64,
    /// Latency for tree edges when no topology is attached. Default 10.
    pub default_router_latency: u64,
    /// Abort the run after this many processed events (runaway guard).
    pub max_events: u64,
    /// Operation durations used for exposure accounting.
    pub durations: GateDurations,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            idealize_downlink: true,
            default_classical_latency: 25,
            default_router_latency: 10,
            max_events: 200_000_000,
            durations: GateDurations::PAPER,
        }
    }
}

/// A quantum action bound to a `(node, port, codeword)` commit.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantumAction {
    /// Apply a gate to the bound qubits.
    Gate {
        /// The gate.
        gate: Gate,
        /// Target qubits.
        qubits: Vec<usize>,
    },
    /// Trigger a measurement; the discrimination result is delivered to
    /// the committing controller's measurement FIFO after the
    /// measurement duration.
    Measure {
        /// Measured qubit.
        qubit: usize,
    },
    /// Reset a qubit to |0⟩ (active reset pulse).
    Reset {
        /// The reset qubit.
        qubit: usize,
    },
}

/// A port-level measurement binding: *any* codeword committed to the
/// port triggers a measurement of `qubit` (the DQCtrl readout boards
/// trigger acquisition per channel, §6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeasBinding {
    /// The measured qubit.
    pub qubit: usize,
    /// Cycles from trigger to result delivery (readout + integration +
    /// discrimination).
    pub result_latency: u64,
}

/// A broadcast hub: any classical message sent to the hub's address is
/// re-delivered to every subscriber after `down_latency` — the star
/// topology of the lock-step baseline (§6.4.3), where a central
/// controller broadcasts each measurement result to all controllers at a
/// constant latency independent of system size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hub {
    /// Controllers receiving every broadcast (usually all of them).
    pub subscribers: Vec<NodeAddr>,
    /// Constant hub→subscriber latency in cycles.
    pub down_latency: u64,
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The event budget was exhausted (runaway program guard).
    EventBudgetExceeded {
        /// The configured budget.
        budget: u64,
    },
    /// A node address was used twice.
    DuplicateAddr(NodeAddr),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::EventBudgetExceeded { budget } => {
                write!(f, "event budget of {budget} exceeded (runaway program?)")
            }
            SimError::DuplicateAddr(a) => write!(f, "node address {a} registered twice"),
        }
    }
}

impl Error for SimError {}

/// Post-run summary.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// `true` if every controller reached `stop`.
    pub all_halted: bool,
    /// Controllers left blocked (deadlock diagnosis).
    pub blocked: Vec<(NodeAddr, BlockReason)>,
    /// Controllers that faulted, with messages.
    pub faulted: Vec<(NodeAddr, String)>,
    /// Latest wall-clock cycle reached by any controller.
    pub makespan_cycles: u64,
    /// Makespan in nanoseconds.
    pub makespan_ns: u64,
    /// Events processed by the engine.
    pub events_processed: u64,
    /// Gate-replay ordering violations (0 for well-formed programs).
    pub causality_warnings: u64,
    /// Total TCU stall cycles across all controllers.
    pub total_stall_cycles: u64,
    /// Total instructions retired across all controllers.
    pub total_instructions: u64,
    /// Total `sync` instructions retired.
    pub total_syncs: u64,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum EventKind {
    Deliver(Envelope),
    MeasResolve {
        node: NodeAddr,
        qubit: usize,
        trigger_cycle: u64,
    },
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct QueuedEvent {
    at: u64,
    seq: u64,
    kind: EventKind,
}

impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A backend operation to replay in commit-cycle order.
#[derive(Debug, Clone, PartialEq)]
enum ReplayAction {
    Gate(Gate, Vec<usize>),
    Reset(usize),
}

/// A pending gate waiting to be replayed into the quantum backend in
/// commit-cycle order.
#[derive(Debug, Clone, PartialEq, Eq)]
struct PendingGate {
    cycle: u64,
    seq: u64,
    gate_index: usize,
}

impl Ord for PendingGate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.cycle, self.seq).cmp(&(other.cycle, other.seq))
    }
}

impl PartialOrd for PendingGate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The full Distributed-HISQ system under simulation.
pub struct System {
    config: SimConfig,
    controllers: BTreeMap<NodeAddr, Controller>,
    node_configs: BTreeMap<NodeAddr, NodeConfig>,
    routers: BTreeMap<NodeAddr, Router>,
    topology: Option<Topology>,
    backend: Box<dyn QuantumBackend>,
    bindings: BTreeMap<(NodeAddr, u32, u32), QuantumAction>,
    meas_ports: BTreeMap<(NodeAddr, u32), MeasBinding>,
    hubs: BTreeMap<NodeAddr, Hub>,

    queue: BinaryHeap<Reverse<QueuedEvent>>,
    seq: u64,
    commit_watermark: BTreeMap<NodeAddr, usize>,
    gate_heap: BinaryHeap<Reverse<PendingGate>>,
    gate_store: Vec<ReplayAction>,
    applied_through: u64,
    causality_warnings: u64,
    exposure: ExposureLedger,
    events_processed: u64,
}

impl fmt::Debug for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("System")
            .field("controllers", &self.controllers.len())
            .field("routers", &self.routers.len())
            .field("events_processed", &self.events_processed)
            .finish_non_exhaustive()
    }
}

impl Default for System {
    fn default() -> System {
        System::new()
    }
}

impl System {
    /// Creates an empty system with a seeded 50/50 random backend.
    pub fn new() -> System {
        System::with_config(SimConfig::default())
    }

    /// Creates an empty system with explicit engine configuration.
    pub fn with_config(config: SimConfig) -> System {
        System {
            config,
            controllers: BTreeMap::new(),
            node_configs: BTreeMap::new(),
            routers: BTreeMap::new(),
            topology: None,
            backend: Box::new(RandomBackend::new(0, 0.5)),
            bindings: BTreeMap::new(),
            meas_ports: BTreeMap::new(),
            hubs: BTreeMap::new(),
            queue: BinaryHeap::new(),
            seq: 0,
            commit_watermark: BTreeMap::new(),
            gate_heap: BinaryHeap::new(),
            gate_store: Vec::new(),
            applied_through: 0,
            causality_warnings: 0,
            exposure: ExposureLedger::new(),
            events_processed: 0,
        }
    }

    /// Builds a system from a topology: one controller per program, plus
    /// every router of the tree.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DuplicateAddr`] if a program address collides
    /// with another program or with a router of the tree.
    pub fn from_topology(
        topology: &Topology,
        programs: BTreeMap<NodeAddr, Vec<Inst>>,
    ) -> Result<System, SimError> {
        let mut system = System::new();
        // Routers first, so a program keyed at a router address is
        // caught as a collision instead of silently shadowing the node.
        for &router_addr in topology.routers() {
            let router = Router::new(
                router_addr,
                topology.parent_of(router_addr),
                topology.children_of(router_addr).to_vec(),
            );
            system.try_add_router(router)?;
        }
        for (addr, program) in programs {
            // Checked before `node_config`, which only accepts
            // controller addresses and would panic on a router's.
            if system.routers.contains_key(&addr) {
                return Err(SimError::DuplicateAddr(addr));
            }
            let config = topology.node_config(addr);
            system.try_add_controller(config, program)?;
        }
        system.topology = Some(topology.clone());
        Ok(system)
    }

    /// Adds a controller node.
    ///
    /// # Panics
    ///
    /// Panics on duplicate address; use [`System::try_add_controller`]
    /// for fallible insertion.
    pub fn add_controller(&mut self, config: NodeConfig, program: Vec<Inst>) {
        self.try_add_controller(config, program)
            .expect("duplicate controller address");
    }

    /// Fallible [`System::add_controller`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DuplicateAddr`] when the address is taken.
    pub fn try_add_controller(
        &mut self,
        config: NodeConfig,
        program: Vec<Inst>,
    ) -> Result<(), SimError> {
        let addr = config.addr;
        if self.taken(addr) {
            return Err(SimError::DuplicateAddr(addr));
        }
        self.node_configs.insert(addr, config.clone());
        self.controllers
            .insert(addr, Controller::new(config, program));
        self.commit_watermark.insert(addr, 0);
        Ok(())
    }

    /// Adds a router node.
    ///
    /// # Panics
    ///
    /// Panics on duplicate address; use [`System::try_add_router`] for
    /// fallible insertion.
    pub fn add_router(&mut self, router: Router) {
        self.try_add_router(router)
            .expect("duplicate router address");
    }

    /// Fallible [`System::add_router`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DuplicateAddr`] when the address is taken.
    pub fn try_add_router(&mut self, router: Router) -> Result<(), SimError> {
        let addr = router.addr();
        if self.taken(addr) {
            return Err(SimError::DuplicateAddr(addr));
        }
        self.routers.insert(addr, router);
        Ok(())
    }

    /// Adds a broadcast hub at `addr` (see [`Hub`]).
    ///
    /// # Panics
    ///
    /// Panics on duplicate address; use [`System::try_add_hub`] for
    /// fallible insertion.
    pub fn add_hub(&mut self, addr: NodeAddr, hub: Hub) {
        self.try_add_hub(addr, hub).expect("duplicate hub address");
    }

    /// Fallible [`System::add_hub`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DuplicateAddr`] when the address is taken.
    pub fn try_add_hub(&mut self, addr: NodeAddr, hub: Hub) -> Result<(), SimError> {
        if self.taken(addr) {
            return Err(SimError::DuplicateAddr(addr));
        }
        self.hubs.insert(addr, hub);
        Ok(())
    }

    /// Whether `addr` is already registered to any node kind, so every
    /// registration path rejects collisions regardless of insertion
    /// order.
    fn taken(&self, addr: NodeAddr) -> bool {
        self.controllers.contains_key(&addr)
            || self.routers.contains_key(&addr)
            || self.hubs.contains_key(&addr)
    }

    /// Replaces the quantum backend (default: seeded random outcomes).
    pub fn set_backend(&mut self, backend: impl QuantumBackend + 'static) {
        self.backend = Box::new(backend);
    }

    /// Binds a `(node, port, codeword)` commit to a quantum action.
    pub fn bind(&mut self, node: NodeAddr, port: u32, codeword: u32, action: QuantumAction) {
        self.bindings.insert((node, port, codeword), action);
    }

    /// Binds every commit on `(node, port)` to a measurement trigger.
    pub fn bind_measurement_port(&mut self, node: NodeAddr, port: u32, binding: MeasBinding) {
        self.meas_ports.insert((node, port), binding);
    }

    /// Immutable access to a controller (assertions, TELF, registers).
    pub fn controller(&self, addr: NodeAddr) -> Option<&Controller> {
        self.controllers.get(&addr)
    }

    /// Mutable access to a controller (e.g. preloading registers).
    pub fn controller_mut(&mut self, addr: NodeAddr) -> Option<&mut Controller> {
        self.controllers.get_mut(&addr)
    }

    /// The aggregated TELF trace of all controllers.
    pub fn telf(&self) -> Telf {
        Telf::from_commits(
            self.controllers
                .iter()
                .map(|(&addr, ctrl)| (addr, ctrl.commits())),
        )
    }

    /// Per-qubit exposure accounting (drives the Figure 16 fidelity
    /// model).
    pub fn exposure(&self) -> &ExposureLedger {
        &self.exposure
    }

    /// Read-only access to the quantum backend.
    pub fn backend(&self) -> &dyn QuantumBackend {
        self.backend.as_ref()
    }

    fn push_event(&mut self, at: u64, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(QueuedEvent { at, seq, kind }));
    }

    fn link_latency(&self, from: NodeAddr, to: NodeAddr) -> u64 {
        if let Some(cfg) = self.node_configs.get(&from) {
            if let Some(link) = cfg.link(to) {
                return link.latency;
            }
        }
        if let Some(topo) = &self.topology {
            if let Some(l) = topo.latency(from, to) {
                return l;
            }
            // Unlinked controller pairs: hop-by-hop over the mesh, so
            // Distributed-HISQ's classical latency grows with distance.
            let nc = topo.num_controllers() as u16;
            if from < nc && to < nc {
                return topo.classical_latency(from, to);
            }
        }
        self.config.default_classical_latency
    }

    fn route(&mut self, from: NodeAddr, message: OutboundMessage) {
        match message {
            OutboundMessage::SyncPulse { to, sent_at } => {
                let at = sent_at + self.link_latency(from, to);
                self.push_event(
                    at,
                    EventKind::Deliver(Envelope::new(from, to, Payload::SyncPulse, at)),
                );
            }
            OutboundMessage::BookTime {
                router: target,
                time_point,
                sent_at,
            } => {
                // First hop: the sender's parent in the tree (or the
                // target directly when no topology is attached).
                let hop = self
                    .topology
                    .as_ref()
                    .and_then(|t| t.parent_of(from))
                    .unwrap_or(target);
                let at = sent_at + self.link_latency(from, hop);
                self.push_event(
                    at,
                    EventKind::Deliver(Envelope::new(
                        from,
                        hop,
                        Payload::BookTime { target, time_point },
                        at,
                    )),
                );
            }
            OutboundMessage::Classical { to, value, sent_at } => {
                let at = sent_at + self.link_latency(from, to);
                self.push_event(
                    at,
                    EventKind::Deliver(Envelope::new(from, to, Payload::Classical { value }, at)),
                );
            }
        }
    }

    /// Applies buffered gates with commit cycle ≤ `cycle` to the backend.
    fn apply_gates_through(&mut self, cycle: u64) {
        while let Some(Reverse(top)) = self.gate_heap.peek() {
            if top.cycle > cycle {
                break;
            }
            let Reverse(pending) = self.gate_heap.pop().expect("peeked");
            match self.gate_store[pending.gate_index].clone() {
                ReplayAction::Gate(gate, qubits) => self.backend.apply_gate(gate, &qubits),
                ReplayAction::Reset(qubit) => self.backend.reset(qubit),
            }
            self.applied_through = self.applied_through.max(pending.cycle);
        }
    }

    /// Harvests commits a controller produced during its last step:
    /// exposure accounting, gate replay buffering, measurement triggers.
    fn harvest_commits(&mut self, addr: NodeAddr) {
        let watermark = self.commit_watermark.get(&addr).copied().unwrap_or(0);
        let new: Vec<hisq_core::CommitRecord> = {
            let ctrl = self.controllers.get(&addr).expect("controller exists");
            ctrl.commits()[watermark..].to_vec()
        };
        self.commit_watermark.insert(addr, watermark + new.len());

        for commit in new {
            let key = (addr, commit.port, commit.codeword);
            if let Some(action) = self.bindings.get(&key).cloned() {
                match action {
                    QuantumAction::Gate { gate, qubits } => {
                        let duration = self.config.durations.gate_ns(gate);
                        for &q in &qubits {
                            self.exposure.record_span(
                                q,
                                commit.cycle * CYCLE_NS,
                                commit.cycle * CYCLE_NS + duration,
                            );
                        }
                        self.replay(commit.cycle, ReplayAction::Gate(gate, qubits));
                    }
                    QuantumAction::Measure { qubit } => {
                        let latency = self.config.durations.measurement_ns / CYCLE_NS;
                        self.schedule_measurement(addr, qubit, commit.cycle, latency);
                    }
                    QuantumAction::Reset { qubit } => {
                        let duration = self.config.durations.reset_ns;
                        self.exposure.record_span(
                            qubit,
                            commit.cycle * CYCLE_NS,
                            commit.cycle * CYCLE_NS + duration,
                        );
                        self.replay(commit.cycle, ReplayAction::Reset(qubit));
                    }
                }
                continue;
            }
            if let Some(binding) = self.meas_ports.get(&(addr, commit.port)).copied() {
                self.schedule_measurement(
                    addr,
                    binding.qubit,
                    commit.cycle,
                    binding.result_latency,
                );
            }
        }
    }

    /// Buffers a backend operation for in-order replay; stragglers
    /// behind the replay frontier are applied immediately and counted.
    fn replay(&mut self, cycle: u64, action: ReplayAction) {
        if cycle < self.applied_through {
            self.causality_warnings += 1;
            match action {
                ReplayAction::Gate(gate, qubits) => self.backend.apply_gate(gate, &qubits),
                ReplayAction::Reset(qubit) => self.backend.reset(qubit),
            }
            return;
        }
        let gate_index = self.gate_store.len();
        self.gate_store.push(action);
        let seq = self.seq;
        self.seq += 1;
        self.gate_heap.push(Reverse(PendingGate {
            cycle,
            seq,
            gate_index,
        }));
    }

    fn schedule_measurement(
        &mut self,
        node: NodeAddr,
        qubit: usize,
        trigger_cycle: u64,
        result_latency: u64,
    ) {
        self.exposure.record_span(
            qubit,
            trigger_cycle * CYCLE_NS,
            (trigger_cycle + result_latency) * CYCLE_NS,
        );
        self.push_event(
            trigger_cycle + result_latency,
            EventKind::MeasResolve {
                node,
                qubit,
                trigger_cycle,
            },
        );
    }

    /// Steps one controller until it blocks or halts, routing its
    /// messages and harvesting its commits.
    fn step_controller(&mut self, addr: NodeAddr) {
        let mut outbox = Vec::new();
        {
            let ctrl = self.controllers.get_mut(&addr).expect("controller exists");
            let _ = ctrl.step(&mut outbox);
        }
        self.harvest_commits(addr);
        for message in outbox {
            self.route(addr, message);
        }
    }

    fn deliver(&mut self, envelope: Envelope) {
        let Envelope {
            from,
            to,
            payload,
            deliver_at,
        } = envelope;
        if self.controllers.contains_key(&to) {
            {
                let ctrl = self.controllers.get_mut(&to).expect("checked");
                match payload {
                    Payload::SyncPulse => ctrl.deliver_sync_pulse(from, deliver_at),
                    Payload::MaxTime { t_m, target } => ctrl.deliver_max_time(target, t_m),
                    Payload::Classical { value } => ctrl.deliver_classical(from, value, deliver_at),
                    Payload::BookTime { .. } => {
                        // Controllers never coordinate regions; drop.
                    }
                }
            }
            self.step_controller(to);
        } else if let Some(hub) = self.hubs.get(&to).cloned() {
            if let Payload::Classical { value } = payload {
                for subscriber in hub.subscribers {
                    let at = deliver_at + hub.down_latency;
                    self.push_event(
                        at,
                        EventKind::Deliver(Envelope::new(
                            to,
                            subscriber,
                            Payload::Classical { value },
                            at,
                        )),
                    );
                }
            }
        } else if let Some(router) = self.routers.get_mut(&to) {
            let actions = match payload {
                Payload::BookTime { target, time_point } => {
                    router.deliver_book_time(from, target, time_point, deliver_at)
                }
                Payload::MaxTime { t_m, target } => router.deliver_max_time(t_m, target),
                Payload::SyncPulse | Payload::Classical { .. } => Vec::new(),
            };
            for action in actions {
                match action {
                    RouterAction::ForwardUp {
                        parent,
                        target,
                        time_point,
                        sent_at,
                    } => {
                        let at = sent_at + self.link_latency(to, parent);
                        self.push_event(
                            at,
                            EventKind::Deliver(Envelope::new(
                                to,
                                parent,
                                Payload::BookTime { target, time_point },
                                at,
                            )),
                        );
                    }
                    RouterAction::Broadcast {
                        children,
                        t_m,
                        target,
                    } => {
                        for child in children {
                            let at = if self.config.idealize_downlink {
                                deliver_at
                            } else {
                                deliver_at + self.link_latency(to, child)
                            };
                            self.push_event(
                                at,
                                EventKind::Deliver(Envelope::new(
                                    to,
                                    child,
                                    Payload::MaxTime { t_m, target },
                                    at,
                                )),
                            );
                        }
                    }
                }
            }
        }
        // Unknown destinations are dropped (configuration error surfaces
        // as a deadlocked sender in the report).
    }

    /// Runs the system to quiescence.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventBudgetExceeded`] if the configured event
    /// budget is exhausted (e.g. a program loops forever emitting
    /// messages).
    pub fn run(&mut self) -> Result<SimReport, SimError> {
        let addrs: Vec<NodeAddr> = self.controllers.keys().copied().collect();
        for addr in addrs {
            self.step_controller(addr);
        }
        while let Some(Reverse(event)) = self.queue.pop() {
            self.events_processed += 1;
            if self.events_processed > self.config.max_events {
                return Err(SimError::EventBudgetExceeded {
                    budget: self.config.max_events,
                });
            }
            match event.kind {
                EventKind::Deliver(envelope) => self.deliver(envelope),
                EventKind::MeasResolve {
                    node,
                    qubit,
                    trigger_cycle,
                } => {
                    self.apply_gates_through(trigger_cycle);
                    let outcome = self.backend.measure(qubit);
                    if let Some(ctrl) = self.controllers.get_mut(&node) {
                        ctrl.deliver_classical(MEAS_FIFO_ADDR, u32::from(outcome), event.at);
                    }
                    self.step_controller(node);
                }
            }
        }
        // Flush any trailing gates so post-run backend state is final.
        self.apply_gates_through(u64::MAX);
        Ok(self.report())
    }

    fn report(&self) -> SimReport {
        let mut blocked = Vec::new();
        let mut faulted = Vec::new();
        let mut makespan = 0;
        let mut total_stall = 0;
        let mut total_instructions = 0;
        let mut total_syncs = 0;
        for (&addr, ctrl) in &self.controllers {
            match ctrl.status() {
                Status::Blocked(pending) => {
                    // Re-derive the public reason from the pending op.
                    let reason = match pending {
                        hisq_core::controller::PendingOp::SyncPulse { partner, .. } => {
                            BlockReason::AwaitSyncPulse { partner: *partner }
                        }
                        hisq_core::controller::PendingOp::MaxTime { router, .. } => {
                            BlockReason::AwaitMaxTime { router: *router }
                        }
                        hisq_core::controller::PendingOp::Recv { source, .. } => {
                            BlockReason::AwaitMessage { source: *source }
                        }
                    };
                    blocked.push((addr, reason));
                }
                Status::Faulted(message) => faulted.push((addr, message.clone())),
                Status::Halted | Status::Ready => {}
            }
            makespan = makespan.max(ctrl.now_wall());
            total_stall += ctrl.total_stall();
            total_instructions += ctrl.stats().executed;
            total_syncs += ctrl.stats().syncs;
        }
        let all_halted = blocked.is_empty()
            && faulted.is_empty()
            && self
                .controllers
                .values()
                .all(|c| matches!(c.status(), Status::Halted));
        SimReport {
            all_halted,
            blocked,
            faulted,
            makespan_cycles: makespan,
            makespan_ns: makespan * CYCLE_NS,
            events_processed: self.events_processed,
            causality_warnings: self.causality_warnings,
            total_stall_cycles: total_stall,
            total_instructions,
            total_syncs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{FixedBackend, StabilizerBackend};
    use hisq_isa::Assembler;
    use hisq_net::TopologyBuilder;

    fn asm(src: &str) -> Vec<Inst> {
        Assembler::new().assemble(src).unwrap().insts().to_vec()
    }

    #[test]
    fn two_node_nearby_sync_aligns_commits() {
        let mut system = System::new();
        system.add_controller(
            NodeConfig::new(0).with_neighbor(1, 6),
            asm("waiti 40\nsync 1\nwaiti 6\ncw.i.i 0, 1\nstop"),
        );
        system.add_controller(
            NodeConfig::new(1).with_neighbor(0, 6),
            asm("waiti 90\nsync 0\nwaiti 6\ncw.i.i 0, 1\nstop"),
        );
        let report = system.run().unwrap();
        assert!(report.all_halted);
        let telf = system.telf();
        assert_eq!(telf.alignment((0, 0), (1, 0)), vec![0]);
        // The later controller (booking 90, T=96) sets the common time.
        assert_eq!(telf.commits_of(0)[0].cycle, 96);
    }

    #[test]
    fn region_sync_through_router_tree() {
        // Four controllers, arity-2 tree. All sync against the root with
        // different booking times; all must commit at the same cycle.
        let topo = TopologyBuilder::linear(4)
            .router_arity(2)
            .neighbor_latency(5)
            .router_latency(10)
            .build();
        let root = topo.root_router().unwrap();
        let mut programs = BTreeMap::new();
        for (i, delay) in [40u32, 90, 60, 120].iter().enumerate() {
            let src =
                format!("li t0, 30\nwaiti {delay}\nsync {root}, t0\nwaiti 30\ncw.i.i 0, 1\nstop");
            programs.insert(i as NodeAddr, asm(&src));
        }
        let mut system = System::from_topology(&topo, programs).unwrap();
        let report = system.run().unwrap();
        assert!(report.all_halted, "blocked: {:?}", report.blocked);
        let telf = system.telf();
        let cycles: Vec<u64> = (0..4u16)
            .map(|addr| telf.commits_of(addr)[0].cycle)
            .collect();
        assert!(
            cycles.windows(2).all(|w| w[0] == w[1]),
            "region sync must align all commits: {cycles:?}"
        );
        // The slowest controller books at ~121 with horizon 30 → T_i ≈
        // 151; bookings cross two tree hops (≤ 141 + 20), so the region
        // meets at max(T_i, arrivals).
        let common = cycles[0];
        assert!(common >= 151, "common start {common} below slowest T_i");
    }

    #[test]
    fn feedback_loop_with_scripted_measurement() {
        // Controller 0 triggers a measurement on port 4, receives the
        // result, and pulses port 1 only when the result is 1.
        let mut system = System::new();
        system.add_controller(
            NodeConfig::new(0),
            asm("
                waiti 25
                cw.i.i 4, 1
                recv t0, 0xFFF
                beqz t0, skip
                waiti 10
                cw.i.i 1, 1
            skip:
                stop
            "),
        );
        system.bind_measurement_port(
            0,
            4,
            MeasBinding {
                qubit: 3,
                result_latency: 75,
            },
        );
        let mut backend = FixedBackend::new(false);
        backend.script(3, [true]);
        system.set_backend(backend);
        let report = system.run().unwrap();
        assert!(report.all_halted);
        let telf = system.telf();
        let pulses = telf.channel(0, 1);
        assert_eq!(pulses.len(), 1, "conditional pulse must fire");
        // Trigger at 25, result at 100, grid rebases then waits 10.
        assert!(pulses[0].cycle >= 110);
    }

    #[test]
    fn feedback_branch_not_taken() {
        let mut system = System::new();
        system.add_controller(
            NodeConfig::new(0),
            asm("
                waiti 25
                cw.i.i 4, 1
                recv t0, 0xFFF
                beqz t0, skip
                waiti 10
                cw.i.i 1, 1
            skip:
                stop
            "),
        );
        system.bind_measurement_port(
            0,
            4,
            MeasBinding {
                qubit: 3,
                result_latency: 75,
            },
        );
        system.set_backend(FixedBackend::new(false));
        let report = system.run().unwrap();
        assert!(report.all_halted);
        assert!(system.telf().channel(0, 1).is_empty());
    }

    #[test]
    fn deadlock_is_reported_not_hung() {
        let mut system = System::new();
        system.add_controller(NodeConfig::new(0).with_neighbor(1, 5), asm("sync 1\nstop"));
        system.add_controller(NodeConfig::new(1).with_neighbor(0, 5), asm("stop"));
        let report = system.run().unwrap();
        assert!(!report.all_halted);
        assert_eq!(
            report.blocked,
            vec![(0, BlockReason::AwaitSyncPulse { partner: 1 })]
        );
    }

    #[test]
    fn event_budget_guards_runaway_programs() {
        let config = SimConfig {
            max_events: 100,
            ..SimConfig::default()
        };
        let mut system = System::with_config(config);
        // Two controllers bouncing classical messages forever.
        system.add_controller(
            NodeConfig::new(0).with_neighbor(1, 2),
            asm("li t0, 1\nping: send 1, t0\nrecv t0, 1\nj ping"),
        );
        system.add_controller(
            NodeConfig::new(1).with_neighbor(0, 2),
            asm("pong: recv t0, 0\nsend 0, t0\nj pong"),
        );
        assert_eq!(
            system.run(),
            Err(SimError::EventBudgetExceeded { budget: 100 })
        );
    }

    #[test]
    fn gate_replay_drives_quantum_backend() {
        // Bell pair across two controllers: controller 0 applies H then
        // (virtually) both halves of the CNOT; both measure; outcomes
        // must agree thanks to the stabilizer backend.
        let mut system = System::new();
        system.add_controller(
            NodeConfig::new(0).with_neighbor(1, 5),
            asm("
                waiti 20
                cw.i.i 0, 1     # H q0
                waiti 5
                cw.i.i 0, 2     # CX q0,q1
                sync 1
                waiti 5
                cw.i.i 2, 1     # measure q0
                recv t0, 0xFFF
                stop
            "),
        );
        system.add_controller(
            NodeConfig::new(1).with_neighbor(0, 5),
            asm("
                waiti 20
                sync 0
                waiti 5
                cw.i.i 2, 1     # measure q1
                recv t0, 0xFFF
                stop
            "),
        );
        system.bind(
            0,
            0,
            1,
            QuantumAction::Gate {
                gate: Gate::H,
                qubits: vec![0],
            },
        );
        system.bind(
            0,
            0,
            2,
            QuantumAction::Gate {
                gate: Gate::Cx,
                qubits: vec![0, 1],
            },
        );
        system.bind(0, 2, 1, QuantumAction::Measure { qubit: 0 });
        system.bind(1, 2, 1, QuantumAction::Measure { qubit: 1 });
        system.set_backend(StabilizerBackend::new(2, 1234));
        let report = system.run().unwrap();
        assert!(report.all_halted, "{:?}", report);
        assert_eq!(report.causality_warnings, 0);
        let m0 = system
            .controller(0)
            .unwrap()
            .reg(hisq_isa::Reg::parse("t0").unwrap());
        let m1 = system
            .controller(1)
            .unwrap()
            .reg(hisq_isa::Reg::parse("t0").unwrap());
        assert_eq!(m0, m1, "Bell correlations through the full stack");
    }

    #[test]
    fn exposure_ledger_tracks_gate_spans() {
        let mut system = System::new();
        system.add_controller(
            NodeConfig::new(0),
            asm("waiti 10\ncw.i.i 0, 1\nwaiti 100\ncw.i.i 0, 1\nstop"),
        );
        system.bind(
            0,
            0,
            1,
            QuantumAction::Gate {
                gate: Gate::X,
                qubits: vec![5],
            },
        );
        system.run().unwrap();
        // First gate at cycle 10 (40 ns), second at cycle 110 (440 ns) +
        // 20 ns duration → exposure 40..460 = 420 ns.
        assert_eq!(system.exposure().exposure_ns(5), 420);
    }
}
