//! Property-based coverage of the noise-aware backends' determinism
//! contract:
//!
//! - `NoiseModel::default()` is **byte-for-byte noiseless**: the noisy
//!   backend variants reproduce their noiseless twins' exact outcome
//!   sequences at every seed (the channel sampler consumes no draws at
//!   rate zero);
//! - channel sampling replays exactly under a fixed seed;
//! - the leaked population is **monotone in `p_leak`** at a fixed seed
//!   and gate sequence (Bernoulli draws share stream positions across
//!   rates, so raising the rate can only add leaks).

use proptest::prelude::*;

use hisq_quantum::{Gate, NoiseModel};
use hisq_sim::{
    LeakyRandomBackend, NoisyStabilizerBackend, QuantumBackend, RandomBackend, StabilizerBackend,
};

/// One step of a random Clifford schedule, drawn by index so the
/// proptest shim can enumerate it cheaply.
#[derive(Debug, Clone, Copy)]
enum Step {
    H(usize),
    S(usize),
    Cx(usize, usize),
    Measure(usize),
    Reset(usize),
}

const QUBITS: usize = 5;

fn step_strategy() -> impl Strategy<Value = Step> {
    (0u8..5, 0usize..QUBITS, 0usize..QUBITS).prop_map(|(op, a, b)| {
        let b = if a == b { (b + 1) % QUBITS } else { b };
        match op {
            0 => Step::H(a),
            1 => Step::S(a),
            2 => Step::Cx(a, b),
            3 => Step::Measure(a),
            _ => Step::Reset(a),
        }
    })
}

/// Drives one step into any backend, collecting measurement outcomes.
fn drive(backend: &mut dyn QuantumBackend, step: Step, outcomes: &mut Vec<bool>) {
    match step {
        Step::H(q) => backend.apply_gate(Gate::H, &[q]),
        Step::S(q) => backend.apply_gate(Gate::S, &[q]),
        Step::Cx(a, b) => backend.apply_gate(Gate::Cx, &[a, b]),
        Step::Measure(q) => outcomes.push(backend.measure(q)),
        Step::Reset(q) => backend.reset(q),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `NoiseModel::default()` ≡ noiseless stabilizer, byte-for-byte:
    /// same seed, same schedule, identical outcome sequence.
    #[test]
    fn default_noise_model_is_byte_identical_stabilizer(
        seed in 0u64..1_000,
        steps in proptest::collection::vec(step_strategy(), 1..60),
    ) {
        let mut noiseless = StabilizerBackend::new(QUBITS, seed);
        let mut noisy = NoisyStabilizerBackend::new(QUBITS, seed, NoiseModel::default());
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for &step in &steps {
            drive(&mut noiseless, step, &mut a);
            drive(&mut noisy, step, &mut b);
        }
        prop_assert_eq!(a, b);
        prop_assert_eq!(noisy.sampled_errors(), 0);
    }

    /// `NoiseModel::default()` ≡ plain random backend, byte-for-byte.
    #[test]
    fn default_noise_model_is_byte_identical_random(
        seed in 0u64..1_000,
        steps in proptest::collection::vec(step_strategy(), 1..60),
    ) {
        let mut plain = RandomBackend::new(seed, 0.5);
        let mut leaky = LeakyRandomBackend::new(seed, 0.5, NoiseModel::default());
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for &step in &steps {
            drive(&mut plain, step, &mut a);
            drive(&mut leaky, step, &mut b);
        }
        prop_assert_eq!(a, b);
        prop_assert_eq!(leaky.leaked_count(), 0);
    }

    /// Channel sampling replays exactly: two noisy backends at the same
    /// seed and schedule produce identical outcomes and error counts.
    #[test]
    fn noisy_sampling_replays_under_fixed_seed(
        seed in 0u64..1_000,
        steps in proptest::collection::vec(step_strategy(), 1..60),
    ) {
        let noise = NoiseModel::default()
            .with_gate_errors(0.05, 0.2)
            .with_meas_error(0.1)
            .with_leak(0.1);
        let mut first = NoisyStabilizerBackend::new(QUBITS, seed, noise);
        let mut second = NoisyStabilizerBackend::new(QUBITS, seed, noise);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for &step in &steps {
            drive(&mut first, step, &mut a);
            drive(&mut second, step, &mut b);
        }
        prop_assert_eq!(a, b);
        prop_assert_eq!(first.sampled_errors(), second.sampled_errors());

        let mut first = LeakyRandomBackend::new(seed, 0.5, noise);
        let mut second = LeakyRandomBackend::new(seed, 0.5, noise);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for &step in &steps {
            drive(&mut first, step, &mut a);
            drive(&mut second, step, &mut b);
        }
        prop_assert_eq!(a, b);
        prop_assert_eq!(first.leaked_count(), second.leaked_count());
    }

    /// The leaked population after a fixed schedule is monotone
    /// non-decreasing in `p_leak`: every leak drawn at a lower rate is
    /// also drawn at any higher rate (shared stream positions).
    #[test]
    fn leak_population_is_monotone_in_p_leak(
        seed in 0u64..1_000,
        steps in proptest::collection::vec(step_strategy(), 1..80),
    ) {
        let mut previous = 0usize;
        for p_leak in [0.0, 0.01, 0.05, 0.2, 0.6, 1.0] {
            let noise = NoiseModel::default().with_leak(p_leak);
            let mut backend = LeakyRandomBackend::new(seed, 0.5, noise);
            let mut sink = Vec::new();
            // Gates only: measurements/resets would make the leak state
            // (via sticky outcomes) part of the schedule under test,
            // and resets would un-leak — the monotone observable is the
            // population produced by an identical gate sequence.
            for &step in &steps {
                if let Step::Cx(a, b) = step {
                    drive(&mut backend, Step::Cx(a, b), &mut sink);
                }
            }
            prop_assert!(
                backend.leaked_count() >= previous,
                "p_leak={} leaked {} < previous {}",
                p_leak, backend.leaked_count(), previous,
            );
            previous = backend.leaked_count();
        }
    }
}
