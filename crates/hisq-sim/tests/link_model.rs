//! Property-based and behavioral coverage of the contended-link model:
//! per-link occupancy can never exceed the configured capacity,
//! drop-and-retransmit streams are deterministic under a fixed seed,
//! and the transparent default model reproduces the pure-latency
//! engine exactly (no queue bookkeeping, no report changes).

use proptest::prelude::*;

use hisq_core::NodeConfig;
use hisq_isa::{Assembler, Inst};
use hisq_net::TopologyBuilder;
use hisq_sim::{DropPolicy, Hub, LinkModel, SimReport, SystemSpec};

fn asm(src: &str) -> Vec<Inst> {
    Assembler::new().assemble(src).unwrap().insts().to_vec()
}

/// A sender bursting `burst` classical messages at controller 1, which
/// consumes them all — every message crosses the contended `0 → 1`
/// link back to back.
fn burst_system(burst: usize, model: LinkModel) -> SystemSpec {
    let send_lines = "send 1, t0\n".repeat(burst);
    let recv_lines = "recv t1, 0\n".repeat(burst);
    let mut spec = SystemSpec::new();
    spec.controller(
        NodeConfig::new(0).with_neighbor(1, 6),
        asm(&format!("li t0, 7\n{send_lines}stop")),
    );
    spec.controller(
        NodeConfig::new(1).with_neighbor(0, 6),
        asm(&format!("{recv_lines}stop")),
    );
    spec.link_model(model);
    spec
}

fn run_burst(burst: usize, model: LinkModel) -> SimReport {
    burst_system(burst, model)
        .build()
        .expect("burst system builds")
        .run()
        .expect("burst system runs")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// However many messages contend for however few slots, the peak
    /// per-link occupancy never exceeds the model's capacity, and every
    /// lossless message is carried exactly once.
    #[test]
    fn occupancy_never_exceeds_capacity(
        serialization_ns in 1u64..200,
        capacity in 1u32..5,
        burst in 1usize..20,
    ) {
        let model = LinkModel::serialized(serialization_ns).with_capacity(capacity);
        let report = run_burst(burst, model);
        prop_assert!(report.all_halted, "blocked: {:?}", report.blocked);
        prop_assert_eq!(report.link_stats.len(), 1, "one contended link");
        let link = report.link_stats[0];
        prop_assert!(link.peak_occupancy >= 1);
        prop_assert!(
            link.peak_occupancy <= capacity,
            "peak {} over capacity {}",
            link.peak_occupancy,
            capacity
        );
        prop_assert_eq!(link.messages, burst as u64);
        prop_assert_eq!(link.retransmits, 0);
        prop_assert_eq!(link.dropped, 0);
    }

    /// The same seed replays the same loss stream: two identical lossy
    /// runs produce identical reports (retransmit counts included).
    #[test]
    fn retransmits_are_deterministic_under_a_fixed_seed(
        seed in any::<u64>(),
        loss_ppm in 1u32..800_000,
        burst in 1usize..16,
    ) {
        let model = LinkModel::serialized(20).with_drop(DropPolicy {
            loss_ppm,
            seed,
            max_attempts: 16,
        });
        let first = run_burst(burst, model);
        let second = run_burst(burst, model);
        prop_assert_eq!(&first, &second, "seeded loss must replay exactly");
    }

    /// Any transparent model — the default or an explicit zero-serialization
    /// lossless configuration — reproduces the pure-latency engine
    /// byte-for-byte: identical report, no link bookkeeping at all.
    #[test]
    fn transparent_models_reproduce_pure_latency_behavior(
        burst in 1usize..16,
        capacity in 1u32..9,
    ) {
        let baseline = run_burst(burst, LinkModel::default());
        prop_assert!(baseline.link_stats.is_empty(), "default model keeps no queues");
        let transparent = LinkModel {
            serialization_ns: 0,
            capacity,
            drop: None,
        };
        prop_assert!(transparent.is_transparent());
        let report = run_burst(burst, transparent);
        prop_assert_eq!(&report, &baseline);
    }
}

#[test]
fn serialization_delays_the_second_message_by_the_hold_time() {
    // Two sends issued one cycle apart over a 6-cycle link, with a
    // 10-cycle (40 ns) serialization hold. The first message pays its
    // own hold (+10); the second is offered one cycle later but must
    // wait for the slot (hold − 1 queueing) and then serialize (+10):
    // the critical path grows by exactly 2·hold − 1 cycles.
    let hold = 10;
    let pure = run_burst(2, LinkModel::default());
    let contended = run_burst(2, LinkModel::serialized(hold * 4));
    assert!(pure.all_halted && contended.all_halted);
    assert_eq!(
        contended.makespan_cycles,
        pure.makespan_cycles + 2 * hold - 1,
        "serialization plus queueing on the critical path"
    );
    let link = contended.link_stats[0];
    assert_eq!((link.from, link.to), (0, 1));
    assert_eq!(link.messages, 2);
    assert_eq!(link.peak_occupancy, 1, "a single slot never doubles up");
}

#[test]
fn extra_capacity_absorbs_the_burst() {
    // The same two sends through two slots serialize concurrently: the
    // queueing term vanishes and only the per-message hold remains.
    let hold = 10;
    let pure = run_burst(2, LinkModel::default());
    let wide = run_burst(2, LinkModel::serialized(hold * 4).with_capacity(2));
    assert_eq!(
        wide.makespan_cycles,
        pure.makespan_cycles + hold,
        "both messages pay serialization once, neither queues"
    );
    assert_eq!(wide.link_stats[0].peak_occupancy, 2);
}

#[test]
fn certain_loss_exhausts_the_attempt_budget_and_drops() {
    // loss_ppm = 1_000_000 drops every attempt: the message burns its
    // attempt budget, is counted as dropped, and the starved receiver
    // deadlocks (visibly, in the report).
    let model = LinkModel::serialized(4).with_drop(DropPolicy {
        loss_ppm: 1_000_000,
        seed: 3,
        max_attempts: 5,
    });
    let report = run_burst(1, model);
    assert!(!report.all_halted);
    let link = report.link_stats[0];
    assert_eq!(link.dropped, 1);
    assert_eq!(link.messages, 5, "every attempt occupied the wire");
    assert_eq!(link.retransmits, 4, "max_attempts - 1 retransmissions");
}

#[test]
fn lossy_links_retransmit_and_still_deliver() {
    // 50% loss with a generous budget: the burst still completes, at
    // the cost of counted retransmissions (deterministic under seed 7;
    // 12 messages all surviving 16 attempts is a ~2^-48 event).
    let model = LinkModel::serialized(8).with_drop(DropPolicy {
        loss_ppm: 500_000,
        seed: 7,
        max_attempts: 16,
    });
    let report = run_burst(12, model);
    assert!(report.all_halted, "blocked: {:?}", report.blocked);
    let link = report.link_stats[0];
    assert!(link.retransmits > 0, "50% loss must retransmit");
    assert_eq!(link.dropped, 0);
    assert_eq!(link.messages, 12 + link.retransmits);
}

#[test]
fn topology_setter_adopts_the_topology_link_model() {
    // A contention model configured on the topology must survive the
    // incremental spec path (`spec.topology(...)`), not just
    // `SystemSpec::from_topology`.
    let topo = TopologyBuilder::linear(2)
        .neighbor_latency(6)
        .link_model(LinkModel::serialized(16))
        .build();
    let mut spec = SystemSpec::new();
    spec.controller(topo.node_config(0), asm("li t0, 7\nsend 1, t0\nstop"));
    spec.controller(topo.node_config(1), asm("recv t1, 0\nstop"));
    spec.topology(topo);
    let mut system = spec.build().unwrap();
    let report = system.run().unwrap();
    assert!(report.all_halted);
    assert_eq!(
        report.link_stats.len(),
        1,
        "the topology's contention model must be in force"
    );
    assert_eq!(report.link_stats[0].messages, 1);
}

#[test]
fn hub_egress_is_a_shared_serialization_queue() {
    // One publisher, three subscribers: the hub's fan-out serializes
    // all three copies through its shared egress port, reported as the
    // (hub, hub) link.
    let mut spec = SystemSpec::new();
    spec.hub(
        10,
        Hub {
            subscribers: vec![0, 1, 2],
            down_latency: 25,
        },
    );
    spec.controller(
        NodeConfig::new(0),
        asm("li t0, 7\nsend 10, t0\nrecv t1, 10\nstop"),
    );
    for addr in 1..3u16 {
        spec.controller(NodeConfig::new(addr), asm("recv t1, 10\nstop"));
    }
    spec.link_model(LinkModel::serialized(16));
    let mut system = spec.build().unwrap();
    let report = system.run().unwrap();
    assert!(report.all_halted, "{:?}", report.blocked);
    let egress = report
        .link_stats
        .iter()
        .find(|l| l.from == 10 && l.to == 10)
        .expect("hub egress queue reported");
    assert_eq!(egress.messages, 3, "one copy per subscriber");
    // The publisher's uplink is a dedicated link with its own queue.
    assert!(report.link_stats.iter().any(|l| l.from == 0 && l.to == 10));
}
