//! Differential oracle for the calendar-queue event core: the
//! production [`CalendarQueue`] must pop the exact `(cycle, item)`
//! sequence of the retained [`HeapQueue`] reference (the historical
//! `BinaryHeap<Reverse<(at, seq)>>` ordering) over proptest-generated
//! push/pop streams and over adversarial hand-built cases — same-cycle
//! bursts, the far-future overflow rung, horizon wrap-around, pushes
//! behind the pop frontier, and cycles at the very top of `u64`.
//!
//! The second half pins the satellite bugfix: the `seq` tie-break
//! counter uses checked arithmetic, so exhausting it panics loudly
//! instead of silently reordering same-cycle events.

use proptest::prelude::*;

use hisq_sim::queue::{CalendarQueue, EventQueue, HeapQueue};

/// One generated operation against both queues.
#[derive(Debug, Clone)]
enum Op {
    /// Push the next item id at this cycle.
    Push(u64),
    /// Pop once from both queues and compare.
    Pop,
}

/// Drives the same operation stream through wheel and heap, asserting
/// identical observable behaviour after every step, then drains both.
fn run_differential(ops: &[Op]) {
    let mut wheel: CalendarQueue<u32> = CalendarQueue::new();
    let mut heap: HeapQueue<u32> = HeapQueue::new();
    let mut next_item = 0u32;
    for op in ops {
        match *op {
            Op::Push(cycle) => {
                wheel.push(cycle, next_item);
                heap.push(cycle, next_item);
                next_item += 1;
            }
            Op::Pop => {
                assert_eq!(
                    wheel.pop(),
                    heap.pop(),
                    "pop diverged after {next_item} pushes"
                );
            }
        }
        assert_eq!(wheel.len(), heap.len(), "len diverged");
        assert_eq!(wheel.next_at(), heap.next_at(), "next_at diverged");
    }
    loop {
        let (w, h) = (wheel.pop(), heap.pop());
        assert_eq!(w, h, "drain diverged");
        if w.is_none() {
            break;
        }
    }
}

/// Cycles drawn from the regimes that exercise every rung: the bucket
/// window, multiples of the horizon (wrap-around), the far future
/// (overflow), and the top of `u64`.
fn cycle_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..64,
        0u64..5_000,
        500u64..530,
        1_000_000u64..1_001_000,
        (u64::MAX - 600)..u64::MAX,
    ]
}

/// `(cycle, pop_after)` pairs: push at `cycle`, then pop `pop_after`
/// times — interleaving advances the wheel's window mid-stream.
fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((cycle_strategy(), 0usize..3), 0..200).prop_map(|pairs| {
        let mut ops = Vec::new();
        for (cycle, pops) in pairs {
            ops.push(Op::Push(cycle));
            for _ in 0..pops {
                ops.push(Op::Pop);
            }
        }
        ops
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The oracle: any interleaving of pushes (across all cycle
    /// regimes) and pops produces identical pop sequences.
    #[test]
    fn wheel_matches_heap_on_random_streams(ops in ops_strategy()) {
        run_differential(&ops);
    }
}

#[test]
fn same_cycle_burst_pops_in_push_order() {
    let mut ops = Vec::new();
    for _ in 0..300 {
        ops.push(Op::Push(42));
    }
    for _ in 0..300 {
        ops.push(Op::Pop);
    }
    run_differential(&ops);
}

#[test]
fn far_future_overflow_rung_merges_with_window_cycles() {
    // Same cycle lands in overflow first, then (after the window
    // advances) directly in a bucket — overflow entries must still pop
    // before later window pushes at the same cycle.
    let mut ops = vec![Op::Push(10_000), Op::Push(10_000), Op::Push(3), Op::Pop];
    // After popping cycle 3, push 10_000 again: now in-window.
    ops.push(Op::Push(10_000));
    ops.extend([Op::Pop, Op::Pop, Op::Pop]);
    run_differential(&ops);
}

#[test]
fn horizon_wrap_around_keeps_cycle_order() {
    // Cycles straddling multiples of the 512-cycle horizon map to
    // nearby ring indices; popping between pushes advances the window
    // across several wraps.
    let mut ops = Vec::new();
    for lap in 0u64..6 {
        for offset in [0, 1, 255, 511] {
            ops.push(Op::Push(lap * 512 + offset));
        }
        ops.push(Op::Pop);
    }
    for _ in 0..24 {
        ops.push(Op::Pop);
    }
    run_differential(&ops);
}

#[test]
fn pushes_behind_the_pop_frontier_still_pop_first() {
    // Popping cycle 1000 advances the wheel's window; a later push at
    // cycle 5 is "late" and must come out immediately, as the heap
    // reference would order it.
    run_differential(&[
        Op::Push(1_000),
        Op::Pop,
        Op::Push(5),
        Op::Push(900),
        Op::Push(5),
        Op::Pop,
        Op::Pop,
        Op::Pop,
    ]);
}

#[test]
fn max_u64_cycles_do_not_wrap_bucket_arithmetic() {
    // The window math uses subtraction (`at - current`), so cycles at
    // the very top of u64 must neither overflow nor misfile.
    run_differential(&[
        Op::Push(u64::MAX),
        Op::Push(0),
        Op::Push(u64::MAX - 1),
        Op::Push(u64::MAX),
        Op::Pop,
        Op::Push(u64::MAX - 511),
        Op::Pop,
        Op::Pop,
        Op::Pop,
        Op::Pop,
    ]);
}

#[test]
fn seq_boundary_last_value_still_usable() {
    // Seq u64::MAX - 1 is assignable; the *next* assignment would need
    // to advance the counter past u64::MAX and panics instead.
    let mut wheel: CalendarQueue<u32> = CalendarQueue::with_seq_base(u64::MAX - 1);
    wheel.push(7, 1);
    assert_eq!(wheel.pop(), Some((7, 1)));
}

#[test]
#[should_panic(expected = "seq counter exhausted")]
fn wheel_seq_overflow_panics_instead_of_reordering() {
    let mut wheel: CalendarQueue<u32> = CalendarQueue::with_seq_base(u64::MAX - 1);
    wheel.push(7, 1);
    wheel.push(7, 2); // counter would wrap: must panic, not reorder
}

#[test]
#[should_panic(expected = "seq counter exhausted")]
fn heap_seq_overflow_panics_instead_of_reordering() {
    let mut heap: HeapQueue<u32> = HeapQueue::with_seq_base(u64::MAX - 1);
    heap.push(7, 1);
    heap.push(7, 2);
}

#[test]
fn clear_resets_seq_for_cross_run_determinism() {
    // Pooled queues are cleared between runs; a reused queue must
    // replay the same seq stream as a fresh one.
    let mut reused: CalendarQueue<u32> = CalendarQueue::new();
    reused.push(900, 1);
    reused.pop();
    reused.clear();
    let mut fresh: CalendarQueue<u32> = CalendarQueue::new();
    for q in [&mut reused, &mut fresh] {
        q.push(10, 1);
        q.push(10, 2);
        q.push(5, 3);
    }
    loop {
        let (r, f) = (reused.pop(), fresh.pop());
        assert_eq!(r, f, "reused queue diverged from fresh");
        if r.is_none() {
            break;
        }
    }
}
