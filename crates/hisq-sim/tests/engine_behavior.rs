//! Behavioral tests of the arena-indexed event engine through its
//! public construction path ([`SystemSpec`]): synchronization
//! alignment, feedback loops, deadlock reporting, the event budget,
//! gate replay into quantum backends, exposure accounting, hub
//! broadcast, unknown-destination drops, and the structured fault
//! paths (router invariant violations, routing warnings).

use std::collections::BTreeMap;

use hisq_core::{BlockReason, NodeAddr, NodeConfig};
use hisq_isa::{Assembler, Inst};
use hisq_net::{Router, RouterError, TopologyBuilder};
use hisq_quantum::Gate;
use hisq_sim::{
    FixedBackend, Hub, MeasBinding, QuantumAction, SimConfig, SimError, StabilizerBackend,
    SystemSpec,
};

fn asm(src: &str) -> Vec<Inst> {
    Assembler::new().assemble(src).unwrap().insts().to_vec()
}

#[test]
fn two_node_nearby_sync_aligns_commits() {
    let mut spec = SystemSpec::new();
    spec.controller(
        NodeConfig::new(0).with_neighbor(1, 6),
        asm("waiti 40\nsync 1\nwaiti 6\ncw.i.i 0, 1\nstop"),
    );
    spec.controller(
        NodeConfig::new(1).with_neighbor(0, 6),
        asm("waiti 90\nsync 0\nwaiti 6\ncw.i.i 0, 1\nstop"),
    );
    let mut system = spec.build().unwrap();
    let report = system.run().unwrap();
    assert!(report.all_halted);
    let telf = system.telf();
    assert_eq!(telf.alignment((0, 0), (1, 0)), vec![0]);
    // The later controller (booking 90, T=96) sets the common time.
    assert_eq!(telf.commits_of(0)[0].cycle, 96);
}

#[test]
fn region_sync_through_router_tree() {
    // Four controllers, arity-2 tree. All sync against the root with
    // different booking times; all must commit at the same cycle.
    let topo = TopologyBuilder::linear(4)
        .router_arity(2)
        .neighbor_latency(5)
        .router_latency(10)
        .build();
    let root = topo.root_router().unwrap();
    let mut programs = BTreeMap::new();
    for (i, delay) in [40u32, 90, 60, 120].iter().enumerate() {
        let src = format!("li t0, 30\nwaiti {delay}\nsync {root}, t0\nwaiti 30\ncw.i.i 0, 1\nstop");
        programs.insert(i as NodeAddr, asm(&src));
    }
    let mut system = SystemSpec::from_topology(&topo, programs).build().unwrap();
    let report = system.run().unwrap();
    assert!(report.all_halted, "blocked: {:?}", report.blocked);
    let telf = system.telf();
    let cycles: Vec<u64> = (0..4u16)
        .map(|addr| telf.commits_of(addr)[0].cycle)
        .collect();
    assert!(
        cycles.windows(2).all(|w| w[0] == w[1]),
        "region sync must align all commits: {cycles:?}"
    );
    // The slowest controller books at ~121 with horizon 30 → T_i ≈
    // 151; bookings cross two tree hops (≤ 141 + 20), so the region
    // meets at max(T_i, arrivals).
    let common = cycles[0];
    assert!(common >= 151, "common start {common} below slowest T_i");
}

#[test]
fn feedback_loop_with_scripted_measurement() {
    // Controller 0 triggers a measurement on port 4, receives the
    // result, and pulses port 1 only when the result is 1.
    let mut spec = SystemSpec::new();
    spec.controller(
        NodeConfig::new(0),
        asm("
            waiti 25
            cw.i.i 4, 1
            recv t0, 0xFFF
            beqz t0, skip
            waiti 10
            cw.i.i 1, 1
        skip:
            stop
        "),
    );
    spec.bind_measurement_port(
        0,
        4,
        MeasBinding {
            qubit: 3,
            result_latency: 75,
        },
    );
    let mut system = spec.build().unwrap();
    let mut backend = FixedBackend::new(false);
    backend.script(3, [true]);
    system.set_backend(backend);
    let report = system.run().unwrap();
    assert!(report.all_halted);
    let telf = system.telf();
    let pulses = telf.channel(0, 1);
    assert_eq!(pulses.len(), 1, "conditional pulse must fire");
    // Trigger at 25, result at 100, grid rebases then waits 10.
    assert!(pulses[0].cycle >= 110);
}

#[test]
fn feedback_branch_not_taken() {
    let mut spec = SystemSpec::new();
    spec.controller(
        NodeConfig::new(0),
        asm("
            waiti 25
            cw.i.i 4, 1
            recv t0, 0xFFF
            beqz t0, skip
            waiti 10
            cw.i.i 1, 1
        skip:
            stop
        "),
    );
    spec.bind_measurement_port(
        0,
        4,
        MeasBinding {
            qubit: 3,
            result_latency: 75,
        },
    );
    let mut system = spec.build().unwrap();
    system.set_backend(FixedBackend::new(false));
    let report = system.run().unwrap();
    assert!(report.all_halted);
    assert!(system.telf().channel(0, 1).is_empty());
}

#[test]
fn deadlock_is_reported_not_hung() {
    let mut spec = SystemSpec::new();
    spec.controller(NodeConfig::new(0).with_neighbor(1, 5), asm("sync 1\nstop"));
    spec.controller(NodeConfig::new(1).with_neighbor(0, 5), asm("stop"));
    let mut system = spec.build().unwrap();
    let report = system.run().unwrap();
    assert!(!report.all_halted);
    assert_eq!(
        report.blocked,
        vec![(0, BlockReason::AwaitSyncPulse { partner: 1 })]
    );
}

#[test]
fn event_budget_guards_runaway_programs() {
    let config = SimConfig {
        max_events: 100,
        ..SimConfig::default()
    };
    let mut spec = SystemSpec::new();
    spec.config(config);
    // Two controllers bouncing classical messages forever.
    spec.controller(
        NodeConfig::new(0).with_neighbor(1, 2),
        asm("li t0, 1\nping: send 1, t0\nrecv t0, 1\nj ping"),
    );
    spec.controller(
        NodeConfig::new(1).with_neighbor(0, 2),
        asm("pong: recv t0, 0\nsend 0, t0\nj pong"),
    );
    let mut system = spec.build().unwrap();
    assert_eq!(
        system.run(),
        Err(SimError::EventBudgetExceeded { budget: 100 })
    );
}

#[test]
fn gate_replay_drives_quantum_backend() {
    // Bell pair across two controllers: controller 0 applies H then
    // (virtually) both halves of the CNOT; both measure; outcomes
    // must agree thanks to the stabilizer backend.
    let mut spec = SystemSpec::new();
    spec.controller(
        NodeConfig::new(0).with_neighbor(1, 5),
        asm("
            waiti 20
            cw.i.i 0, 1     # H q0
            waiti 5
            cw.i.i 0, 2     # CX q0,q1
            sync 1
            waiti 5
            cw.i.i 2, 1     # measure q0
            recv t0, 0xFFF
            stop
        "),
    );
    spec.controller(
        NodeConfig::new(1).with_neighbor(0, 5),
        asm("
            waiti 20
            sync 0
            waiti 5
            cw.i.i 2, 1     # measure q1
            recv t0, 0xFFF
            stop
        "),
    );
    spec.bind(
        0,
        0,
        1,
        QuantumAction::Gate {
            gate: Gate::H,
            qubits: vec![0],
        },
    );
    spec.bind(
        0,
        0,
        2,
        QuantumAction::Gate {
            gate: Gate::Cx,
            qubits: vec![0, 1],
        },
    );
    spec.bind(0, 2, 1, QuantumAction::Measure { qubit: 0 });
    spec.bind(1, 2, 1, QuantumAction::Measure { qubit: 1 });
    let mut system = spec.build().unwrap();
    system.set_backend(StabilizerBackend::new(2, 1234));
    let report = system.run().unwrap();
    assert!(report.all_halted, "{:?}", report);
    assert_eq!(report.causality_warnings, 0);
    let m0 = system
        .controller(0)
        .unwrap()
        .reg(hisq_isa::Reg::parse("t0").unwrap());
    let m1 = system
        .controller(1)
        .unwrap()
        .reg(hisq_isa::Reg::parse("t0").unwrap());
    assert_eq!(m0, m1, "Bell correlations through the full stack");
}

#[test]
fn exposure_ledger_tracks_gate_spans() {
    let mut spec = SystemSpec::new();
    spec.controller(
        NodeConfig::new(0),
        asm("waiti 10\ncw.i.i 0, 1\nwaiti 100\ncw.i.i 0, 1\nstop"),
    );
    spec.bind(
        0,
        0,
        1,
        QuantumAction::Gate {
            gate: Gate::X,
            qubits: vec![5],
        },
    );
    let mut system = spec.build().unwrap();
    system.run().unwrap();
    // First gate at cycle 10 (40 ns), second at cycle 110 (440 ns) +
    // 20 ns duration → exposure 40..460 = 420 ns.
    assert_eq!(system.exposure().exposure_ns(5), 420);
}

#[test]
fn hub_broadcast_reaches_every_subscriber() {
    // One publisher, three subscribers on a star: the lock-step
    // substrate end to end through the arena dispatch.
    let mut spec = SystemSpec::new();
    spec.hub(
        10,
        Hub {
            subscribers: vec![0, 1, 2],
            down_latency: 25,
        },
    );
    spec.controller(
        NodeConfig::new(0),
        asm("li t0, 7\nsend 10, t0\nrecv t1, 10\nstop"),
    );
    for addr in 1..3u16 {
        spec.controller(NodeConfig::new(addr), asm("recv t1, 10\nstop"));
    }
    let mut system = spec.build().unwrap();
    let report = system.run().unwrap();
    assert!(report.all_halted, "{:?}", report.blocked);
    for addr in 0..3u16 {
        let t1 = system
            .controller(addr)
            .unwrap()
            .reg(hisq_isa::Reg::parse("t1").unwrap());
        assert_eq!(t1, 7, "subscriber {addr} received the broadcast");
    }
}

#[test]
fn message_to_unknown_address_deadlocks_the_receiver_only() {
    // A send to an unregistered address is dropped at routing time;
    // the sender completes and the starved receiver is reported.
    let mut spec = SystemSpec::new();
    spec.controller(NodeConfig::new(0), asm("li t0, 1\nsend 99, t0\nstop"));
    spec.controller(NodeConfig::new(1), asm("recv t0, 0\nstop"));
    let mut system = spec.build().unwrap();
    let report = system.run().unwrap();
    assert!(!report.all_halted);
    assert_eq!(
        report.blocked,
        vec![(1, BlockReason::AwaitMessage { source: 0 })]
    );
}

#[test]
fn mis_rooted_topology_surfaces_a_router_fault() {
    // The linear(4)/arity-2 tree needs leaf routers 4 and 5 under root
    // 6, but the deployment declares router 4 parentless: the first
    // completed booking that must climb towards the root surfaces as a
    // structured SimError instead of a panic.
    let topo = TopologyBuilder::linear(4)
        .router_arity(2)
        .neighbor_latency(5)
        .router_latency(10)
        .build();
    let root = topo.root_router().unwrap();
    let mut spec = SystemSpec::new();
    spec.topology(topo.clone());
    spec.router(Router::new(4, None, vec![0, 1])); // should be Some(6)
    spec.router(Router::new(5, Some(root), vec![2, 3]));
    spec.router(Router::new(root, None, vec![4, 5]));
    for addr in 0..4u16 {
        let src = format!("li t0, 30\nwaiti 10\nsync {root}, t0\nwaiti 30\ncw.i.i 0, 1\nstop");
        spec.controller(topo.node_config(addr), asm(&src));
    }
    let mut system = spec.build().unwrap();
    assert_eq!(
        system.run(),
        Err(SimError::Router(RouterError::MissingParent {
            router: 4,
            target: root
        }))
    );
}

#[test]
fn booking_from_a_non_child_surfaces_a_router_fault() {
    // Controller 2 carries a calibrated link to router 10 and books a
    // region sync with it, but the router only parents 0 and 1.
    let mut spec = SystemSpec::new();
    spec.router(Router::new(10, None, vec![0, 1]));
    spec.controller(
        NodeConfig::new(2).with_router(10, 8),
        asm("li t0, 20\nsync 10, t0\nwaiti 20\ncw.i.i 0, 1\nstop"),
    );
    let mut system = spec.build().unwrap();
    assert_eq!(
        system.run(),
        Err(SimError::Router(RouterError::NonChildBooking {
            router: 10,
            from: 2
        }))
    );
}

#[test]
#[cfg_attr(debug_assertions, should_panic(expected = "wiring bug"))]
fn unknown_destination_with_topology_is_a_counted_warning() {
    // With a topology attached, a send to an address the topology
    // cannot derive a latency for is a wiring bug: debug builds assert,
    // release builds fall back to the default latency but count the
    // warning in the report.
    let topo = TopologyBuilder::linear(2).build();
    let mut programs = BTreeMap::new();
    programs.insert(0u16, asm("li t0, 1\nsend 50, t0\nstop"));
    programs.insert(1u16, asm("stop"));
    let mut system = SystemSpec::from_topology(&topo, programs).build().unwrap();
    let report = system.run().unwrap();
    assert_eq!(report.routing_warnings, 1);
    assert!(report.all_halted, "the dropped send does not block anyone");
}

#[test]
fn starless_classical_default_latency_stays_warning_free() {
    // Without a topology (the lock-step star), the default classical
    // latency is the intended uplink model — no warning.
    let mut spec = SystemSpec::new();
    spec.controller(NodeConfig::new(0), asm("li t0, 1\nsend 1, t0\nstop"));
    spec.controller(NodeConfig::new(1), asm("recv t0, 0\nstop"));
    let mut system = spec.build().unwrap();
    let report = system.run().unwrap();
    assert!(report.all_halted);
    assert_eq!(report.routing_warnings, 0);
}
