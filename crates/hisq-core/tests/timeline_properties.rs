//! Property-based verification of the [`Timeline`] invariants the BISP
//! protocol rests on (§3.2/§4 of the paper): the TCU timer may be
//! paused and resumed by synchronizations, but wall-clock time can
//! only ever move *forward*, and the raw↔wall mapping must stay
//! consistent for any program-ordered gate sequence.

use proptest::prelude::*;

use hisq_core::Timeline;

/// Builds a timeline from `(position_delta, resume_delta)` pairs: gate
/// positions grow monotonically (the program order `add_gate`
/// requires) and resume times land `resume_delta` cycles past the
/// gate's current effective time (0 ⇒ a no-op gate, Condition II met
/// early). Returns the timeline and the applied gate positions.
fn build(gates: &[(u64, u64)]) -> (Timeline, Vec<u64>) {
    let mut timeline = Timeline::new();
    let mut raw = 0u64;
    let mut positions = Vec::with_capacity(gates.len());
    for &(pos_delta, resume_delta) in gates {
        raw += pos_delta;
        let resume = timeline.effective(raw) + resume_delta;
        timeline.add_gate(raw, resume);
        positions.push(raw);
    }
    (timeline, positions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `effective` is monotone: a later raw grid position never maps
    /// to an earlier wall-clock cycle, no matter how many stalls the
    /// synchronizations inserted.
    #[test]
    fn effective_time_is_monotone(
        gates in proptest::collection::vec((0u64..40, 0u64..80), 0..8),
        probes in proptest::collection::vec(0u64..400, 2..16),
    ) {
        let (timeline, _) = build(&gates);
        let mut sorted = probes.clone();
        sorted.sort_unstable();
        for pair in sorted.windows(2) {
            prop_assert!(
                timeline.effective(pair[0]) <= timeline.effective(pair[1]),
                "effective({}) = {} > effective({}) = {}",
                pair[0], timeline.effective(pair[0]),
                pair[1], timeline.effective(pair[1]),
            );
        }
    }

    /// Stalls only push time forward: every raw position's wall time
    /// is at least the raw position itself, and the shift past the
    /// last gate equals `total_stall`.
    #[test]
    fn stalls_never_rewind_the_clock(
        gates in proptest::collection::vec((0u64..40, 0u64..80), 1..8),
        probe in 0u64..500,
    ) {
        let (timeline, positions) = build(&gates);
        prop_assert!(timeline.effective(probe) >= probe);
        let last = *positions.last().unwrap();
        prop_assert_eq!(
            timeline.effective(last + 100) - (last + 100),
            timeline.total_stall(),
            "suffix shift is the accumulated stall"
        );
    }

    /// Each gate resumes exactly at its requested wall-clock time when
    /// a stall was needed, and is a no-op when the resume time was
    /// already reached (the zero-overhead case of §4.4).
    #[test]
    fn gates_resume_exactly_on_time(
        gates in proptest::collection::vec((0u64..40, 0u64..80), 1..8),
    ) {
        let mut timeline = Timeline::new();
        let mut raw = 0u64;
        for &(pos_delta, resume_delta) in &gates {
            raw += pos_delta;
            let before = timeline.effective(raw);
            let count_before = timeline.gate_count();
            let resume = before + resume_delta;
            timeline.add_gate(raw, resume);
            prop_assert_eq!(timeline.effective(raw), before.max(resume));
            if resume_delta == 0 {
                prop_assert_eq!(timeline.gate_count(), count_before, "no-op gate recorded");
            }
        }
    }

    /// `raw_for_wall` inverts `effective` on every reachable wall
    /// time: re-basing the grid after a non-deterministic event never
    /// loses or invents stall cycles.
    #[test]
    fn raw_for_wall_round_trips(
        gates in proptest::collection::vec((0u64..40, 0u64..80), 0..8),
        probes in proptest::collection::vec(0u64..400, 1..16),
    ) {
        let (timeline, _) = build(&gates);
        for &raw in &probes {
            let wall = timeline.effective(raw);
            let back = timeline.raw_for_wall(wall);
            prop_assert_eq!(
                timeline.effective(back),
                wall,
                "round trip through raw {} (wall {})", raw, wall
            );
        }
    }
}
