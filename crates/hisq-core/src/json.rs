//! JSON serialization of the node-configuration types, for the
//! scenario-file surface (`hisq run`).
//!
//! Formats (all decoders reject unknown fields):
//!
//! ```json
//! {"addr": 0,
//!  "links": [{"to": 1, "latency": 5, "kind": "neighbor"}],
//!  "mem_bytes": 65536,
//!  "pipeline_headroom": 32}
//! ```

use hisq_json::{Json, JsonError, ObjReader};

use crate::config::{Link, LinkKind, NodeConfig};

impl Link {
    /// Serializes the link (without its remote address, which keys the
    /// surrounding map).
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("latency".into(), self.latency.into()),
            (
                "kind".into(),
                Json::str(match self.kind {
                    LinkKind::Neighbor => "neighbor",
                    LinkKind::Router => "router",
                }),
            ),
        ])
    }

    /// Parses a link serialized by [`Link::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] at `path` for missing/unknown fields or
    /// an unrecognized `kind`.
    pub fn from_json(value: &Json, path: &str) -> Result<Link, JsonError> {
        let mut obj = ObjReader::new(value, path)?;
        let latency = obj
            .required("latency")?
            .as_u64(&obj.field_path("latency"))?;
        let kind_path = obj.field_path("kind");
        let kind = match obj.required("kind")?.as_str(&kind_path)? {
            "neighbor" => LinkKind::Neighbor,
            "router" => LinkKind::Router,
            other => {
                return Err(JsonError::decode(
                    kind_path,
                    format!("unknown link kind \"{other}\" (expected \"neighbor\" or \"router\")"),
                ))
            }
        };
        obj.reject_unknown()?;
        Ok(Link { latency, kind })
    }
}

impl NodeConfig {
    /// Serializes the full controller configuration. Links render as an
    /// array ordered by remote address (the map's iteration order), so
    /// output is deterministic.
    pub fn to_json(&self) -> Json {
        let links = self
            .links
            .iter()
            .map(|(&to, link)| {
                let Json::Object(mut fields) = link.to_json() else {
                    unreachable!("links serialize as objects");
                };
                fields.insert(0, ("to".into(), to.into()));
                Json::Object(fields)
            })
            .collect();
        Json::Object(vec![
            ("addr".into(), self.addr.into()),
            ("links".into(), Json::Array(links)),
            ("mem_bytes".into(), self.mem_bytes.into()),
            ("pipeline_headroom".into(), self.pipeline_headroom.into()),
        ])
    }

    /// Parses a configuration serialized by [`NodeConfig::to_json`].
    /// `links` and `mem_bytes`/`pipeline_headroom` may be omitted (the
    /// [`NodeConfig::new`] defaults apply).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] at `path` for missing/unknown fields,
    /// malformed links, or duplicate link targets.
    pub fn from_json(value: &Json, path: &str) -> Result<NodeConfig, JsonError> {
        let mut obj = ObjReader::new(value, path)?;
        let addr = obj.required("addr")?.as_u16(&obj.field_path("addr"))?;
        let mut config = NodeConfig::new(addr);
        if let Some(links) = obj.optional("links") {
            let links_path = obj.field_path("links");
            for (i, entry) in links.as_array(&links_path)?.iter().enumerate() {
                let entry_path = format!("{links_path}[{i}]");
                let mut link_obj = ObjReader::new(entry, &entry_path)?;
                let to = link_obj
                    .required("to")?
                    .as_u16(&link_obj.field_path("to"))?;
                // Re-serialize the remaining fields through Link's own
                // decoder so `kind`/`latency` validation lives in one
                // place.
                let Json::Object(entries) = entry else {
                    unreachable!("ObjReader verified this is an object");
                };
                let rest: Vec<(String, Json)> =
                    entries.iter().filter(|(k, _)| k != "to").cloned().collect();
                let link = Link::from_json(&Json::Object(rest), &entry_path)?;
                if config.links.insert(to, link).is_some() {
                    return Err(JsonError::decode(
                        entry_path,
                        format!("duplicate link to address {to}"),
                    ));
                }
                // Mark the pass-through fields as consumed.
                link_obj.optional("latency");
                link_obj.optional("kind");
                link_obj.reject_unknown()?;
            }
        }
        if let Some(v) = obj.optional("mem_bytes") {
            config.mem_bytes = v.as_usize(&obj.field_path("mem_bytes"))?;
        }
        if let Some(v) = obj.optional("pipeline_headroom") {
            config.pipeline_headroom = v.as_u64(&obj.field_path("pipeline_headroom"))?;
        }
        obj.reject_unknown()?;
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_config_round_trips() {
        let config = NodeConfig::new(3)
            .with_neighbor(2, 5)
            .with_router(100, 12)
            .with_mem_bytes(1024)
            .with_pipeline_headroom(32);
        let json = config.to_json();
        let back = NodeConfig::from_json(&json, "cfg").unwrap();
        assert_eq!(config, back);
        // And via text.
        let reparsed = Json::parse(&json.to_string_compact()).unwrap();
        assert_eq!(NodeConfig::from_json(&reparsed, "cfg").unwrap(), config);
    }

    #[test]
    fn defaults_may_be_omitted() {
        let json = Json::parse(r#"{"addr": 7}"#).unwrap();
        assert_eq!(
            NodeConfig::from_json(&json, "cfg").unwrap(),
            NodeConfig::new(7)
        );
    }

    #[test]
    fn unknown_fields_are_rejected_with_paths() {
        let json = Json::parse(r#"{"addr": 1, "memory": 9}"#).unwrap();
        let err = NodeConfig::from_json(&json, "cfg").unwrap_err();
        assert_eq!(err.to_string(), "cfg: unknown field `memory`");

        let json =
            Json::parse(r#"{"addr": 1, "links": [{"to": 2, "latency": 5, "kind": "warp"}]}"#)
                .unwrap();
        let err = NodeConfig::from_json(&json, "cfg").unwrap_err();
        assert!(
            err.to_string().contains("cfg.links[0].kind"),
            "error should name the nested path: {err}"
        );
    }

    #[test]
    fn duplicate_link_targets_are_rejected() {
        let json = Json::parse(
            r#"{"addr": 1, "links": [
                {"to": 2, "latency": 5, "kind": "neighbor"},
                {"to": 2, "latency": 6, "kind": "neighbor"}]}"#,
        )
        .unwrap();
        let err = NodeConfig::from_json(&json, "cfg").unwrap_err();
        assert!(err.to_string().contains("duplicate link"), "{err}");
    }
}
