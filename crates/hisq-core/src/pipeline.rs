//! Classical-pipeline building blocks: register file and data memory.

use hisq_isa::Reg;

/// The 32-entry RV32I register file with `x0` hard-wired to zero.
///
/// # Example
///
/// ```
/// use hisq_core::RegFile;
/// use hisq_isa::Reg;
///
/// let mut regs = RegFile::new();
/// regs.write(Reg::new(5).unwrap(), 42);
/// assert_eq!(regs.read(Reg::new(5).unwrap()), 42);
/// regs.write(Reg::X0, 99); // silently discarded
/// assert_eq!(regs.read(Reg::X0), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegFile {
    regs: [u32; 32],
}

impl RegFile {
    /// All-zero register file.
    pub fn new() -> RegFile {
        RegFile { regs: [0; 32] }
    }

    /// Reads a register (`x0` always reads 0).
    pub fn read(&self, reg: Reg) -> u32 {
        self.regs[reg.index()]
    }

    /// Writes a register; writes to `x0` are discarded.
    pub fn write(&mut self, reg: Reg, value: u32) {
        if reg.index() != 0 {
            self.regs[reg.index()] = value;
        }
    }
}

impl Default for RegFile {
    fn default() -> RegFile {
        RegFile::new()
    }
}

/// Byte-addressed little-endian data memory with bounds checking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Memory {
    bytes: Vec<u8>,
}

/// An out-of-bounds access fault raised by [`Memory`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFault {
    /// The faulting byte address.
    pub addr: u32,
    /// Access width in bytes.
    pub width: u32,
}

impl std::fmt::Display for MemFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "memory access of {} byte(s) at address {:#x} out of bounds",
            self.width, self.addr
        )
    }
}

impl std::error::Error for MemFault {}

impl Memory {
    /// Creates a zero-initialized memory of `bytes` bytes.
    pub fn new(bytes: usize) -> Memory {
        Memory {
            bytes: vec![0; bytes],
        }
    }

    /// Memory size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// `true` if the memory has zero size.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    fn check(&self, addr: u32, width: u32) -> Result<usize, MemFault> {
        let end = addr as u64 + u64::from(width);
        if end > self.bytes.len() as u64 {
            return Err(MemFault { addr, width });
        }
        Ok(addr as usize)
    }

    /// Loads `width` ∈ {1,2,4} bytes little-endian (zero-extended).
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] on out-of-bounds access.
    pub fn load(&self, addr: u32, width: u32) -> Result<u32, MemFault> {
        let base = self.check(addr, width)?;
        let mut value = 0u32;
        for i in 0..width as usize {
            value |= u32::from(self.bytes[base + i]) << (8 * i);
        }
        Ok(value)
    }

    /// Stores the low `width` ∈ {1,2,4} bytes of `value` little-endian.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] on out-of-bounds access.
    pub fn store(&mut self, addr: u32, width: u32, value: u32) -> Result<(), MemFault> {
        let base = self.check(addr, width)?;
        for i in 0..width as usize {
            self.bytes[base + i] = (value >> (8 * i)) as u8;
        }
        Ok(())
    }
}

/// Sign-extends the low `bits` bits of `value` to 32 bits.
pub fn sign_extend(value: u32, bits: u32) -> u32 {
    let shift = 32 - bits;
    (((value << shift) as i32) >> shift) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x0_is_hardwired_zero() {
        let mut regs = RegFile::new();
        regs.write(Reg::X0, 0xdead_beef);
        assert_eq!(regs.read(Reg::X0), 0);
    }

    #[test]
    fn memory_little_endian_round_trip() {
        let mut mem = Memory::new(16);
        mem.store(4, 4, 0x1234_5678).unwrap();
        assert_eq!(mem.load(4, 4).unwrap(), 0x1234_5678);
        assert_eq!(mem.load(4, 1).unwrap(), 0x78);
        assert_eq!(mem.load(5, 1).unwrap(), 0x56);
        assert_eq!(mem.load(4, 2).unwrap(), 0x5678);
    }

    #[test]
    fn memory_bounds_checked() {
        let mut mem = Memory::new(8);
        assert!(mem.load(5, 4).is_err());
        assert!(mem.store(8, 1, 0).is_err());
        assert!(mem.load(4, 4).is_ok());
        // Address arithmetic must not overflow.
        assert!(mem.load(u32::MAX, 4).is_err());
    }

    #[test]
    fn sign_extension() {
        assert_eq!(sign_extend(0xff, 8) as i32, -1);
        assert_eq!(sign_extend(0x7f, 8), 127);
        assert_eq!(sign_extend(0x8000, 16) as i32, -32768);
    }
}
