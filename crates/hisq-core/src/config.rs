//! Per-node configuration: address, calibrated link latencies, memory.

use std::collections::BTreeMap;

use crate::msg::NodeAddr;

/// The kind of counterparty at the far end of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkKind {
    /// A directly connected neighbour controller (mesh intra-layer edge).
    /// `sync` over this link uses the nearby two-condition protocol.
    Neighbor,
    /// An ancestor router (tree inter-layer edge). `sync` over this link
    /// uses the region-level booking protocol.
    Router,
}

/// A calibrated point-to-point link.
///
/// `latency` is the one-way transmission delay in TCU cycles — the `N`
/// that is "fixed and can be calibrated once the hardware connections
/// are established" and "pre-configured in hardware for each connection"
/// (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    /// One-way latency in TCU cycles.
    pub latency: u64,
    /// Counterparty kind.
    pub kind: LinkKind,
}

impl Link {
    /// A neighbour link with the given latency.
    pub fn neighbor(latency: u64) -> Link {
        Link {
            latency,
            kind: LinkKind::Neighbor,
        }
    }

    /// A router link with the given latency.
    pub fn router(latency: u64) -> Link {
        Link {
            latency,
            kind: LinkKind::Router,
        }
    }
}

/// Static configuration of one controller node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeConfig {
    /// This node's network address.
    pub addr: NodeAddr,
    /// Calibrated links, keyed by remote address.
    pub links: BTreeMap<NodeAddr, Link>,
    /// Data-memory size in bytes.
    pub mem_bytes: usize,
    /// TCU queue decoupling margin in cycles: on start and after every
    /// non-deterministic rebase the timing grid is re-armed this far
    /// ahead of the pipeline, so instruction-issue bursts shorter than
    /// the margin can never underflow the event queues (the QuMA
    /// queue-based decoupling, §3.2).
    pub pipeline_headroom: u64,
}

impl NodeConfig {
    /// Default data-memory size (64 KiB, matching the reference boards'
    /// block-RAM budget order of magnitude).
    pub const DEFAULT_MEM_BYTES: usize = 64 * 1024;

    /// Creates a configuration with no links and default memory.
    pub fn new(addr: NodeAddr) -> NodeConfig {
        NodeConfig {
            addr,
            links: BTreeMap::new(),
            mem_bytes: Self::DEFAULT_MEM_BYTES,
            pipeline_headroom: 0,
        }
    }

    /// Adds a neighbour-controller link (builder style).
    pub fn with_neighbor(mut self, addr: NodeAddr, latency: u64) -> NodeConfig {
        self.links.insert(addr, Link::neighbor(latency));
        self
    }

    /// Adds a router link (builder style).
    pub fn with_router(mut self, addr: NodeAddr, latency: u64) -> NodeConfig {
        self.links.insert(addr, Link::router(latency));
        self
    }

    /// Sets the data-memory size (builder style).
    pub fn with_mem_bytes(mut self, bytes: usize) -> NodeConfig {
        self.mem_bytes = bytes;
        self
    }

    /// Sets the TCU queue decoupling margin (builder style).
    pub fn with_pipeline_headroom(mut self, cycles: u64) -> NodeConfig {
        self.pipeline_headroom = cycles;
        self
    }

    /// Looks up the link to `remote`.
    pub fn link(&self, remote: NodeAddr) -> Option<Link> {
        self.links.get(&remote).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_links() {
        let cfg = NodeConfig::new(1)
            .with_neighbor(2, 5)
            .with_router(100, 12)
            .with_mem_bytes(1024);
        assert_eq!(cfg.addr, 1);
        assert_eq!(cfg.mem_bytes, 1024);
        assert_eq!(cfg.link(2), Some(Link::neighbor(5)));
        assert_eq!(cfg.link(100), Some(Link::router(12)));
        assert_eq!(cfg.link(3), None);
        assert_eq!(cfg.link(100).unwrap().kind, LinkKind::Router);
    }
}
