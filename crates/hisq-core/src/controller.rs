//! The HISQ controller: classical pipeline + TCU + SyncU + MsgU.

use std::collections::VecDeque;

use hisq_isa::{AluOp, CwOperand, Inst, LoadOp, Reg, StoreOp};

use crate::config::{Link, LinkKind, NodeConfig};
use crate::msg::{CommitRecord, NodeAddr, OutboundMessage};
use crate::pipeline::{sign_extend, Memory, RegFile};
use crate::timeline::Timeline;

/// Why a controller stopped executing in [`Controller::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockReason {
    /// Waiting for the nearby-sync 1-bit signal from a neighbour
    /// (BISP Condition II, Figure 4).
    AwaitSyncPulse {
        /// The neighbour whose signal is awaited.
        partner: NodeAddr,
    },
    /// Waiting for the region-level earliest-start broadcast `T_m` from
    /// an ancestor router (§4.3).
    AwaitMaxTime {
        /// The coordinating router.
        router: NodeAddr,
    },
    /// Waiting for a classical message (`recv`).
    AwaitMessage {
        /// The expected source address.
        source: NodeAddr,
    },
}

/// Execution status of a controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Status {
    /// Ready to execute instructions.
    Ready,
    /// Blocked on an external input; the pending instruction completes
    /// once the input is delivered.
    Blocked(PendingOp),
    /// Program ran to `stop`.
    Halted,
    /// The program faulted (bad memory access, invalid target, …).
    Faulted(String),
}

/// The suspended half of a blocking instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PendingOp {
    /// A nearby `sync` awaiting the partner's pulse.
    SyncPulse {
        /// Sync partner.
        partner: NodeAddr,
        /// Raw grid position at which the timer gates (B + N).
        raw_gate: u64,
        /// Wall-clock floor: booking time + countdown (Condition I).
        floor_eff: u64,
    },
    /// A region `sync` awaiting the router's max-time broadcast.
    MaxTime {
        /// Coordinating router.
        router: NodeAddr,
        /// Raw grid position of the booked synchronization point.
        raw_gate: u64,
        /// The booked time-point `T_i` (Condition I).
        t_i: u64,
    },
    /// A `recv` awaiting a classical message.
    Recv {
        /// Message source.
        source: NodeAddr,
        /// Destination register.
        rd: Reg,
    },
}

impl PendingOp {
    fn reason(&self) -> BlockReason {
        match *self {
            PendingOp::SyncPulse { partner, .. } => BlockReason::AwaitSyncPulse { partner },
            PendingOp::MaxTime { router, .. } => BlockReason::AwaitMaxTime { router },
            PendingOp::Recv { source, .. } => BlockReason::AwaitMessage { source },
        }
    }
}

/// Result of a [`Controller::step`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The controller blocked on external input.
    Blocked(BlockReason),
    /// The program halted normally.
    Halted,
    /// The program faulted.
    Faulted,
}

impl StepOutcome {
    /// `true` for [`StepOutcome::Halted`].
    pub fn is_halted(self) -> bool {
        matches!(self, StepOutcome::Halted)
    }
}

/// Execution counters, exposed for evaluation harnesses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControllerStats {
    /// Total instructions retired.
    pub executed: u64,
    /// Quantum-extension instructions retired.
    pub quantum: u64,
    /// `sync` instructions retired.
    pub syncs: u64,
    /// Codeword commits issued.
    pub commits: u64,
    /// Times the timing grid had to catch up to the pipeline (expected
    /// only after non-deterministic operations).
    pub grid_slips: u64,
    /// Classical messages sent.
    pub sends: u64,
    /// Classical messages received.
    pub recvs: u64,
}

/// A per-source FIFO inbox as a linear-scan association list.
///
/// A controller only ever hears from a handful of peers (its mesh
/// neighbours and ancestor routers), and the inbox is probed on every
/// delivery *and* every blocked-retry, so a short scan over a flat
/// vector beats a tree walk on the simulator's hottest path. Access is
/// strictly keyed (push one lane, pop one lane) — lane order is never
/// observed, so swapping the map for a list cannot change behavior.
#[derive(Debug, Clone, Default)]
struct Inbox<T> {
    lanes: Vec<(NodeAddr, VecDeque<T>)>,
}

impl<T> Inbox<T> {
    /// Appends to `from`'s FIFO lane, creating it on first contact.
    fn push(&mut self, from: NodeAddr, item: T) {
        match self.lanes.iter_mut().find(|(addr, _)| *addr == from) {
            Some((_, lane)) => lane.push_back(item),
            None => self.lanes.push((from, VecDeque::from_iter([item]))),
        }
    }

    /// Pops the oldest item of `from`'s lane, if any.
    fn pop(&mut self, from: NodeAddr) -> Option<T> {
        self.lanes
            .iter_mut()
            .find(|(addr, _)| *addr == from)
            .and_then(|(_, lane)| lane.pop_front())
    }

    /// `true` when `from`'s lane holds nothing (or was never opened).
    fn lane_is_empty(&self, from: NodeAddr) -> bool {
        self.lanes
            .iter()
            .find(|(addr, _)| *addr == from)
            .is_none_or(|(_, lane)| lane.is_empty())
    }
}

/// The controller state the per-event hot loop never touches, boxed
/// out of [`Controller`]'s inline stride (the SoA-style cold split):
/// data memory only matters to the rare load/store instructions, and
/// the configuration is consumed at construction (its links flatten
/// into `link_table`; the two scalars the execute path reads, `addr`
/// and `pipeline_headroom`, are copied into the hot struct). Keeping
/// the memory behind one pointer shrinks the inline controller
/// footprint, so the arena's per-event line fills stay on
/// fetch/execute state.
#[derive(Debug, Clone)]
struct ColdState {
    mem: Memory,
}

/// A single HISQ controller node (see the crate-level docs).
///
/// `repr(C)` with the hottest fields first: a simulation arena holds
/// hundreds of controllers and touches one per delivered event, so
/// every access starts cold. Packing the fetch/execute state
/// (`status`, `pc`, clocks, `program`) into the leading cache lines —
/// ahead of the register file and the inbox lanes — keeps the
/// per-event working set to a couple of line fills instead of a walk
/// across the whole struct; the data memory the hot loop never reads
/// lives behind the trailing `ColdState` box.
#[derive(Debug, Clone)]
#[repr(C)]
pub struct Controller {
    status: Status,
    pc: usize,
    /// Classical-pipeline clock in TCU cycles (wall clock).
    pipe_cycle: u64,
    /// TCU timing-grid pointer in raw (pre-stall) coordinates.
    grid_raw: u64,
    program: Vec<Inst>,
    timeline: Timeline,
    stats: ControllerStats,
    regs: RegFile,
    /// Arrival times of nearby-sync pulses, per neighbour (sticky flags,
    /// cleared on read — Figure 4).
    sync_pulses: Inbox<u64>,
    /// Max-time broadcasts received, per router.
    max_times: Inbox<u64>,
    /// Classical mailboxes: (arrival_cycle, value), per source.
    mailboxes: Inbox<(u64, u32)>,
    commits: Vec<CommitRecord>,
    /// The calibrated links of the configuration, flattened to a sorted
    /// slice so the per-`sync` lookup is a binary search instead of a
    /// tree walk.
    link_table: Vec<(NodeAddr, Link)>,
    /// Hot copy of the configured network address (TELF attribution on
    /// every commit).
    addr: NodeAddr,
    /// Hot copy of the queue-decoupling margin (read on every
    /// non-deterministic grid rebase).
    pipeline_headroom: u64,
    /// Everything the per-event path never reads, one pointer away.
    cold: Box<ColdState>,
}

impl Controller {
    /// Creates a controller with a loaded program, ready at cycle 0.
    pub fn new(config: NodeConfig, program: Vec<Inst>) -> Controller {
        let mem = Memory::new(config.mem_bytes);
        let grid_raw = config.pipeline_headroom;
        // BTreeMap iterates in key order, so the table arrives sorted.
        let link_table: Vec<(NodeAddr, Link)> = config
            .links
            .iter()
            .map(|(&addr, &link)| (addr, link))
            .collect();
        Controller {
            addr: config.addr,
            pipeline_headroom: config.pipeline_headroom,
            cold: Box::new(ColdState { mem }),
            link_table,
            program,
            pc: 0,
            regs: RegFile::new(),
            pipe_cycle: 0,
            grid_raw,
            timeline: Timeline::new(),
            status: Status::Ready,
            sync_pulses: Inbox::default(),
            max_times: Inbox::default(),
            mailboxes: Inbox::default(),
            commits: Vec::new(),
            stats: ControllerStats::default(),
        }
    }

    /// This node's network address.
    pub fn addr(&self) -> NodeAddr {
        self.addr
    }

    /// Current status.
    pub fn status(&self) -> &Status {
        &self.status
    }

    /// Committed codeword events in commit order (the TELF trace).
    pub fn commits(&self) -> &[CommitRecord] {
        &self.commits
    }

    /// Execution statistics.
    pub fn stats(&self) -> ControllerStats {
        self.stats
    }

    /// Register read-back (test and debug aid).
    pub fn reg(&self, reg: Reg) -> u32 {
        self.regs.read(reg)
    }

    /// Presets a register before execution (test and harness aid).
    pub fn set_reg(&mut self, reg: Reg, value: u32) {
        self.regs.write(reg, value);
    }

    /// The wall-clock cycle the controller has reached: the later of the
    /// pipeline clock and the effective timing-grid position.
    pub fn now_wall(&self) -> u64 {
        self.pipe_cycle.max(self.timeline.effective(self.grid_raw))
    }

    /// Total timer stall inserted by synchronizations, in cycles.
    pub fn total_stall(&self) -> u64 {
        self.timeline.total_stall()
    }

    /// Delivers a nearby-sync pulse from `from` arriving at `arrival`.
    pub fn deliver_sync_pulse(&mut self, from: NodeAddr, arrival: u64) {
        self.sync_pulses.push(from, arrival);
    }

    /// Delivers a region-sync max-time broadcast from `router`.
    pub fn deliver_max_time(&mut self, router: NodeAddr, t_m: u64) {
        self.max_times.push(router, t_m);
    }

    /// Delivers a classical message from `from` arriving at `arrival`.
    pub fn deliver_classical(&mut self, from: NodeAddr, value: u32, arrival: u64) {
        self.mailboxes.push(from, (arrival, value));
    }

    // The `offer_*` variants below fuse a delivery with the completion
    // check the caller would otherwise run next: each is exactly
    // `deliver_*` followed by "would a [`Controller::step`] make
    // progress now?", with the inbox round trip skipped when the input
    // completes the pending instruction directly. Skipping is sound
    // because a controller only ever blocks when the awaited lane is
    // empty ([`Controller::try_complete`] fails iff the lane is empty),
    // so the delivered input *is* the one `try_complete` would pop —
    // the lane check below keeps FIFO order even for callers that mix
    // `deliver_*` and `offer_*` arbitrarily. The returned `bool` is the
    // event-driven caller's step gate: `false` means the input was
    // banked and stepping now would be a no-op.

    /// Delivers a nearby-sync pulse and reports whether the controller
    /// can now make progress (see the fusion note above).
    pub fn offer_sync_pulse(&mut self, from: NodeAddr, arrival: u64) -> bool {
        if let Status::Blocked(PendingOp::SyncPulse {
            partner,
            raw_gate,
            floor_eff,
        }) = self.status
        {
            if partner == from && self.sync_pulses.lane_is_empty(from) {
                self.timeline.add_gate(raw_gate, floor_eff.max(arrival));
                self.status = Status::Ready;
                self.pc += 1;
                return true;
            }
        }
        self.sync_pulses.push(from, arrival);
        match &self.status {
            Status::Ready => true,
            Status::Blocked(PendingOp::SyncPulse { partner, .. }) => *partner == from,
            _ => false,
        }
    }

    /// Delivers a region-sync max-time broadcast and reports whether
    /// the controller can now make progress.
    pub fn offer_max_time(&mut self, router: NodeAddr, t_m: u64) -> bool {
        if let Status::Blocked(PendingOp::MaxTime {
            router: pending_router,
            raw_gate,
            t_i,
        }) = self.status
        {
            if pending_router == router && self.max_times.lane_is_empty(router) {
                self.timeline.add_gate(raw_gate, t_i.max(t_m));
                self.status = Status::Ready;
                self.pc += 1;
                return true;
            }
        }
        self.max_times.push(router, t_m);
        match &self.status {
            Status::Ready => true,
            Status::Blocked(PendingOp::MaxTime { router: r, .. }) => *r == router,
            _ => false,
        }
    }

    /// Delivers a classical message and reports whether the controller
    /// can now make progress.
    pub fn offer_classical(&mut self, from: NodeAddr, value: u32, arrival: u64) -> bool {
        if let Status::Blocked(PendingOp::Recv { source, rd }) = self.status {
            if source == from && self.mailboxes.lane_is_empty(from) {
                self.regs.write(rd, value);
                self.pipe_cycle = self.pipe_cycle.max(arrival);
                self.stats.recvs += 1;
                self.status = Status::Ready;
                self.pc += 1;
                return true;
            }
        }
        self.mailboxes.push(from, (arrival, value));
        match &self.status {
            Status::Ready => true,
            Status::Blocked(PendingOp::Recv { source, .. }) => *source == from,
            _ => false,
        }
    }

    /// Runs the instruction stream until it halts, faults, or blocks on
    /// an external input. Outgoing messages are appended to `outbox`.
    pub fn step(&mut self, outbox: &mut Vec<OutboundMessage>) -> StepOutcome {
        loop {
            match &self.status {
                Status::Halted => return StepOutcome::Halted,
                Status::Faulted(_) => return StepOutcome::Faulted,
                Status::Blocked(pending) => {
                    let pending = *pending;
                    if !self.try_complete(&pending) {
                        return StepOutcome::Blocked(pending.reason());
                    }
                    self.status = Status::Ready;
                    self.pc += 1;
                }
                Status::Ready => {
                    if let Err(message) = self.execute_one(outbox) {
                        self.status = Status::Faulted(message);
                        return StepOutcome::Faulted;
                    }
                }
            }
        }
    }

    /// Attempts to finish a pending blocking instruction with the inputs
    /// received so far. Returns `true` on completion.
    fn try_complete(&mut self, pending: &PendingOp) -> bool {
        match *pending {
            PendingOp::SyncPulse {
                partner,
                raw_gate,
                floor_eff,
            } => {
                let Some(arrival) = self.sync_pulses.pop(partner) else {
                    return false;
                };
                self.timeline.add_gate(raw_gate, floor_eff.max(arrival));
                true
            }
            PendingOp::MaxTime {
                router,
                raw_gate,
                t_i,
            } => {
                let Some(t_m) = self.max_times.pop(router) else {
                    return false;
                };
                self.timeline.add_gate(raw_gate, t_i.max(t_m));
                true
            }
            PendingOp::Recv { source, rd } => {
                let Some((arrival, value)) = self.mailboxes.pop(source) else {
                    return false;
                };
                self.regs.write(rd, value);
                self.pipe_cycle = self.pipe_cycle.max(arrival);
                self.stats.recvs += 1;
                true
            }
        }
    }

    /// Catches the timing grid up to the pipeline clock (queue underflow
    /// protection; legitimate only after non-deterministic operations).
    ///
    /// The floor is the *issue* time of the current instruction
    /// (`pipe_cycle` was already incremented for it): an event enqueued
    /// by an instruction issued at cycle `t` can commit at `t` earliest.
    fn rebase_grid(&mut self) {
        let floor = self.pipe_cycle.saturating_sub(1);
        if self.timeline.effective(self.grid_raw) < floor {
            self.grid_raw = self.timeline.raw_for_wall(floor + self.pipeline_headroom);
            self.stats.grid_slips += 1;
        }
    }

    fn branch_target(&self, offset: i32) -> Result<usize, String> {
        let byte = self.pc as i64 * 4 + i64::from(offset);
        if byte < 0 || byte % 4 != 0 {
            return Err(format!("bad branch target byte address {byte}"));
        }
        let index = (byte / 4) as usize;
        if index >= self.program.len() {
            return Err(format!(
                "branch target {index} outside program of {} instructions",
                self.program.len()
            ));
        }
        Ok(index)
    }

    /// Executes the instruction at `pc`. On success the controller is
    /// left Ready / Blocked / Halted with `pc` advanced appropriately.
    fn execute_one(&mut self, outbox: &mut Vec<OutboundMessage>) -> Result<(), String> {
        let Some(&inst) = self.program.get(self.pc) else {
            return Err(format!("pc {} past end of program", self.pc));
        };
        self.stats.executed += 1;
        self.pipe_cycle += 1;
        if inst.is_quantum_extension() {
            self.stats.quantum += 1;
        }

        match inst {
            Inst::Lui { rd, imm20 } => {
                self.regs.write(rd, imm20 << 12);
                self.pc += 1;
            }
            Inst::Auipc { rd, imm20 } => {
                let value = (self.pc as u32 * 4).wrapping_add(imm20 << 12);
                self.regs.write(rd, value);
                self.pc += 1;
            }
            Inst::Jal { rd, offset } => {
                let target = self.branch_target(offset)?;
                self.regs.write(rd, (self.pc as u32 + 1) * 4);
                self.pc = target;
            }
            Inst::Jalr { rd, rs1, offset } => {
                let byte = self.regs.read(rs1).wrapping_add(offset as u32) & !1;
                if byte % 4 != 0 || (byte / 4) as usize >= self.program.len() {
                    return Err(format!("bad jalr target {byte:#x}"));
                }
                self.regs.write(rd, (self.pc as u32 + 1) * 4);
                self.pc = (byte / 4) as usize;
            }
            Inst::Branch {
                op,
                rs1,
                rs2,
                offset,
            } => {
                if op.evaluate(self.regs.read(rs1), self.regs.read(rs2)) {
                    self.pc = self.branch_target(offset)?;
                } else {
                    self.pc += 1;
                }
            }
            Inst::Load {
                op,
                rd,
                rs1,
                offset,
            } => {
                let addr = self.regs.read(rs1).wrapping_add(offset as u32);
                let value = match op {
                    LoadOp::Byte => {
                        sign_extend(self.cold.mem.load(addr, 1).map_err(|e| e.to_string())?, 8)
                    }
                    LoadOp::Half => {
                        sign_extend(self.cold.mem.load(addr, 2).map_err(|e| e.to_string())?, 16)
                    }
                    LoadOp::Word => self.cold.mem.load(addr, 4).map_err(|e| e.to_string())?,
                    LoadOp::ByteU => self.cold.mem.load(addr, 1).map_err(|e| e.to_string())?,
                    LoadOp::HalfU => self.cold.mem.load(addr, 2).map_err(|e| e.to_string())?,
                };
                self.regs.write(rd, value);
                self.pc += 1;
            }
            Inst::Store {
                op,
                rs1,
                rs2,
                offset,
            } => {
                let addr = self.regs.read(rs1).wrapping_add(offset as u32);
                let value = self.regs.read(rs2);
                let width = match op {
                    StoreOp::Byte => 1,
                    StoreOp::Half => 2,
                    StoreOp::Word => 4,
                };
                self.cold
                    .mem
                    .store(addr, width, value)
                    .map_err(|e| e.to_string())?;
                self.pc += 1;
            }
            Inst::OpImm { op, rd, rs1, imm } => {
                let value = alu(op, self.regs.read(rs1), imm as u32);
                self.regs.write(rd, value);
                self.pc += 1;
            }
            Inst::Op { op, rd, rs1, rs2 } => {
                let value = alu(op, self.regs.read(rs1), self.regs.read(rs2));
                self.regs.write(rd, value);
                self.pc += 1;
            }

            Inst::WaitI { cycles } => {
                self.rebase_grid();
                self.grid_raw += u64::from(cycles);
                self.pc += 1;
            }
            Inst::WaitR { rs1 } => {
                self.rebase_grid();
                self.grid_raw += u64::from(self.regs.read(rs1));
                self.pc += 1;
            }
            Inst::Cw { port, codeword } => {
                self.rebase_grid();
                let port = match port {
                    CwOperand::Imm(p) => p,
                    CwOperand::Reg(r) => self.regs.read(r),
                };
                let codeword = match codeword {
                    CwOperand::Imm(c) => c,
                    CwOperand::Reg(r) => self.regs.read(r),
                };
                let cycle = self.timeline.effective(self.grid_raw);
                self.commits.push(CommitRecord {
                    port,
                    codeword,
                    cycle,
                });
                self.stats.commits += 1;
                self.pc += 1;
            }
            Inst::Sync { target, horizon } => {
                self.stats.syncs += 1;
                self.rebase_grid();
                let link = self
                    .link_table
                    .binary_search_by_key(&target, |&(addr, _)| addr)
                    .map(|i| self.link_table[i].1)
                    .map_err(|_| format!("sync target {target} has no calibrated link"))?;
                let b_raw = self.grid_raw;
                let b_eff = self.timeline.effective(b_raw);
                match link.kind {
                    LinkKind::Neighbor => {
                        outbox.push(OutboundMessage::SyncPulse {
                            to: target,
                            sent_at: b_eff,
                        });
                        let pending = PendingOp::SyncPulse {
                            partner: target,
                            raw_gate: b_raw + link.latency,
                            floor_eff: b_eff + link.latency,
                        };
                        if self.try_complete(&pending) {
                            self.pc += 1;
                        } else {
                            self.status = Status::Blocked(pending);
                        }
                    }
                    LinkKind::Router => {
                        let horizon_cycles = u64::from(self.regs.read(horizon));
                        let t_i = b_eff + horizon_cycles;
                        outbox.push(OutboundMessage::BookTime {
                            router: target,
                            time_point: t_i,
                            sent_at: b_eff,
                        });
                        let pending = PendingOp::MaxTime {
                            router: target,
                            raw_gate: b_raw + horizon_cycles,
                            t_i,
                        };
                        if self.try_complete(&pending) {
                            self.pc += 1;
                        } else {
                            self.status = Status::Blocked(pending);
                        }
                    }
                }
            }
            Inst::Send { target, rs1 } => {
                outbox.push(OutboundMessage::Classical {
                    to: target,
                    value: self.regs.read(rs1),
                    sent_at: self.pipe_cycle,
                });
                self.stats.sends += 1;
                self.pc += 1;
            }
            Inst::Recv { rd, source } => {
                let pending = PendingOp::Recv { source, rd };
                if self.try_complete(&pending) {
                    self.pc += 1;
                } else {
                    self.status = Status::Blocked(pending);
                }
            }
            Inst::Stop => {
                self.status = Status::Halted;
            }
        }
        Ok(())
    }
}

fn alu(op: AluOp, lhs: u32, rhs: u32) -> u32 {
    match op {
        AluOp::Add => lhs.wrapping_add(rhs),
        AluOp::Sub => lhs.wrapping_sub(rhs),
        AluOp::Sll => lhs.wrapping_shl(rhs & 0x1f),
        AluOp::Slt => u32::from((lhs as i32) < (rhs as i32)),
        AluOp::Sltu => u32::from(lhs < rhs),
        AluOp::Xor => lhs ^ rhs,
        AluOp::Srl => lhs.wrapping_shr(rhs & 0x1f),
        AluOp::Sra => ((lhs as i32).wrapping_shr(rhs & 0x1f)) as u32,
        AluOp::Or => lhs | rhs,
        AluOp::And => lhs & rhs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisq_isa::Assembler;

    fn assemble(src: &str) -> Vec<Inst> {
        Assembler::new()
            .assemble(src)
            .expect("test program must assemble")
            .insts()
            .to_vec()
    }

    fn run_to_halt(src: &str) -> Controller {
        let mut ctrl = Controller::new(NodeConfig::new(1), assemble(src));
        let mut outbox = Vec::new();
        assert_eq!(ctrl.step(&mut outbox), StepOutcome::Halted);
        ctrl
    }

    fn reg(i: u8) -> Reg {
        Reg::new(i).unwrap()
    }

    #[test]
    fn classical_arithmetic_loop() {
        // Sum 1..=10 into x3.
        let ctrl = run_to_halt(
            "
            addi x1, x0, 10
            addi x2, x0, 0
            addi x3, x0, 0
        loop:
            add x3, x3, x2
            addi x2, x2, 1
            bne x2, x1, loop
            add x3, x3, x1
            stop
        ",
        );
        assert_eq!(ctrl.reg(reg(3)), 55);
    }

    #[test]
    fn memory_and_shift_operations() {
        let ctrl = run_to_halt(
            "
            li t0, 0x1234
            slli t1, t0, 4
            sw t1, 8(x0)
            lh t2, 8(x0)
            lb t3, 9(x0)
            stop
        ",
        );
        assert_eq!(ctrl.reg(Reg::parse("t1").unwrap()), 0x12340);
        assert_eq!(ctrl.reg(Reg::parse("t2").unwrap()), 0x2340);
        assert_eq!(ctrl.reg(Reg::parse("t3").unwrap()), 0x23);
    }

    #[test]
    fn signed_unsigned_comparisons() {
        let ctrl = run_to_halt(
            "
            li t0, -1
            slti t1, t0, 0
            sltiu t2, t0, 1
            sra t3, t0, x0
            stop
        ",
        );
        assert_eq!(ctrl.reg(Reg::parse("t1").unwrap()), 1); // -1 < 0 signed
        assert_eq!(ctrl.reg(Reg::parse("t2").unwrap()), 0); // max unsigned
        assert_eq!(ctrl.reg(Reg::parse("t3").unwrap()) as i32, -1);
    }

    #[test]
    fn waits_build_the_timing_grid() {
        let ctrl = run_to_halt(
            "
            waiti 10
            cw.i.i 1, 7
            waiti 5
            cw.i.i 2, 9
            stop
        ",
        );
        let commits = ctrl.commits();
        assert_eq!(commits.len(), 2);
        assert_eq!(commits[0].cycle, 10);
        assert_eq!(commits[0].port, 1);
        assert_eq!(commits[0].codeword, 7);
        assert_eq!(commits[1].cycle, 15);
    }

    #[test]
    fn grid_never_runs_behind_pipeline() {
        // Many classical instructions push the pipeline past the grid;
        // the first cw must not commit in the past.
        let src = (0..20).map(|_| "addi x1, x1, 1\n").collect::<String>() + "cw.i.i 1, 1\nstop";
        let ctrl = run_to_halt(&src);
        // 20 classical + 1 cw issue cycle = pipeline at 21.
        assert!(ctrl.commits()[0].cycle >= 20);
        assert_eq!(ctrl.stats().grid_slips, 1);
    }

    #[test]
    fn cw_register_forms() {
        let ctrl = run_to_halt(
            "
            li t0, 21
            li t1, 0x2a
            waiti 100
            cw.r.r t0, t1
            cw.r.i t0, 3
            cw.i.r 4, t1
            stop
        ",
        );
        let commits = ctrl.commits();
        assert_eq!(commits[0].port, 21);
        assert_eq!(commits[0].codeword, 0x2a);
        assert_eq!(commits[1].codeword, 3);
        assert_eq!(commits[2].port, 4);
        // The two-instruction classical prologue occupies cycles 0..2, so
        // the grid rebases to 2 before the 100-cycle wait.
        assert!(commits.iter().all(|c| c.cycle == 102));
    }

    #[test]
    fn nearby_sync_pulse_already_present_no_stall() {
        // Partner pulse arrived long ago; Condition II met before
        // Condition I → no stall, commit at booking + countdown + wait.
        let config = NodeConfig::new(1).with_neighbor(2, 5);
        let mut ctrl = Controller::new(
            config,
            assemble("waiti 100\nsync 2\nwaiti 5\ncw.i.i 1, 1\nstop"),
        );
        ctrl.deliver_sync_pulse(2, 50);
        let mut outbox = Vec::new();
        assert!(ctrl.step(&mut outbox).is_halted());
        // Booking at 100, gate at 105, pulse at 50 → resume 105, cw at
        // 105 (the 5-cycle deterministic pad exactly covers the latency:
        // zero-cycle overhead).
        assert_eq!(ctrl.commits()[0].cycle, 105);
        assert_eq!(ctrl.total_stall(), 0);
        // The booking signal went out at the booking time.
        assert_eq!(
            outbox[0],
            OutboundMessage::SyncPulse {
                to: 2,
                sent_at: 100
            }
        );
    }

    #[test]
    fn nearby_sync_stalls_until_partner_signal() {
        let config = NodeConfig::new(1).with_neighbor(2, 5);
        let mut ctrl = Controller::new(
            config,
            assemble("waiti 100\nsync 2\nwaiti 5\ncw.i.i 1, 1\nstop"),
        );
        let mut outbox = Vec::new();
        assert_eq!(
            ctrl.step(&mut outbox),
            StepOutcome::Blocked(BlockReason::AwaitSyncPulse { partner: 2 })
        );
        // Partner booked late: its pulse arrives at 130.
        ctrl.deliver_sync_pulse(2, 130);
        assert!(ctrl.step(&mut outbox).is_halted());
        // Gate at 105 stalls until 130; cw at offset 5 past the gate
        // commits at 130.
        assert_eq!(ctrl.commits()[0].cycle, 130);
        assert_eq!(ctrl.total_stall(), 25);
    }

    #[test]
    fn deterministic_tasks_before_gate_unaffected_by_stall() {
        // A cw scheduled within the countdown window commits on the old
        // timeline even when the sync stalls (Figure 5a's light-yellow
        // deterministic tasks).
        let config = NodeConfig::new(1).with_neighbor(2, 10);
        let mut ctrl = Controller::new(
            config,
            assemble("waiti 100\nsync 2\nwaiti 4\ncw.i.i 1, 1\nwaiti 6\ncw.i.i 1, 2\nstop"),
        );
        let mut outbox = Vec::new();
        assert!(matches!(ctrl.step(&mut outbox), StepOutcome::Blocked(_)));
        ctrl.deliver_sync_pulse(2, 150);
        assert!(ctrl.step(&mut outbox).is_halted());
        let commits = ctrl.commits();
        // Offset 4 < N=10: commits at 104, before the gate.
        assert_eq!(commits[0].cycle, 104);
        // Offset 10 = N: gated, commits at the resume time 150.
        assert_eq!(commits[1].cycle, 150);
    }

    #[test]
    fn region_sync_books_time_point_with_horizon() {
        let config = NodeConfig::new(1).with_router(100, 8);
        let mut ctrl = Controller::new(
            config,
            assemble("li t0, 20\nwaiti 50\nsync 100, t0\nwaiti 20\ncw.i.i 1, 1\nstop"),
        );
        let mut outbox = Vec::new();
        assert_eq!(
            ctrl.step(&mut outbox),
            StepOutcome::Blocked(BlockReason::AwaitMaxTime { router: 100 })
        );
        // Booking: the `li` prologue shifts the grid by 1, so the sync
        // books at 51 with T_i = 51 + 20 = 71.
        assert!(outbox.iter().any(|m| matches!(
            m,
            OutboundMessage::BookTime {
                router: 100,
                time_point: 71,
                sent_at: 51
            }
        )));
        // Router announces T_m = 90 (some other controller is slower).
        ctrl.deliver_max_time(100, 90);
        assert!(ctrl.step(&mut outbox).is_halted());
        // The synchronization point (offset 20) resumes at T_m = 90.
        assert_eq!(ctrl.commits()[0].cycle, 90);
    }

    #[test]
    fn region_sync_zero_overhead_when_t_m_not_later() {
        let config = NodeConfig::new(1).with_router(100, 8);
        let mut ctrl = Controller::new(
            config,
            assemble("li t0, 30\nwaiti 50\nsync 100, t0\nwaiti 30\ncw.i.i 1, 1\nstop"),
        );
        ctrl.deliver_max_time(100, 75); // T_m earlier than our T_i = 81
        let mut outbox = Vec::new();
        assert!(ctrl.step(&mut outbox).is_halted());
        assert_eq!(ctrl.commits()[0].cycle, 81); // zero-cycle overhead
        assert_eq!(ctrl.total_stall(), 0);
    }

    #[test]
    fn send_recv_round_trip() {
        // Controller receives a value, adds one, sends it back.
        let config = NodeConfig::new(1);
        let mut ctrl = Controller::new(
            config,
            assemble("recv t0, 2\naddi t0, t0, 1\nsend 2, t0\nstop"),
        );
        let mut outbox = Vec::new();
        assert_eq!(
            ctrl.step(&mut outbox),
            StepOutcome::Blocked(BlockReason::AwaitMessage { source: 2 })
        );
        ctrl.deliver_classical(2, 41, 200);
        assert!(ctrl.step(&mut outbox).is_halted());
        let reply = outbox
            .iter()
            .find_map(|m| match *m {
                OutboundMessage::Classical { to, value, sent_at } => Some((to, value, sent_at)),
                _ => None,
            })
            .expect("reply sent");
        assert_eq!(reply.0, 2);
        assert_eq!(reply.1, 42);
        // The reply cannot leave before the request arrived.
        assert!(reply.2 >= 200);
        assert_eq!(ctrl.stats().recvs, 1);
        assert_eq!(ctrl.stats().sends, 1);
    }

    #[test]
    fn recv_rebases_timing_grid() {
        // Feedback: the wait after a recv starts no earlier than arrival.
        let mut ctrl = Controller::new(
            NodeConfig::new(1),
            assemble("recv t0, 2\nwaiti 10\ncw.i.i 1, 1\nstop"),
        );
        ctrl.deliver_classical(2, 1, 500);
        let mut outbox = Vec::new();
        assert!(ctrl.step(&mut outbox).is_halted());
        assert!(ctrl.commits()[0].cycle >= 510);
        assert_eq!(ctrl.stats().grid_slips, 1);
    }

    #[test]
    fn sync_without_link_faults() {
        let mut ctrl = Controller::new(NodeConfig::new(1), assemble("sync 9\nstop"));
        let mut outbox = Vec::new();
        assert_eq!(ctrl.step(&mut outbox), StepOutcome::Faulted);
        assert!(matches!(ctrl.status(), Status::Faulted(m) if m.contains("no calibrated link")));
    }

    #[test]
    fn bad_memory_access_faults() {
        let mut ctrl = Controller::new(
            NodeConfig::new(1).with_mem_bytes(16),
            assemble("li t0, 1000\nlw t1, 0(t0)\nstop"),
        );
        let mut outbox = Vec::new();
        assert_eq!(ctrl.step(&mut outbox), StepOutcome::Faulted);
    }

    #[test]
    fn infinite_loop_guard_via_jal() {
        // jal back to self would loop forever; verify jal executes and
        // the register link value is written (program counter * 4).
        let mut ctrl = Controller::new(
            NodeConfig::new(1),
            assemble("jal ra, skip\nstop\nskip: stop"),
        );
        let mut outbox = Vec::new();
        assert!(ctrl.step(&mut outbox).is_halted());
        assert_eq!(ctrl.reg(Reg::parse("ra").unwrap()), 4);
    }

    #[test]
    fn two_controller_bisp_co_simulation_zero_overhead() {
        // Full Figure 5(a): two controllers with different-length
        // deterministic prologues synchronize with zero overhead.
        let latency = 6;
        let mut c0 = Controller::new(
            NodeConfig::new(0).with_neighbor(1, latency),
            assemble("waiti 40\nsync 1\nwaiti 6\ncw.i.i 1, 1\nstop"),
        );
        let mut c1 = Controller::new(
            NodeConfig::new(1).with_neighbor(0, latency),
            assemble("waiti 70\nsync 0\nwaiti 6\ncw.i.i 1, 1\nstop"),
        );
        let mut out0 = Vec::new();
        let mut out1 = Vec::new();
        let _ = c0.step(&mut out0);
        let _ = c1.step(&mut out1);
        // Exchange pulses with the link latency applied.
        for m in out0.drain(..) {
            if let OutboundMessage::SyncPulse { to: 1, sent_at } = m {
                c1.deliver_sync_pulse(0, sent_at + latency);
            }
        }
        for m in out1.drain(..) {
            if let OutboundMessage::SyncPulse { to: 0, sent_at } = m {
                c0.deliver_sync_pulse(1, sent_at + latency);
            }
        }
        assert!(c0.step(&mut out0).is_halted());
        assert!(c1.step(&mut out1).is_halted());
        // Bookings at 40 and 70; T0 = 46, T1 = 76. Both must commit at
        // max(T0, T1) = 76: cycle-level synchronization, zero overhead
        // for the later controller.
        assert_eq!(c0.commits()[0].cycle, 76);
        assert_eq!(c1.commits()[0].cycle, 76);
        assert_eq!(c1.total_stall(), 0, "later controller never stalls");
    }
}
