//! Message and record types exchanged between a controller and the
//! surrounding distributed system.

use std::fmt;

/// Network address of a node (controller or router). 12 bits are
/// encodable in the `sync`/`send`/`recv` instructions.
pub type NodeAddr = u16;

/// A message emitted by a controller, to be routed by the network
/// substrate with the appropriate link latency.
///
/// All timestamps are in TCU cycles (4 ns) on the global wall clock
/// (clock distribution keeps all node clocks phase-aligned, §1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutboundMessage {
    /// The 1-bit nearby-synchronization signal of BISP (Figure 4).
    SyncPulse {
        /// Destination neighbour controller.
        to: NodeAddr,
        /// Booking time — the cycle the SyncU emitted the signal.
        sent_at: u64,
    },
    /// A region-level booking: "I will reach my synchronization point at
    /// `time_point`" (§4.3).
    BookTime {
        /// The ancestor router coordinating the region.
        router: NodeAddr,
        /// The booked synchronization time-point `T_i`.
        time_point: u64,
        /// When the booking left the controller.
        sent_at: u64,
    },
    /// A classical payload (e.g. a measurement result) for another
    /// controller's MsgU.
    Classical {
        /// Destination controller.
        to: NodeAddr,
        /// Payload value.
        value: u32,
        /// When the message left the controller.
        sent_at: u64,
    },
}

impl OutboundMessage {
    /// The message's destination node.
    pub fn destination(&self) -> NodeAddr {
        match *self {
            OutboundMessage::SyncPulse { to, .. } => to,
            OutboundMessage::BookTime { router, .. } => router,
            OutboundMessage::Classical { to, .. } => to,
        }
    }

    /// The cycle the message left its sender.
    pub fn sent_at(&self) -> u64 {
        match *self {
            OutboundMessage::SyncPulse { sent_at, .. }
            | OutboundMessage::BookTime { sent_at, .. }
            | OutboundMessage::Classical { sent_at, .. } => sent_at,
        }
    }
}

/// A committed codeword trigger: the TCU issued `codeword` to `port` at
/// `cycle`. The sequence of commit records is the controller's TELF
/// (Timing Event Logging Format) trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitRecord {
    /// Destination port (channel index on the board).
    pub port: u32,
    /// The committed codeword.
    pub codeword: u32,
    /// Commit time in TCU cycles on the wall clock.
    pub cycle: u64,
}

impl fmt::Display for CommitRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycle {:>8} ({:>9} ns): port {:>3} <- cw {:#x}",
            self.cycle,
            self.cycle * hisq_isa::CYCLE_NS,
            self.port,
            self.codeword
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn destination_and_timestamp_accessors() {
        let m = OutboundMessage::SyncPulse { to: 7, sent_at: 42 };
        assert_eq!(m.destination(), 7);
        assert_eq!(m.sent_at(), 42);
        let m = OutboundMessage::BookTime {
            router: 9,
            time_point: 100,
            sent_at: 50,
        };
        assert_eq!(m.destination(), 9);
        assert_eq!(m.sent_at(), 50);
        let m = OutboundMessage::Classical {
            to: 3,
            value: 1,
            sent_at: 8,
        };
        assert_eq!(m.destination(), 3);
        assert_eq!(m.sent_at(), 8);
    }

    #[test]
    fn commit_record_display_shows_nanoseconds() {
        let r = CommitRecord {
            port: 5,
            codeword: 1,
            cycle: 25,
        };
        let text = r.to_string();
        assert!(text.contains("100 ns"), "{text}");
        assert!(text.contains("port   5"), "{text}");
    }
}
