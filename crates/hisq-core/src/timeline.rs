//! The TCU timer with SyncU-controlled pause/resume gates.
//!
//! The timing grid is kept in *raw* coordinates: the cycle count the
//! timer would have reached had it never been paused. Each BISP
//! synchronization may insert a **gate**: a raw position at which the
//! timer stalls until a wall-clock resume time. The effective (wall
//! clock) time of a raw grid position is the raw position plus the
//! cumulative stall of all gates at or before it.
//!
//! This piecewise-shift representation implements the paper's §3.2
//! mechanism — "multiple ports receiving external triggers, that can be
//! used to pause and resume the timer" — while letting the simulation
//! compute every commit timestamp exactly, independent of the order in
//! which the surrounding discrete-event engine advances controllers.

/// Piecewise mapping from raw TCU-grid positions to wall-clock cycles.
///
/// # Example
///
/// ```
/// use hisq_core::Timeline;
///
/// let mut t = Timeline::new();
/// // Timer stalls at raw cycle 100 until wall cycle 130.
/// t.add_gate(100, 130);
/// assert_eq!(t.effective(99), 99);   // before the gate: unshifted
/// assert_eq!(t.effective(100), 130); // at the gate: resumes at 130
/// assert_eq!(t.effective(110), 140); // after: shifted by 30
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Timeline {
    /// `(raw_position, cumulative_shift)`, strictly increasing in both.
    gates: Vec<(u64, u64)>,
}

impl Timeline {
    /// An ungated timeline (wall clock = raw grid).
    pub fn new() -> Timeline {
        Timeline::default()
    }

    /// Cumulative stall applied at raw position `raw`.
    pub fn shift_at(&self, raw: u64) -> u64 {
        match self.gates.iter().rev().find(|(pos, _)| *pos <= raw) {
            Some((_, shift)) => *shift,
            None => 0,
        }
    }

    /// Wall-clock cycle corresponding to raw grid position `raw`.
    pub fn effective(&self, raw: u64) -> u64 {
        raw + self.shift_at(raw)
    }

    /// Inserts a stall: the timer pauses at raw position `raw_pos` and
    /// resumes at wall-clock `resume_eff`. A resume time at or before
    /// the current effective time is a no-op (no stall was needed —
    /// Condition II was already met).
    ///
    /// # Panics
    ///
    /// Panics if `raw_pos` precedes an existing gate: BISP
    /// synchronizations are program-ordered, so gates must be appended
    /// monotonically.
    pub fn add_gate(&mut self, raw_pos: u64, resume_eff: u64) {
        if let Some(&(last_pos, _)) = self.gates.last() {
            assert!(
                raw_pos >= last_pos,
                "sync gates must be program-ordered: new gate at raw {raw_pos} precedes {last_pos}"
            );
        }
        let current_eff = self.effective(raw_pos);
        if resume_eff <= current_eff {
            return;
        }
        let shift = resume_eff - raw_pos;
        self.gates.push((raw_pos, shift));
    }

    /// Total stall cycles accumulated so far.
    pub fn total_stall(&self) -> u64 {
        self.gates.last().map_or(0, |&(_, s)| s)
    }

    /// Number of gates that actually stalled the timer.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Inverse mapping: the smallest raw position whose effective time
    /// is at least `wall`. Used to re-base the grid after
    /// non-deterministic pipeline events (e.g. `recv`).
    pub fn raw_for_wall(&self, wall: u64) -> u64 {
        // Gates partition raw time into segments of constant shift;
        // within a segment, effective = raw + shift. Wall times that fall
        // inside a stall window map to the gate position itself.
        let mut seg_start = 0u64;
        let mut shift = 0;
        for &(pos, s) in &self.gates {
            let raw_in_seg = wall.saturating_sub(shift);
            if raw_in_seg < pos {
                return raw_in_seg.max(seg_start);
            }
            seg_start = pos;
            shift = s;
        }
        wall.saturating_sub(shift).max(seg_start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_without_gates() {
        let t = Timeline::new();
        assert_eq!(t.effective(0), 0);
        assert_eq!(t.effective(12345), 12345);
        assert_eq!(t.total_stall(), 0);
    }

    #[test]
    fn single_gate_shifts_suffix() {
        let mut t = Timeline::new();
        t.add_gate(50, 80);
        assert_eq!(t.effective(49), 49);
        assert_eq!(t.effective(50), 80);
        assert_eq!(t.effective(51), 81);
        assert_eq!(t.total_stall(), 30);
    }

    #[test]
    fn noop_gate_when_condition_met_early() {
        let mut t = Timeline::new();
        t.add_gate(50, 40); // partner signal arrived before countdown end
        assert_eq!(t.gate_count(), 0);
        assert_eq!(t.effective(50), 50);
    }

    #[test]
    fn gates_compose() {
        let mut t = Timeline::new();
        t.add_gate(10, 25); // shift 15
        t.add_gate(30, 60); // raw 30 currently at 45; stall to 60 → shift 30
        assert_eq!(t.effective(9), 9);
        assert_eq!(t.effective(10), 25);
        assert_eq!(t.effective(29), 44);
        assert_eq!(t.effective(30), 60);
        assert_eq!(t.effective(35), 65);
        assert_eq!(t.total_stall(), 30);
        assert_eq!(t.gate_count(), 2);
    }

    #[test]
    #[should_panic(expected = "program-ordered")]
    fn out_of_order_gate_panics() {
        let mut t = Timeline::new();
        t.add_gate(100, 150);
        t.add_gate(50, 200);
    }

    #[test]
    fn raw_for_wall_inverts_effective() {
        let mut t = Timeline::new();
        t.add_gate(10, 25);
        t.add_gate(30, 60);
        for raw in [0, 5, 10, 20, 29, 30, 50, 100] {
            let wall = t.effective(raw);
            let back = t.raw_for_wall(wall);
            assert_eq!(t.effective(back), wall, "raw {raw} wall {wall}");
        }
        // Wall times inside a stall window map to the gate position.
        assert_eq!(t.effective(t.raw_for_wall(50)), 50 + 10); // 50 is inside the 44→60 stall
    }
}
