//! # hisq-core — the single-node HISQ microarchitecture
//!
//! A cycle-exact, transaction-level model of one HISQ controller (the
//! digital part of a control or readout board), mirroring Figure 3(a) of
//! the paper:
//!
//! - **Classical pipeline** — executes the RV32I subset at one
//!   instruction per 4 ns TCU cycle (250 MHz, §6.1);
//! - **Timing Control Unit (TCU)** — the QuMA-style queue-based timing
//!   mechanism: quantum events are *enqueued* at imprecise pipeline times
//!   but *committed* at precise timing-grid time-points; the timer can be
//!   paused/resumed by the SyncU (§3.2);
//! - **Synchronization Unit (SyncU)** — the single-node half of the BISP
//!   booking protocol (Figure 4): on a `sync`, send the booking
//!   signal/time-point, start the calibrated countdown, and stall the
//!   timer only if the partner's signal (Condition II) has not arrived
//!   when the countdown ends (Condition I);
//! - **Message Unit (MsgU)** — `send`/`recv` mailboxes for measurement
//!   results and other classical feedback data.
//!
//! The controller is *event-driven*: [`Controller::step`] runs the
//! instruction stream until it halts or blocks on an external input
//! (sync pulse, router max-time reply, or classical message). A
//! surrounding discrete-event engine (`hisq-sim`) delivers those inputs
//! with network latencies and re-steps the controller. All commit
//! timestamps are computed on the 4 ns grid independent of simulation
//! order, so the transaction-level execution is cycle-accurate.
//!
//! # Example
//!
//! ```
//! use hisq_core::{Controller, NodeConfig};
//! use hisq_isa::Assembler;
//!
//! let program = Assembler::new().assemble(
//!     "waiti 10\n cw.i.i 3, 7\n stop",
//! ).unwrap();
//! let mut ctrl = Controller::new(NodeConfig::new(1), program.insts().to_vec());
//! let mut outbox = Vec::new();
//! let outcome = ctrl.step(&mut outbox);
//! assert!(outcome.is_halted());
//! // The codeword committed exactly at cycle 10 on the timing grid.
//! assert_eq!(ctrl.commits()[0].cycle, 10);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod config;
pub mod controller;
pub mod json;
pub mod msg;
pub mod pipeline;
pub mod timeline;

pub use config::{Link, LinkKind, NodeConfig};
pub use controller::{BlockReason, Controller, ControllerStats, Status, StepOutcome};
pub use msg::{CommitRecord, NodeAddr, OutboundMessage};
pub use pipeline::{Memory, RegFile};
pub use timeline::Timeline;

/// Reserved node address for the local measurement-result FIFO: `recv`
/// from this address reads the discrimination output of the local
/// readout chain (delivered by the analog front-end model).
pub const MEAS_FIFO_ADDR: NodeAddr = 0xFFF;
