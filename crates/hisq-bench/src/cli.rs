//! Shared command-line flags of the `fig*`/`table1` binaries.
//!
//! Every figure harness accepts the same surface — `--threads N`,
//! `--json`, `--quick` — so CI can invoke the whole set uniformly.
//! The experiment binaries honor it too: `fig11 --json` emits its
//! calibration fit parameters (`--threads` parallelizes the selected
//! experiments, `--quick` sweeps reduced point/shot counts) and
//! `fig13 --json` its per-iteration alignment timestamps (`--quick`
//! bounds the inner loop to two iterations), both as `SweepReport`
//! documents that are byte-identical across thread counts.

use std::process::exit;

/// Parsed shared flags plus any remaining positional arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FigArgs {
    /// Worker threads for the sweep engine (`--threads N`, default 1).
    pub threads: usize,
    /// Emit the sweep report as JSON instead of the human table
    /// (`--json`).
    pub json: bool,
    /// Use the scaled-down twin suite / reduced point set (`--quick`).
    pub quick: bool,
    /// Non-flag arguments, in order (e.g. `fig11`'s experiment name).
    pub positional: Vec<String>,
}

impl Default for FigArgs {
    fn default() -> FigArgs {
        FigArgs {
            threads: 1,
            json: false,
            quick: false,
            positional: Vec::new(),
        }
    }
}

impl FigArgs {
    /// Parses the process arguments, exiting with a message on a
    /// malformed `--threads` value.
    pub fn parse() -> FigArgs {
        match FigArgs::parse_from(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(message) => {
                eprintln!("{message}");
                exit(2);
            }
        }
    }

    /// Parses an explicit argument list (testable core of [`parse`]).
    ///
    /// [`parse`]: FigArgs::parse
    ///
    /// # Errors
    ///
    /// Returns a message when `--threads` is missing its value, the
    /// value is not a positive integer, or an unknown `--flag` is
    /// passed — a typo'd flag is an error with a usage hint, never a
    /// silently ignored knob.
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Result<FigArgs, String> {
        let mut out = FigArgs::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            let threads_value = if arg == "--threads" {
                Some(
                    iter.next()
                        .ok_or_else(|| "--threads needs a value".to_string())?,
                )
            } else {
                arg.strip_prefix("--threads=").map(str::to_string)
            };
            if let Some(value) = threads_value {
                out.threads = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("--threads wants a positive integer, got {value:?}"))?;
            } else if arg == "--json" {
                out.json = true;
            } else if arg == "--quick" {
                out.quick = true;
            } else if arg.starts_with('-') {
                return Err(format!(
                    "unknown flag `{arg}`\nusage: [--threads N] [--json] [--quick] [args...]"
                ));
            } else {
                out.positional.push(arg);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<FigArgs, String> {
        FigArgs::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_shared_flags_in_any_style() {
        let args = parse(&["--threads", "4", "--json"]).unwrap();
        assert_eq!((args.threads, args.json, args.quick), (4, true, false));
        let args = parse(&["--quick", "--threads=2"]).unwrap();
        assert_eq!((args.threads, args.json, args.quick), (2, false, true));
    }

    #[test]
    fn keeps_positionals_in_order() {
        let args = parse(&["rabi", "--json", "t1"]).unwrap();
        assert!(args.json);
        assert_eq!(args.positional, vec!["rabi".to_string(), "t1".to_string()]);
    }

    #[test]
    fn rejects_unknown_flags_with_usage() {
        for args in [
            &["--verbose"][..],
            &["rabi", "--seed=7"][..],
            &["-q"][..],
            &["--thread", "4"][..],
        ] {
            let err = parse(args).unwrap_err();
            assert!(err.contains("unknown flag"), "{args:?}: {err}");
            assert!(err.contains("usage:"), "{args:?}: {err}");
        }
    }

    #[test]
    fn rejects_malformed_threads() {
        assert!(parse(&["--threads"]).is_err());
        assert!(parse(&["--threads", "zero"]).is_err());
        assert!(parse(&["--threads=0"]).is_err());
    }
}
