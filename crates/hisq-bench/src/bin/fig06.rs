//! Regenerates Figure 6: generated instructions for nearby
//! synchronization, with the booking-advance `sync` placement.

use hisq_bench::figures::fig06_listing;

fn main() {
    let (c0, c1) = fig06_listing();
    println!("Figure 6: compiled nearby-synchronization listings\n");
    println!("# Controller 0 (two H gates, then the synchronized CZ):");
    println!("{c0}");
    println!("# Controller 1 (the partner half):");
    println!("{c1}");
    println!("# Note the `sync` hoisted ahead of the synchronization point,");
    println!("# overlapping the deterministic work with the countdown.");
}
