//! Regenerates Figure 6: generated instructions for nearby
//! synchronization, with the booking-advance `sync` placement.

use hisq_bench::cli::FigArgs;
use hisq_bench::figures::fig06_listing;
use hisq_sim::{SweepRecord, SweepRunner};

fn main() {
    let args = FigArgs::parse();
    let report = SweepRunner::new(args.threads).run(&["nearby_cz"], |_, &id| {
        let (c0, c1) = fig06_listing();
        let hoisted = match (c0.find("sync"), c0.rfind("cw.i.i")) {
            (Some(sync), Some(last_cw)) => sync < last_cw,
            _ => false,
        };
        SweepRecord::new(id)
            .with("controller_0", c0)
            .with("controller_1", c1)
            .with("sync_hoisted", hoisted)
    });
    if args.json {
        println!("{}", report.to_json());
        return;
    }

    let record = report.record("nearby_cz").expect("listing generated");
    let listing = |key: &str| match record.metric(key) {
        Some(hisq_sim::Metric::Str(s)) => s.as_str(),
        _ => unreachable!("listings are string metrics"),
    };
    println!("Figure 6: compiled nearby-synchronization listings\n");
    println!("# Controller 0 (two H gates, then the synchronized CZ):");
    println!("{}", listing("controller_0"));
    println!("# Controller 1 (the partner half):");
    println!("{}", listing("controller_1"));
    println!("# Note the `sync` hoisted ahead of the synchronization point,");
    println!("# overlapping the deterministic work with the countdown.");
}
