//! Regenerates Figure 16: circuit infidelity vs qubit relaxation time
//! for the simultaneous long-range CNOT circuit, under both schemes.

use hisq_bench::figures::fig16_sweep;

fn main() {
    let t_points: Vec<f64> = (1..=10).map(|i| 30.0 * i as f64).collect();
    let points = fig16_sweep(&t_points);
    println!("Figure 16: infidelity vs relaxation time (T1 = T2)");
    println!("{:-<64}", "");
    println!(
        "{:>8} {:>16} {:>16} {:>12}",
        "T1 (us)", "Distributed-HISQ", "baseline", "reduction"
    );
    println!("{:-<64}", "");
    for p in &points {
        println!(
            "{:>8.0} {:>16.5} {:>16.5} {:>11.2}x",
            p.t_us, p.infidelity_bisp, p.infidelity_lockstep, p.reduction_ratio
        );
    }
    println!("{:-<64}", "");
    let avg: f64 = points.iter().map(|p| p.reduction_ratio).sum::<f64>() / points.len() as f64;
    println!("average reduction: {avg:.2}x (paper: ~5x)");
}
