//! Regenerates Figure 16: circuit infidelity vs qubit relaxation time
//! for the simultaneous long-range CNOT circuit, under both schemes —
//! a (T1 × scheme) sweep. `--quick` trims the T1 axis, `--threads N`
//! parallelizes, `--json` emits the raw sweep report.

use distributed_hisq::runner::run_sweep;
use hisq_bench::cli::FigArgs;
use hisq_bench::figures::{fig16_points, fig16_scenarios};

fn main() {
    let args = FigArgs::parse();
    let steps = if args.quick {
        [3, 6, 10].as_slice()
    } else {
        &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
    };
    let t_points: Vec<f64> = steps.iter().map(|&i| 30.0 * i as f64).collect();
    let scenarios = fig16_scenarios(&t_points);
    let report = run_sweep(&scenarios, args.threads).unwrap_or_else(|e| {
        eprintln!("fig16: {e}");
        std::process::exit(1);
    });
    if args.json {
        println!("{}", report.to_json());
        return;
    }

    let points = fig16_points(&scenarios, &report);
    println!("Figure 16: infidelity vs relaxation time (T1 = T2)");
    println!("{:-<64}", "");
    println!(
        "{:>8} {:>16} {:>16} {:>12}",
        "T1 (us)", "Distributed-HISQ", "baseline", "reduction"
    );
    println!("{:-<64}", "");
    for p in &points {
        println!(
            "{:>8.0} {:>16.5} {:>16.5} {:>11.2}x",
            p.t_us, p.infidelity_bisp, p.infidelity_lockstep, p.reduction_ratio
        );
    }
    println!("{:-<64}", "");
    let avg: f64 = points.iter().map(|p| p.reduction_ratio).sum::<f64>() / points.len() as f64;
    println!("average reduction: {avg:.2}x (paper: ~5x)");
}
