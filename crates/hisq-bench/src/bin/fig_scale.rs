//! The scaling extension figure (beyond the paper's evaluation):
//! fig15-style normalized runtime of Distributed-HISQ (BISP) vs the
//! lock-step hub baseline at 256/512/1024/4096 controllers — the
//! regime the parallel/distributed quantum-simulation literature
//! motivates and the calendar-queue event core exists to reach.
//!
//! Honors the shared CLI contract: `--quick` trims the per-run round
//! count (never the size axis — the committed baseline must carry the
//! full 256–4096 range), `--threads N` parallelizes, `--json` emits
//! the raw sweep report (byte-identical across thread counts; CI pins
//! the quick report against the committed `BENCH_fig_scale.json`
//! baseline).

use hisq_bench::cli::FigArgs;
use hisq_bench::scale::{run_scale_sweep, scale_rounds, scale_rows, SCALE_SIZES};

fn main() {
    let args = FigArgs::parse();
    let rounds = scale_rounds(args.quick);
    eprintln!(
        "[fig_scale] running {} sizes x 2 schemes at {rounds} rounds on {} thread(s)...",
        SCALE_SIZES.len(),
        args.threads
    );
    let report = run_scale_sweep(&SCALE_SIZES, rounds, args.threads);
    if args.json {
        println!("{}", report.to_json());
        return;
    }

    let rows = scale_rows(&report);
    println!("Scaling sweep: BISP vs lock-step hub, normalized runtime (fig15 style)");
    println!("{:-<78}", "");
    println!(
        "{:>11} {:>14} {:>14} {:>11} {:>11} {:>11}",
        "controllers", "bisp(ns)", "lockstep(ns)", "normalized", "bisp evts", "hub evts"
    );
    println!("{:-<78}", "");
    for row in &rows {
        println!(
            "{:>11} {:>14} {:>14} {:>10.3}x {:>11} {:>11}",
            row.controllers,
            row.bisp_ns,
            row.lockstep_ns,
            row.normalized,
            row.bisp_events,
            row.lockstep_events
        );
    }
    println!("{:-<78}", "");

    // The headline: BISP's advantage must hold (or grow) at the
    // largest size — the hub star serializes through one port.
    let (first, last) = (rows.first().unwrap(), rows.last().unwrap());
    println!(
        "normalized runtime {:.3}x at {} controllers -> {:.3}x at {}",
        first.normalized, first.controllers, last.normalized, last.controllers
    );
}
