//! The multi-tenant saturation figure (beyond the paper's evaluation):
//! the job engine serving Poisson traffic of compiled `w_state_n12`
//! jobs, swept over offered load × partition count.
//!
//! Each point offers the machine a target utilization ρ from two
//! tenant streams (interactive priority 0, batch priority 1); every
//! job is a real compiled run (one compile per point, per-job seeds).
//! The table shows the saturation knee: p99 latency diverges as ρ
//! approaches 1 while throughput plateaus at the partition capacity,
//! and the admission bound starts rejecting past it.
//!
//! Honors the shared CLI contract: `--quick` keeps the 2×4 core grid,
//! `--threads N` parallelizes, `--json` emits the raw sweep report
//! (byte-identical across thread counts; CI pins the quick report
//! against the committed `BENCH_fig_load.json` baseline).

use distributed_hisq::runner::run_sweep;
use hisq_bench::cli::FigArgs;
use hisq_bench::load::{fig_load_points, fig_load_scenarios};

fn main() {
    let args = FigArgs::parse();
    let scenarios = fig_load_scenarios(args.quick);
    eprintln!(
        "[fig_load] running {} load points on {} thread(s)...",
        scenarios.len(),
        args.threads
    );
    let report = run_sweep(&scenarios, args.threads).unwrap_or_else(|e| {
        eprintln!("fig_load: {e}");
        std::process::exit(1);
    });
    if args.json {
        println!("{}", report.to_json());
        return;
    }

    let points = fig_load_points(args.quick, &report);
    println!("Multi-tenant job engine: offered load vs latency and throughput");
    println!("(rho = offered load / partition capacity; latency in microseconds)");
    println!("{:-<78}", "");
    println!(
        "{:>10} {:>6} {:>14} {:>8} {:>12} {:>12} {:>8}",
        "partitions", "rho", "jobs/s", "util", "p50 (us)", "p99 (us)", "rejects"
    );
    println!("{:-<78}", "");
    for p in &points {
        println!(
            "{:>10} {:>6.2} {:>14.0} {:>8.3} {:>12.1} {:>12.1} {:>8}",
            p.partitions,
            p.rho,
            p.throughput_jobs_per_s,
            p.utilization,
            p.latency_p50_ns as f64 / 1000.0,
            p.latency_p99_ns as f64 / 1000.0,
            p.rejected
        );
    }
    println!("{:-<78}", "");
    let knee = points
        .iter()
        .filter(|p| p.rho > 1.0)
        .map(|p| p.latency_p99_ns as f64 / 1000.0)
        .fold(f64::NAN, f64::max);
    println!(
        "saturation knee: past rho = 1 the queue pins p99 near {knee:.0} us while \
         throughput plateaus at partition capacity"
    );
}
