//! Regenerates Figure 11: the four qubit calibration experiments,
//! driven end-to-end through HISQ programs.

use hisq_analog::experiments::{
    circle_experiment, rabi_experiment, spectroscopy_experiment, t1_experiment, CircleConfig,
    RabiConfig, SpectroscopyConfig, T1Config,
};
use hisq_bench::cli::FigArgs;

fn main() {
    // Calibration runs are single experiments, not sweeps: the shared
    // flags (--threads/--json/--quick) are accepted and ignored so the
    // CI smoke invocation stays uniform across all fig* binaries.
    let args = FigArgs::parse();
    let which = args
        .positional
        .first()
        .cloned()
        .unwrap_or_else(|| "all".into());

    if which == "all" || which == "circle" {
        let r = circle_experiment(&CircleConfig::default());
        println!("Figure 11(a): draw circle (phase sweep)");
        println!(
            "  fitted circle: center = ({:.1}, {:.1}), radius = {:.1}",
            r.fit.cx, r.fit.cy, r.fit.radius
        );
        println!(
            "  radial deviation {:.1}% (adjacent-qubit interference)",
            r.relative_deviation * 100.0
        );
        println!(
            "  first points (I, Q): {:?}\n",
            &r.iq[..4.min(r.iq.len())]
                .iter()
                .map(|&(i, q)| (i.round(), q.round()))
                .collect::<Vec<_>>()
        );
    }
    if which == "all" || which == "freq" {
        let r = spectroscopy_experiment(&SpectroscopyConfig::default());
        println!("Figure 11(b): qubit spectroscopy (frequency sweep)");
        println!(
            "  fitted qubit frequency: {:.4} GHz (paper: 4.62 GHz; ref stack: 4.64 GHz)",
            r.fitted_frequency_ghz
        );
        println!(
            "  peak P(1) = {:.2}\n",
            r.p_excited.iter().cloned().fold(0.0f64, f64::max)
        );
    }
    if which == "all" || which == "rabi" {
        let r = rabi_experiment(&RabiConfig::default());
        println!("Figure 11(c): Rabi oscillation (amplitude sweep)");
        println!(
            "  fitted pi-pulse amplitude: {:.3} (model optimum: 0.500)",
            r.pi_amplitude
        );
        println!(
            "  oscillation amplitude: {:.2}, offset {:.2}\n",
            r.fit.amplitude, r.fit.offset
        );
    }
    if which == "all" || which == "t1" {
        let r = t1_experiment(&T1Config::default());
        println!("Figure 11(d): relaxation time (delay sweep)");
        println!(
            "  fitted T1 = {:.1} us (paper: 9.9 us; reference stack: {} us)",
            r.fitted_t1_us, r.reference_t1_us
        );
        for (d, p) in r.delay_us.iter().zip(&r.p_excited).step_by(6) {
            println!("    delay {:5.1} us -> P(1) = {:.3}", d, p);
        }
    }
}
