//! Regenerates Figure 11: the four qubit calibration experiments,
//! driven end-to-end through HISQ programs.
//!
//! Honors the shared CLI contract: `--json` emits the calibration fit
//! parameters as a [`hisq_sim::SweepReport`] (one record per
//! experiment), `--threads N` runs the selected experiments on the
//! sweep worker pool, `--quick` sweeps reduced point/shot counts
//! (identical structure, faster runs), and a positional argument
//! (`circle|freq|rabi|t1`) selects one experiment.

use hisq_analog::experiments::{
    circle_experiment, rabi_experiment, spectroscopy_experiment, t1_experiment, CircleConfig,
    RabiConfig, SpectroscopyConfig, T1Config,
};
use hisq_bench::cli::FigArgs;
use hisq_sim::{SweepRecord, SweepRunner};

/// The four experiment configurations at a given scale. `quick` trims
/// the sweep axes and shot counts (the fits stay well-conditioned).
struct Configs {
    circle: CircleConfig,
    freq: SpectroscopyConfig,
    rabi: RabiConfig,
    t1: T1Config,
}

impl Configs {
    fn new(quick: bool) -> Configs {
        let mut configs = Configs {
            circle: CircleConfig::default(),
            freq: SpectroscopyConfig::default(),
            rabi: RabiConfig::default(),
            t1: T1Config::default(),
        };
        if quick {
            configs.circle.points = 16;
            configs.freq.points = 21;
            configs.freq.shots = 64;
            configs.rabi.points = 21;
            configs.rabi.shots = 64;
            configs.t1.points = 16;
            configs.t1.shots = 64;
        }
        configs
    }
}

/// Runs one named calibration experiment and distills its fit
/// parameters into a sweep record.
fn calibration_record(configs: &Configs, which: &str) -> SweepRecord {
    match which {
        "circle" => {
            let r = circle_experiment(&configs.circle);
            SweepRecord::new("circle")
                .with("fit_center_x", r.fit.cx)
                .with("fit_center_y", r.fit.cy)
                .with("fit_radius", r.fit.radius)
                .with("relative_deviation", r.relative_deviation)
                .with("points", r.iq.len() as u64)
        }
        "freq" => {
            let r = spectroscopy_experiment(&configs.freq);
            let peak = r.p_excited.iter().cloned().fold(0.0f64, f64::max);
            SweepRecord::new("freq")
                .with("fitted_frequency_ghz", r.fitted_frequency_ghz)
                .with("peak_p_excited", peak)
                .with("points", r.frequency_ghz.len() as u64)
        }
        "rabi" => {
            let r = rabi_experiment(&configs.rabi);
            SweepRecord::new("rabi")
                .with("pi_amplitude", r.pi_amplitude)
                .with("fit_amplitude", r.fit.amplitude)
                .with("fit_offset", r.fit.offset)
        }
        "t1" => {
            let r = t1_experiment(&configs.t1);
            SweepRecord::new("t1")
                .with("fitted_t1_us", r.fitted_t1_us)
                .with("reference_t1_us", r.reference_t1_us)
                .with("points", r.delay_us.len() as u64)
        }
        other => panic!("unknown experiment {other:?} (circle|freq|rabi|t1)"),
    }
}

fn main() {
    let args = FigArgs::parse();
    let which = args
        .positional
        .first()
        .cloned()
        .unwrap_or_else(|| "all".into());
    let selected: Vec<&str> = ["circle", "freq", "rabi", "t1"]
        .into_iter()
        .filter(|&name| which == "all" || which == name)
        .collect();
    if selected.is_empty() {
        eprintln!("unknown experiment {which:?} (circle|freq|rabi|t1|all)");
        std::process::exit(2);
    }
    let configs = Configs::new(args.quick);

    if args.json {
        let report = SweepRunner::new(args.threads)
            .run(&selected, |_, &name| calibration_record(&configs, name));
        println!("{report}");
        return;
    }

    for &name in &selected {
        print_experiment(&configs, name);
    }
}

/// Prints one experiment's human-readable section (the text twin of
/// [`calibration_record`], sharing the same selection source).
fn print_experiment(configs: &Configs, name: &str) {
    match name {
        "circle" => {
            let r = circle_experiment(&configs.circle);
            println!("Figure 11(a): draw circle (phase sweep)");
            println!(
                "  fitted circle: center = ({:.1}, {:.1}), radius = {:.1}",
                r.fit.cx, r.fit.cy, r.fit.radius
            );
            println!(
                "  radial deviation {:.1}% (adjacent-qubit interference)",
                r.relative_deviation * 100.0
            );
            println!(
                "  first points (I, Q): {:?}\n",
                &r.iq[..4.min(r.iq.len())]
                    .iter()
                    .map(|&(i, q)| (i.round(), q.round()))
                    .collect::<Vec<_>>()
            );
        }
        "freq" => {
            let r = spectroscopy_experiment(&configs.freq);
            println!("Figure 11(b): qubit spectroscopy (frequency sweep)");
            println!(
                "  fitted qubit frequency: {:.4} GHz (paper: 4.62 GHz; ref stack: 4.64 GHz)",
                r.fitted_frequency_ghz
            );
            println!(
                "  peak P(1) = {:.2}\n",
                r.p_excited.iter().cloned().fold(0.0f64, f64::max)
            );
        }
        "rabi" => {
            let r = rabi_experiment(&configs.rabi);
            println!("Figure 11(c): Rabi oscillation (amplitude sweep)");
            println!(
                "  fitted pi-pulse amplitude: {:.3} (model optimum: 0.500)",
                r.pi_amplitude
            );
            println!(
                "  oscillation amplitude: {:.2}, offset {:.2}\n",
                r.fit.amplitude, r.fit.offset
            );
        }
        "t1" => {
            let r = t1_experiment(&configs.t1);
            println!("Figure 11(d): relaxation time (delay sweep)");
            println!(
                "  fitted T1 = {:.1} us (paper: 9.9 us; reference stack: {} us)",
                r.fitted_t1_us, r.reference_t1_us
            );
            for (d, p) in r.delay_us.iter().zip(&r.p_excited).step_by(6) {
                println!("    delay {:5.1} us -> P(1) = {:.3}", d, p);
            }
        }
        other => panic!("unknown experiment {other:?} (circle|freq|rabi|t1)"),
    }
}
