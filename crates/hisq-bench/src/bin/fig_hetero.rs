//! The heterogeneous-fabric figure (beyond the paper's evaluation):
//! fabric-aware vs oblivious BISP compilation on grids with exactly
//! one heated element — a hot mesh link (serialized + lossy) or a hot
//! device site (elevated gate/readout error).
//!
//! The paper's evaluation assumes a uniform fabric, where placing
//! circuit qubit `i` on controller `i` is as good as any placement.
//! Real control fabrics are not uniform: one cable renegotiates, one
//! transmon drifts. This figure scores the compiler's fabric-aware
//! placement pass (mesh-automorphism search over `FabricMap` /
//! `NoiseMap` costs) against the oblivious identity on the same seeds:
//! hot-edge grids are scored on makespan (routing traffic off the
//! heated link saves serialization and retransmission round trips),
//! hot-qubit grids on expected circuit infidelity (moving work off the
//! heated site saves error budget).
//!
//! Honors the shared CLI contract: `--quick` keeps one grid of each
//! kind, `--threads N` parallelizes, `--json` emits the raw sweep
//! report (byte-identical across thread counts; CI pins the quick
//! report against the committed `BENCH_fig_hetero.json` baseline).

use distributed_hisq::runner::run_sweep;
use hisq_bench::cli::FigArgs;
use hisq_bench::figures::{fig_hetero_grids, fig_hetero_points, fig_hetero_scenarios};

fn main() {
    let args = FigArgs::parse();
    let scenarios = fig_hetero_scenarios(args.quick);
    eprintln!(
        "[fig_hetero] running {} scenarios on {} thread(s)...",
        scenarios.len(),
        args.threads
    );
    let report = run_sweep(&scenarios, args.threads).unwrap_or_else(|e| {
        eprintln!("fig_hetero: {e}");
        std::process::exit(1);
    });
    if args.json {
        println!("{}", report.to_json());
        return;
    }

    let points = fig_hetero_points(&fig_hetero_grids(args.quick), &report);
    println!("Heterogeneous fabric: fabric-aware vs oblivious compilation");
    println!("(one heated element per grid; improvement = oblivious / aware)");
    println!("{:-<78}", "");
    println!(
        "{:<34} {:>16} {:>12} {:>12} {:>10}",
        "grid", "metric", "oblivious", "aware", "gain"
    );
    println!("{:-<78}", "");
    for p in &points {
        println!(
            "{:<34} {:>16} {:>12.5} {:>12.5} {:>9.3}x",
            p.name, p.metric, p.oblivious, p.aware, p.improvement
        );
    }
    println!("{:-<78}", "");
    let edge_win = points
        .iter()
        .filter(|p| p.kind == "edge")
        .map(|p| p.improvement)
        .fold(f64::NAN, f64::max);
    let qubit_win = points
        .iter()
        .filter(|p| p.kind == "qubit")
        .map(|p| p.improvement)
        .fold(f64::NAN, f64::max);
    println!(
        "best hot-edge gain {edge_win:.3}x (makespan), best hot-qubit gain {qubit_win:.3}x \
         (infidelity) — awareness only ever re-labels the mesh, so every gain is free"
    );
}
