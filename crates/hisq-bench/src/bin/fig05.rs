//! Regenerates Figure 5: BISP timing for nearby (a) and remote (b)
//! synchronization.

use hisq_bench::figures::{fig05_nearby, fig05_remote};

fn main() {
    let a = fig05_nearby();
    println!("Figure 5(a): nearby synchronization");
    println!(
        "  booking B0 = {} cycles, B1 = {} cycles, link N = L = {}",
        a.booking0, a.booking1, a.link_latency
    );
    println!("  commits: C0 @ {}  C1 @ {}", a.commit0, a.commit1);
    println!(
        "  aligned: {}   overhead: {} cycles (paper: zero-cycle)",
        a.commit0 == a.commit1,
        a.overhead
    );

    let b = fig05_remote();
    println!("\nFigure 5(b): remote (region) synchronization via router");
    for (i, (booking, horizon)) in b.bookings.iter().enumerate() {
        println!("  C{i}: booking @ ~{booking} cycles, horizon {horizon} -> T{i}");
    }
    println!(
        "  common commit @ {} cycles, aligned: {}",
        b.commit, b.aligned
    );
}
