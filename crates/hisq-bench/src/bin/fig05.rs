//! Regenerates Figure 5: BISP timing for nearby (a) and remote (b)
//! synchronization, as a two-point sweep.

use hisq_bench::cli::FigArgs;
use hisq_bench::figures::fig05_report;
use hisq_sim::SweepRunner;

fn main() {
    let args = FigArgs::parse();
    let report = fig05_report(&SweepRunner::new(args.threads));
    if args.json {
        println!("{}", report.to_json());
        return;
    }

    let a = report.record("nearby").expect("nearby point ran");
    let n = |key: &str| a.counter(key).expect("nearby metrics");
    println!("Figure 5(a): nearby synchronization");
    println!(
        "  booking B0 = {} cycles, B1 = {} cycles, link N = L = {}",
        n("booking0"),
        n("booking1"),
        n("link_latency")
    );
    println!("  commits: C0 @ {}  C1 @ {}", n("commit0"), n("commit1"));
    println!(
        "  aligned: {}   overhead: {} cycles (paper: zero-cycle)",
        a.value("aligned") == Some(1.0),
        n("overhead")
    );

    let b = report.record("remote").expect("remote point ran");
    println!("\nFigure 5(b): remote (region) synchronization via router");
    for i in 0.. {
        let (Some(booking), Some(horizon)) = (
            b.counter(&format!("booking_c{i}")),
            b.counter(&format!("horizon_c{i}")),
        ) else {
            break;
        };
        println!("  C{i}: booking @ ~{booking} cycles, horizon {horizon} -> T{i}");
    }
    println!(
        "  common commit @ {} cycles, aligned: {}",
        b.counter("commit").expect("remote metrics"),
        b.value("aligned") == Some(1.0)
    );
}
