//! Regenerates Figures 12/13: the electronics-level synchronization
//! experiment on the paper's exact control/readout board programs.

use hisq_bench::cli::FigArgs;
use hisq_bench::figures::fig13_waveforms;

fn main() {
    // One fixed two-board experiment, not a sweep: the shared flags
    // (--threads/--json/--quick) are accepted and ignored so the CI
    // smoke invocation stays uniform across all fig* binaries.
    let _ = FigArgs::parse();
    let r = fig13_waveforms();
    println!("Figure 13: two-board synchronization under waitr drift\n");
    println!("Waveforms (one column per 16 cycles, '|' = committed pulse):");
    print!(
        "{}",
        r.telf
            .render_waveform(&[(0, 21), (0, 20), (0, 7), (1, 5)], 16)
    );
    println!("\nControl-board synchronized pulses (port 7) per iteration:");
    for (i, cycle) in r.control_pulses.iter().enumerate() {
        println!("  iteration {i}: cycle {cycle} ({} ns)", cycle * 4);
    }
    println!(
        "\nCycle offset (readout port 5 - control port 7) per iteration: {:?}",
        r.alignment
    );
    println!("Constant offset = cycle-level synchronization regardless of $1.");
}
