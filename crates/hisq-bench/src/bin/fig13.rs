//! Regenerates Figures 12/13: the electronics-level synchronization
//! experiment on the paper's exact control/readout board programs.
//!
//! Honors the shared CLI contract: `--json` emits the per-iteration
//! alignment timestamps as a [`hisq_sim::SweepReport`] (one record per
//! inner-loop iteration: the control-board and readout-board commit
//! cycles plus their offset — the Figure 13 alignment check in
//! machine-readable form), `--quick` bounds the boards to two
//! inner-loop iterations instead of three, and `--threads N` distills
//! the per-iteration records on the sweep worker pool (the output is
//! byte-identical for any thread count, as CI asserts).

use hisq_bench::cli::FigArgs;
use hisq_bench::figures::fig13_waveforms_iterations;
use hisq_isa::CYCLE_NS;
use hisq_sim::{SweepRecord, SweepRunner};

fn main() {
    let args = FigArgs::parse();
    let iterations = if args.quick { 2 } else { 3 };
    let r = fig13_waveforms_iterations(iterations);

    if args.json {
        let readout_pulses: Vec<u64> = r.telf.channel(1, 5).iter().map(|p| p.cycle).collect();
        let rows: Vec<(usize, u64, u64, i64)> = r
            .control_pulses
            .iter()
            .zip(&readout_pulses)
            .zip(&r.alignment)
            .enumerate()
            .map(|(i, ((&control, &readout), &offset))| (i, control, readout, offset))
            .collect();
        let first_offset = r.alignment.first().copied().unwrap_or(0);
        let report =
            SweepRunner::new(args.threads).run(&rows, |_, &(i, control, readout, offset)| {
                SweepRecord::new(format!("iteration_{i}"))
                    .with("control_port7_cycle", control)
                    .with("control_port7_ns", control * CYCLE_NS)
                    .with("readout_port5_cycle", readout)
                    .with("readout_port5_ns", readout * CYCLE_NS)
                    .with("offset_cycles", offset as f64)
                    .with("aligned", offset == first_offset)
            });
        println!("{report}");
        return;
    }

    println!("Figure 13: two-board synchronization under waitr drift\n");
    println!("Waveforms (one column per 16 cycles, '|' = committed pulse):");
    print!(
        "{}",
        r.telf
            .render_waveform(&[(0, 21), (0, 20), (0, 7), (1, 5)], 16)
    );
    println!("\nControl-board synchronized pulses (port 7) per iteration:");
    for (i, cycle) in r.control_pulses.iter().enumerate() {
        println!("  iteration {i}: cycle {cycle} ({} ns)", cycle * CYCLE_NS);
    }
    println!(
        "\nCycle offset (readout port 5 - control port 7) per iteration: {:?}",
        r.alignment
    );
    println!("Constant offset = cycle-level synchronization regardless of $1.");
}
