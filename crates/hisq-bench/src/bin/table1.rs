//! Regenerates Table 1: FPGA resource consumption of HISQ on the
//! control and readout boards, from the additive resource model.

use hisq_bench::resources::{
    board_resources, BASE_CORE, CONTROL_BOARD_CHANNELS, EVENT_QUEUE, READOUT_BOARD_CHANNELS,
    SYNC_UNIT,
};

fn main() {
    println!("Table 1: FPGA resource consumption of HISQ");
    println!("{:-<66}", "");
    println!(
        "{:<28} {:>8} {:>12} {:>8}",
        "Type", "#LUTs", "#BlockRAM", "#FF"
    );
    println!("{:-<66}", "");
    let control = board_resources(CONTROL_BOARD_CHANNELS);
    let readout = board_resources(READOUT_BOARD_CHANNELS);
    println!(
        "{:<28} {:>8} {:>12.1} {:>8}   (paper: 4155 / 75 / 6392)",
        "Control Board (28 ch)", control.luts, control.bram_blocks, control.ffs
    );
    println!(
        "{:<28} {:>8} {:>12.1} {:>8}   (paper: 2435 / 45 / 3192)",
        "Readout Board (8 ch)", readout.luts, readout.bram_blocks, readout.ffs
    );
    println!(
        "{:<28} {:>8} {:>12.1} {:>8}   (paper: 86 / 1.5 / 160)",
        "Event Queue (38b x 1024)", EVENT_QUEUE.luts, EVENT_QUEUE.bram_blocks, EVENT_QUEUE.ffs
    );
    println!("{:-<66}", "");
    println!(
        "Model decomposition: base core {} / {} / {} + SyncU {} LUTs + N x queue",
        BASE_CORE.luts, BASE_CORE.bram_blocks, BASE_CORE.ffs, SYNC_UNIT.luts
    );
    println!("\nExtrapolation (multi-core configurations of Section 7.1):");
    for channels in [8u64, 16, 28, 56, 112] {
        let r = board_resources(channels);
        println!(
            "  {:>4} channels: {:>6} LUTs {:>7.1} BRAM {:>7} FFs  ({:.2} Mb)",
            channels,
            r.luts,
            r.bram_blocks,
            r.ffs,
            r.bram_blocks * 32.0 / 1024.0
        );
    }
}
