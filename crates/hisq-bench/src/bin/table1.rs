//! Regenerates Table 1: FPGA resource consumption of HISQ on the
//! control and readout boards, from the additive resource model — a
//! sweep over the channel-count axis (§7.1 multi-core extrapolation).

use hisq_bench::cli::FigArgs;
use hisq_bench::resources::{
    board_resources, BASE_CORE, CONTROL_BOARD_CHANNELS, EVENT_QUEUE, READOUT_BOARD_CHANNELS,
    SYNC_UNIT,
};
use hisq_sim::{SweepRecord, SweepRunner};

fn main() {
    let args = FigArgs::parse();
    let channels = [8u64, 16, 28, 56, 112];
    let report = SweepRunner::new(args.threads).run(&channels, |_, &n| {
        let r = board_resources(n);
        SweepRecord::new(format!("channels_{n}"))
            .with("channels", n)
            .with("luts", r.luts)
            .with("bram_blocks", r.bram_blocks)
            .with("ffs", r.ffs)
            .with("bram_mb", r.bram_blocks * 32.0 / 1024.0)
    });
    if args.json {
        println!("{}", report.to_json());
        return;
    }

    println!("Table 1: FPGA resource consumption of HISQ");
    println!("{:-<66}", "");
    println!(
        "{:<28} {:>8} {:>12} {:>8}",
        "Type", "#LUTs", "#BlockRAM", "#FF"
    );
    println!("{:-<66}", "");
    let board = |channels: u64| {
        report
            .record(&format!("channels_{channels}"))
            .expect("channel point ran")
    };
    let control = board(CONTROL_BOARD_CHANNELS);
    let readout = board(READOUT_BOARD_CHANNELS);
    let cells = |r: &hisq_sim::SweepRecord| {
        (
            r.counter("luts").unwrap(),
            r.value("bram_blocks").unwrap(),
            r.counter("ffs").unwrap(),
        )
    };
    let (luts, bram, ffs) = cells(control);
    println!(
        "{:<28} {:>8} {:>12.1} {:>8}   (paper: 4155 / 75 / 6392)",
        "Control Board (28 ch)", luts, bram, ffs
    );
    let (luts, bram, ffs) = cells(readout);
    println!(
        "{:<28} {:>8} {:>12.1} {:>8}   (paper: 2435 / 45 / 3192)",
        "Readout Board (8 ch)", luts, bram, ffs
    );
    println!(
        "{:<28} {:>8} {:>12.1} {:>8}   (paper: 86 / 1.5 / 160)",
        "Event Queue (38b x 1024)", EVENT_QUEUE.luts, EVENT_QUEUE.bram_blocks, EVENT_QUEUE.ffs
    );
    println!("{:-<66}", "");
    println!(
        "Model decomposition: base core {} / {} / {} + SyncU {} LUTs + N x queue",
        BASE_CORE.luts, BASE_CORE.bram_blocks, BASE_CORE.ffs, SYNC_UNIT.luts
    );
    println!("\nExtrapolation (multi-core configurations of Section 7.1):");
    for record in report.records() {
        println!(
            "  {:>4} channels: {:>6} LUTs {:>7.1} BRAM {:>7} FFs  ({:.2} Mb)",
            record.counter("channels").unwrap(),
            record.counter("luts").unwrap(),
            record.value("bram_blocks").unwrap(),
            record.counter("ffs").unwrap(),
            record.value("bram_mb").unwrap(),
        );
    }
}
