//! Regenerates Figure 15: normalized end-to-end runtime of
//! Distributed-HISQ vs the lock-step baseline across the benchmark
//! suite — a (workload × scheme) sweep. Pass `--quick` for the
//! scaled-down twin suite, `--threads N` to parallelize, `--json` for
//! the raw sweep report.

use distributed_hisq::runner::run_sweep;
use hisq_bench::cli::FigArgs;
use hisq_bench::figures::{fig15_rows, fig15_scenarios};
use hisq_workloads::SuiteScale;

fn main() {
    let args = FigArgs::parse();
    let scale = if args.quick {
        SuiteScale::Quick
    } else {
        SuiteScale::Paper
    };
    let scenarios = fig15_scenarios(scale, 15);
    eprintln!(
        "[fig15] running {} scenarios on {} thread(s)...",
        scenarios.len(),
        args.threads
    );
    let report = run_sweep(&scenarios, args.threads).unwrap_or_else(|e| {
        eprintln!("fig15: {e}");
        std::process::exit(1);
    });
    if args.json {
        println!("{}", report.to_json());
        return;
    }

    println!("Figure 15: normalized runtime (Distributed-HISQ / lock-step baseline)");
    println!("{:-<86}", "");
    println!(
        "{:<16} {:>14} {:>14} {:>10}   {:>12} {:>12}",
        "benchmark", "bisp (ns)", "baseline (ns)", "normalized", "bisp insts", "base insts"
    );
    println!("{:-<86}", "");
    let rows = fig15_rows(&report);
    for row in &rows {
        println!(
            "{:<16} {:>14} {:>14} {:>10.3}   {:>12} {:>12}",
            row.name,
            row.bisp_ns,
            row.lockstep_ns,
            row.normalized,
            row.bisp_instructions,
            row.lockstep_instructions
        );
    }
    println!("{:-<86}", "");
    let avg = rows.iter().map(|r| r.normalized).sum::<f64>() / rows.len() as f64;
    println!("{:<16} {:>40.3}   (paper average: 0.772)", "average", avg);
}
