//! Regenerates Figure 15: normalized end-to-end runtime of
//! Distributed-HISQ vs the lock-step baseline across the benchmark
//! suite. Pass `--quick` for the scaled-down twin suite.

use hisq_bench::figures::fig15_row;
use hisq_workloads::{fig15_suite, SuiteScale};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        SuiteScale::Quick
    } else {
        SuiteScale::Paper
    };
    let suite = fig15_suite(scale);

    println!("Figure 15: normalized runtime (Distributed-HISQ / lock-step baseline)");
    println!("{:-<86}", "");
    println!(
        "{:<16} {:>14} {:>14} {:>10}   {:>12} {:>12}",
        "benchmark", "bisp (ns)", "baseline (ns)", "normalized", "bisp insts", "base insts"
    );
    println!("{:-<86}", "");
    let mut normalized = Vec::new();
    for bench in &suite {
        eprintln!(
            "[fig15] running {} ({} controllers)...",
            bench.name,
            bench.grid.0 * bench.grid.1
        );
        let row = fig15_row(bench, 15);
        println!(
            "{:<16} {:>14} {:>14} {:>10.3}   {:>12} {:>12}",
            row.name,
            row.bisp_ns,
            row.lockstep_ns,
            row.normalized,
            row.bisp_instructions,
            row.lockstep_instructions
        );
        normalized.push(row.normalized);
    }
    println!("{:-<86}", "");
    let avg = normalized.iter().sum::<f64>() / normalized.len() as f64;
    println!("{:<16} {:>40.3}   (paper average: 0.772)", "average", avg);
}
