//! The contention extension figure (beyond the paper's evaluation):
//! end-to-end runtime of Distributed-HISQ (BISP) vs the lock-step hub
//! baseline as classical links become contended — a (controller count ×
//! scheme × link serialization) sweep over the simultaneous long-range
//! CNOT workload.
//!
//! The paper's §6.4.3 baseline assumes the hub broadcasts at a constant
//! latency independent of system size; once links serialize, every
//! measurement broadcast queues behind the previous one on each hub
//! downlink, so the hub's effective latency grows with both the
//! serialization time and the number of simultaneous feedback gadgets.
//! BISP's point-to-point corrections never share a link across gadgets,
//! so its slowdown stays flat — the distance-vs-saturation contrast the
//! contention model exists to expose.
//!
//! Honors the shared CLI contract: `--quick` trims both sweep axes,
//! `--threads N` parallelizes, `--json` emits the raw sweep report
//! (byte-identical across thread counts; CI pins the quick report
//! against the committed `BENCH_fig_contention.json` baseline).

use distributed_hisq::runner::run_sweep;
use hisq_bench::cli::FigArgs;
use hisq_bench::figures::{fig_contention_rows, fig_contention_scenarios};

fn main() {
    let args = FigArgs::parse();
    let scenarios = fig_contention_scenarios(args.quick);
    eprintln!(
        "[fig_contention] running {} scenarios on {} thread(s)...",
        scenarios.len(),
        args.threads
    );
    let report = run_sweep(&scenarios, args.threads).unwrap_or_else(|e| {
        eprintln!("fig_contention: {e}");
        std::process::exit(1);
    });
    if args.json {
        println!("{}", report.to_json());
        return;
    }

    let rows = fig_contention_rows(&scenarios, &report);
    println!("Contention sweep: runtime under per-link serialization (slowdown vs ser = 0)");
    println!("{:-<78}", "");
    println!(
        "{:>11} {:>8} {:>10} {:>14} {:>10} {:>14}",
        "controllers", "ser(ns)", "scheme", "makespan(ns)", "slowdown", "link msgs"
    );
    println!("{:-<78}", "");
    for row in &rows {
        println!(
            "{:>11} {:>8} {:>10} {:>14} {:>9.3}x {:>14}",
            row.controllers,
            row.serialization_ns,
            row.scheme,
            row.makespan_ns,
            row.slowdown,
            row.link_messages
        );
    }
    println!("{:-<78}", "");

    // The headline contrast: at the largest size and serialization, the
    // hub must have degraded more than BISP.
    let max_n = rows.iter().map(|r| r.controllers).max().unwrap_or(0);
    let max_ser = rows.iter().map(|r| r.serialization_ns).max().unwrap_or(0);
    let slowdown = |scheme: &str| {
        rows.iter()
            .find(|r| r.controllers == max_n && r.serialization_ns == max_ser && r.scheme == scheme)
            .map(|r| r.slowdown)
            .unwrap_or(1.0)
    };
    println!(
        "at {} controllers, ser {} ns: hub slowdown {:.3}x vs BISP {:.3}x",
        max_n,
        max_ser,
        slowdown("lockstep"),
        slowdown("bisp")
    );
}
