//! The gate-noise extension figure (beyond the paper's evaluation):
//! expected circuit infidelity of Distributed-HISQ (BISP) vs the
//! lock-step baseline across a per-gate error-rate axis, at Figure 16's
//! simultaneous long-range CNOT workload — a (gate error × scheme)
//! sweep.
//!
//! Figure 16 scores the schemes under pure decoherence, where the
//! faster scheme's shorter exposure is the whole story. Real devices
//! are usually gate-error-dominated: every committed gate and readout
//! carries an error probability that no amount of scheduling can avoid.
//! Both schemes run the same workload, so their gate-error terms are
//! nearly identical (feedback branches steer slightly different
//! correction counts); as that term grows it swamps the
//! scheme-*dependent* idle term and the baseline / BISP infidelity
//! ratio compresses toward 1 — this sweep charts exactly that
//! crossover.
//!
//! Honors the shared CLI contract: `--quick` trims the error-rate
//! axis, `--threads N` parallelizes, `--json` emits the raw sweep
//! report (byte-identical across thread counts; CI pins the quick
//! report against the committed `BENCH_fig_noise.json` baseline).

use distributed_hisq::runner::run_sweep;
use hisq_bench::cli::FigArgs;
use hisq_bench::figures::{fig_noise_points, fig_noise_scenarios};

fn main() {
    let args = FigArgs::parse();
    let scenarios = fig_noise_scenarios(args.quick);
    eprintln!(
        "[fig_noise] running {} scenarios on {} thread(s)...",
        scenarios.len(),
        args.threads
    );
    let report = run_sweep(&scenarios, args.threads).unwrap_or_else(|e| {
        eprintln!("fig_noise: {e}");
        std::process::exit(1);
    });
    if args.json {
        println!("{}", report.to_json());
        return;
    }

    let points = fig_noise_points(&scenarios, &report);
    println!("Noise sweep: expected infidelity vs per-gate error rate");
    println!("(p2q = pmeas = 10 x p1q, pleak = p1q, fixed idle error; fig16 workload)");
    println!("{:-<66}", "");
    println!(
        "{:>10} {:>16} {:>16} {:>12} {:>8}",
        "p1q", "Distributed-HISQ", "baseline", "reduction", "2q gates"
    );
    println!("{:-<66}", "");
    for p in &points {
        println!(
            "{:>10.0e} {:>16.5} {:>16.5} {:>11.2}x {:>8}",
            p.p_gate_1q, p.infidelity_bisp, p.infidelity_lockstep, p.reduction_ratio, p.gates_2q
        );
    }
    println!("{:-<66}", "");
    let first = points.first().expect("at least one error-rate point");
    let last = points.last().expect("at least one error-rate point");
    println!(
        "scheduling advantage: {:.2}x at p1q = {:.0e}, {:.2}x at p1q = {:.0e} \
         (gate error erodes what scheduling buys)",
        first.reduction_ratio, first.p_gate_1q, last.reduction_ratio, last.p_gate_1q
    );
}
