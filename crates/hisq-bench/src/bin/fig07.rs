//! Regenerates Figure 7: remote synchronization with non-zero overhead
//! when deterministic work cannot cover the booking latency.

use hisq_bench::figures::fig07_overhead;

fn main() {
    let r = fig07_overhead();
    println!("Figure 7: non-zero synchronization overhead");
    println!("  C2 deterministic horizon D2 = {} cycles", r.d2);
    println!("  booking uplink latency  L2 = {} cycles", r.l2);
    println!("  commit with real links:   {} cycles", r.commit_real);
    println!("  commit with ideal links:  {} cycles", r.commit_ideal);
    println!(
        "  measured overhead = {} cycles (expected L2 - D2 = {})",
        r.overhead,
        r.l2 - r.d2
    );
}
