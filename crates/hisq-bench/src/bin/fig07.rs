//! Regenerates Figure 7: remote synchronization with non-zero overhead
//! when deterministic work cannot cover the booking latency — a sweep
//! over the router-latency axis (real vs ideal links).

use hisq_bench::cli::FigArgs;
use hisq_bench::figures::fig07_report;
use hisq_sim::SweepRunner;

fn main() {
    let args = FigArgs::parse();
    let report = fig07_report(&SweepRunner::new(args.threads));
    if args.json {
        println!("{}", report.to_json());
        return;
    }

    let commit = |id: &str| {
        report
            .record(id)
            .and_then(|r| r.counter("commit_c2"))
            .expect("both points ran")
    };
    let (real, ideal) = (commit("real"), commit("ideal"));
    let point = report.record("real").expect("real point ran");
    let n = |key: &str| point.counter(key).expect("figure metrics");
    println!("Figure 7: non-zero synchronization overhead");
    println!("  C2 deterministic horizon D2 = {} cycles", n("d2"));
    println!("  booking uplink latency  L2 = {} cycles", n("l2"));
    println!("  commit with real links:   {real} cycles");
    println!("  commit with ideal links:  {ideal} cycles");
    println!(
        "  measured overhead = {} cycles (expected L2 - D2 = {})",
        real - ideal,
        n("l2") - n("d2")
    );
}
