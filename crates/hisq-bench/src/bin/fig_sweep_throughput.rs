//! Sweep-throughput harness (beyond the paper's evaluation): times
//! full-sweep wall-clock — scenarios/second and compile-cache hit
//! rate — over a seed×noise grid at 1/4/8 worker threads, cached
//! (the shared `CompileCache` `run_sweep` uses) versus uncached (a
//! fresh compile per grid point, the pre-cache behavior).
//!
//! Honors the shared CLI contract: `--quick` trims the grid and the
//! iteration count, `--threads N` restricts the thread axis to one
//! count, `--json` prints the report to stdout. A full (non-quick,
//! non-gate) run also writes the committed baseline
//! `BENCH_sweep_throughput.json` at the workspace root.
//!
//! Pass `--gate` to run the CI regression gate instead: the committed
//! `BENCH_sweep_throughput.json` is read *before* measuring, the full
//! grid is re-timed, and the process exits 1 if any thread-count row's
//! cached scenarios/sec fell more than 15% below the committed value.
//! Gate mode never overwrites the committed baseline. Wall-clock
//! varies machine to machine, so this report is gated — never
//! byte-compared like the deterministic `BENCH_fig_*.json` baselines.

use std::fmt::Write as _;

use hisq_bench::cli::FigArgs;
use hisq_bench::sweep_throughput::{
    compile_keys, measure_throughput, throughput_scenarios, ThroughputRow, THREAD_AXIS,
};
use hisq_json::{Json, ObjReader};

/// `--gate` fails when a row's cached scenarios/sec falls below the
/// committed value divided by this factor (throughput is
/// higher-is-better, so the tolerance divides where the event-engine
/// ns/event gate multiplies).
const GATE_TOLERANCE: f64 = 1.15;

/// Full-sweep timing iterations per (threads, flavor) pair; the
/// reported statistic is the minimum.
const ITERS: u32 = 7;
/// Iterations under `--quick`.
const QUICK_ITERS: u32 = 1;

/// Workspace-root path of the committed benchmark report.
const REPORT_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../BENCH_sweep_throughput.json"
);

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.2}")
    } else {
        "null".into()
    }
}

/// Wall-time fields carry more digits than the ratio fields: a full
/// quick sweep finishes in tens of milliseconds.
fn json_secs(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".into()
    }
}

/// Committed `threads -> scenarios_per_sec` rows, read from
/// `BENCH_sweep_throughput.json` before any measurement.
fn committed_rows() -> Vec<(usize, f64)> {
    let text = std::fs::read_to_string(REPORT_PATH)
        .unwrap_or_else(|e| panic!("--gate needs the committed {REPORT_PATH}: {e}"));
    let json = Json::parse(&text).expect("committed report parses");
    let mut report = ObjReader::new(&json, "report").expect("report is an object");
    report
        .required("results")
        .expect("report.results present")
        .as_array("report.results")
        .expect("report.results is an array")
        .iter()
        .map(|row| {
            let mut row = ObjReader::new(row, "results[]").expect("result row is an object");
            (
                row.required("threads")
                    .expect("row threads")
                    .as_usize("results[].threads")
                    .expect("threads integer"),
                row.required("scenarios_per_sec")
                    .expect("row scenarios_per_sec")
                    .as_f64("results[].scenarios_per_sec")
                    .expect("scenarios_per_sec number"),
            )
        })
        .collect()
}

fn render_json(quick: bool, scenarios: usize, keys: usize, rows: &[ThroughputRow]) -> String {
    let mut json = String::from("{\"benchmark\":\"sweep_throughput\",");
    let _ = write!(
        json,
        "\"quick\":{quick},\"scenarios\":{scenarios},\"compile_keys\":{keys},\"results\":["
    );
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"threads\":{},\"compiles\":{},\"cache_hit_rate\":{},\
             \"cached_s\":{},\"uncached_s\":{},\"scenarios_per_sec\":{},\
             \"uncached_scenarios_per_sec\":{},\"speedup\":{}}}",
            row.threads,
            row.compiles,
            json_f64(row.hit_rate),
            json_secs(row.cached_s),
            json_secs(row.uncached_s),
            json_f64(row.scenarios_per_sec),
            json_f64(row.uncached_scenarios_per_sec),
            json_f64(row.speedup)
        );
    }
    json.push_str("]}");
    json
}

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let gate = raw.iter().any(|arg| arg == "--gate");
    raw.retain(|arg| arg != "--gate");
    // `--threads N` restricts the 1/4/8 axis to one count, so detect
    // whether the flag was given at all before FigArgs applies its
    // default of 1.
    let threads_given = raw.iter().any(|arg| arg.starts_with("--threads"));
    let args = match FigArgs::parse_from(raw) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    if !args.positional.is_empty() {
        eprintln!("fig_sweep_throughput takes no positional arguments");
        std::process::exit(2);
    }
    if gate && (args.quick || threads_given) {
        eprintln!("--gate measures the full grid on the full thread axis (no --quick/--threads)");
        std::process::exit(2);
    }
    // Read the committed baseline before measuring.
    let committed = if gate { committed_rows() } else { Vec::new() };

    let scenarios = throughput_scenarios(args.quick);
    let keys = compile_keys(&scenarios);
    let thread_axis: Vec<usize> = if threads_given {
        vec![args.threads]
    } else {
        THREAD_AXIS.to_vec()
    };
    let iters = if args.quick { QUICK_ITERS } else { ITERS };
    eprintln!(
        "[fig_sweep_throughput] {} scenarios over {keys} compile keys, threads {thread_axis:?}, \
         {iters} iteration(s) per flavor...",
        scenarios.len()
    );

    let rows: Vec<ThroughputRow> = thread_axis
        .iter()
        .map(|&threads| measure_throughput(&scenarios, threads, iters))
        .collect();

    let json = render_json(args.quick, scenarios.len(), keys, &rows);
    if args.json {
        println!("{json}");
    } else {
        println!("sweep throughput: full-sweep scenarios/sec (higher is better)");
        println!(
            "({} scenarios, {keys} compile keys; cached = shared CompileCache, \
             uncached = fresh compile per point)",
            scenarios.len()
        );
        println!("{:-<76}", "");
        println!(
            "{:>8} {:>10} {:>12} {:>14} {:>14} {:>9}",
            "threads", "compiles", "hit rate", "cached sc/s", "uncached sc/s", "speedup"
        );
        println!("{:-<76}", "");
        for row in &rows {
            println!(
                "{:>8} {:>10} {:>11.1}% {:>14.1} {:>14.1} {:>8.2}x",
                row.threads,
                row.compiles,
                row.hit_rate * 100.0,
                row.scenarios_per_sec,
                row.uncached_scenarios_per_sec,
                row.speedup
            );
        }
        println!("{:-<76}", "");
    }

    if gate {
        // The scenarios/sec regression gate: every committed row must
        // be reproduced within GATE_TOLERANCE on this machine.
        let mut failed = false;
        for (threads, committed_sps) in &committed {
            let Some(row) = rows.iter().find(|row| row.threads == *threads) else {
                println!("gate MISSING {threads} threads: row not measured");
                failed = true;
                continue;
            };
            let floor = committed_sps / GATE_TOLERANCE;
            if row.scenarios_per_sec < floor {
                println!(
                    "gate FAIL {threads} threads: {:.1} scenarios/sec is more than {:.0}% below \
                     committed {committed_sps:.1} (floor {floor:.1})",
                    row.scenarios_per_sec,
                    (GATE_TOLERANCE - 1.0) * 100.0
                );
                failed = true;
            } else {
                println!(
                    "gate ok   {threads} threads: {:.1} scenarios/sec \
                     (committed {committed_sps:.1}, floor {floor:.1})",
                    row.scenarios_per_sec
                );
            }
        }
        if committed.is_empty() {
            println!("gate MISSING: committed report carried no rows");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        return;
    }

    // Refresh the committed baseline only on a full run: a --quick
    // smoke pass times a different grid and must never clobber the
    // numbers the gate compares against.
    if !args.quick {
        std::fs::write(REPORT_PATH, format!("{json}\n"))
            .expect("write BENCH_sweep_throughput.json");
        eprintln!("wrote BENCH_sweep_throughput.json (workspace root)");
    }
}
