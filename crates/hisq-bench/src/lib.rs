//! # hisq-bench — experiment regeneration for every table and figure
//!
//! Each evaluation artifact of the paper maps to a binary in `src/bin/`
//! and a data-producing function here (shared with the criterion
//! benches):
//!
//! | Paper artifact | Function | Binary |
//! |---|---|---|
//! | Table 1 (FPGA resources) | [`resources::board_resources`] | `table1` |
//! | Figure 5 (BISP timing) | [`figures::fig05_nearby`], [`figures::fig05_remote`] | `fig05` |
//! | Figure 6 (sync placement) | [`figures::fig06_listing`] | `fig06` |
//! | Figure 7 (non-zero overhead) | [`figures::fig07_overhead`] | `fig07` |
//! | Figure 11 (calibration) | `hisq_analog::experiments` | `fig11` |
//! | Figures 12/13 (electronics sync) | [`figures::fig13_waveforms`] | `fig13` |
//! | Figure 15 (runtime vs baseline) | [`figures::fig15_scenarios`] | `fig15` |
//! | Figure 16 (infidelity vs T1) | [`figures::fig16_scenarios`] | `fig16` |
//! | Sweep throughput (beyond the paper) | [`sweep_throughput::throughput_scenarios`] | `fig_sweep_throughput` |
//! | Multi-tenant saturation (beyond the paper) | [`load::fig_load_scenarios`] | `fig_load` |
//!
//! Every binary shares the [`cli::FigArgs`] flag surface
//! (`--threads N`, `--json`, `--quick`); the scenario-driven harnesses
//! fan their grids out over the `hisq_sim::sweep` worker pool.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cli;
pub mod figures;
pub mod load;
pub mod resources;
pub mod scale;
pub mod sweep_throughput;
