//! The `fig_scale` scaling sweep (and the event-engine bench's system
//! builders): fig15-style normalized runtime of Distributed-HISQ
//! (BISP) vs the lock-step hub baseline at 256–4096 controllers.
//!
//! The paper's evaluation stops at rack scale; the parallel/distributed
//! quantum-simulation literature (see PAPERS.md) motivates the
//! 1024–4096 controller regime as the interesting one, and this sweep
//! is the repo's proof that the calendar-queue event core actually
//! reaches it. Workloads are synthesized directly as HISQ programs (no
//! compiler in the loop), the same systems the `event_engine` bench
//! times: each BISP round pairs nearby syncs, exchanges a classical
//! value, and region-syncs through the router tree; each lock-step
//! round broadcasts one value through the hub to every subscriber.
//!
//! The report carries only simulation-deterministic metrics (event
//! counts, makespans, instruction counts — never wall time), so its
//! JSON is byte-identical across thread counts and machines and can be
//! committed as `BENCH_fig_scale.json` and gated by
//! `ci/check_baselines.sh` like every other figure baseline.

use std::collections::BTreeMap;

use hisq_core::NodeConfig;
use hisq_isa::Assembler;
use hisq_net::TopologyBuilder;
use hisq_sim::{SweepRecord, SweepReport, SweepRunner, System, SystemSpec};

/// Controller counts of the scaling axis (quick and full alike: the
/// committed baseline must carry the full 256–4096 range).
pub const SCALE_SIZES: [usize; 4] = [256, 512, 1024, 4096];

/// Synchronization/broadcast rounds per run: `--quick` trims the
/// rounds (the per-size system shape is the figure's whole point and
/// is never trimmed).
#[must_use]
pub fn scale_rounds(quick: bool) -> u32 {
    if quick {
        6
    } else {
        40
    }
}

fn asm(src: &str) -> Vec<hisq_isa::Inst> {
    Assembler::new()
        .assemble(src)
        .expect("scale program assembles")
        .insts()
        .to_vec()
}

/// A BISP system of `n` controllers on a linear mesh under an arity-4
/// router tree: every round pairs nearby syncs, exchanges a classical
/// value, and region-syncs through the root, `rounds` times.
#[must_use]
pub fn build_bisp(n: usize, rounds: u32) -> System {
    let topo = TopologyBuilder::linear(n)
        .neighbor_latency(5)
        .router_latency(10)
        .router_arity(4)
        .build();
    let root = topo.root_router().unwrap();
    let mut programs = BTreeMap::new();
    for i in 0..n as u16 {
        let partner = i ^ 1;
        let exchange = if i % 2 == 0 {
            format!("send {partner}, t1\nrecv t2, {partner}")
        } else {
            format!("recv t2, {partner}\nsend {partner}, t2")
        };
        let src = format!(
            "
            li t1, {rounds}
        loop:
            waiti 10
            sync {partner}
            waiti 6
            cw.i.i 0, 1
            {exchange}
            li t0, 40
            sync {root}, t0
            waiti 40
            cw.i.i 1, 1
            addi t1, t1, -1
            bnez t1, loop
            stop
            "
        );
        programs.insert(i, asm(&src));
    }
    SystemSpec::from_topology(&topo, programs)
        .build()
        .expect("scale system builds")
}

/// A lock-step system of `n` controllers on a star: controller 0
/// publishes a value to the hub every round; every controller consumes
/// the broadcast, `rounds` times.
#[must_use]
pub fn build_lockstep(n: usize, rounds: u32) -> System {
    let hub = n as u16;
    let mut spec = SystemSpec::new();
    spec.hub(
        hub,
        hisq_sim::Hub {
            subscribers: (0..n as u16).collect(),
            down_latency: 25,
        },
    );
    for i in 0..n as u16 {
        let publish = if i == 0 {
            format!("send {hub}, t1\n")
        } else {
            String::new()
        };
        let src = format!(
            "
            li t1, {rounds}
        loop:
            {publish}recv t2, {hub}
            waiti 10
            cw.i.i 0, 1
            addi t1, t1, -1
            bnez t1, loop
            stop
            "
        );
        spec.controller(NodeConfig::new(i).with_pipeline_headroom(32), asm(&src));
    }
    spec.build().expect("scale system builds")
}

/// One sweep point: a scheme at a controller count.
#[derive(Debug, Clone, Copy)]
pub struct ScalePoint {
    /// `"bisp"` or `"lockstep"`.
    pub scheme: &'static str,
    /// System size.
    pub controllers: usize,
}

impl ScalePoint {
    /// The record id: `n<controllers>/<scheme>/r<rounds>`.
    #[must_use]
    pub fn id(&self, rounds: u32) -> String {
        format!("n{}/{}/r{rounds}", self.controllers, self.scheme)
    }
}

/// The sweep grid: every size under both schemes, BISP first (the
/// pairing [`scale_rows`] relies on, mirroring `fig15_rows`).
#[must_use]
pub fn scale_points(sizes: &[usize]) -> Vec<ScalePoint> {
    sizes
        .iter()
        .flat_map(|&controllers| {
            ["bisp", "lockstep"].map(|scheme| ScalePoint {
                scheme,
                controllers,
            })
        })
        .collect()
}

/// Builds, runs, and distills one scale point into its sweep record.
/// Only simulation-deterministic metrics are recorded — wall time
/// would break the byte-identity contract of the committed baseline.
#[must_use]
pub fn run_scale_point(point: ScalePoint, rounds: u32) -> SweepRecord {
    let mut system = match point.scheme {
        "bisp" => build_bisp(point.controllers, rounds),
        _ => build_lockstep(point.controllers, rounds),
    };
    let report = system.run().expect("scale workload runs to quiescence");
    SweepRecord::new(point.id(rounds))
        .with("makespan_cycles", report.makespan_cycles)
        .with("makespan_ns", report.makespan_ns)
        .with("instructions", report.total_instructions)
        .with("syncs", report.total_syncs)
        .with("stall_cycles", report.total_stall_cycles)
        .with("messages", report.events_processed)
        .with("all_halted", report.all_halted)
}

/// Runs the scaling sweep over `sizes` on `threads` workers; the
/// report is byte-identical for any thread count (records land in
/// point order; every metric is simulation-deterministic).
#[must_use]
pub fn run_scale_sweep(sizes: &[usize], rounds: u32, threads: usize) -> SweepReport {
    let points = scale_points(sizes);
    let records =
        SweepRunner::new(threads).map(&points, |_, &point| run_scale_point(point, rounds));
    SweepReport::from_records(records)
}

/// One figure row: both schemes at a size, with the fig15-style
/// normalized runtime (BISP cycles / lock-step cycles; < 1 means BISP
/// is faster).
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// System size.
    pub controllers: usize,
    /// BISP end-to-end makespan (ns).
    pub bisp_ns: u64,
    /// Lock-step end-to-end makespan (ns).
    pub lockstep_ns: u64,
    /// BISP makespan normalized to the lock-step baseline.
    pub normalized: f64,
    /// Engine events processed by the BISP run.
    pub bisp_events: u64,
    /// Engine events processed by the lock-step run.
    pub lockstep_events: u64,
}

/// Pairs the report's records (BISP, lock-step per size, in
/// [`scale_points`] order) into figure rows.
///
/// # Panics
///
/// Panics if a run deadlocked or the records do not pair up — a
/// committed baseline must never hide a blocked system.
#[must_use]
pub fn scale_rows(report: &SweepReport) -> Vec<ScaleRow> {
    report
        .records()
        .chunks(2)
        .map(|pair| {
            let [bisp, lockstep] = pair else {
                panic!("records must pair up per size");
            };
            for record in pair {
                assert_eq!(
                    record.value("all_halted"),
                    Some(1.0),
                    "{}: run blocked",
                    record.id
                );
            }
            let counter = |r: &SweepRecord, key: &str| r.counter(key).expect("standard metrics");
            let controllers = bisp
                .id
                .strip_prefix('n')
                .and_then(|rest| rest.split('/').next())
                .and_then(|n| n.parse().ok())
                .expect("scale ids start with n<controllers>");
            ScaleRow {
                controllers,
                bisp_ns: counter(bisp, "makespan_ns"),
                lockstep_ns: counter(lockstep, "makespan_ns"),
                normalized: counter(bisp, "makespan_cycles") as f64
                    / counter(lockstep, "makespan_cycles") as f64,
                bisp_events: counter(bisp, "messages"),
                lockstep_events: counter(lockstep, "messages"),
            }
        })
        .collect()
}
