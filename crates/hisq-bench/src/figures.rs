//! Data producers for every figure of the paper's evaluation. The
//! `src/bin/` harnesses print these; the criterion benches measure
//! them. The scenario-driven figures (15, 16, and the contention
//! extension) ride the sweep engine: they expand a [`SweepGrid`] of
//! [`Scenario`]s and distill the aggregated records back into figure
//! rows/points.

use distributed_hisq::compiler::{compile_bisp, BispOptions, Scheme};
use distributed_hisq::quantum::Circuit;
use distributed_hisq::runner::{run_sweep, LinkOverride, NoiseOverride, Scenario, SystemParams};
use distributed_hisq::workloads::{SuiteScale, WorkloadSpec};
use hisq_core::NodeConfig;
use hisq_isa::Assembler;
use hisq_net::TopologyBuilder;
use hisq_sim::{
    LinkModel, NoiseModel, SweepGrid, SweepRecord, SweepReport, SweepRunner, SystemSpec, Telf,
};

/// Figure 5(a): nearby BISP synchronization timing.
#[derive(Debug, Clone, Copy)]
pub struct Fig05Nearby {
    /// C0's booking cycle (B₀).
    pub booking0: u64,
    /// C1's booking cycle (B₁).
    pub booking1: u64,
    /// Link latency (the calibrated countdown N = L).
    pub link_latency: u64,
    /// C0's synchronous-task commit cycle.
    pub commit0: u64,
    /// C1's synchronous-task commit cycle.
    pub commit1: u64,
    /// Synchronization overhead in cycles (0 = the paper's zero-cycle
    /// claim).
    pub overhead: u64,
}

/// Runs the Figure 5(a) scenario: two controllers with different-length
/// deterministic prologues synchronize; both must commit at
/// `max(T₀, T₁)` with zero overhead.
pub fn fig05_nearby() -> Fig05Nearby {
    let latency = 6;
    let asm = |pad: u64| {
        Assembler::new()
            .assemble(&format!(
                "waiti {pad}\nsync {}\nwaiti {latency}\ncw.i.i 0, 1\nstop",
                1
            ))
            .unwrap()
            .insts()
            .to_vec()
    };
    let mut spec = SystemSpec::new();
    spec.controller(NodeConfig::new(0).with_neighbor(1, latency), asm(40));
    // Controller 1's program must target address 0.
    let b = Assembler::new()
        .assemble(&format!(
            "waiti 90\nsync 0\nwaiti {latency}\ncw.i.i 0, 1\nstop"
        ))
        .unwrap()
        .insts()
        .to_vec();
    spec.controller(NodeConfig::new(1).with_neighbor(0, latency), b);
    let mut system = spec.build().expect("builds");
    let report = system.run().expect("runs");
    assert!(report.all_halted);
    let telf = system.telf();
    let commit0 = telf.commits_of(0)[0].cycle;
    let commit1 = telf.commits_of(1)[0].cycle;
    // Natural readiness: T_i = booking + countdown; the later controller
    // (booking 90) dictates.
    let t_late = 90 + latency;
    Fig05Nearby {
        booking0: 40,
        booking1: 90,
        link_latency: latency,
        commit0,
        commit1,
        overhead: commit0.max(commit1) - t_late,
    }
}

/// Figure 5(b)/7: region-level synchronization through the router tree.
#[derive(Debug, Clone)]
pub struct Fig05Remote {
    /// Per-controller booked time-points T_i (wall cycles).
    pub bookings: Vec<(u64, u64)>, // (booking cycle B_i, horizon)
    /// The common commit cycle of the synchronous task.
    pub commit: u64,
    /// All controllers committed at the same cycle.
    pub aligned: bool,
}

/// Runs a three-controller region sync (Figure 5(b)): every controller
/// books a time-point with the root router and all commit together.
pub fn fig05_remote() -> Fig05Remote {
    let topo = TopologyBuilder::linear(3)
        .neighbor_latency(5)
        .router_latency(10)
        .build();
    let root = topo.root_router().unwrap();
    let pads = [40u64, 90, 60];
    let horizon = 30u64;
    let mut programs = std::collections::BTreeMap::new();
    for (i, pad) in pads.iter().enumerate() {
        let src = format!(
            "li t0, {horizon}\nwaiti {pad}\nsync {root}, t0\nwaiti {horizon}\ncw.i.i 0, 1\nstop"
        );
        programs.insert(
            i as u16,
            Assembler::new().assemble(&src).unwrap().insts().to_vec(),
        );
    }
    let mut system = SystemSpec::from_topology(&topo, programs)
        .build()
        .expect("builds");
    let report = system.run().expect("runs");
    assert!(report.all_halted, "{:?}", report.blocked);
    let telf = system.telf();
    let commits: Vec<u64> = (0..3u16).map(|a| telf.commits_of(a)[0].cycle).collect();
    Fig05Remote {
        bookings: pads.iter().map(|&p| (p, horizon)).collect(),
        commit: commits[0],
        aligned: commits.iter().all(|&c| c == commits[0]),
    }
}

/// Figure 7: synchronization overhead when deterministic work cannot
/// cover the booking communication latency.
#[derive(Debug, Clone, Copy)]
pub struct Fig07 {
    /// The short controller's deterministic horizon D₂ (cycles).
    pub d2: u64,
    /// The booking uplink latency L₂ (cycles).
    pub l2: u64,
    /// Commit cycle with real latency.
    pub commit_real: u64,
    /// Commit cycle with zero-latency links (the theoretical earliest).
    pub commit_ideal: u64,
    /// Measured overhead = real − ideal; expected `L₂ − D₂`.
    pub overhead: u64,
}

/// The Figure 7 booking-uplink latency L₂ (cycles).
const FIG07_L2: u64 = 10;
/// The Figure 7 deterministic horizon D₂ (cycles).
const FIG07_D2: u64 = 4;

/// One Figure 7 execution: three controllers where C2's deterministic
/// work (D₂) cannot cover the booking latency; returns C2's commit.
fn fig07_commit(router_latency: u64) -> u64 {
    let topo = TopologyBuilder::linear(3)
        .neighbor_latency(5)
        .router_latency(router_latency)
        .build();
    let root = topo.root_router().unwrap();
    let mut programs = std::collections::BTreeMap::new();
    // C0 and C1 finish early with generous horizons; C2 is the
    // bottleneck with only D2 cycles of deterministic work.
    for (i, (pad, horizon)) in [(10u64, 40u64), (20, 40), (60, FIG07_D2)]
        .iter()
        .enumerate()
    {
        let src = format!(
            "li t0, {horizon}\nwaiti {pad}\nsync {root}, t0\nwaiti {horizon}\ncw.i.i 0, 1\nstop"
        );
        programs.insert(
            i as u16,
            Assembler::new().assemble(&src).unwrap().insts().to_vec(),
        );
    }
    let mut system = SystemSpec::from_topology(&topo, programs)
        .build()
        .expect("builds");
    let report = system.run().expect("runs");
    assert!(report.all_halted, "{:?}", report.blocked);
    system.telf().commits_of(2)[0].cycle
}

/// The Figure 7 sweep: the router-latency axis {L₂, 0} (real vs ideal
/// links) executed on the given runner.
pub fn fig07_report(runner: &SweepRunner) -> SweepReport {
    let points = [("real", FIG07_L2), ("ideal", 0)];
    runner.run(&points, |_, &(label, latency)| {
        SweepRecord::new(label)
            .with("router_latency", latency)
            .with("d2", FIG07_D2)
            .with("l2", FIG07_L2)
            .with("commit_c2", fig07_commit(latency))
    })
}

/// Runs the Figure 7 scenario twice (real vs zero-latency links) and
/// reports the overhead.
pub fn fig07_overhead() -> Fig07 {
    let report = fig07_report(&SweepRunner::new(1));
    let commit = |id: &str| {
        report
            .record(id)
            .and_then(|r| r.counter("commit_c2"))
            .expect("both points ran")
    };
    let (commit_real, commit_ideal) = (commit("real"), commit("ideal"));
    Fig07 {
        d2: FIG07_D2,
        l2: FIG07_L2,
        commit_real,
        commit_ideal,
        overhead: commit_real - commit_ideal,
    }
}

/// The Figure 5 sweep: both synchronization experiments (nearby,
/// remote) executed on the given runner, as metric records.
pub fn fig05_report(runner: &SweepRunner) -> SweepReport {
    runner.run(&["nearby", "remote"], |_, &kind| {
        if kind == "nearby" {
            let r = fig05_nearby();
            SweepRecord::new(kind)
                .with("booking0", r.booking0)
                .with("booking1", r.booking1)
                .with("link_latency", r.link_latency)
                .with("commit0", r.commit0)
                .with("commit1", r.commit1)
                .with("overhead", r.overhead)
                .with("aligned", r.commit0 == r.commit1)
        } else {
            let r = fig05_remote();
            let mut record = SweepRecord::new(kind)
                .with("commit", r.commit)
                .with("aligned", r.aligned);
            for (i, &(booking, horizon)) in r.bookings.iter().enumerate() {
                record.set(format!("booking_c{i}"), booking);
                record.set(format!("horizon_c{i}"), horizon);
            }
            record
        }
    })
}

/// Figure 6: the generated per-controller listings for a synchronized
/// two-qubit gate, showing the hoisted `sync` placement.
pub fn fig06_listing() -> (String, String) {
    let topo = TopologyBuilder::linear(2).neighbor_latency(5).build();
    let mut circuit = Circuit::new(2, 1);
    circuit.h(0);
    circuit.h(0);
    circuit.cz(0, 1);
    let compiled = compile_bisp(&circuit, &topo, &BispOptions::default()).unwrap();
    (compiled.sources[&0].clone(), compiled.sources[&1].clone())
}

/// Figures 12/13: the paper's electronics-level synchronization
/// experiment.
#[derive(Debug, Clone)]
pub struct Fig13 {
    /// The full TELF trace of both boards.
    pub telf: Telf,
    /// Per-iteration cycle difference between the synchronized pulses
    /// (control port 7 vs readout port 5); constant = cycle-aligned.
    pub alignment: Vec<i64>,
    /// Commit cycles of the control board's synchronized pulse per
    /// iteration (the `waitr` drift is visible here).
    pub control_pulses: Vec<u64>,
}

/// Runs the paper's Figure 12 programs (bounded to three inner-loop
/// iterations) on a two-board system.
pub fn fig13_waveforms() -> Fig13 {
    fig13_waveforms_iterations(3)
}

/// [`fig13_waveforms`] with a configurable inner-loop bound (the
/// `--quick` twin runs two iterations; the figure default is three).
///
/// # Panics
///
/// Panics if `iterations` is zero (the alignment check needs at least
/// one synchronized pulse pair).
pub fn fig13_waveforms_iterations(iterations: usize) -> Fig13 {
    assert!(iterations > 0, "fig13 needs at least one iteration");
    let latency = 4;
    // The control board of Figure 12, with the infinite outer loop
    // replaced by `stop` and the `waitr` horizon bounded to
    // `iterations` (the register grows by 40 per pass).
    let control = format!(
        "
        addi $2,$0,{}
        addi $1,$0,0
    loop:
        waiti 1
        cw.i.i 21,2
        addi $1,$1,40
        cw.i.i 20,2
        waitr $1
        sync 1
        waiti 8
        cw.i.i 7,1
        waiti 50
        bne $1,$2,loop
        stop
    ",
        40 * iterations
    );
    // The readout board, bounded to the same iterations.
    let readout = format!(
        "
        addi $3,$0,{iterations}
    loop:
        waiti 2
        sync 0
        waiti 6
        waiti 57
        cw.i.i 5,1
        addi $3,$3,-1
        bnez $3, loop
        stop
    ",
    );
    let mut spec = SystemSpec::new();
    spec.controller(
        NodeConfig::new(0).with_neighbor(1, latency),
        Assembler::new()
            .assemble(&control)
            .unwrap()
            .insts()
            .to_vec(),
    );
    spec.controller(
        NodeConfig::new(1).with_neighbor(0, latency),
        Assembler::new()
            .assemble(&readout)
            .unwrap()
            .insts()
            .to_vec(),
    );
    let mut system = spec.build().expect("builds");
    let report = system.run().expect("runs");
    assert!(report.all_halted, "{:?}", report.blocked);
    let telf = system.telf();
    let alignment = telf.alignment((0, 7), (1, 5));
    let control_pulses = telf.channel(0, 7).iter().map(|r| r.cycle).collect();
    Fig13 {
        telf,
        alignment,
        control_pulses,
    }
}

/// One row of Figure 15.
#[derive(Debug, Clone)]
pub struct Fig15Row {
    /// Benchmark name.
    pub name: String,
    /// Distributed-HISQ end-to-end runtime (ns).
    pub bisp_ns: u64,
    /// Lock-step baseline runtime (ns).
    pub lockstep_ns: u64,
    /// `bisp / lockstep` (the paper's normalized runtime; < 1 means
    /// Distributed-HISQ wins).
    pub normalized: f64,
    /// Total instructions executed under Distributed-HISQ.
    pub bisp_instructions: u64,
    /// Total instructions executed under the baseline.
    pub lockstep_instructions: u64,
}

/// Expands the Figure 15 scenario grid: every suite instance of the
/// scale under both schemes (scheme varies fastest, so records pair up
/// as consecutive bisp/lockstep twins).
pub fn fig15_scenarios(scale: SuiteScale, seed: u64) -> Vec<Scenario> {
    SweepGrid::new(Scenario::new(WorkloadSpec::suite(""), Scheme::Bisp).with_seed(seed))
        .axis(WorkloadSpec::suite_specs(scale), |s, workload| {
            s.workload = workload.clone()
        })
        .axis([Scheme::Bisp, Scheme::Lockstep], |s, &scheme| {
            s.scheme = scheme
        })
        .into_points()
}

/// Distills an executed Figure 15 sweep back into figure rows, pairing
/// each benchmark's scheme twins.
///
/// # Panics
///
/// Panics if the report does not hold [`fig15_scenarios`]-shaped
/// records (bisp/lockstep pairs with the standard metrics) or a run
/// did not halt.
pub fn fig15_rows(report: &SweepReport) -> Vec<Fig15Row> {
    report
        .records()
        .chunks(2)
        .map(|pair| {
            let [bisp, lockstep] = pair else {
                panic!("records must pair up per benchmark");
            };
            let name = bisp.id.split('/').next().unwrap_or(&bisp.id).to_string();
            for record in pair {
                assert_eq!(
                    record.value("all_halted"),
                    Some(1.0),
                    "{}: run blocked",
                    record.id
                );
            }
            let cycles = |r: &SweepRecord, key: &str| r.counter(key).expect("standard metrics");
            Fig15Row {
                name,
                bisp_ns: cycles(bisp, "makespan_ns"),
                lockstep_ns: cycles(lockstep, "makespan_ns"),
                normalized: cycles(bisp, "makespan_cycles") as f64
                    / cycles(lockstep, "makespan_cycles") as f64,
                bisp_instructions: cycles(bisp, "instructions"),
                lockstep_instructions: cycles(lockstep, "instructions"),
            }
        })
        .collect()
}

/// Compiles and simulates one named suite instance (see
/// [`hisq_workloads::suite_names`]) under both schemes.
pub fn fig15_row(workload: &str, seed: u64) -> Fig15Row {
    let base = Scenario::new(WorkloadSpec::suite(workload), Scheme::Bisp).with_seed(seed);
    let scenarios = [
        base.clone(),
        Scenario {
            scheme: Scheme::Lockstep,
            ..base
        },
    ];
    let report = run_sweep(&scenarios, 1).expect("suite scenarios are well-formed");
    fig15_rows(&report).remove(0)
}

/// One point of the Figure 16 sweep.
#[derive(Debug, Clone, Copy)]
pub struct Fig16Point {
    /// Relaxation time T1 = T2 in microseconds.
    pub t_us: f64,
    /// Distributed-HISQ circuit infidelity.
    pub infidelity_bisp: f64,
    /// Baseline circuit infidelity.
    pub infidelity_lockstep: f64,
    /// Reduction ratio (baseline / Distributed-HISQ).
    pub reduction_ratio: f64,
}

/// Expands the Figure 16 scenario grid: the simultaneous long-range
/// CNOT workload under both schemes at every coherence point (scheme
/// varies fastest, so records pair up per T1 point).
///
/// The long-range CNOT serves the cross-chip scenario of §2.1.1; the
/// baseline's central controller sits a chassis hop away (250 ns per
/// leg) in that setting, unlike the on-backplane 100 ns of Figure 15 —
/// hence the 63/62-cycle star legs. Data qubits carry the circuit's
/// quantum output, so the harness scores their exposure over the whole
/// schedule (the workload's `data_sites`); ancillas decohere only over
/// their own prepare→measure windows.
///
/// Each (T1, scheme) point re-simulates even though T1 only affects the
/// post-run scoring — a deliberate trade: every point is an independent
/// scenario under the uniform sweep contract (so the grid parallelizes
/// and the JSON stays per-point), and the circuit simulates in
/// milliseconds.
pub fn fig16_scenarios(t_us_points: &[f64]) -> Vec<Scenario> {
    let params = SystemParams {
        star_up_latency: 63,
        star_down_latency: 62,
        ..SystemParams::default()
    };
    let workload = WorkloadSpec::LongRangeCnots {
        parallel: 4,
        span: 7,
    };
    SweepGrid::new(
        Scenario::new(workload, Scheme::Bisp)
            .with_seed(16)
            .with_params(params),
    )
    .axis(t_us_points.iter().copied(), |s, &t_us| s.t1_us = t_us)
    .axis([Scheme::Bisp, Scheme::Lockstep], |s, &scheme| {
        s.scheme = scheme
    })
    .into_points()
}

/// Distills an executed Figure 16 sweep back into figure points.
///
/// # Panics
///
/// Panics if the report does not hold [`fig16_scenarios`]-shaped
/// records or a run did not halt.
pub fn fig16_points(scenarios: &[Scenario], report: &SweepReport) -> Vec<Fig16Point> {
    scenarios
        .chunks(2)
        .zip(report.records().chunks(2))
        .map(|(pair, records)| {
            let [bisp, lockstep] = records else {
                panic!("records must pair up per T1 point");
            };
            for record in records {
                assert_eq!(
                    record.value("all_halted"),
                    Some(1.0),
                    "{}: run blocked",
                    record.id
                );
            }
            let infidelity_bisp = bisp.value("infidelity").expect("standard metrics");
            let infidelity_lockstep = lockstep.value("infidelity").expect("standard metrics");
            Fig16Point {
                t_us: pair[0].t1_us,
                infidelity_bisp,
                infidelity_lockstep,
                reduction_ratio: infidelity_lockstep / infidelity_bisp,
            }
        })
        .collect()
}

/// Runs the Figure 16 experiment on one thread: simulate both schemes
/// at every coherence point and score the output data qubits.
pub fn fig16_sweep(t_us_points: &[f64]) -> Vec<Fig16Point> {
    let scenarios = fig16_scenarios(t_us_points);
    let report = run_sweep(&scenarios, 1).expect("figure scenarios are well-formed");
    fig16_points(&scenarios, &report)
}

/// The backend seed of the contention sweep (any fixed value works;
/// the figure compares makespans, not outcomes).
const FIG_CONTENTION_SEED: u64 = 21;

/// The logical control→target span of each contention-sweep gadget
/// (`parallel` gadgets of span 7 occupy `16·parallel − 1` physical
/// controllers: 15/31/63/127 for parallel = 1/2/4/8).
const FIG_CONTENTION_SPAN: usize = 7;

/// Expands the contention sweep grid: the simultaneous long-range CNOT
/// workload at several controller counts (≈8–128) under both schemes,
/// across a link-serialization axis — `link_model` as a first-class
/// [`SweepGrid`] axis. The serialization axis varies fastest, then the
/// scheme, then the size, so records group naturally per (size, scheme)
/// block.
///
/// Both schemes carry the same per-message feedback traffic, so the
/// sweep isolates *where* contention bites: the lock-step hub fans
/// every measurement broadcast out through its single shared egress
/// port (the `(hub, hub)` queue), serializing one copy per subscriber
/// back to back — so each broadcast costs `N · serialization` of hub
/// egress time and the queue deepens with both system size and the
/// number of simultaneous results — while BISP's corrections ride
/// dedicated point-to-point mesh links that never carry more than one
/// gadget's traffic.
pub fn fig_contention_scenarios(quick: bool) -> Vec<Scenario> {
    let parallel: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let serialization_ns: &[u64] = if quick {
        &[0, 16, 64]
    } else {
        &[0, 8, 16, 32, 64]
    };
    let base = Scenario::new(
        WorkloadSpec::LongRangeCnots {
            parallel: 1,
            span: FIG_CONTENTION_SPAN,
        },
        Scheme::Bisp,
    )
    .with_seed(FIG_CONTENTION_SEED);
    SweepGrid::new(base)
        .axis(parallel.iter().copied(), |s, &p| {
            s.workload = WorkloadSpec::LongRangeCnots {
                parallel: p,
                span: FIG_CONTENTION_SPAN,
            }
        })
        .axis([Scheme::Bisp, Scheme::Lockstep], |s, &scheme| {
            s.scheme = scheme
        })
        .axis(serialization_ns.iter().copied(), |s, &ns| {
            s.params.link_model = LinkModel::serialized(ns)
        })
        .into_points()
}

/// One row of the contention figure: a (controller count, scheme,
/// serialization) point with its makespan and its slowdown relative to
/// the same point at zero serialization.
#[derive(Debug, Clone)]
pub struct ContentionRow {
    /// Physical controller count of the workload.
    pub controllers: usize,
    /// `"bisp"` or `"lockstep"`.
    pub scheme: &'static str,
    /// The swept per-message serialization time (ns).
    pub serialization_ns: u64,
    /// End-to-end runtime (ns).
    pub makespan_ns: u64,
    /// `makespan / makespan(serialization = 0)` for the same
    /// (controllers, scheme) — the contention-induced slowdown.
    pub slowdown: f64,
    /// Total link transmission attempts (0 at zero serialization,
    /// where links run the transparent model).
    pub link_messages: u64,
}

/// Distills an executed contention sweep back into figure rows.
///
/// # Panics
///
/// Panics if the report does not hold
/// [`fig_contention_scenarios`]-shaped records or a run did not halt.
pub fn fig_contention_rows(scenarios: &[Scenario], report: &SweepReport) -> Vec<ContentionRow> {
    let mut baselines: std::collections::BTreeMap<(usize, &'static str), u64> =
        std::collections::BTreeMap::new();
    let mut rows = Vec::with_capacity(scenarios.len());
    for (scenario, record) in scenarios.iter().zip(report.records()) {
        assert_eq!(
            record.value("all_halted"),
            Some(1.0),
            "{}: run blocked",
            record.id
        );
        let WorkloadSpec::LongRangeCnots { parallel, span } = scenario.workload else {
            panic!("contention scenarios run the long-range CNOT workload");
        };
        let controllers = 2 * parallel * (span + 1) - 1;
        let scheme = match scenario.scheme {
            Scheme::Bisp => "bisp",
            Scheme::Lockstep => "lockstep",
        };
        let serialization_ns = scenario.params.link_model.serialization_ns;
        let makespan_ns = record.counter("makespan_ns").expect("standard metrics");
        // The zero-serialization point leads its (size, scheme) block.
        let baseline = *baselines
            .entry((controllers, scheme))
            .or_insert(makespan_ns);
        rows.push(ContentionRow {
            controllers,
            scheme,
            serialization_ns,
            makespan_ns,
            slowdown: makespan_ns as f64 / baseline as f64,
            link_messages: record.counter("link_messages").unwrap_or(0),
        });
    }
    rows
}

/// The backend seed of the noise sweep (fig16's, so the noiseless limit
/// of this sweep is exactly the Figure 16 workload).
const FIG_NOISE_SEED: u64 = 16;

/// The fixed per-nanosecond idle error rate of the noise sweep: ≈ the
/// exposure decay of a 1 ms-coherence device, so the idle (schedule-
/// length) term stays visible at the low end of the gate-error axis.
pub const FIG_NOISE_P_IDLE_PER_NS: f64 = 1e-6;

/// The noise-sweep error-rate family at single-qubit gate error `p`:
/// two-qubit gates and readout 10× worse (the usual hardware
/// hierarchy), leakage at `p`, idle fixed at
/// [`FIG_NOISE_P_IDLE_PER_NS`].
pub fn fig_noise_model(p_gate_1q: f64) -> NoiseModel {
    NoiseModel::default()
        .with_gate_errors(p_gate_1q, 10.0 * p_gate_1q)
        .with_meas_error(10.0 * p_gate_1q)
        .with_idle_error(FIG_NOISE_P_IDLE_PER_NS)
        .with_leak(p_gate_1q)
}

/// Expands the noise sweep grid: fig16's simultaneous long-range CNOT
/// workload (4 gadgets of span 7, the cross-chip star latencies) under
/// both schemes across a gate-error axis — `SystemParams::noise` as a
/// first-class [`SweepGrid`] axis. The scheme varies fastest, so
/// records pair up as bisp/lockstep twins per error-rate point.
///
/// Where Figure 16 sweeps *coherence* (decoherence-dominated devices),
/// this sweep holds idle error fixed and sweeps the per-gate error
/// rate: both schemes commit the same circuit, so the gate-error term
/// is (nearly) scheme-independent and the BISP advantage — earlier
/// completion, shorter exposure — lives entirely in the idle term.
/// As gate error grows it swamps the idle term and the
/// baseline/BISP infidelity ratio compresses toward 1: the
/// gate-error-dominated regime where scheduling no longer buys
/// fidelity.
pub fn fig_noise_scenarios(quick: bool) -> Vec<Scenario> {
    let p_axis: &[f64] = if quick {
        &[1e-5, 3e-4, 1e-2]
    } else {
        &[1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2]
    };
    let params = SystemParams {
        star_up_latency: 63,
        star_down_latency: 62,
        ..SystemParams::default()
    };
    let workload = WorkloadSpec::LongRangeCnots {
        parallel: 4,
        span: 7,
    };
    SweepGrid::new(
        Scenario::new(workload, Scheme::Bisp)
            .with_seed(FIG_NOISE_SEED)
            .with_params(params),
    )
    .axis(p_axis.iter().copied(), |s, &p| {
        s.params.noise = fig_noise_model(p)
    })
    .axis([Scheme::Bisp, Scheme::Lockstep], |s, &scheme| {
        s.scheme = scheme
    })
    .into_points()
}

/// One point of the noise sweep: a gate-error rate with both schemes'
/// analytic infidelities and their ratio.
#[derive(Debug, Clone, Copy)]
pub struct FigNoisePoint {
    /// Single-qubit gate error probability (two-qubit and readout are
    /// 10×, leakage 1× — see [`fig_noise_model`]).
    pub p_gate_1q: f64,
    /// Distributed-HISQ expected circuit infidelity
    /// (`noise_infidelity`).
    pub infidelity_bisp: f64,
    /// Lock-step baseline expected circuit infidelity.
    pub infidelity_lockstep: f64,
    /// Reduction ratio (baseline / Distributed-HISQ); compresses
    /// toward 1 as gate error dominates.
    pub reduction_ratio: f64,
    /// Two-qubit gates committed under BISP (the dominant error term's
    /// count; the baseline commits the same circuit).
    pub gates_2q: u64,
}

/// Distills an executed noise sweep back into figure points.
///
/// # Panics
///
/// Panics if the report does not hold [`fig_noise_scenarios`]-shaped
/// records (bisp/lockstep twins carrying `noise_infidelity`) or a run
/// did not halt.
pub fn fig_noise_points(scenarios: &[Scenario], report: &SweepReport) -> Vec<FigNoisePoint> {
    scenarios
        .chunks(2)
        .zip(report.records().chunks(2))
        .map(|(pair, records)| {
            let [bisp, lockstep] = records else {
                panic!("records must pair up per error-rate point");
            };
            for record in records {
                assert_eq!(
                    record.value("all_halted"),
                    Some(1.0),
                    "{}: run blocked",
                    record.id
                );
            }
            let infidelity_bisp = bisp.value("noise_infidelity").expect("noise metrics");
            let infidelity_lockstep = lockstep.value("noise_infidelity").expect("noise metrics");
            FigNoisePoint {
                p_gate_1q: pair[0].params.noise.p_gate_1q,
                infidelity_bisp,
                infidelity_lockstep,
                reduction_ratio: infidelity_lockstep / infidelity_bisp,
                gates_2q: bisp.counter("gates_2q").unwrap_or(0),
            }
        })
        .collect()
}

/// The backend seed of the heterogeneous-fabric comparison.
const FIG_HETERO_SEED: u64 = 23;

/// The heated mesh edge of the hot-edge grids (as a low-site pair;
/// both directions of the cable are heated): the adder's ripple-carry
/// traffic crosses physical edge 4–5 more than three times as often as
/// its mirror image, so the line reversal is a strict win for an
/// aware placement.
pub const FIG_HETERO_HOT_EDGE: (u16, u16) = (4, 5);

/// The heated device site of the hot-qubit grids: the adder's physical
/// site 5 absorbs 80 operations where its mirror site 19 absorbs 25,
/// so the reversal moves most of the error-prone work onto a healthy
/// site.
pub const FIG_HETERO_HOT_QUBIT: usize = 5;

/// The link model of a heated edge: 128× the base serialization plus a
/// 30 % drop rate, so oblivious placements pay both queueing delay and
/// retransmission round trips on every crossing. (Ten attempts keep
/// the permanent-drop probability below 1e-5 per message, so heated
/// runs still halt.)
pub fn fig_hetero_hot_link() -> LinkModel {
    LinkModel::serialized(512).with_drop(hisq_sim::DropPolicy {
        loss_ppm: 300_000,
        seed: 7,
        max_attempts: 10,
    })
}

/// One grid of the heterogeneous-fabric comparison: a workload with
/// exactly one heated element (edge or qubit), run oblivious and
/// fabric-aware, scored on one metric.
#[derive(Debug, Clone)]
pub struct FigHeteroGrid {
    /// Display label (names the workload and the heated element).
    pub name: &'static str,
    /// `"edge"` or `"qubit"` — which fabric element is heated.
    pub kind: &'static str,
    /// The scored record metric (`makespan_ns` for hot-edge grids,
    /// `noise_infidelity` for hot-qubit grids).
    pub metric: &'static str,
    /// The oblivious scenario; the aware twin differs only in
    /// `params.fabric_aware`.
    pub base: Scenario,
}

/// The heterogeneous-fabric grids: hot-edge grids scored on makespan
/// (routing traffic off the heated link saves serialization and
/// retransmissions) and hot-qubit grids scored on expected infidelity
/// (moving work off the heated device site saves error budget).
/// `--quick` keeps one grid of each kind.
pub fn fig_hetero_grids(quick: bool) -> Vec<FigHeteroGrid> {
    let (hot_a, hot_b) = FIG_HETERO_HOT_EDGE;
    let hot_edge = |s: &mut Scenario| {
        s.params.link_model = LinkModel::serialized(4);
        s.params.link_overrides = vec![
            LinkOverride {
                from: hot_a,
                to: hot_b,
                link_model: fig_hetero_hot_link(),
            },
            LinkOverride {
                from: hot_b,
                to: hot_a,
                link_model: fig_hetero_hot_link(),
            },
        ];
    };
    let hot_qubit = |s: &mut Scenario, qubit: usize| {
        s.params.noise = fig_noise_model(1e-5);
        s.params.noise_overrides = vec![NoiseOverride {
            qubit,
            noise: fig_noise_model(3e-3),
        }];
    };
    let mut grids = Vec::new();
    let mut base =
        Scenario::new(WorkloadSpec::suite("adder_n13"), Scheme::Bisp).with_seed(FIG_HETERO_SEED);
    hot_edge(&mut base);
    grids.push(FigHeteroGrid {
        name: "adder_n13 / heated link 4-5",
        kind: "edge",
        metric: "makespan_ns",
        base,
    });
    let mut base =
        Scenario::new(WorkloadSpec::suite("adder_n13"), Scheme::Bisp).with_seed(FIG_HETERO_SEED);
    hot_qubit(&mut base, FIG_HETERO_HOT_QUBIT);
    grids.push(FigHeteroGrid {
        name: "adder_n13 / heated qubit 5",
        kind: "qubit",
        metric: "noise_infidelity",
        base,
    });
    if !quick {
        // The span-7 long-range gadget's heated ancilla is a
        // *declined* swap: site 12 hosts more operations than its
        // mirror, but they are cheap 1q corrections — the mirror's
        // measure would cost more on the heated site, so the aware
        // planner keeps the identity and the gain is exactly 1.
        let mut base = Scenario::new(
            WorkloadSpec::LongRangeCnots {
                parallel: 1,
                span: 7,
            },
            Scheme::Bisp,
        )
        .with_seed(FIG_HETERO_SEED);
        hot_qubit(&mut base, 12);
        grids.push(FigHeteroGrid {
            name: "longrange p1 s7 / heated qubit 12",
            kind: "qubit",
            metric: "noise_infidelity",
            base,
        });
        // Compound heat: the same reversal dodges the heated link
        // *and* the heated site at once, scored on the error budget.
        let mut base = Scenario::new(WorkloadSpec::suite("adder_n13"), Scheme::Bisp)
            .with_seed(FIG_HETERO_SEED);
        hot_edge(&mut base);
        hot_qubit(&mut base, FIG_HETERO_HOT_QUBIT);
        grids.push(FigHeteroGrid {
            name: "adder_n13 / heated link + qubit",
            kind: "qubit",
            metric: "noise_infidelity",
            base,
        });
    }
    grids
}

/// Expands the heterogeneous-fabric grids into sweep scenarios: each
/// grid contributes an oblivious/aware twin (aware varies fastest, so
/// records pair up per grid exactly like the other paired sweeps).
pub fn fig_hetero_scenarios(quick: bool) -> Vec<Scenario> {
    fig_hetero_grids(quick)
        .into_iter()
        .flat_map(|grid| {
            [false, true].into_iter().map(move |aware| {
                let mut s = grid.base.clone();
                s.params.fabric_aware = aware;
                s
            })
        })
        .collect()
}

/// One row of the heterogeneous-fabric comparison: a grid's metric
/// under oblivious and fabric-aware compilation.
#[derive(Debug, Clone)]
pub struct FigHeteroPoint {
    /// Grid label.
    pub name: &'static str,
    /// `"edge"` or `"qubit"`.
    pub kind: &'static str,
    /// The scored metric name.
    pub metric: &'static str,
    /// Metric under oblivious (identity) placement.
    pub oblivious: f64,
    /// Metric under fabric-aware placement.
    pub aware: f64,
    /// `oblivious / aware` — above 1 when fabric-awareness wins.
    pub improvement: f64,
}

/// Distills an executed heterogeneous-fabric sweep back into
/// comparison rows.
///
/// # Panics
///
/// Panics if the report does not hold [`fig_hetero_scenarios`]-shaped
/// records (oblivious/aware twins per grid) or a run did not halt.
pub fn fig_hetero_points(grids: &[FigHeteroGrid], report: &SweepReport) -> Vec<FigHeteroPoint> {
    assert_eq!(
        report.records().len(),
        2 * grids.len(),
        "one oblivious/aware record pair per grid"
    );
    grids
        .iter()
        .zip(report.records().chunks(2))
        .map(|(grid, records)| {
            let [oblivious, aware] = records else {
                panic!("records must pair up per grid");
            };
            for record in records {
                assert_eq!(
                    record.value("all_halted"),
                    Some(1.0),
                    "{}: run blocked",
                    record.id
                );
            }
            let fetch = |record: &SweepRecord| match grid.metric {
                "makespan_ns" => record.counter("makespan_ns").expect("standard metrics") as f64,
                metric => record.value(metric).expect("noise metrics"),
            };
            let (oblivious, aware) = (fetch(oblivious), fetch(aware));
            FigHeteroPoint {
                name: grid.name,
                kind: grid.kind,
                metric: grid.metric,
                oblivious,
                aware,
                improvement: oblivious / aware,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig_hetero_quick_aware_beats_oblivious_on_both_grids() {
        let scenarios = fig_hetero_scenarios(true);
        let report = run_sweep(&scenarios, 2).expect("hetero sweep runs");
        let points = fig_hetero_points(&fig_hetero_grids(true), &report);
        let edge = points
            .iter()
            .find(|p| p.kind == "edge")
            .expect("a hot-edge grid");
        let qubit = points
            .iter()
            .find(|p| p.kind == "qubit")
            .expect("a hot-qubit grid");
        assert!(
            edge.improvement > 1.05,
            "routing off the heated link must pay: {edge:?}"
        );
        assert!(
            qubit.improvement > 1.1,
            "moving work off the heated site must pay: {qubit:?}"
        );
    }

    #[test]
    fn fig05_nearby_zero_overhead() {
        let r = fig05_nearby();
        assert_eq!(r.commit0, r.commit1, "cycle-level alignment");
        assert_eq!(r.overhead, 0, "zero-cycle overhead");
    }

    #[test]
    fn fig05_remote_aligns_region() {
        let r = fig05_remote();
        assert!(r.aligned);
    }

    #[test]
    fn fig07_overhead_is_l2_minus_d2() {
        let r = fig07_overhead();
        assert_eq!(r.overhead, r.l2 - r.d2, "{r:?}");
    }

    #[test]
    fn fig06_sync_is_hoisted() {
        let (src0, _) = fig06_listing();
        let sync_pos = src0.find("sync").unwrap();
        let last_cw = src0.rfind("cw.i.i").unwrap();
        assert!(sync_pos < last_cw, "{src0}");
    }

    #[test]
    fn fig13_pulses_stay_aligned_despite_waitr_drift() {
        let r = fig13_waveforms();
        assert_eq!(r.alignment.len(), 3, "three inner-loop iterations");
        assert!(
            r.alignment.windows(2).all(|w| w[0] == w[1]),
            "constant offset = cycle-level sync: {:?}",
            r.alignment
        );
        // The waitr drift: iterations are spaced by more than the 120
        // extra cycles of register growth.
        assert!(r.control_pulses.windows(2).all(|w| w[1] - w[0] >= 120));
    }

    #[test]
    fn fig15_quick_rows_favor_bisp_on_feedback_workloads() {
        let row = fig15_row("logical_t_d3x2", 1);
        assert!(
            row.normalized < 1.0,
            "parallel logical-T must favour BISP: {row:?}"
        );
        // Both schemes report instruction counts for the harness table.
        assert!(row.lockstep_instructions > 0 && row.bisp_instructions > 0);
    }

    #[test]
    fn fig_noise_ratio_compresses_as_gate_error_dominates() {
        let scenarios = fig_noise_scenarios(true);
        let report = run_sweep(&scenarios, 1).expect("noise scenarios are well-formed");
        let points = fig_noise_points(&scenarios, &report);
        assert_eq!(points.len(), 3, "quick axis has three error rates");
        for p in &points {
            // At saturation both schemes sit at ≈1.0 infidelity and
            // scheme-dependent feedback (leaky outcomes steer different
            // correction counts) can nudge the ratio a hair under 1.
            assert!(
                p.reduction_ratio > 0.99,
                "baseline never meaningfully beats BISP: {p:?}"
            );
            assert!(p.infidelity_bisp > 0.0 && p.infidelity_lockstep < 1.0 + 1e-12);
            assert!(p.gates_2q > 0, "the workload commits two-qubit gates");
        }
        // Infidelity grows with the error rate under both schemes…
        assert!(points[0].infidelity_bisp < points[2].infidelity_bisp);
        assert!(points[0].infidelity_lockstep < points[2].infidelity_lockstep);
        // …and the scheduling advantage compresses toward 1 in the
        // gate-error-dominated regime (the figure's headline).
        assert!(
            points[2].reduction_ratio < points[0].reduction_ratio,
            "gate error must erode the scheduling advantage: {points:?}"
        );
        assert!(
            points[0].reduction_ratio > 1.5,
            "the idle-dominated end keeps a clear BISP win: {points:?}"
        );
    }

    #[test]
    fn fig16_ratio_above_one_and_stable() {
        let points = fig16_sweep(&[30.0, 150.0, 300.0]);
        for p in &points {
            assert!(p.reduction_ratio > 1.5, "baseline must be worse: {p:?}");
        }
        // Infidelity falls with T1 under both schemes.
        assert!(points[0].infidelity_bisp > points[2].infidelity_bisp);
        assert!(points[0].infidelity_lockstep > points[2].infidelity_lockstep);
    }
}
