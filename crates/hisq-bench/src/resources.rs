//! The Table 1 FPGA resource model.
//!
//! The paper's published numbers decompose **exactly** into a per-board
//! composition `base core + N × event queue + SyncU`:
//!
//! - event queue (38 bit × 1024): 86 LUTs, 1.5 BRAM blocks, 160 FFs
//!   (given directly in Table 1);
//! - solving the two board rows for the remaining constants yields the
//!   same base for both boards — LUTs: `4155 − 28·86 − 13 = 2435 − 8·86
//!   − 13 = 1734`, FFs: `6392 − 28·160 = 3192 − 8·160 = 1912`, BRAM:
//!   `75 − 28·1.5 = 45 − 8·1.5 = 33` — which validates the additive
//!   model and pins every coefficient.
//!
//! The model regenerates Table 1 and extrapolates to other channel
//! counts (e.g. the multi-core configurations of §7.1).

/// FPGA resource usage (LUTs, block RAMs of 32 Kb, flip-flops).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Resources {
    /// Look-up tables.
    pub luts: u64,
    /// 32 Kb block RAMs (halves allowed).
    pub bram_blocks: f64,
    /// Flip-flops.
    pub ffs: u64,
}

impl Resources {
    /// Component-wise sum.
    pub fn plus(self, other: Resources) -> Resources {
        Resources {
            luts: self.luts + other.luts,
            bram_blocks: self.bram_blocks + other.bram_blocks,
            ffs: self.ffs + other.ffs,
        }
    }

    /// Scales by an integer count.
    pub fn times(self, n: u64) -> Resources {
        Resources {
            luts: self.luts * n,
            bram_blocks: self.bram_blocks * n as f64,
            ffs: self.ffs * n,
        }
    }
}

/// One event queue (38 bit × 1024 entries), per Table 1.
pub const EVENT_QUEUE: Resources = Resources {
    luts: 86,
    bram_blocks: 1.5,
    ffs: 160,
};

/// The synchronization unit: "SyncU consumes only 13 LUTs" (§4.1).
pub const SYNC_UNIT: Resources = Resources {
    luts: 13,
    bram_blocks: 0.0,
    ffs: 0,
};

/// The HISQ base core (classical pipeline + TCU control + MsgU),
/// derived from the Table 1 rows (see the module docs).
pub const BASE_CORE: Resources = Resources {
    luts: 1734,
    bram_blocks: 33.0,
    ffs: 1912,
};

/// Resources of a board with `channels` codeword queues (one per
/// channel, §6.1: "the only difference between them being the number of
/// codeword queues, which matches the amount of channels").
pub fn board_resources(channels: u64) -> Resources {
    BASE_CORE.plus(SYNC_UNIT).plus(EVENT_QUEUE.times(channels))
}

/// Channel count of the control board: 8 XY + 20 Z.
pub const CONTROL_BOARD_CHANNELS: u64 = 28;

/// Channel count of the readout board: 4 input + 4 output pairs.
pub const READOUT_BOARD_CHANNELS: u64 = 8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_table1_control_board() {
        let r = board_resources(CONTROL_BOARD_CHANNELS);
        assert_eq!(r.luts, 4155);
        assert!((r.bram_blocks - 75.0).abs() < 1e-9);
        assert_eq!(r.ffs, 6392);
    }

    #[test]
    fn reproduces_table1_readout_board() {
        let r = board_resources(READOUT_BOARD_CHANNELS);
        assert_eq!(r.luts, 2435);
        assert!((r.bram_blocks - 45.0).abs() < 1e-9);
        assert_eq!(r.ffs, 3192);
    }

    #[test]
    fn block_ram_capacity_matches_paper_totals() {
        // §6.1: control board 2.46 Mb, readout board 1.47 Mb.
        let control_mb = board_resources(28).bram_blocks * 32.0 / 1024.0;
        let readout_mb = board_resources(8).bram_blocks * 32.0 / 1024.0;
        assert!((control_mb - 2.34).abs() < 0.15, "{control_mb} Mb");
        assert!((readout_mb - 1.40).abs() < 0.10, "{readout_mb} Mb");
    }

    #[test]
    fn scaling_is_linear_in_channels() {
        let r56 = board_resources(56);
        let r28 = board_resources(28);
        assert_eq!(r56.luts - r28.luts, 28 * EVENT_QUEUE.luts);
    }
}
