//! The sweep-throughput benchmark: grid builder and measurement core
//! for `fig_sweep_throughput`, the harness that times full-sweep
//! wall-clock (scenarios/second) with the shared [`CompileCache`] on
//! and off.
//!
//! The grid is shaped like the repo's real experiment sweeps
//! (`fig_noise`, the golden-corpus scenario files): a few compiled
//! programs fanned out over many run-stage points. Workload × scheme
//! are the compile axes; seed × gate-error-rate are run-stage axes
//! that never split a [`CompileKey`](distributed_hisq::runner::CompileKey),
//! so a cached sweep compiles each
//! (workload, scheme) pair once and replays the artifact across the
//! whole seed×noise plane. The uncached reference compiles every grid
//! point from scratch — exactly what `run_sweep` did before the cache
//! existed — which is what the headline speedup is measured against.

use std::collections::HashSet;
use std::time::Instant;

use distributed_hisq::compiler::Scheme;
use distributed_hisq::runner::{
    run_sweep_cached, run_sweep_uncached, CompileCache, Scenario, SystemParams,
};
use distributed_hisq::workloads::WorkloadSpec;
use hisq_sim::SweepGrid;

use crate::figures::fig_noise_model;

/// Worker-thread counts the harness measures by default.
pub const THREAD_AXIS: [usize; 3] = [1, 4, 8];

/// Per-gate error rates of the run-stage noise axis (a
/// [`fig_noise_model`] family; noise is folded in after compilation,
/// so the axis shares compiled artifacts).
const NOISE_AXIS: [f64; 3] = [1e-5, 1e-4, 1e-3];

/// Expands the throughput grid: quick-suite workloads × both schemes
/// (the compile axes) × seeds × gate-error rates (the run-stage axes).
///
/// Full shape: 2 workloads × 2 schemes × 6 seeds × 3 error rates =
/// 72 scenarios over 4 compile keys. `--quick` trims every axis:
/// 1 × 2 × 2 × 1 = 4 scenarios over 2 keys.
pub fn throughput_scenarios(quick: bool) -> Vec<Scenario> {
    let suites: &[&str] = if quick {
        &["w_state_n12"]
    } else {
        &["w_state_n12", "qft_n10"]
    };
    let seeds: &[u64] = if quick { &[1, 2] } else { &[1, 2, 3, 4, 5, 6] };
    let noise: &[f64] = if quick { &[1e-4] } else { &NOISE_AXIS };
    let mut scenarios = Vec::new();
    for &suite in suites {
        let base = Scenario::new(WorkloadSpec::suite(suite), Scheme::Bisp)
            .with_params(SystemParams::default());
        scenarios.extend(
            SweepGrid::new(base)
                .axis([Scheme::Bisp, Scheme::Lockstep], |s, &scheme| {
                    s.scheme = scheme
                })
                .axis(seeds.iter().copied(), |s, &seed| s.seed = seed)
                .axis(noise.iter().copied(), |s, &p| {
                    s.params.noise = fig_noise_model(p)
                })
                .into_points(),
        );
    }
    scenarios
}

/// Number of distinct [`CompileKey`]s in a grid — the compiles a
/// cached sweep pays, versus one per scenario uncached.
///
/// [`CompileKey`]: distributed_hisq::runner::CompileKey
pub fn compile_keys(scenarios: &[Scenario]) -> usize {
    scenarios
        .iter()
        .map(Scenario::compile_key)
        .collect::<HashSet<_>>()
        .len()
}

/// One measured thread-count row of the throughput benchmark.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputRow {
    /// Sweep worker threads.
    pub threads: usize,
    /// Grid points per sweep.
    pub scenarios: usize,
    /// Compiles the cached sweep paid (cache misses; the uncached
    /// reference pays one per scenario).
    pub compiles: u64,
    /// Compile-cache hit rate of the cached sweep (hits / lookups).
    pub hit_rate: f64,
    /// Best cached full-sweep wall time, seconds.
    pub cached_s: f64,
    /// Best uncached full-sweep wall time, seconds.
    pub uncached_s: f64,
    /// Cached throughput: scenarios / [`cached_s`].
    ///
    /// [`cached_s`]: ThroughputRow::cached_s
    pub scenarios_per_sec: f64,
    /// Uncached throughput: scenarios / [`uncached_s`].
    ///
    /// [`uncached_s`]: ThroughputRow::uncached_s
    pub uncached_scenarios_per_sec: f64,
    /// Cached-over-uncached wall-clock speedup.
    pub speedup: f64,
}

/// Times the grid cached and uncached at one thread count.
///
/// The statistic is the **minimum** wall time over `iters` sweeps of
/// each flavor (the sweeps are deterministic and identical, so the
/// minimum estimates uncontended cost; the mean smears in machine
/// noise the regression gate would trip on). Every cached iteration
/// starts from a fresh [`CompileCache`] so it pays the full
/// compile-key set, never a warm cache from the previous iteration.
///
/// # Panics
///
/// Panics if a sweep fails or the cached report drifts from the
/// uncached one (the differential suite's invariant, spot-checked
/// here so the benchmark can never time two different computations).
pub fn measure_throughput(scenarios: &[Scenario], threads: usize, iters: u32) -> ThroughputRow {
    assert!(iters > 0, "at least one iteration");
    let mut cached_best = f64::INFINITY;
    let mut uncached_best = f64::INFINITY;
    let mut compiles = 0;
    let mut hit_rate = 0.0;
    let mut reference = None;
    for _ in 0..iters {
        let start = Instant::now();
        let uncached = run_sweep_uncached(scenarios, threads).expect("uncached sweep runs");
        uncached_best = uncached_best.min(start.elapsed().as_secs_f64());

        let cache = CompileCache::new();
        let start = Instant::now();
        let cached = run_sweep_cached(scenarios, threads, &cache).expect("cached sweep runs");
        cached_best = cached_best.min(start.elapsed().as_secs_f64());

        compiles = cache.misses();
        let lookups = cache.hits() + cache.misses();
        hit_rate = cache.hits() as f64 / lookups.max(1) as f64;

        let cached = cached.to_json();
        match &reference {
            None => {
                assert_eq!(
                    cached,
                    uncached.to_json(),
                    "cached sweep drifted from the uncached reference"
                );
                reference = Some(cached);
            }
            Some(reference) => assert_eq!(&cached, reference, "iterations must be identical"),
        }
    }
    ThroughputRow {
        threads,
        scenarios: scenarios.len(),
        compiles,
        hit_rate,
        cached_s: cached_best,
        uncached_s: uncached_best,
        scenarios_per_sec: scenarios.len() as f64 / cached_best,
        uncached_scenarios_per_sec: scenarios.len() as f64 / uncached_best,
        speedup: uncached_best / cached_best,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_grid_amortizes_compiles_over_run_stage_axes() {
        let full = throughput_scenarios(false);
        assert_eq!(full.len(), 72);
        assert_eq!(compile_keys(&full), 4, "workload x scheme only");
        let quick = throughput_scenarios(true);
        assert_eq!(quick.len(), 4);
        assert_eq!(compile_keys(&quick), 2);
    }

    #[test]
    fn a_measured_row_reports_the_cache_economics() {
        let scenarios = throughput_scenarios(true);
        let row = measure_throughput(&scenarios, 2, 1);
        assert_eq!(row.scenarios, 4);
        assert_eq!(row.compiles, 2, "one compile per (workload, scheme)");
        assert!((row.hit_rate - 0.5).abs() < 1e-9, "2 of 4 lookups hit");
        assert!(row.scenarios_per_sec > 0.0 && row.speedup > 0.0);
    }
}
