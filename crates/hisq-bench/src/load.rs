//! The `fig_load` saturation sweep (beyond the paper's evaluation):
//! the multi-tenant job engine serving Poisson traffic of compiled
//! `w_state_n12` jobs, swept over offered load × partition count to
//! expose the saturation knee.
//!
//! Every point offers the machine a target utilization ρ (offered
//! load): two tenant streams — an interactive class (priority 0, a
//! third of the traffic) and a batch class (priority 1, the rest) —
//! submit jobs at a combined rate of `ρ · partitions / service time`.
//! Each job is a real compiled run of the workload (one compile per
//! point via the sweep's `CompileCache`, per-job seeds), so the
//! service time is the simulated makespan, not a synthetic stand-in.
//! Below the knee (ρ « 1) jobs barely queue and p99 latency tracks
//! the service time; approaching capacity (ρ → 1) the admission queue
//! fills and p99 diverges; past it (ρ > 1) throughput plateaus at the
//! partition capacity and the admission bound starts rejecting.
//!
//! The report carries only simulation-deterministic metrics, so its
//! JSON is byte-identical across thread counts and is committed as
//! `BENCH_fig_load.json`, gated by `ci/check_baselines.sh` like every
//! other figure baseline.

use distributed_hisq::compiler::Scheme;
use distributed_hisq::load::{ArrivalStream, LoadSpec};
use distributed_hisq::runner::Scenario;
use hisq_sim::{SweepRecord, SweepReport};
use hisq_workloads::WorkloadSpec;

/// The job type every load point schedules instances of.
pub const FIG_LOAD_WORKLOAD: &str = "w_state_n12";

/// Calibrated single-run makespan of [`FIG_LOAD_WORKLOAD`] under BISP
/// (ns) — the service-time estimate the offered-load → arrival-rate
/// conversion uses. The `service_calibration_holds` test keeps it
/// within 20% of the engine's actual makespan, so ρ stays an honest
/// utilization estimate.
pub const FIG_LOAD_SERVICE_NS: u64 = 25_200;

/// Admission-queue bound of every load point: deep enough that the
/// knee shows as latency before it shows as loss, shallow enough that
/// past-capacity points visibly reject.
pub const FIG_LOAD_QUEUE_CAPACITY: usize = 16;

/// Base seed of the sweep (per-job seeds are `seed + job index`).
pub const FIG_LOAD_SEED: u64 = 11;

/// The offered-load axis (target utilization ρ): below the knee, at
/// it, and past it. `--quick` keeps the four-point core; the full
/// sweep refines the knee region.
#[must_use]
pub fn fig_load_rhos(quick: bool) -> Vec<f64> {
    if quick {
        vec![0.3, 0.6, 0.9, 1.2]
    } else {
        vec![0.2, 0.4, 0.6, 0.8, 0.9, 1.0, 1.1, 1.2, 1.5]
    }
}

/// The partition-count axis.
#[must_use]
pub fn fig_load_partitions(quick: bool) -> Vec<u32> {
    if quick {
        vec![2, 4]
    } else {
        vec![1, 2, 4, 8]
    }
}

/// Jobs per sweep point (across both tenant streams).
#[must_use]
pub fn fig_load_jobs(quick: bool) -> u64 {
    if quick {
        120
    } else {
        480
    }
}

/// The load block of one sweep point: interactive (priority 0) and
/// batch (priority 1) Poisson streams splitting a combined arrival
/// rate of `rho · partitions / service` one-third / two-thirds.
#[must_use]
pub fn fig_load_spec(rho: f64, partitions: u32, jobs: u64) -> LoadSpec {
    let total_rate = rho * f64::from(partitions) * 1e6 / FIG_LOAD_SERVICE_NS as f64;
    // Round the per-stream rates to 3 decimals so the scenario ids
    // render compactly; the rounding error is ≪ the Poisson noise.
    let round = |rate: f64| (rate * 1000.0).round() / 1000.0;
    let interactive_jobs = jobs / 3;
    let batch_jobs = jobs - interactive_jobs;
    LoadSpec::new(
        vec![
            ArrivalStream::poisson(round(total_rate / 3.0), interactive_jobs),
            ArrivalStream::poisson(round(total_rate * 2.0 / 3.0), batch_jobs).with_priority(1),
        ],
        partitions,
    )
    .with_queue_capacity(FIG_LOAD_QUEUE_CAPACITY)
}

/// The sweep grid: partitions × offered load, in axis order (rho
/// varies fastest — [`fig_load_points`] relies on this order).
#[must_use]
pub fn fig_load_scenarios(quick: bool) -> Vec<Scenario> {
    let jobs = fig_load_jobs(quick);
    fig_load_partitions(quick)
        .into_iter()
        .flat_map(|partitions| {
            fig_load_rhos(quick).into_iter().map(move |rho| {
                Scenario::new(WorkloadSpec::suite(FIG_LOAD_WORKLOAD), Scheme::Bisp)
                    .with_seed(FIG_LOAD_SEED)
                    .with_load(fig_load_spec(rho, partitions, jobs))
            })
        })
        .collect()
}

/// One row of the human-readable figure table.
#[derive(Debug, Clone)]
pub struct FigLoadPoint {
    /// Partition count of the point.
    pub partitions: u32,
    /// Offered load (target utilization ρ).
    pub rho: f64,
    /// Completed jobs per second of simulated time.
    pub throughput_jobs_per_s: f64,
    /// Measured partition utilization.
    pub utilization: f64,
    /// Median job latency (ns).
    pub latency_p50_ns: u64,
    /// Tail job latency (ns).
    pub latency_p99_ns: u64,
    /// Jobs dropped by the admission bound.
    pub rejected: u64,
}

/// Pairs the report's records (in [`fig_load_scenarios`] grid order)
/// with their grid coordinates into figure rows.
///
/// # Panics
///
/// Panics if the report does not match the grid (missing records or
/// metrics) — a committed baseline must never hide a failed point.
#[must_use]
pub fn fig_load_points(quick: bool, report: &SweepReport) -> Vec<FigLoadPoint> {
    let grid: Vec<(u32, f64)> = fig_load_partitions(quick)
        .into_iter()
        .flat_map(|p| fig_load_rhos(quick).into_iter().map(move |rho| (p, rho)))
        .collect();
    assert_eq!(report.records().len(), grid.len(), "report matches grid");
    grid.iter()
        .zip(report.records())
        .map(|(&(partitions, rho), record)| {
            let counter = |r: &SweepRecord, key: &str| {
                r.counter(key)
                    .unwrap_or_else(|| panic!("{}: missing metric {key}", r.id))
            };
            let value = |r: &SweepRecord, key: &str| {
                r.value(key)
                    .unwrap_or_else(|| panic!("{}: missing metric {key}", r.id))
            };
            FigLoadPoint {
                partitions,
                rho,
                throughput_jobs_per_s: value(record, "throughput_jobs_per_s"),
                utilization: value(record, "utilization"),
                latency_p50_ns: counter(record, "latency_p50_ns"),
                latency_p99_ns: counter(record, "latency_p99_ns"),
                rejected: counter(record, "jobs_rejected"),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use distributed_hisq::runner::{run_scenario, run_sweep};

    /// The calibration constant tracks the engine: a single run of the
    /// fig workload lands within 20% of [`FIG_LOAD_SERVICE_NS`], so
    /// the ρ axis stays an honest utilization estimate.
    #[test]
    fn service_calibration_holds() {
        let scenario = Scenario::new(WorkloadSpec::suite(FIG_LOAD_WORKLOAD), Scheme::Bisp)
            .with_seed(FIG_LOAD_SEED);
        let makespan = run_scenario(&scenario)
            .expect("fig workload runs")
            .counter("makespan_ns")
            .expect("standard metric");
        let ratio = makespan as f64 / FIG_LOAD_SERVICE_NS as f64;
        assert!(
            (0.8..=1.2).contains(&ratio),
            "calibrated service {FIG_LOAD_SERVICE_NS} ns vs measured {makespan} ns \
             (ratio {ratio:.3}): recalibrate FIG_LOAD_SERVICE_NS"
        );
    }

    #[test]
    fn load_scenario_ids_are_unique() {
        for quick in [true, false] {
            let scenarios = fig_load_scenarios(quick);
            let mut ids: Vec<String> = scenarios.iter().map(|s| s.id()).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), scenarios.len(), "load axes must keep ids unique");
        }
    }

    /// The figure's headline claim on the quick grid (the committed
    /// baseline): approaching capacity, tail latency diverges while
    /// throughput plateaus — and past it, the admission bound rejects.
    #[test]
    fn quick_sweep_shows_the_saturation_knee() {
        let quick = true;
        let scenarios = fig_load_scenarios(quick);
        let report = run_sweep(&scenarios, 2).expect("load grid runs");
        let points = fig_load_points(quick, &report);
        for partitions in fig_load_partitions(quick) {
            let at = |rho: f64| {
                points
                    .iter()
                    .find(|p| p.partitions == partitions && (p.rho - rho).abs() < 1e-9)
                    .expect("grid covers every (partitions, rho) point")
            };
            let (low, past) = (at(0.3), at(1.2));
            assert!(
                past.latency_p99_ns > 2 * low.latency_p99_ns,
                "{partitions} partitions: p99 must diverge toward saturation \
                 ({} ns at rho 0.3 vs {} ns at rho 1.2)",
                low.latency_p99_ns,
                past.latency_p99_ns
            );
            // Past capacity the machine is pinned: throughput sits at
            // the partition capacity (not the offered 1.2×), which is
            // the plateau.
            let capacity = f64::from(partitions) * 1e9 / FIG_LOAD_SERVICE_NS as f64;
            assert!(
                past.throughput_jobs_per_s < 1.05 * capacity,
                "{partitions} partitions: past-capacity throughput \
                 {:.0} jobs/s must plateau near capacity {capacity:.0}",
                past.throughput_jobs_per_s
            );
            assert!(
                past.utilization > 0.8,
                "{partitions} partitions: past capacity the machine is busy \
                 (utilization {:.3})",
                past.utilization
            );
            assert_eq!(
                low.rejected, 0,
                "{partitions} partitions: below the knee nothing is rejected"
            );
            assert!(
                past.rejected > 0,
                "{partitions} partitions: past capacity the admission bound rejects"
            );
        }
    }
}
