//! Criterion benches regenerating the paper's figures at quick scale —
//! one bench group per evaluation artifact, so `cargo bench` re-derives
//! every result end to end.

use criterion::{criterion_group, criterion_main, Criterion};

use hisq_bench::figures::{
    fig05_nearby, fig05_remote, fig07_overhead, fig13_waveforms, fig15_row, fig16_sweep,
};
use hisq_bench::resources::{board_resources, CONTROL_BOARD_CHANNELS, READOUT_BOARD_CHANNELS};
use hisq_workloads::{fig15_suite, SuiteScale};

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1/resource_model", |b| {
        b.iter(|| {
            let control = board_resources(std::hint::black_box(CONTROL_BOARD_CHANNELS));
            let readout = board_resources(std::hint::black_box(READOUT_BOARD_CHANNELS));
            assert_eq!(control.luts, 4155);
            assert_eq!(readout.luts, 2435);
            (control, readout)
        })
    });
}

fn bench_fig05_07(c: &mut Criterion) {
    c.bench_function("fig05/nearby_sync", |b| {
        b.iter(|| {
            let r = fig05_nearby();
            assert_eq!(r.overhead, 0);
            r
        })
    });
    c.bench_function("fig05/remote_sync", |b| {
        b.iter(|| {
            let r = fig05_remote();
            assert!(r.aligned);
            r
        })
    });
    c.bench_function("fig07/overhead", |b| {
        b.iter(|| {
            let r = fig07_overhead();
            assert_eq!(r.overhead, r.l2 - r.d2);
            r
        })
    });
}

fn bench_fig13(c: &mut Criterion) {
    c.bench_function("fig13/electronics_sync", |b| {
        b.iter(|| {
            let r = fig13_waveforms();
            assert!(r.alignment.windows(2).all(|w| w[0] == w[1]));
            r.control_pulses
        })
    });
}

fn bench_fig15(c: &mut Criterion) {
    let suite = fig15_suite(SuiteScale::Quick);
    let mut group = c.benchmark_group("fig15");
    group.sample_size(10);
    for bench in &suite {
        group.bench_function(&bench.name, |b| b.iter(|| fig15_row(&bench.name, 7)));
    }
    group.finish();
}

fn bench_fig16(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig16");
    group.sample_size(10);
    group.bench_function("infidelity_sweep", |b| {
        b.iter(|| {
            let points = fig16_sweep(&[30.0, 300.0]);
            assert!(points[0].reduction_ratio > 1.0);
            points
        })
    });
    group.finish();
}

criterion_group!(
    figures,
    bench_table1,
    bench_fig05_07,
    bench_fig13,
    bench_fig15,
    bench_fig16
);
criterion_main!(figures);
