//! Microarchitecture-level throughput benches: the building blocks the
//! figure-level results rest on.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use hisq_core::{Controller, NodeConfig};
use hisq_isa::{Assembler, Program};
use hisq_quantum::{Stabilizer, StateVector};

fn figure12_source() -> &'static str {
    "
        addi $2,$0,120
        addi $1,$0,0
    loop:
        waiti 1
        cw.i.i 21,2
        addi $1,$1,40
        cw.i.i 20,2
        waitr $1
        waiti 8
        cw.i.i 7,1
        waiti 50
        bne $1,$2,loop
        stop
    "
}

fn bench_assembler(c: &mut Criterion) {
    let source = figure12_source();
    let mut group = c.benchmark_group("isa");
    group.throughput(Throughput::Elements(12));
    group.bench_function("assemble_figure12", |b| {
        b.iter(|| {
            Assembler::new()
                .assemble(std::hint::black_box(source))
                .unwrap()
        })
    });
    let program = Assembler::new().assemble(source).unwrap();
    let words = program.encode().unwrap();
    group.bench_function("decode_figure12", |b| {
        b.iter(|| Program::decode(std::hint::black_box(&words)).unwrap())
    });
    group.finish();
}

fn bench_controller(c: &mut Criterion) {
    // A tight arithmetic loop: 3 000 retired instructions per run.
    let program = Assembler::new()
        .assemble(
            "
            li t0, 1000
        loop:
            addi t0, t0, -1
            addi t1, t1, 3
            bnez t0, loop
            stop
            ",
        )
        .unwrap();
    let mut group = c.benchmark_group("controller");
    group.throughput(Throughput::Elements(3002));
    group.bench_function("classical_pipeline", |b| {
        b.iter(|| {
            let mut ctrl = Controller::new(NodeConfig::new(0), program.insts().to_vec());
            let mut outbox = Vec::new();
            assert!(ctrl.step(&mut outbox).is_halted());
            ctrl.stats().executed
        })
    });
    group.finish();
}

fn bench_quantum_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantum");
    group.bench_function("stabilizer_100q_round", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let mut tab = Stabilizer::new(100);
            for q in 0..99 {
                tab.h(q);
                tab.cx(q, q + 1);
            }
            (0..100)
                .map(|q| tab.measure(q, &mut rng))
                .filter(|&m| m)
                .count()
        })
    });
    group.bench_function("statevector_16q_layer", |b| {
        b.iter(|| {
            let mut sv = StateVector::new(16);
            for q in 0..16 {
                sv.apply_gate(hisq_quantum::Gate::H, &[q]);
            }
            for q in 0..15 {
                sv.apply_gate(hisq_quantum::Gate::Cx, &[q, q + 1]);
            }
            sv.prob_one(15)
        })
    });
    group.finish();
}

criterion_group!(
    microarch,
    bench_assembler,
    bench_controller,
    bench_quantum_backends
);
criterion_main!(microarch);
