//! The event-engine benchmark: times the simulator's hot loop on
//! representative BISP and lock-step systems at 8/32/128 controllers
//! and writes `BENCH_event_engine.json` — the repo's perf trajectory
//! for the discrete-event core.
//!
//! The workloads are synthesized directly as HISQ programs (no
//! compiler in the loop) so the measurement isolates the event engine:
//! queue push/pop, node dispatch, link-latency lookup, commit
//! harvesting, and TELF attribution. Each BISP round exercises a
//! nearby sync pair, a classical send/recv exchange, and a region sync
//! through the router tree; each lock-step round broadcasts one value
//! through the hub to every subscriber.
//!
//! Run with: `cargo bench -p hisq-bench --bench event_engine`

use std::fmt::Write as _;
use std::time::Instant;

use hisq_core::NodeConfig;
use hisq_isa::Assembler;
use hisq_net::TopologyBuilder;
use hisq_sim::{System, SystemSpec};

/// Controller counts of the scaling axis.
const SIZES: [usize; 3] = [8, 32, 128];
/// Synchronization/broadcast rounds per run.
const ROUNDS: u32 = 40;

/// Baseline timings measured at commit c7a005d (the pre-refactor
/// `BTreeMap`-keyed event core) with this exact harness: mean of two
/// runs on the same machine the arena numbers were first taken on.
/// Units: nanoseconds per processed event. The gap widens with system
/// size — at 128 controllers the address-map walks dominated the old
/// hot loop.
const BASELINE: &[(&str, usize, f64)] = &[
    ("bisp", 8, 147.2),
    ("bisp", 32, 159.0),
    ("bisp", 128, 336.5),
    ("lockstep", 8, 138.4),
    ("lockstep", 32, 156.0),
    ("lockstep", 128, 218.6),
];

fn asm(src: &str) -> Vec<hisq_isa::Inst> {
    Assembler::new()
        .assemble(src)
        .expect("bench program assembles")
        .insts()
        .to_vec()
}

/// A BISP system of `n` controllers on a linear mesh under an arity-4
/// router tree: every round pairs nearby syncs, exchanges a classical
/// value, and region-syncs through the root.
fn build_bisp(n: usize) -> System {
    let topo = TopologyBuilder::linear(n)
        .neighbor_latency(5)
        .router_latency(10)
        .router_arity(4)
        .build();
    let root = topo.root_router().unwrap();
    let mut programs = std::collections::BTreeMap::new();
    for i in 0..n as u16 {
        let partner = i ^ 1;
        let exchange = if i % 2 == 0 {
            format!("send {partner}, t1\nrecv t2, {partner}")
        } else {
            format!("recv t2, {partner}\nsend {partner}, t2")
        };
        let src = format!(
            "
            li t1, {ROUNDS}
        loop:
            waiti 10
            sync {partner}
            waiti 6
            cw.i.i 0, 1
            {exchange}
            li t0, 40
            sync {root}, t0
            waiti 40
            cw.i.i 1, 1
            addi t1, t1, -1
            bnez t1, loop
            stop
            "
        );
        programs.insert(i, asm(&src));
    }
    SystemSpec::from_topology(&topo, programs)
        .build()
        .expect("bench system builds")
}

/// A lock-step system of `n` controllers on a star: controller 0
/// publishes a value to the hub every round; every controller consumes
/// the broadcast.
fn build_lockstep(n: usize) -> System {
    let hub = n as u16;
    let mut spec = SystemSpec::new();
    spec.hub(
        hub,
        hisq_sim::Hub {
            subscribers: (0..n as u16).collect(),
            down_latency: 25,
        },
    );
    for i in 0..n as u16 {
        let publish = if i == 0 {
            format!("send {hub}, t1\n")
        } else {
            String::new()
        };
        let src = format!(
            "
            li t1, {ROUNDS}
        loop:
            {publish}recv t2, {hub}
            waiti 10
            cw.i.i 0, 1
            addi t1, t1, -1
            bnez t1, loop
            stop
            "
        );
        spec.controller(NodeConfig::new(i).with_pipeline_headroom(32), asm(&src));
    }
    spec.build().expect("bench system builds")
}

struct Measurement {
    scheme: &'static str,
    controllers: usize,
    events: u64,
    ns_per_event: f64,
    ns_per_run: f64,
}

/// Times `run()` (build excluded) over enough iterations to amortize
/// timer noise; returns per-event and per-run wall time.
fn measure(scheme: &'static str, n: usize, build: impl Fn(usize) -> System) -> Measurement {
    // Warm up allocator and caches.
    let mut warm = build(n);
    let report = warm.run().expect("bench run completes");
    assert!(report.all_halted, "{scheme}/{n}: bench workload deadlocked");
    let events = report.events_processed;

    let iters = (2_000_000 / events.max(1)).clamp(3, 200) as u32;
    let mut elapsed_ns = 0u128;
    for _ in 0..iters {
        let mut system = build(n);
        let start = Instant::now();
        let report = system.run().expect("bench run completes");
        elapsed_ns += start.elapsed().as_nanos();
        assert_eq!(report.events_processed, events, "runs must be identical");
    }
    let ns_per_run = elapsed_ns as f64 / f64::from(iters);
    Measurement {
        scheme,
        controllers: n,
        events,
        ns_per_event: ns_per_run / events as f64,
        ns_per_run,
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "null".into()
    }
}

fn main() {
    let mut results = Vec::new();
    for &n in &SIZES {
        results.push(measure("bisp", n, build_bisp));
        results.push(measure("lockstep", n, build_lockstep));
    }

    println!("event engine: ns per processed event (lower is better)");
    println!("{:-<72}", "");
    println!(
        "{:<10} {:>12} {:>12} {:>14} {:>14}",
        "scheme", "controllers", "events/run", "ns/event", "baseline"
    );
    println!("{:-<72}", "");
    let mut json = String::from("{\"benchmark\":\"event_engine\",\"rounds\":");
    let _ = write!(json, "{ROUNDS},\"results\":[");
    for (i, m) in results.iter().enumerate() {
        let baseline = BASELINE
            .iter()
            .find(|(s, n, _)| *s == m.scheme && *n == m.controllers)
            .map(|&(_, _, ns)| ns)
            .unwrap_or(f64::NAN);
        println!(
            "{:<10} {:>12} {:>12} {:>14.1} {:>14.1}",
            m.scheme, m.controllers, m.events, m.ns_per_event, baseline
        );
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"scheme\":\"{}\",\"controllers\":{},\"events_per_run\":{},\
             \"ns_per_event\":{},\"ns_per_run\":{},\"baseline_ns_per_event\":{}}}",
            m.scheme,
            m.controllers,
            m.events,
            json_f64(m.ns_per_event),
            json_f64(m.ns_per_run),
            json_f64(baseline)
        );
    }
    json.push_str("]}");
    // Anchor the artifact at the workspace root regardless of the
    // bench's working directory.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_event_engine.json");
    std::fs::write(path, &json).expect("write BENCH_event_engine.json");
    println!("{:-<72}", "");
    println!("wrote BENCH_event_engine.json (workspace root)");
}
