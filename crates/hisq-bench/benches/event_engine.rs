//! The event-engine benchmark: times the simulator's hot loop on
//! representative BISP and lock-step systems at 8/32/128 controllers
//! and writes `BENCH_event_engine.json` — the repo's perf trajectory
//! for the discrete-event core.
//!
//! The systems are the shared [`hisq_bench::scale`] builders (the same
//! workloads `fig_scale` sweeps at 256–4096 controllers), synthesized
//! directly as HISQ programs so the measurement isolates the event
//! engine: queue push/pop, node dispatch, link-latency lookup, commit
//! harvesting, and TELF attribution.
//!
//! Run with: `cargo bench -p hisq-bench --bench event_engine`
//!
//! Pass `--gate` (after `--`) to run the CI regression gate instead:
//! the committed `BENCH_event_engine.json` is read *before* measuring,
//! each (scheme, controllers) row is compared against its committed
//! ns/event, and the process exits 1 if any row regressed by more than
//! 15%. Gate mode never overwrites the committed baseline.

use std::fmt::Write as _;
use std::time::Instant;

use hisq_bench::scale::{build_bisp, build_lockstep};
use hisq_json::{Json, ObjReader};
use hisq_sim::System;

/// Controller counts of the scaling axis.
const SIZES: [usize; 3] = [8, 32, 128];
/// Synchronization/broadcast rounds per run.
const ROUNDS: u32 = 40;
/// `--gate` fails when a row's ns/event exceeds the committed value by
/// more than this factor.
const GATE_TOLERANCE: f64 = 1.15;

/// Baseline timings measured at commit c7a005d (the pre-refactor
/// `BTreeMap`-keyed event core) with this exact harness: mean of two
/// runs on the same machine the arena numbers were first taken on.
/// Units: nanoseconds per processed event. The gap widens with system
/// size — at 128 controllers the address-map walks dominated the old
/// hot loop.
const BASELINE: &[(&str, usize, f64)] = &[
    ("bisp", 8, 147.2),
    ("bisp", 32, 159.0),
    ("bisp", 128, 336.5),
    ("lockstep", 8, 138.4),
    ("lockstep", 32, 156.0),
    ("lockstep", 128, 218.6),
];

/// Workspace-root path of the committed benchmark report.
const REPORT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_event_engine.json");

struct Measurement {
    scheme: &'static str,
    controllers: usize,
    events: u64,
    ns_per_event: f64,
    ns_per_run: f64,
}

/// Times `run()` (build excluded) over enough iterations to amortize
/// timer noise; returns per-event and per-run wall time.
///
/// The statistic is the **minimum** iteration time, not the mean: the
/// runs are deterministic and identical, so the minimum estimates the
/// code's uncontended cost while the mean smears in whatever else the
/// machine was doing during the measurement window. On a shared box
/// the mean scatters well past the gate's 15% tolerance; the minimum
/// is stable run-to-run, which is what a regression gate needs.
fn measure(scheme: &'static str, n: usize, build: impl Fn(usize, u32) -> System) -> Measurement {
    // Warm up allocator and caches.
    let mut warm = build(n, ROUNDS);
    let report = warm.run().expect("bench run completes");
    assert!(report.all_halted, "{scheme}/{n}: bench workload deadlocked");
    let events = report.events_processed;

    let iters = (2_000_000 / events.max(1)).clamp(3, 200) as u32;
    let mut best_ns = u128::MAX;
    for _ in 0..iters {
        let mut system = build(n, ROUNDS);
        let start = Instant::now();
        let report = system.run().expect("bench run completes");
        best_ns = best_ns.min(start.elapsed().as_nanos());
        assert_eq!(report.events_processed, events, "runs must be identical");
    }
    let ns_per_run = best_ns as f64;
    Measurement {
        scheme,
        controllers: n,
        events,
        ns_per_event: ns_per_run / events as f64,
        ns_per_run,
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "null".into()
    }
}

/// Committed `(scheme, controllers) -> ns_per_event` rows, read from
/// `BENCH_event_engine.json` before any measurement overwrites it.
fn committed_rows() -> Vec<(String, usize, f64)> {
    let text = std::fs::read_to_string(REPORT_PATH)
        .unwrap_or_else(|e| panic!("--gate needs the committed {REPORT_PATH}: {e}"));
    let json = Json::parse(&text).expect("committed report parses");
    let mut report = ObjReader::new(&json, "report").expect("report is an object");
    report
        .required("results")
        .expect("report.results present")
        .as_array("report.results")
        .expect("report.results is an array")
        .iter()
        .map(|row| {
            let mut row = ObjReader::new(row, "results[]").expect("result row is an object");
            (
                row.required("scheme")
                    .expect("row scheme")
                    .as_str("results[].scheme")
                    .expect("scheme string")
                    .to_string(),
                row.required("controllers")
                    .expect("row controllers")
                    .as_usize("results[].controllers")
                    .expect("controllers integer"),
                row.required("ns_per_event")
                    .expect("row ns_per_event")
                    .as_f64("results[].ns_per_event")
                    .expect("ns_per_event number"),
            )
        })
        .collect()
}

fn main() {
    let mut gate = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--gate" => gate = true,
            // Cargo's bench harness forwards `--bench`; ignore it.
            "--bench" => {}
            other => {
                eprintln!("event_engine: unknown argument {other} (supported: --gate)");
                std::process::exit(2);
            }
        }
    }
    // Read the committed baseline before measuring (and before any
    // non-gate run overwrites the file).
    let committed = if gate { committed_rows() } else { Vec::new() };

    let mut results = Vec::new();
    for &n in &SIZES {
        results.push(measure("bisp", n, build_bisp));
        results.push(measure("lockstep", n, build_lockstep));
    }

    println!("event engine: ns per processed event (lower is better)");
    println!("{:-<72}", "");
    println!(
        "{:<10} {:>12} {:>12} {:>14} {:>14}",
        "scheme", "controllers", "events/run", "ns/event", "baseline"
    );
    println!("{:-<72}", "");
    let mut json = String::from("{\"benchmark\":\"event_engine\",\"rounds\":");
    let _ = write!(json, "{ROUNDS},\"results\":[");
    for (i, m) in results.iter().enumerate() {
        let baseline = BASELINE
            .iter()
            .find(|(s, n, _)| *s == m.scheme && *n == m.controllers)
            .map(|&(_, _, ns)| ns)
            .unwrap_or(f64::NAN);
        println!(
            "{:<10} {:>12} {:>12} {:>14.1} {:>14.1}",
            m.scheme, m.controllers, m.events, m.ns_per_event, baseline
        );
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"scheme\":\"{}\",\"controllers\":{},\"events_per_run\":{},\
             \"ns_per_event\":{},\"ns_per_run\":{},\"baseline_ns_per_event\":{}}}",
            m.scheme,
            m.controllers,
            m.events,
            json_f64(m.ns_per_event),
            json_f64(m.ns_per_run),
            json_f64(baseline)
        );
    }
    json.push_str("]}");
    println!("{:-<72}", "");

    if gate {
        // The ns/event regression gate: every committed row must be
        // reproduced within GATE_TOLERANCE on this machine.
        let mut failed = false;
        for (scheme, controllers, committed_ns) in &committed {
            let Some(m) = results
                .iter()
                .find(|m| m.scheme == scheme && m.controllers == *controllers)
            else {
                println!("gate MISSING {scheme}/{controllers}: row not measured");
                failed = true;
                continue;
            };
            let limit = committed_ns * GATE_TOLERANCE;
            if m.ns_per_event > limit {
                println!(
                    "gate FAIL {scheme}/{controllers}: {:.1} ns/event exceeds \
                     committed {committed_ns:.1} by more than {:.0}% (limit {limit:.1})",
                    m.ns_per_event,
                    (GATE_TOLERANCE - 1.0) * 100.0
                );
                failed = true;
            } else {
                println!(
                    "gate ok   {scheme}/{controllers}: {:.1} ns/event (committed {committed_ns:.1}, limit {limit:.1})",
                    m.ns_per_event
                );
            }
        }
        if committed.is_empty() {
            println!("gate MISSING: committed report carried no rows");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        return;
    }

    // Anchor the artifact at the workspace root regardless of the
    // bench's working directory.
    std::fs::write(REPORT_PATH, &json).expect("write BENCH_event_engine.json");
    println!("wrote BENCH_event_engine.json (workspace root)");
}
