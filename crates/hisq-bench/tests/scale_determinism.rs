//! CI guards for the scaling sweep (`fig_scale`): the report is
//! byte-identical across thread counts, carries only
//! simulation-deterministic metrics (no wall time), and a debug-sized
//! grid is pinned byte-for-byte via the shared helper. The full
//! 256–4096 quick report is gated separately by `ci/check_baselines.sh`
//! against the committed `BENCH_fig_scale.json`.

use distributed_hisq::testing::assert_pinned;
use hisq_bench::scale::{run_scale_sweep, scale_points, scale_rows, SCALE_SIZES};

/// Debug builds run the engine ~10× slower, so the in-test grid stops
/// at 256 controllers with 2 rounds; the release-built CI baseline
/// covers the full axis.
const TEST_SIZES: [usize; 2] = [64, 256];

#[test]
fn scale_sweep_is_deterministic_across_thread_counts() {
    let single = run_scale_sweep(&TEST_SIZES, 2, 1).to_json();
    let multi = run_scale_sweep(&TEST_SIZES, 2, 4);
    assert_eq!(
        single,
        multi.to_json(),
        "thread count must not leak into the scale report"
    );

    let rows = scale_rows(&multi);
    assert_eq!(rows.len(), TEST_SIZES.len(), "one row per size");
    for row in &rows {
        assert!(row.bisp_events > 0 && row.lockstep_events > 0);
        assert!(row.normalized.is_finite() && row.normalized > 0.0);
    }
}

/// The debug-grid JSON is pinned byte-for-byte (shared-helper pin), so
/// event-core work cannot drift scale reports even in ways that stay
/// thread-count-stable.
#[test]
fn scale_sweep_json_is_pinned_byte_for_byte() {
    let json = run_scale_sweep(&TEST_SIZES, 2, 2).to_json();
    assert_pinned(
        "fig_scale debug-grid JSON",
        &json,
        1178,
        0xe80c_96f2_e20d_1946,
    );
}

#[test]
fn scale_point_ids_are_unique_and_bisp_leads_each_pair() {
    let points = scale_points(&SCALE_SIZES);
    assert_eq!(points.len(), 2 * SCALE_SIZES.len());
    let mut ids: Vec<String> = points.iter().map(|p| p.id(6)).collect();
    for pair in points.chunks(2) {
        assert_eq!(pair[0].scheme, "bisp", "pairing contract: BISP first");
        assert_eq!(pair[1].scheme, "lockstep");
        assert_eq!(pair[0].controllers, pair[1].controllers);
    }
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), points.len(), "scale ids must be unique");
}
