//! CI guards for the multi-tenant saturation sweep (`fig_load`): the
//! report is byte-identical across thread counts and pinned
//! byte-for-byte, and seed++ repetitions of a load scenario produce
//! distinct-but-replayable percentile rows.

use distributed_hisq::compiler::Scheme;
use distributed_hisq::load::{ArrivalStream, LoadSpec, ServiceModel};
use distributed_hisq::runner::{run_sweep, Scenario};
use distributed_hisq::scenario::ScenarioFile;
use distributed_hisq::testing::assert_pinned;
use hisq_bench::load::fig_load_scenarios;
use hisq_workloads::WorkloadSpec;

#[test]
fn load_sweep_is_byte_identical_across_thread_counts() {
    let scenarios = fig_load_scenarios(true);
    let single = run_sweep(&scenarios, 1).expect("load grid runs").to_json();
    let multi = run_sweep(&scenarios, 4).expect("load grid runs").to_json();
    assert_eq!(
        single, multi,
        "thread count must not leak into the load report"
    );
}

/// The quick load sweep is pinned byte-for-byte via the shared helper,
/// so engine-internal changes (scheduler tie-breaks, percentile math,
/// arrival seeding) cannot silently drift the committed
/// `BENCH_fig_load.json` baseline's bytes.
#[test]
fn load_sweep_json_is_pinned_byte_for_byte() {
    let scenarios = fig_load_scenarios(true);
    let json = run_sweep(&scenarios, 2).expect("load grid runs").to_json();
    assert_pinned("fig_load quick JSON", &json, 4901, 0x53ae_2a3b_ef8d_ed75);
}

/// Seed++ repetitions (the scenario-file `repetitions` knob) produce
/// *distinct* percentile rows — fresh arrival and service draws per
/// seed — that replay byte-for-byte: statistically independent, still
/// deterministic.
#[test]
fn seed_increment_rows_are_distinct_but_replayable() {
    let spec = LoadSpec::new(
        vec![
            ArrivalStream::poisson(20.0, 100),
            ArrivalStream::poisson(10.0, 50).with_priority(1),
        ],
        2,
    )
    .with_queue_capacity(32)
    .with_service(ServiceModel::Exponential { mean_ns: 60_000.0 });
    let base = Scenario::new(WorkloadSpec::suite("w_state_n12"), Scheme::Bisp)
        .with_seed(11)
        .with_load(spec);
    let mut file = ScenarioFile::new("seed-rows", base);
    file.repetitions = 3;
    let scenarios = file.expand(None);
    assert_eq!(scenarios.len(), 3);
    let seeds: Vec<u64> = scenarios.iter().map(|s| s.seed).collect();
    assert_eq!(seeds, [11, 12, 13], "repetitions advance the seed");

    let report = run_sweep(&scenarios, 2).expect("repetition grid runs");
    let rows: Vec<(u64, u64, u64)> = report
        .records()
        .iter()
        .map(|r| {
            let counter = |key: &str| r.counter(key).expect("latency percentiles present");
            (
                counter("latency_p50_ns"),
                counter("latency_p95_ns"),
                counter("latency_p99_ns"),
            )
        })
        .collect();
    for (i, a) in rows.iter().enumerate() {
        for b in rows.iter().skip(i + 1) {
            assert_ne!(a, b, "each seed draws its own traffic: {rows:?}");
        }
    }

    let replay = run_sweep(&scenarios, 4).expect("repetition grid replays");
    assert_eq!(
        report.to_json(),
        replay.to_json(),
        "same seeds, same bytes — on any thread count"
    );
}
