//! CI guards for the contention sweep (`fig_contention`): the report is
//! byte-identical across thread counts, and the figure's headline claim
//! holds — as links serialize, the hub baseline's runtime degrades
//! strictly faster than BISP's at every system size.

use distributed_hisq::runner::run_sweep;
use distributed_hisq::testing::assert_pinned;
use hisq_bench::figures::{fig_contention_rows, fig_contention_scenarios};

#[test]
fn contention_sweep_is_deterministic_and_hub_degrades_faster() {
    let scenarios = fig_contention_scenarios(true);
    let single = run_sweep(&scenarios, 1).expect("grid runs").to_json();
    let multi = run_sweep(&scenarios, 4).expect("grid runs");
    assert_eq!(
        single,
        multi.to_json(),
        "thread count must not leak into the contention report"
    );

    let rows = fig_contention_rows(&scenarios, &multi);
    let max_ser = rows.iter().map(|r| r.serialization_ns).max().unwrap();
    let sizes: std::collections::BTreeSet<usize> = rows.iter().map(|r| r.controllers).collect();
    for n in sizes {
        let slowdown = |scheme: &str| {
            rows.iter()
                .find(|r| r.controllers == n && r.serialization_ns == max_ser && r.scheme == scheme)
                .expect("grid covers every (size, scheme, ser) point")
                .slowdown
        };
        let (hub, bisp) = (slowdown("lockstep"), slowdown("bisp"));
        assert!(
            hub > bisp,
            "at {n} controllers, ser {max_ser} ns: hub slowdown {hub:.3}x \
             must exceed BISP {bisp:.3}x"
        );
    }
}

/// The quick contention sweep is pinned byte-for-byte via the shared
/// helper, so engine-internal changes (e.g. the calendar-queue event
/// core) cannot silently drift the committed `BENCH_fig_contention.json`
/// baseline's bytes.
#[test]
fn contention_sweep_json_is_pinned_byte_for_byte() {
    let scenarios = fig_contention_scenarios(true);
    let json = run_sweep(&scenarios, 2).expect("grid runs").to_json();
    assert_pinned(
        "fig_contention quick JSON",
        &json,
        5954,
        0x26b6_8ab7_2b29_a156,
    );
}

#[test]
fn contention_scenario_ids_are_unique() {
    for quick in [true, false] {
        let scenarios = fig_contention_scenarios(quick);
        let mut ids: Vec<String> = scenarios.iter().map(|s| s.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(
            ids.len(),
            scenarios.len(),
            "link-model axis must keep ids unique"
        );
    }
}
