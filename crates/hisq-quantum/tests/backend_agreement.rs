//! Cross-backend agreement: the stabilizer tableau and the dense
//! state-vector simulator must agree on every Clifford dynamic circuit.
//!
//! For random Clifford circuits we compare the *deterministic* structure:
//! after running the same circuit with the same RNG seed on both
//! backends, every deterministic measurement must match, and the
//! stabilizer's `peek_deterministic` must be consistent with state-vector
//! probabilities (0, 1, or strictly between).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use hisq_quantum::{Circuit, Condition, Gate, Stabilizer, StateVector};

/// A gate choice index into the random-circuit alphabet.
#[derive(Debug, Clone)]
enum RandomOp {
    H(usize),
    S(usize),
    X(usize),
    Y(usize),
    Z(usize),
    Cx(usize, usize),
    Cz(usize, usize),
    Swap(usize, usize),
    Measure(usize, usize),
    CondX(usize, usize),
}

fn arb_op(n_qubits: usize, n_clbits: usize) -> impl Strategy<Value = RandomOp> {
    let q = 0..n_qubits;
    let c = 0..n_clbits;
    prop_oneof![
        q.clone().prop_map(RandomOp::H),
        q.clone().prop_map(RandomOp::S),
        q.clone().prop_map(RandomOp::X),
        q.clone().prop_map(RandomOp::Y),
        q.clone().prop_map(RandomOp::Z),
        (q.clone(), q.clone()).prop_map(|(a, b)| RandomOp::Cx(a, b)),
        (q.clone(), q.clone()).prop_map(|(a, b)| RandomOp::Cz(a, b)),
        (q.clone(), q.clone()).prop_map(|(a, b)| RandomOp::Swap(a, b)),
        (q.clone(), c.clone()).prop_map(|(a, b)| RandomOp::Measure(a, b)),
        (q, c).prop_map(|(a, b)| RandomOp::CondX(a, b)),
    ]
}

fn build_circuit(n_qubits: usize, n_clbits: usize, ops: &[RandomOp]) -> Circuit {
    let mut circuit = Circuit::new(n_qubits, n_clbits);
    for op in ops {
        match *op {
            RandomOp::H(q) => {
                circuit.h(q);
            }
            RandomOp::S(q) => {
                circuit.s(q);
            }
            RandomOp::X(q) => {
                circuit.x(q);
            }
            RandomOp::Y(q) => {
                circuit.y(q);
            }
            RandomOp::Z(q) => {
                circuit.z(q);
            }
            RandomOp::Cx(a, b) if a != b => {
                circuit.cx(a, b);
            }
            RandomOp::Cz(a, b) if a != b => {
                circuit.cz(a, b);
            }
            RandomOp::Swap(a, b) if a != b => {
                circuit.gate(Gate::Swap, &[a, b]);
            }
            RandomOp::Cx(..) | RandomOp::Cz(..) | RandomOp::Swap(..) => {}
            RandomOp::Measure(q, c) => {
                circuit.measure(q, c);
            }
            RandomOp::CondX(q, c) => {
                circuit.x_if(q, Condition::bit(c, true));
            }
        }
    }
    circuit
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Wherever the tableau claims a deterministic outcome, the
    /// state-vector probability must agree exactly.
    #[test]
    fn deterministic_structure_agrees(
        ops in proptest::collection::vec(arb_op(4, 3), 1..40),
        seed in any::<u64>(),
    ) {
        let circuit = build_circuit(4, 3, &ops);
        prop_assume!(circuit.is_clifford());

        // Execute instruction-by-instruction on both backends, feeding
        // the stabilizer's measurement outcomes into the state vector via
        // collapse checks: we run the stabilizer first, then verify each
        // deterministic claim against the state vector.
        let mut tab = Stabilizer::new(4);
        let mut sv = StateVector::new(4);
        let mut reg_tab = vec![false; 3];
        let mut reg_sv = vec![false; 3];
        let mut rng_tab = StdRng::seed_from_u64(seed);

        for instruction in circuit.instructions() {
            // Check deterministic agreement on every qubit *before* the op.
            for q in 0..4 {
                if let Some(v) = tab.peek_deterministic(q) {
                    let p1 = sv.prob_one(q);
                    prop_assert!(
                        (p1 - f64::from(u8::from(v))).abs() < 1e-9,
                        "tableau says q{q} deterministic={v}, sv P(1)={p1}"
                    );
                } else {
                    let p1 = sv.prob_one(q);
                    prop_assert!(
                        p1 > 1e-9 && p1 < 1.0 - 1e-9,
                        "tableau says q{q} random, sv P(1)={p1}"
                    );
                }
            }
            // Advance both backends; measurements reuse the tableau's
            // outcome in the state vector by collapsing consistently.
            match (&instruction.op, &instruction.condition) {
                (hisq_quantum::Operation::Measure { qubit, clbit }, cond) => {
                    let fire = cond.as_ref().is_none_or(|c| c.evaluate(&reg_tab));
                    if fire {
                        let outcome = tab.measure(*qubit, &mut rng_tab);
                        reg_tab[*clbit] = outcome;
                        // Collapse the state vector to the same branch.
                        let p1 = sv.prob_one(*qubit);
                        prop_assert!(
                            if outcome { p1 > 1e-9 } else { p1 < 1.0 - 1e-9 },
                            "state vector cannot realize tableau outcome"
                        );
                        sv_collapse(&mut sv, *qubit, outcome);
                        reg_sv[*clbit] = outcome;
                    }
                }
                _ => {
                    tab.execute(instruction, &mut reg_tab, &mut rng_tab);
                    let mut no_rng = StdRng::seed_from_u64(0);
                    sv.execute(instruction, &mut reg_sv, &mut no_rng);
                }
            }
        }
    }
}

/// Projects the state vector onto `outcome` for `qubit` by measuring
/// with a forced branch: apply the projector and renormalize.
fn sv_collapse(sv: &mut StateVector, qubit: usize, outcome: bool) {
    // Use the public API: measuring with an RNG that forces the branch.
    // Instead of RNG games we rebuild via fidelity-preserving trick:
    // repeatedly measure with fresh seeds until the desired branch occurs.
    // Branch probability is ≥ 1e-9 by the caller's check; for test
    // robustness we try many seeds.
    for seed in 0..4096u64 {
        let mut candidate = sv.clone();
        let mut rng = StdRng::seed_from_u64(seed);
        if candidate.measure(qubit, &mut rng) == outcome {
            *sv = candidate;
            return;
        }
    }
    panic!("could not realize measurement branch with probability > 0");
}
