//! # hisq-quantum — quantum substrate for Distributed-HISQ
//!
//! This crate provides everything the control-architecture evaluation
//! needs to know about quantum programs themselves:
//!
//! - [`Circuit`] — a **dynamic-circuit** intermediate representation:
//!   gates, mid-circuit measurement, and classically conditioned
//!   operations (the feedback that creates the synchronization challenge
//!   of the paper's §2.1);
//! - [`StateVector`] — a dense simulator for logical-correctness
//!   verification of small circuits (teleportation, long-range CNOT);
//! - [`Stabilizer`] — a CHP-style tableau simulator scaling to the
//!   QEC-sized Clifford circuits of the paper's benchmarks;
//! - [`fidelity`] — the T1/T2 idle-decay model behind Figure 16;
//! - [`noise`] — declarative per-gate/idle/leakage error rates
//!   ([`NoiseModel`]) and the seeded [`NoiseStream`] the noisy
//!   simulator backends sample channels from;
//! - [`GateDurations`] — the operation-duration table of §6.4.1
//!   (20 ns single-qubit, 40 ns two-qubit, 300 ns measurement).
//!
//! # Example: a feedback (dynamic) circuit
//!
//! ```
//! use hisq_quantum::{Circuit, Condition};
//!
//! // Measure q0 and apply X on q1 only if the result was 1 — the
//! // canonical feedback pattern behind teleportation.
//! let mut c = Circuit::new(2, 1);
//! c.h(0);
//! c.measure(0, 0);
//! c.x_if(1, Condition::bit(0, true));
//! assert_eq!(c.instructions().len(), 3);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod circuit;
pub mod complex;
pub mod fidelity;
pub mod gate;
pub mod json;
pub mod noise;
pub mod stabilizer;
pub mod statevector;
pub mod timing;

pub use circuit::{Circuit, CircuitError, Condition, Instruction, Operation};
pub use complex::C64;
pub use fidelity::{CoherenceParams, ExposureLedger};
pub use gate::Gate;
pub use noise::{NoiseMap, NoiseModel, NoiseStream, OpCounts};
pub use stabilizer::Stabilizer;
pub use statevector::StateVector;
pub use timing::GateDurations;
