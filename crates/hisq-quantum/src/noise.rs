//! Gate-error noise models: the gate-error-dominated extension of the
//! [`fidelity`](crate::fidelity) module's pure-decoherence scoring.
//!
//! The paper's Figure 16 scores schemes by decoherence alone — the
//! scheme that finishes earlier exposes its qubits for less wall-clock
//! time and wins. Real devices are usually *gate-error*-dominated:
//! every gate, measurement, and idle nanosecond carries an error
//! probability that is independent of T1/T2. [`NoiseModel`] makes those
//! per-operation rates a declarative, sweepable architecture input
//! (after Gupta & Raina, arXiv:2403.07596, and DiAdamo et al.,
//! arXiv:2101.02504, which both treat per-gate channels as first-class
//! inputs to distributed-quantum-computation scoring):
//!
//! - **Sampled channels** — the noisy simulator backends
//!   (`hisq-sim`'s `NoisyStabilizerBackend` / `LeakyRandomBackend`)
//!   draw concrete error events from a seeded [`NoiseStream`] so that
//!   measurement outcomes, and therefore feedback branches, reflect the
//!   noise. The stream is counter-based SplitMix64: a draw depends only
//!   on `(seed, draw index)`, so every run replays identically on any
//!   thread count, and a rate of exactly `0.0` consumes **no** draws —
//!   which is what pins `NoiseModel::default()` byte-identical to the
//!   noiseless backends.
//! - **Analytic scoring** — [`NoiseModel::infidelity`] charges the
//!   *expected* error of a schedule: per-gate and per-measurement
//!   survival from the operation counts ([`OpCounts`]) and idle error
//!   from the per-qubit exposure durations already accumulated by the
//!   engine's [`ExposureLedger`] — the same ledger the T1/T2 model
//!   scores, so the decoherence and gate-error regimes share one
//!   timing source.
//!
//! # Example
//!
//! ```
//! use hisq_quantum::{ExposureLedger, NoiseModel, OpCounts};
//!
//! let noise = NoiseModel::default()
//!     .with_gate_errors(1e-4, 1e-3)
//!     .with_idle_error(1e-6);
//! let ops = OpCounts {
//!     gates_1q: 40,
//!     gates_2q: 10,
//!     ..OpCounts::default()
//! };
//! let ledger: ExposureLedger = [(0, 0, 2_000), (1, 0, 2_000)].into_iter().collect();
//! let infid = noise.infidelity(&ops, &ledger);
//! assert!(infid > 0.0 && infid < 1.0);
//! assert_eq!(NoiseModel::default().infidelity(&ops, &ledger), 0.0);
//! ```

use std::collections::BTreeMap;
use std::fmt;

use crate::fidelity::ExposureLedger;

/// Declarative per-operation error rates — the noise counterpart of
/// [`CoherenceParams`](crate::CoherenceParams). All rates are
/// probabilities per operation (or per nanosecond for idle error); the
/// default is exactly noiseless, so specs and sweeps that never touch
/// noise behave byte-identically to the historical engine.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NoiseModel {
    /// Error probability per single-qubit gate.
    pub p_gate_1q: f64,
    /// Error probability per two-qubit-gate **operand qubit** — both
    /// the sampled backends (one channel draw per operand) and the
    /// analytic scoring (`(1 − p)^(2·gates_2q)`) charge it twice per
    /// gate.
    pub p_gate_2q: f64,
    /// Readout (measurement assignment) error probability.
    pub p_meas: f64,
    /// Idle error probability per nanosecond of exposure, charged from
    /// the [`ExposureLedger`]'s per-qubit durations.
    pub p_idle_per_ns: f64,
    /// Leakage probability per two-qubit-gate operand qubit: a leaked
    /// qubit leaves the computational subspace and reads out as a
    /// sticky `1` until it is actively reset.
    pub p_leak: f64,
}

impl NoiseModel {
    /// The exactly-noiseless model (`== NoiseModel::default()`).
    pub const NOISELESS: NoiseModel = NoiseModel {
        p_gate_1q: 0.0,
        p_gate_2q: 0.0,
        p_meas: 0.0,
        p_idle_per_ns: 0.0,
        p_leak: 0.0,
    };

    /// `true` if every rate is exactly zero — the contract under which
    /// the noisy backends are byte-identical to their noiseless twins
    /// and the harness emits no noise metrics.
    pub fn is_noiseless(&self) -> bool {
        *self == NoiseModel::NOISELESS
    }

    /// Replaces the gate error rates (builder style).
    #[must_use]
    pub fn with_gate_errors(mut self, p_1q: f64, p_2q: f64) -> NoiseModel {
        self.p_gate_1q = p_1q;
        self.p_gate_2q = p_2q;
        self
    }

    /// Replaces the readout error rate (builder style).
    #[must_use]
    pub fn with_meas_error(mut self, p_meas: f64) -> NoiseModel {
        self.p_meas = p_meas;
        self
    }

    /// Replaces the per-nanosecond idle error rate (builder style).
    #[must_use]
    pub fn with_idle_error(mut self, p_idle_per_ns: f64) -> NoiseModel {
        self.p_idle_per_ns = p_idle_per_ns;
        self
    }

    /// Replaces the leakage rate (builder style).
    #[must_use]
    pub fn with_leak(mut self, p_leak: f64) -> NoiseModel {
        self.p_leak = p_leak;
        self
    }

    /// Survival probability of one qubit idling for `t_ns` nanoseconds:
    /// `(1 − p_idle_per_ns)^t_ns`.
    pub fn idle_survival(&self, t_ns: u64) -> f64 {
        if self.p_idle_per_ns <= 0.0 {
            return 1.0;
        }
        (1.0 - self.p_idle_per_ns).max(0.0).powf(t_ns as f64)
    }

    /// Expected circuit survival probability of a schedule: per-gate,
    /// per-measurement, and per-leak-opportunity survivals from the
    /// operation counts, times per-qubit idle survival over the
    /// exposure durations the engine's ledger recorded. Resets are
    /// treated as error-free (they end a qubit's useful history).
    ///
    /// Every term is charged at the sampled backends' draw sites, so
    /// the analytic score is the exact expectation of the sampled
    /// channel count: one opportunity per single-qubit gate, per
    /// measurement, and per two-qubit-gate **operand** — i.e.
    /// `(1 − p_gate_2q)^(2·gates_2q)` and
    /// `(1 − p_leak)^(2·gates_2q)`.
    pub fn survival(&self, ops: &OpCounts, exposure: &ExposureLedger) -> f64 {
        let operands_2q = saturating_i32(ops.gates_2q.saturating_mul(2));
        let gates = (1.0 - self.p_gate_1q).powi(saturating_i32(ops.gates_1q))
            * (1.0 - self.p_gate_2q).powi(operands_2q)
            * (1.0 - self.p_meas).powi(saturating_i32(ops.measurements))
            * (1.0 - self.p_leak).powi(operands_2q);
        let idle: f64 = exposure
            .exposures_ns()
            .map(|(_, t_ns)| self.idle_survival(t_ns))
            .product();
        gates * idle
    }

    /// Expected circuit infidelity `1 − survival` — the `fig_noise`
    /// metric.
    pub fn infidelity(&self, ops: &OpCounts, exposure: &ExposureLedger) -> f64 {
        1.0 - self.survival(ops, exposure)
    }
}

impl fmt::Display for NoiseModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "p1q={} p2q={} pmeas={} pidle/ns={} pleak={}",
            self.p_gate_1q, self.p_gate_2q, self.p_meas, self.p_idle_per_ns, self.p_leak
        )
    }
}

fn saturating_i32(v: u64) -> i32 {
    v.min(i32::MAX as u64) as i32
}

/// Counts of the quantum operations a simulated schedule committed —
/// the denominators of [`NoiseModel::survival`]. The engine accumulates
/// these alongside its exposure ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounts {
    /// Single-qubit gates committed.
    pub gates_1q: u64,
    /// Two-qubit gates committed.
    pub gates_2q: u64,
    /// Measurements triggered.
    pub measurements: u64,
    /// Active resets committed.
    pub resets: u64,
}

impl OpCounts {
    /// Total quantum operations.
    pub fn total(&self) -> u64 {
        self.gates_1q + self.gates_2q + self.measurements + self.resets
    }
}

/// A per-qubit noise assignment: a uniform default [`NoiseModel`] plus
/// sparse per-qubit overrides — the qubit-side counterpart of
/// `hisq-net`'s per-edge fabric map.
///
/// The map normalizes itself: an override equal to the current default
/// is never stored, so `is_uniform` is exactly "no overrides" and two
/// maps describing the same physics compare equal. Harness layers keep
/// uniform maps byte-identical to the historical single-model path by
/// delegating to [`NoiseModel::survival`] on the global operation
/// counts whenever [`NoiseMap::is_uniform`] holds; the per-qubit
/// product below is only reached when at least one override exists
/// (f64 multiplication is not associative, so the two factorings are
/// not bit-equal in general).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NoiseMap {
    default: NoiseModel,
    overrides: BTreeMap<usize, NoiseModel>,
}

impl NoiseMap {
    /// A map where every qubit uses `default`.
    pub fn uniform(default: NoiseModel) -> NoiseMap {
        NoiseMap {
            default,
            overrides: BTreeMap::new(),
        }
    }

    /// The uniform default model (what [`NoiseMap::model_for`] returns
    /// for any qubit without an override).
    pub fn default_model(&self) -> NoiseModel {
        self.default
    }

    /// Replaces the uniform default; overrides that now equal the new
    /// default are dropped.
    pub fn set_default(&mut self, default: NoiseModel) {
        self.default = default;
        self.overrides.retain(|_, m| *m != default);
    }

    /// Overrides one qubit's model. Setting a qubit back to the default
    /// removes the override.
    pub fn set_qubit(&mut self, qubit: usize, model: NoiseModel) {
        if model == self.default {
            self.overrides.remove(&qubit);
        } else {
            self.overrides.insert(qubit, model);
        }
    }

    /// The model governing `qubit`: its override if present, else the
    /// default.
    pub fn model_for(&self, qubit: usize) -> NoiseModel {
        self.overrides.get(&qubit).copied().unwrap_or(self.default)
    }

    /// The per-qubit overrides in ascending qubit order.
    pub fn overrides(&self) -> impl Iterator<Item = (usize, NoiseModel)> + '_ {
        self.overrides.iter().map(|(&q, &m)| (q, m))
    }

    /// `true` when no qubit deviates from the default — the contract
    /// under which callers delegate to the legacy single-model scoring
    /// path.
    pub fn is_uniform(&self) -> bool {
        self.overrides.is_empty()
    }

    /// `true` when every qubit is exactly noiseless. Because overrides
    /// never equal the default, this is "noiseless default and no
    /// overrides".
    pub fn is_noiseless(&self) -> bool {
        self.default.is_noiseless() && self.overrides.is_empty()
    }

    /// Expected circuit survival from **per-qubit** operation counts:
    /// `ops_by_qubit[q]` charges qubit `q`'s rates, then each qubit's
    /// idle exposure charges its own `p_idle_per_ns`.
    ///
    /// Unlike the global [`OpCounts`] fed to [`NoiseModel::survival`],
    /// the per-qubit `gates_2q` field counts **operand occurrences**
    /// (a CX increments both operands' counters by one, so the sum over
    /// qubits is `2 ·` the global gate count) — the exponent is used
    /// as-is, not doubled.
    pub fn survival(&self, ops_by_qubit: &[OpCounts], exposure: &ExposureLedger) -> f64 {
        let gates: f64 = ops_by_qubit
            .iter()
            .enumerate()
            .map(|(q, ops)| {
                let m = self.model_for(q);
                (1.0 - m.p_gate_1q).powi(saturating_i32(ops.gates_1q))
                    * (1.0 - m.p_gate_2q).powi(saturating_i32(ops.gates_2q))
                    * (1.0 - m.p_meas).powi(saturating_i32(ops.measurements))
                    * (1.0 - m.p_leak).powi(saturating_i32(ops.gates_2q))
            })
            .product();
        let idle: f64 = exposure
            .exposures_ns()
            .map(|(q, t_ns)| self.model_for(q).idle_survival(t_ns))
            .product();
        gates * idle
    }

    /// Expected circuit infidelity `1 − survival` over per-qubit
    /// operation counts (see [`NoiseMap::survival`]).
    pub fn infidelity(&self, ops_by_qubit: &[OpCounts], exposure: &ExposureLedger) -> f64 {
        1.0 - self.survival(ops_by_qubit, exposure)
    }
}

impl From<NoiseModel> for NoiseMap {
    fn from(default: NoiseModel) -> NoiseMap {
        NoiseMap::uniform(default)
    }
}

/// A deterministic counter-based SplitMix64 random stream for channel
/// sampling.
///
/// Each draw is `splitmix64(seed ⊕ f(index))` where `index` is a
/// monotonic per-stream counter, so the stream's values depend only on
/// `(seed, draw index)` — never on wall clock, thread interleaving, or
/// process layout. Two properties the noise proptests rest on:
///
/// - **Replay**: the same seed produces the same draw sequence on any
///   thread count;
/// - **Coupling**: [`NoiseStream::bernoulli`] with `p = 0` consumes no
///   draw, while any `p > 0` consumes exactly one uniform draw, so
///   increasing a rate can only turn existing draws from "survived"
///   into "errored" — error populations are monotone in the rate.
#[derive(Debug, Clone)]
pub struct NoiseStream {
    seed: u64,
    draws: u64,
}

impl NoiseStream {
    /// Creates a stream at draw index 0.
    pub fn new(seed: u64) -> NoiseStream {
        NoiseStream { seed, draws: 0 }
    }

    /// Number of draws consumed so far.
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// The next 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let index = self.draws;
        self.draws += 1;
        splitmix64(self.seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// The next uniform draw in `[0, 1)` (53-bit mantissa).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// One Bernoulli trial: `true` with probability `p`.
    ///
    /// A rate `p ≤ 0` returns `false` **without consuming a draw** —
    /// the noiseless-equivalence contract; any `p > 0` consumes exactly
    /// one uniform draw, keeping streams aligned across different
    /// positive rates (the monotonicity contract).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        self.next_f64() < p
    }
}

/// SplitMix64 finalizer (Steele et al.): a well-mixed 64-bit hash.
/// Public because it is the workspace's one shared counter-hashing
/// primitive — the link-loss stream in `hisq-sim` keys the same
/// function, so the two determinism contracts cannot drift apart.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_noiseless_and_scores_zero() {
        let noise = NoiseModel::default();
        assert!(noise.is_noiseless());
        let ops = OpCounts {
            gates_1q: 100,
            gates_2q: 50,
            measurements: 20,
            resets: 5,
        };
        let ledger: ExposureLedger = [(0, 0, 1_000_000)].into_iter().collect();
        assert_eq!(noise.survival(&ops, &ledger), 1.0);
        assert_eq!(noise.infidelity(&ops, &ledger), 0.0);
    }

    #[test]
    fn builders_set_each_rate() {
        let noise = NoiseModel::default()
            .with_gate_errors(1e-4, 1e-3)
            .with_meas_error(1e-2)
            .with_idle_error(1e-6)
            .with_leak(1e-5);
        assert!(!noise.is_noiseless());
        assert_eq!(noise.p_gate_1q, 1e-4);
        assert_eq!(noise.p_gate_2q, 1e-3);
        assert_eq!(noise.p_meas, 1e-2);
        assert_eq!(noise.p_idle_per_ns, 1e-6);
        assert_eq!(noise.p_leak, 1e-5);
        assert!(format!("{noise}").contains("p2q=0.001"));
    }

    #[test]
    fn survival_is_monotone_in_rates_and_counts() {
        let ledger: ExposureLedger = [(0, 0, 10_000), (1, 0, 20_000)].into_iter().collect();
        let few = OpCounts {
            gates_1q: 10,
            gates_2q: 2,
            measurements: 1,
            resets: 0,
        };
        let many = OpCounts {
            gates_1q: 100,
            gates_2q: 20,
            measurements: 10,
            resets: 0,
        };
        let low = NoiseModel::default()
            .with_gate_errors(1e-5, 1e-4)
            .with_idle_error(1e-8);
        let high = NoiseModel::default()
            .with_gate_errors(1e-3, 1e-2)
            .with_idle_error(1e-6);
        assert!(low.survival(&few, &ledger) > low.survival(&many, &ledger));
        assert!(low.survival(&many, &ledger) > high.survival(&many, &ledger));
        assert!(high.infidelity(&many, &ledger) < 1.0);
    }

    #[test]
    fn idle_survival_uses_exposure_durations() {
        let noise = NoiseModel::default().with_idle_error(1e-4);
        let short: ExposureLedger = [(0, 0, 1_000)].into_iter().collect();
        let long: ExposureLedger = [(0, 0, 100_000)].into_iter().collect();
        let ops = OpCounts::default();
        assert!(noise.survival(&ops, &short) > noise.survival(&ops, &long));
        assert!((noise.idle_survival(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stream_is_deterministic_and_uniform_ish() {
        let mut a = NoiseStream::new(42);
        let mut b = NoiseStream::new(42);
        let draws_a: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let draws_b: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(draws_a, draws_b);
        let mut c = NoiseStream::new(43);
        assert_ne!(draws_a[0], c.next_u64(), "seed must matter");
        let mut s = NoiseStream::new(7);
        let hits = (0..10_000).filter(|_| s.bernoulli(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "≈25%: {hits}");
    }

    #[test]
    fn zero_rate_consumes_no_draws() {
        let mut s = NoiseStream::new(1);
        assert!(!s.bernoulli(0.0));
        assert!(!s.bernoulli(-1.0));
        assert_eq!(s.draws(), 0);
        let _ = s.bernoulli(0.5);
        assert_eq!(s.draws(), 1);
    }

    #[test]
    fn noise_map_resolves_default_then_override() {
        let default = NoiseModel::default().with_gate_errors(1e-4, 1e-3);
        let hot = NoiseModel::default().with_gate_errors(1e-2, 1e-1);
        let mut map = NoiseMap::uniform(default);
        assert!(map.is_uniform());
        assert!(!map.is_noiseless());
        map.set_qubit(3, hot);
        assert!(!map.is_uniform());
        assert_eq!(map.model_for(3), hot);
        assert_eq!(map.model_for(0), default);
        assert_eq!(map.overrides().collect::<Vec<_>>(), vec![(3, hot)]);
        // Setting a qubit back to the default removes the override.
        map.set_qubit(3, default);
        assert!(map.is_uniform());
        // Changing the default drops overrides that now match it.
        map.set_qubit(5, hot);
        map.set_default(hot);
        assert!(map.is_uniform());
        assert_eq!(map.default_model(), hot);
        assert_eq!(NoiseMap::from(default).model_for(7), default);
        assert!(NoiseMap::default().is_noiseless());
    }

    #[test]
    fn noise_map_survival_charges_per_qubit_rates() {
        let default = NoiseModel::default().with_gate_errors(1e-4, 1e-3);
        let hot = NoiseModel::default().with_gate_errors(1e-2, 1e-1);
        let per_qubit = [
            OpCounts {
                gates_1q: 4,
                gates_2q: 2, // operand occurrences, not global gate count
                measurements: 1,
                ..OpCounts::default()
            },
            OpCounts {
                gates_1q: 4,
                gates_2q: 2,
                measurements: 1,
                ..OpCounts::default()
            },
        ];
        let ledger: ExposureLedger = [(0, 0, 1_000), (1, 0, 1_000)].into_iter().collect();
        let uniform = NoiseMap::uniform(default);
        let mut heated = uniform.clone();
        heated.set_qubit(1, hot);
        let s_uniform = uniform.survival(&per_qubit, &ledger);
        let s_heated = heated.survival(&per_qubit, &ledger);
        assert!(s_heated < s_uniform, "{s_heated} vs {s_uniform}");
        assert!(heated.infidelity(&per_qubit, &ledger) > uniform.infidelity(&per_qubit, &ledger));
        // A heated qubit with zero activity and zero exposure changes
        // nothing.
        let idle_heat = {
            let mut m = uniform.clone();
            m.set_qubit(9, hot);
            m
        };
        assert_eq!(idle_heat.survival(&per_qubit, &ledger), s_uniform);
        // The per-qubit factoring matches the global closed form when
        // every term is charged at the same rate (same powers, grouped
        // per qubit).
        let global = OpCounts {
            gates_1q: 8,
            gates_2q: 2,
            measurements: 2,
            ..OpCounts::default()
        };
        let expected = default.survival(&global, &ledger);
        assert!(
            (s_uniform - expected).abs() < 1e-12,
            "{s_uniform} vs {expected}"
        );
    }

    #[test]
    fn bernoulli_draws_couple_across_rates() {
        // The same stream position decides both rates, so every hit at
        // the lower rate is a hit at the higher rate.
        let mut low = NoiseStream::new(9);
        let mut high = NoiseStream::new(9);
        for _ in 0..4_096 {
            let l = low.bernoulli(0.05);
            let h = high.bernoulli(0.2);
            assert!(!l || h, "monotone coupling violated");
        }
    }
}
