//! A minimal complex-number type for gate matrices and state vectors.
//!
//! The reproduction deliberately avoids external numeric crates; the
//! state-vector simulator only needs basic field arithmetic, conjugation,
//! and magnitude.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number with `f64` components.
///
/// # Example
///
/// ```
/// use hisq_quantum::C64;
///
/// let i = C64::I;
/// assert_eq!(i * i, C64::new(-1.0, 0.0));
/// assert!((C64::new(3.0, 4.0).norm() - 5.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// Zero.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from parts.
    pub const fn new(re: f64, im: f64) -> C64 {
        C64 { re, im }
    }

    /// Creates a real number.
    pub const fn real(re: f64) -> C64 {
        C64 { re, im: 0.0 }
    }

    /// `e^{iθ}`.
    pub fn from_polar(theta: f64) -> C64 {
        C64 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> C64 {
        C64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `|z|²`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scales by a real factor.
    pub fn scale(self, k: f64) -> C64 {
        C64 {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// `true` if within `tol` of `other` component-wise.
    pub fn approx_eq(self, other: C64, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl Add for C64 {
    type Output = C64;
    fn add(self, rhs: C64) -> C64 {
        C64 {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for C64 {
    fn add_assign(&mut self, rhs: C64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for C64 {
    type Output = C64;
    fn sub(self, rhs: C64) -> C64 {
        C64 {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for C64 {
    type Output = C64;
    fn mul(self, rhs: C64) -> C64 {
        C64 {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Neg for C64 {
    type Output = C64;
    fn neg(self) -> C64 {
        C64 {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl From<f64> for C64 {
    fn from(re: f64) -> C64 {
        C64::real(re)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_arithmetic() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -1.0);
        assert_eq!(a + b, C64::new(4.0, 1.0));
        assert_eq!(a - b, C64::new(-2.0, 3.0));
        assert_eq!(a * b, C64::new(5.0, 5.0)); // (1+2i)(3-i) = 3-i+6i+2 = 5+5i
        assert_eq!(-a, C64::new(-1.0, -2.0));
    }

    #[test]
    fn polar_and_conjugate() {
        let z = C64::from_polar(std::f64::consts::FRAC_PI_2);
        assert!(z.approx_eq(C64::I, 1e-12));
        assert!((z * z.conj()).approx_eq(C64::ONE, 1e-12));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(C64::new(1.0, -1.0).to_string(), "1-1i");
        assert_eq!(C64::new(0.5, 0.25).to_string(), "0.5+0.25i");
    }
}
