//! The dynamic-circuit intermediate representation.
//!
//! *Dynamic circuits* — circuits with mid-circuit measurement and
//! classically conditioned operations — are the workloads that create
//! the synchronization challenge Distributed-HISQ solves (§2.1 of the
//! paper). This IR is the input to the `hisq-compiler` software stack
//! and to both quantum simulation backends.

use std::error::Error;
use std::fmt;

use crate::gate::Gate;

/// Errors raised by circuit construction and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitError {
    /// A qubit index is out of range.
    QubitOutOfRange {
        /// The offending index.
        qubit: usize,
        /// Number of qubits in the circuit.
        num_qubits: usize,
    },
    /// A classical bit index is out of range.
    ClbitOutOfRange {
        /// The offending index.
        clbit: usize,
        /// Number of classical bits in the circuit.
        num_clbits: usize,
    },
    /// A gate was applied to the wrong number of qubits.
    ArityMismatch {
        /// Gate name.
        gate: &'static str,
        /// Expected operand count.
        expected: usize,
        /// Provided operand count.
        found: usize,
    },
    /// A multi-qubit gate listed the same qubit twice.
    DuplicateQubit {
        /// The repeated index.
        qubit: usize,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QubitOutOfRange { qubit, num_qubits } => {
                write!(
                    f,
                    "qubit {qubit} out of range for {num_qubits}-qubit circuit"
                )
            }
            CircuitError::ClbitOutOfRange { clbit, num_clbits } => {
                write!(
                    f,
                    "clbit {clbit} out of range for {num_clbits}-clbit circuit"
                )
            }
            CircuitError::ArityMismatch {
                gate,
                expected,
                found,
            } => write!(
                f,
                "gate `{gate}` expects {expected} qubit(s), found {found}"
            ),
            CircuitError::DuplicateQubit { qubit } => {
                write!(f, "qubit {qubit} listed more than once")
            }
        }
    }
}

impl Error for CircuitError {}

/// A classical condition guarding an operation (`if (c) U` in
/// OpenQASM 3 terms).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Condition {
    /// True when a single classical bit equals `value`.
    Bit {
        /// The classical bit index.
        clbit: usize,
        /// Required value.
        value: bool,
    },
    /// True when the XOR (parity) of several bits equals `value`.
    ///
    /// Long-range CNOT corrections (Figure 14) condition on the parity
    /// of the measurement layer, so parity is a first-class condition.
    Parity {
        /// The classical bits whose parity is tested.
        clbits: Vec<usize>,
        /// Required parity.
        value: bool,
    },
}

impl Condition {
    /// Single-bit condition constructor.
    pub fn bit(clbit: usize, value: bool) -> Condition {
        Condition::Bit { clbit, value }
    }

    /// Parity condition constructor.
    pub fn parity(clbits: impl Into<Vec<usize>>, value: bool) -> Condition {
        Condition::Parity {
            clbits: clbits.into(),
            value,
        }
    }

    /// All classical bits the condition reads.
    pub fn clbits(&self) -> Vec<usize> {
        match self {
            Condition::Bit { clbit, .. } => vec![*clbit],
            Condition::Parity { clbits, .. } => clbits.clone(),
        }
    }

    /// Evaluates the condition against a classical register.
    pub fn evaluate(&self, register: &[bool]) -> bool {
        match self {
            Condition::Bit { clbit, value } => {
                register.get(*clbit).copied().unwrap_or(false) == *value
            }
            Condition::Parity { clbits, value } => {
                let parity = clbits
                    .iter()
                    .map(|&c| register.get(c).copied().unwrap_or(false))
                    .fold(false, |acc, b| acc ^ b);
                parity == *value
            }
        }
    }
}

/// A primitive circuit operation (without its condition).
#[derive(Debug, Clone, PartialEq)]
pub enum Operation {
    /// A unitary gate on the listed qubits.
    Gate {
        /// The gate.
        gate: Gate,
        /// Operand qubits, in gate order (e.g. control first for [`Gate::Cx`]).
        qubits: Vec<usize>,
    },
    /// Projective Z-basis measurement into a classical bit.
    Measure {
        /// Measured qubit.
        qubit: usize,
        /// Destination classical bit.
        clbit: usize,
    },
    /// Reset a qubit to |0⟩.
    Reset {
        /// The qubit to reset.
        qubit: usize,
    },
    /// A scheduling barrier across the listed qubits (all if empty).
    Barrier {
        /// Affected qubits; empty means every qubit.
        qubits: Vec<usize>,
    },
    /// An explicit idle of fixed duration, used to model decoder latency
    /// in the logical-T benchmarks (§6.4.2).
    Delay {
        /// Idled qubit.
        qubit: usize,
        /// Idle duration in nanoseconds.
        duration_ns: u64,
    },
}

/// One instruction: an operation plus an optional classical condition.
#[derive(Debug, Clone, PartialEq)]
pub struct Instruction {
    /// The operation to perform.
    pub op: Operation,
    /// Condition under which the operation executes (`None` = always).
    pub condition: Option<Condition>,
}

impl Instruction {
    /// `true` if this instruction is classically conditioned (feedback).
    pub fn is_conditional(&self) -> bool {
        self.condition.is_some()
    }

    /// The qubits this instruction touches.
    pub fn qubits(&self) -> Vec<usize> {
        match &self.op {
            Operation::Gate { qubits, .. } => qubits.clone(),
            Operation::Measure { qubit, .. }
            | Operation::Reset { qubit }
            | Operation::Delay { qubit, .. } => vec![*qubit],
            Operation::Barrier { qubits } => qubits.clone(),
        }
    }
}

/// A dynamic quantum circuit.
///
/// # Example
///
/// ```
/// use hisq_quantum::{Circuit, Condition, Gate};
///
/// // Quantum teleportation of q0's state onto q2.
/// let mut c = Circuit::new(3, 2);
/// c.h(1);
/// c.cx(1, 2);
/// c.cx(0, 1);
/// c.h(0);
/// c.measure(0, 0);
/// c.measure(1, 1);
/// c.x_if(2, Condition::bit(1, true));
/// c.z_if(2, Condition::bit(0, true));
/// assert_eq!(c.feedback_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    name: String,
    num_qubits: usize,
    num_clbits: usize,
    instructions: Vec<Instruction>,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits and
    /// `num_clbits` classical bits.
    pub fn new(num_qubits: usize, num_clbits: usize) -> Circuit {
        Circuit {
            name: String::new(),
            num_qubits,
            num_clbits,
            instructions: Vec::new(),
        }
    }

    /// Creates an empty named circuit.
    pub fn named(name: impl Into<String>, num_qubits: usize, num_clbits: usize) -> Circuit {
        Circuit {
            name: name.into(),
            num_qubits,
            num_clbits,
            instructions: Vec::new(),
        }
    }

    /// The circuit's name (may be empty).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of classical bits.
    pub fn num_clbits(&self) -> usize {
        self.num_clbits
    }

    /// The instruction sequence.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Number of classically conditioned instructions (feedback points).
    pub fn feedback_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| i.is_conditional())
            .count()
    }

    /// Number of measurements.
    pub fn measurement_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| matches!(i.op, Operation::Measure { .. }))
            .count()
    }

    /// Number of two-qubit gates.
    pub fn two_qubit_gate_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| matches!(&i.op, Operation::Gate { gate, .. } if gate.arity() == 2))
            .count()
    }

    /// `true` if every gate is Clifford (stabilizer-simulable).
    pub fn is_clifford(&self) -> bool {
        self.instructions.iter().all(|i| match &i.op {
            Operation::Gate { gate, .. } => gate.is_clifford(),
            _ => true,
        })
    }

    fn check_qubit(&self, qubit: usize) -> Result<(), CircuitError> {
        if qubit >= self.num_qubits {
            return Err(CircuitError::QubitOutOfRange {
                qubit,
                num_qubits: self.num_qubits,
            });
        }
        Ok(())
    }

    fn check_clbit(&self, clbit: usize) -> Result<(), CircuitError> {
        if clbit >= self.num_clbits {
            return Err(CircuitError::ClbitOutOfRange {
                clbit,
                num_clbits: self.num_clbits,
            });
        }
        Ok(())
    }

    fn check_condition(&self, condition: &Option<Condition>) -> Result<(), CircuitError> {
        if let Some(cond) = condition {
            for clbit in cond.clbits() {
                self.check_clbit(clbit)?;
            }
        }
        Ok(())
    }

    /// Appends a validated instruction.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] on out-of-range indices, arity mismatch,
    /// or duplicate qubit operands.
    pub fn push(&mut self, instruction: Instruction) -> Result<(), CircuitError> {
        match &instruction.op {
            Operation::Gate { gate, qubits } => {
                if gate.arity() != qubits.len() {
                    return Err(CircuitError::ArityMismatch {
                        gate: gate.name(),
                        expected: gate.arity(),
                        found: qubits.len(),
                    });
                }
                for &q in qubits {
                    self.check_qubit(q)?;
                }
                if qubits.len() == 2 && qubits[0] == qubits[1] {
                    return Err(CircuitError::DuplicateQubit { qubit: qubits[0] });
                }
            }
            Operation::Measure { qubit, clbit } => {
                self.check_qubit(*qubit)?;
                self.check_clbit(*clbit)?;
            }
            Operation::Reset { qubit } | Operation::Delay { qubit, .. } => {
                self.check_qubit(*qubit)?;
            }
            Operation::Barrier { qubits } => {
                for &q in qubits {
                    self.check_qubit(q)?;
                }
            }
        }
        self.check_condition(&instruction.condition)?;
        self.instructions.push(instruction);
        Ok(())
    }

    /// Appends an unconditional gate.
    ///
    /// # Panics
    ///
    /// Panics on invalid operands; use [`Circuit::push`] for fallible
    /// construction.
    pub fn gate(&mut self, gate: Gate, qubits: &[usize]) -> &mut Circuit {
        self.push(Instruction {
            op: Operation::Gate {
                gate,
                qubits: qubits.to_vec(),
            },
            condition: None,
        })
        .expect("invalid gate operands");
        self
    }

    /// Appends a conditioned gate.
    ///
    /// # Panics
    ///
    /// Panics on invalid operands.
    pub fn gate_if(&mut self, gate: Gate, qubits: &[usize], condition: Condition) -> &mut Circuit {
        self.push(Instruction {
            op: Operation::Gate {
                gate,
                qubits: qubits.to_vec(),
            },
            condition: Some(condition),
        })
        .expect("invalid gate operands");
        self
    }

    /// Hadamard on `q`.
    pub fn h(&mut self, q: usize) -> &mut Circuit {
        self.gate(Gate::H, &[q])
    }

    /// Pauli X on `q`.
    pub fn x(&mut self, q: usize) -> &mut Circuit {
        self.gate(Gate::X, &[q])
    }

    /// Pauli Y on `q`.
    pub fn y(&mut self, q: usize) -> &mut Circuit {
        self.gate(Gate::Y, &[q])
    }

    /// Pauli Z on `q`.
    pub fn z(&mut self, q: usize) -> &mut Circuit {
        self.gate(Gate::Z, &[q])
    }

    /// Phase gate S on `q`.
    pub fn s(&mut self, q: usize) -> &mut Circuit {
        self.gate(Gate::S, &[q])
    }

    /// T gate on `q`.
    pub fn t(&mut self, q: usize) -> &mut Circuit {
        self.gate(Gate::T, &[q])
    }

    /// CNOT with `control` and `target`.
    pub fn cx(&mut self, control: usize, target: usize) -> &mut Circuit {
        self.gate(Gate::Cx, &[control, target])
    }

    /// CZ between `a` and `b`.
    pub fn cz(&mut self, a: usize, b: usize) -> &mut Circuit {
        self.gate(Gate::Cz, &[a, b])
    }

    /// Controlled phase of angle `theta` between `a` and `b`.
    pub fn cphase(&mut self, a: usize, b: usize, theta: f64) -> &mut Circuit {
        self.gate(Gate::Cphase(theta), &[a, b])
    }

    /// Conditional X (feedback correction).
    pub fn x_if(&mut self, q: usize, condition: Condition) -> &mut Circuit {
        self.gate_if(Gate::X, &[q], condition)
    }

    /// Conditional Z (feedback correction).
    pub fn z_if(&mut self, q: usize, condition: Condition) -> &mut Circuit {
        self.gate_if(Gate::Z, &[q], condition)
    }

    /// Measures `q` into classical bit `c`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn measure(&mut self, q: usize, c: usize) -> &mut Circuit {
        self.push(Instruction {
            op: Operation::Measure { qubit: q, clbit: c },
            condition: None,
        })
        .expect("invalid measure operands");
        self
    }

    /// Resets `q` to |0⟩.
    pub fn reset(&mut self, q: usize) -> &mut Circuit {
        self.push(Instruction {
            op: Operation::Reset { qubit: q },
            condition: None,
        })
        .expect("invalid reset operand");
        self
    }

    /// Inserts a barrier over all qubits.
    pub fn barrier(&mut self) -> &mut Circuit {
        self.push(Instruction {
            op: Operation::Barrier { qubits: Vec::new() },
            condition: None,
        })
        .expect("barrier is always valid");
        self
    }

    /// Inserts an explicit idle on `q` (e.g. modelled decoder latency).
    pub fn delay(&mut self, q: usize, duration_ns: u64) -> &mut Circuit {
        self.push(Instruction {
            op: Operation::Delay {
                qubit: q,
                duration_ns,
            },
            condition: None,
        })
        .expect("invalid delay operand");
        self
    }

    /// Appends all instructions of `other` (qubit/clbit indices must
    /// already be compatible).
    ///
    /// # Errors
    ///
    /// Returns the first validation error.
    pub fn append(&mut self, other: &Circuit) -> Result<(), CircuitError> {
        for instruction in other.instructions() {
            self.push(instruction.clone())?;
        }
        Ok(())
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit `{}`: {} qubits, {} clbits, {} instructions",
            self.name,
            self.num_qubits,
            self.num_clbits,
            self.instructions.len()
        )?;
        for (i, inst) in self.instructions.iter().enumerate() {
            write!(f, "  [{i:4}] ")?;
            if let Some(cond) = &inst.condition {
                match cond {
                    Condition::Bit { clbit, value } => {
                        write!(f, "if c{clbit}=={} ", u8::from(*value))?
                    }
                    Condition::Parity { clbits, value } => {
                        write!(f, "if parity{clbits:?}=={} ", u8::from(*value))?
                    }
                }
            }
            match &inst.op {
                Operation::Gate { gate, qubits } => writeln!(f, "{gate} {qubits:?}")?,
                Operation::Measure { qubit, clbit } => writeln!(f, "measure q{qubit} -> c{clbit}")?,
                Operation::Reset { qubit } => writeln!(f, "reset q{qubit}")?,
                Operation::Barrier { qubits } if qubits.is_empty() => writeln!(f, "barrier *")?,
                Operation::Barrier { qubits } => writeln!(f, "barrier {qubits:?}")?,
                Operation::Delay { qubit, duration_ns } => {
                    writeln!(f, "delay q{qubit} {duration_ns}ns")?
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates_ranges() {
        let mut c = Circuit::new(2, 1);
        assert!(c
            .push(Instruction {
                op: Operation::Gate {
                    gate: Gate::H,
                    qubits: vec![2],
                },
                condition: None,
            })
            .is_err());
        assert!(c
            .push(Instruction {
                op: Operation::Measure { qubit: 0, clbit: 1 },
                condition: None,
            })
            .is_err());
        assert!(c
            .push(Instruction {
                op: Operation::Gate {
                    gate: Gate::Cx,
                    qubits: vec![0, 0],
                },
                condition: None,
            })
            .is_err());
        assert!(c
            .push(Instruction {
                op: Operation::Gate {
                    gate: Gate::Cx,
                    qubits: vec![0],
                },
                condition: None,
            })
            .is_err());
    }

    #[test]
    fn condition_validation() {
        let mut c = Circuit::new(1, 1);
        let err = c.push(Instruction {
            op: Operation::Gate {
                gate: Gate::X,
                qubits: vec![0],
            },
            condition: Some(Condition::bit(3, true)),
        });
        assert!(matches!(err, Err(CircuitError::ClbitOutOfRange { .. })));
    }

    #[test]
    fn condition_evaluation() {
        let reg = [true, false, true];
        assert!(Condition::bit(0, true).evaluate(&reg));
        assert!(!Condition::bit(1, true).evaluate(&reg));
        assert!(Condition::parity(vec![0, 2], false).evaluate(&reg)); // t^t = false
        assert!(Condition::parity(vec![0, 1], true).evaluate(&reg));
        // Missing bits read as false.
        assert!(Condition::bit(9, false).evaluate(&reg));
    }

    #[test]
    fn statistics() {
        let mut c = Circuit::new(3, 2);
        c.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
        c.x_if(2, Condition::parity(vec![0, 1], true));
        assert_eq!(c.measurement_count(), 2);
        assert_eq!(c.two_qubit_gate_count(), 1);
        assert_eq!(c.feedback_count(), 1);
        assert!(c.is_clifford());
        c.t(2);
        assert!(!c.is_clifford());
    }

    #[test]
    fn append_concatenates() {
        let mut a = Circuit::new(2, 1);
        a.h(0);
        let mut b = Circuit::new(2, 1);
        b.cx(0, 1).measure(1, 0);
        a.append(&b).unwrap();
        assert_eq!(a.instructions().len(), 3);
    }

    #[test]
    fn display_is_readable() {
        let mut c = Circuit::named("demo", 2, 1);
        c.h(0).measure(0, 0).x_if(1, Condition::bit(0, true));
        let text = c.to_string();
        assert!(text.contains("demo"));
        assert!(text.contains("if c0==1"));
        assert!(text.contains("measure q0 -> c0"));
    }
}
