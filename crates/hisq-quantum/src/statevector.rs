//! Dense state-vector simulation of dynamic circuits.
//!
//! Used for logical-correctness verification at small scale (the paper's
//! CACTUS-Light is likewise verified with "multiple small-scale
//! benchmarks whose execution produces expected quantum state or
//! measurement results", §6.4.1). The [`crate::Stabilizer`] backend
//! covers the QEC-scale Clifford circuits.

use rand::Rng;

use crate::circuit::{Circuit, Instruction, Operation};
use crate::complex::C64;
use crate::gate::Gate;

/// A dense `2^n`-amplitude quantum state with dynamic-circuit execution.
///
/// Qubit `q` is the `q`-th least-significant bit of the basis index.
///
/// # Example
///
/// ```
/// use hisq_quantum::{Circuit, StateVector};
/// use rand::SeedableRng;
///
/// let mut bell = Circuit::new(2, 2);
/// bell.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let outcome = StateVector::run(&bell, &mut rng)?;
/// // Bell-state measurements are always correlated.
/// assert_eq!(outcome.clbits[0], outcome.clbits[1]);
/// # Ok::<(), hisq_quantum::CircuitError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StateVector {
    amplitudes: Vec<C64>,
    num_qubits: usize,
}

/// The result of executing a circuit on the state-vector backend.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Final classical register (indexed by clbit).
    pub clbits: Vec<bool>,
    /// Final quantum state.
    pub state: StateVector,
}

impl StateVector {
    /// Maximum qubit count accepted by [`StateVector::new`], keeping
    /// allocations below ~512 MiB.
    pub const MAX_QUBITS: usize = 24;

    /// Creates the all-zeros state |0…0⟩.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` exceeds [`StateVector::MAX_QUBITS`].
    pub fn new(num_qubits: usize) -> StateVector {
        assert!(
            num_qubits <= Self::MAX_QUBITS,
            "state vector limited to {} qubits, got {num_qubits}",
            Self::MAX_QUBITS
        );
        let mut amplitudes = vec![C64::ZERO; 1 << num_qubits];
        amplitudes[0] = C64::ONE;
        StateVector {
            amplitudes,
            num_qubits,
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The raw amplitude of basis state `index`.
    pub fn amplitude(&self, index: usize) -> C64 {
        self.amplitudes[index]
    }

    /// Probability of measuring basis state `index`.
    pub fn probability(&self, index: usize) -> f64 {
        self.amplitudes[index].norm_sqr()
    }

    /// Applies a single-qubit gate matrix to `qubit`.
    fn apply1(&mut self, m: [[C64; 2]; 2], qubit: usize) {
        let stride = 1usize << qubit;
        let n = self.amplitudes.len();
        let mut base = 0;
        while base < n {
            for offset in base..base + stride {
                let i0 = offset;
                let i1 = offset + stride;
                let a0 = self.amplitudes[i0];
                let a1 = self.amplitudes[i1];
                self.amplitudes[i0] = m[0][0] * a0 + m[0][1] * a1;
                self.amplitudes[i1] = m[1][0] * a0 + m[1][1] * a1;
            }
            base += stride << 1;
        }
    }

    /// Applies a two-qubit gate matrix; `q0` is the gate's first operand
    /// (low-order bit of the 2-bit sub-index).
    fn apply2(&mut self, m: [[C64; 4]; 4], q0: usize, q1: usize) {
        debug_assert_ne!(q0, q1);
        let mask0 = 1usize << q0;
        let mask1 = 1usize << q1;
        let n = self.amplitudes.len();
        for index in 0..n {
            // Process each 4-tuple once, from its 00 representative.
            if index & (mask0 | mask1) != 0 {
                continue;
            }
            let i00 = index;
            let i01 = index | mask0;
            let i10 = index | mask1;
            let i11 = index | mask0 | mask1;
            let a = [
                self.amplitudes[i00],
                self.amplitudes[i01],
                self.amplitudes[i10],
                self.amplitudes[i11],
            ];
            for (row, &target) in [i00, i01, i10, i11].iter().enumerate() {
                let mut acc = C64::ZERO;
                for (col, &amp) in a.iter().enumerate() {
                    acc += m[row][col] * amp;
                }
                self.amplitudes[target] = acc;
            }
        }
    }

    /// Applies a gate to the listed qubits.
    ///
    /// # Panics
    ///
    /// Panics if operand count or indices are invalid — circuits built
    /// through [`Circuit`] are pre-validated.
    pub fn apply_gate(&mut self, gate: Gate, qubits: &[usize]) {
        match gate.arity() {
            1 => self.apply1(gate.matrix1q(), qubits[0]),
            2 => self.apply2(gate.matrix2q(), qubits[0], qubits[1]),
            _ => unreachable!("gates are 1- or 2-qubit"),
        }
    }

    /// Probability that measuring `qubit` yields 1.
    pub fn prob_one(&self, qubit: usize) -> f64 {
        let mask = 1usize << qubit;
        self.amplitudes
            .iter()
            .enumerate()
            .filter(|(i, _)| i & mask != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Measures `qubit` in the Z basis, collapsing the state.
    pub fn measure(&mut self, qubit: usize, rng: &mut impl Rng) -> bool {
        let p1 = self.prob_one(qubit);
        let outcome = rng.gen_bool(p1.clamp(0.0, 1.0));
        self.collapse(qubit, outcome);
        outcome
    }

    /// Projects `qubit` onto `outcome` and renormalizes.
    fn collapse(&mut self, qubit: usize, outcome: bool) {
        let mask = 1usize << qubit;
        let mut norm = 0.0;
        for (i, amp) in self.amplitudes.iter_mut().enumerate() {
            if ((i & mask) != 0) != outcome {
                *amp = C64::ZERO;
            } else {
                norm += amp.norm_sqr();
            }
        }
        let scale = 1.0 / norm.sqrt();
        for amp in &mut self.amplitudes {
            *amp = amp.scale(scale);
        }
    }

    /// Resets `qubit` to |0⟩ (measure and flip if needed).
    pub fn reset(&mut self, qubit: usize, rng: &mut impl Rng) {
        if self.measure(qubit, rng) {
            self.apply_gate(Gate::X, &[qubit]);
        }
    }

    /// Executes one instruction against this state and a classical
    /// register.
    pub fn execute(
        &mut self,
        instruction: &Instruction,
        register: &mut [bool],
        rng: &mut impl Rng,
    ) {
        if let Some(cond) = &instruction.condition {
            if !cond.evaluate(register) {
                return;
            }
        }
        match &instruction.op {
            Operation::Gate { gate, qubits } => self.apply_gate(*gate, qubits),
            Operation::Measure { qubit, clbit } => {
                register[*clbit] = self.measure(*qubit, rng);
            }
            Operation::Reset { qubit } => self.reset(*qubit, rng),
            Operation::Barrier { .. } | Operation::Delay { .. } => {}
        }
    }

    /// Runs an entire circuit from |0…0⟩.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CircuitError`] if the circuit exceeds
    /// [`StateVector::MAX_QUBITS`] (reported as a qubit-range error).
    pub fn run(circuit: &Circuit, rng: &mut impl Rng) -> Result<RunOutcome, crate::CircuitError> {
        if circuit.num_qubits() > Self::MAX_QUBITS {
            return Err(crate::CircuitError::QubitOutOfRange {
                qubit: circuit.num_qubits(),
                num_qubits: Self::MAX_QUBITS,
            });
        }
        let mut state = StateVector::new(circuit.num_qubits());
        let mut register = vec![false; circuit.num_clbits()];
        for instruction in circuit.instructions() {
            state.execute(instruction, &mut register, rng);
        }
        Ok(RunOutcome {
            clbits: register,
            state,
        })
    }

    /// Fidelity |⟨self|other⟩|² between two pure states.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        assert_eq!(self.num_qubits, other.num_qubits, "dimension mismatch");
        let mut overlap = C64::ZERO;
        for (a, b) in self.amplitudes.iter().zip(&other.amplitudes) {
            overlap += a.conj() * *b;
        }
        overlap.norm_sqr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Condition;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xD15C0)
    }

    #[test]
    fn hadamard_gives_uniform_superposition() {
        let mut s = StateVector::new(1);
        s.apply_gate(Gate::H, &[0]);
        assert!((s.probability(0) - 0.5).abs() < 1e-12);
        assert!((s.probability(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn x_flips_basis_state() {
        let mut s = StateVector::new(2);
        s.apply_gate(Gate::X, &[1]);
        assert!((s.probability(0b10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bell_state_correlations() {
        let mut rng = rng();
        let mut bell = Circuit::new(2, 2);
        bell.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
        let mut ones = 0;
        for _ in 0..200 {
            let out = StateVector::run(&bell, &mut rng).unwrap();
            assert_eq!(out.clbits[0], out.clbits[1], "Bell outcomes must agree");
            ones += usize::from(out.clbits[0]);
        }
        // Both outcomes should occur (probability of failure ~2^-199).
        assert!(ones > 0 && ones < 200);
    }

    #[test]
    fn cx_direction_matters() {
        // control=0 (in |0>), target=1: no flip.
        let mut s = StateVector::new(2);
        s.apply_gate(Gate::Cx, &[0, 1]);
        assert!((s.probability(0) - 1.0).abs() < 1e-12);
        // control in |1>: flips target.
        let mut s = StateVector::new(2);
        s.apply_gate(Gate::X, &[0]);
        s.apply_gate(Gate::Cx, &[0, 1]);
        assert!((s.probability(0b11) - 1.0).abs() < 1e-12);
        // Reverse direction.
        let mut s = StateVector::new(2);
        s.apply_gate(Gate::X, &[1]);
        s.apply_gate(Gate::Cx, &[1, 0]);
        assert!((s.probability(0b11) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn teleportation_moves_arbitrary_state() {
        // Prepare q0 in a non-trivial state, teleport onto q2.
        let theta = 0.987;
        let phi = 0.4;
        let mut rng = rng();
        for _ in 0..25 {
            let mut c = Circuit::new(3, 2);
            c.gate(Gate::Ry(theta), &[0]);
            c.gate(Gate::Rz(phi), &[0]);
            // Bell pair between q1, q2.
            c.h(1).cx(1, 2);
            // Bell measurement of q0, q1.
            c.cx(0, 1).h(0);
            c.measure(0, 0).measure(1, 1);
            // Corrections.
            c.x_if(2, Condition::bit(1, true));
            c.z_if(2, Condition::bit(0, true));
            let out = StateVector::run(&c, &mut rng).unwrap();

            // Reference: the same preparation applied directly to q2 of a
            // 3-qubit register whose q0,q1 are post-measurement states.
            let mut reference = StateVector::new(1);
            reference.apply_gate(Gate::Ry(theta), &[0]);
            reference.apply_gate(Gate::Rz(phi), &[0]);

            // Compare the marginal state of q2 by checking amplitudes:
            // q0,q1 are collapsed to |c0 c1>, so the joint state is
            // |c1 c0> ⊗ (teleported q2 state) up to ordering; verify
            // probability of q2=1 matches.
            let got_p1 = out.state.prob_one(2);
            let want_p1 = reference.prob_one(0);
            assert!(
                (got_p1 - want_p1).abs() < 1e-9,
                "teleported P(1)={got_p1}, expected {want_p1}"
            );
        }
    }

    #[test]
    fn conditional_skipped_when_false() {
        let mut c = Circuit::new(1, 1);
        // c0 stays false; conditioned X must not fire.
        c.x_if(0, Condition::bit(0, true));
        let out = StateVector::run(&c, &mut rng()).unwrap();
        assert!((out.state.probability(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parity_condition_fires_correctly() {
        let mut c = Circuit::new(2, 2);
        // Set both clbits to 1 deterministically.
        c.x(0).measure(0, 0).reset(0).x(0).measure(0, 1);
        // parity(1,1) = 0, so condition on parity==false fires.
        c.x_if(1, Condition::parity(vec![0, 1], false));
        let out = StateVector::run(&c, &mut rng()).unwrap();
        assert!(out.clbits[0] && out.clbits[1]);
        assert!((out.state.prob_one(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reset_restores_zero() {
        let mut s = StateVector::new(1);
        s.apply_gate(Gate::H, &[0]);
        s.reset(0, &mut rng());
        assert!((s.probability(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fidelity_of_identical_and_orthogonal_states() {
        let a = StateVector::new(2);
        let mut b = StateVector::new(2);
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
        b.apply_gate(Gate::X, &[0]);
        assert!(a.fidelity(&b) < 1e-12);
    }

    #[test]
    fn measurement_collapses_and_normalizes() {
        let mut s = StateVector::new(2);
        s.apply_gate(Gate::H, &[0]);
        s.apply_gate(Gate::Cx, &[0, 1]);
        let m = s.measure(0, &mut rng());
        let total: f64 = (0..4).map(|i| s.probability(i)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Post-measurement state is a definite basis state.
        let idx = if m { 0b11 } else { 0b00 };
        assert!((s.probability(idx) - 1.0).abs() < 1e-12);
    }
}
