//! Operation-duration tables (§6.4.1 of the paper).
//!
//! > "In our evaluation, we set 20 ns (40 ns) for single (two)-qubit
//! > gates, and 300 ns for measurements."
//!
//! Durations are quantized to the TCU's 4 ns cycle grid when lowered to
//! HISQ programs; they are kept in nanoseconds here so the quantum layer
//! stays independent of controller clocking.

use crate::circuit::Operation;
use crate::gate::Gate;

/// Fixed operation durations in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateDurations {
    /// Single-qubit gate duration.
    pub single_qubit_ns: u64,
    /// Two-qubit gate duration.
    pub two_qubit_ns: u64,
    /// Measurement duration (excitation + acquisition + discrimination).
    pub measurement_ns: u64,
    /// Active qubit reset duration.
    pub reset_ns: u64,
}

impl GateDurations {
    /// The paper's evaluation parameters: 20 / 40 / 300 ns.
    pub const PAPER: GateDurations = GateDurations {
        single_qubit_ns: 20,
        two_qubit_ns: 40,
        measurement_ns: 300,
        reset_ns: 300,
    };

    /// Duration of a gate.
    pub fn gate_ns(&self, gate: Gate) -> u64 {
        match gate.arity() {
            1 => self.single_qubit_ns,
            _ => self.two_qubit_ns,
        }
    }

    /// Duration of an arbitrary circuit operation. Barriers take no time.
    pub fn operation_ns(&self, op: &Operation) -> u64 {
        match op {
            Operation::Gate { gate, .. } => self.gate_ns(*gate),
            Operation::Measure { .. } => self.measurement_ns,
            Operation::Reset { .. } => self.reset_ns,
            Operation::Barrier { .. } => 0,
            Operation::Delay { duration_ns, .. } => *duration_ns,
        }
    }
}

impl Default for GateDurations {
    fn default() -> GateDurations {
        GateDurations::PAPER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values() {
        let d = GateDurations::PAPER;
        assert_eq!(d.gate_ns(Gate::H), 20);
        assert_eq!(d.gate_ns(Gate::Cz), 40);
        assert_eq!(
            d.operation_ns(&Operation::Measure { qubit: 0, clbit: 0 }),
            300
        );
        assert_eq!(d.operation_ns(&Operation::Barrier { qubits: vec![] }), 0);
        assert_eq!(
            d.operation_ns(&Operation::Delay {
                qubit: 0,
                duration_ns: 1234
            }),
            1234
        );
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(GateDurations::default(), GateDurations::PAPER);
    }
}
