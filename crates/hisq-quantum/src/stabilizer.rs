//! CHP-style stabilizer-tableau simulation (Aaronson–Gottesman).
//!
//! The paper's QEC benchmarks (`logical_t_*`) and dynamic-circuit
//! rewrites (long-range CNOT, Figure 14) are Clifford circuits with
//! mid-circuit measurement — exactly the fragment this backend executes
//! in polynomial time, standing in for the paper's use of Stim (§6.4.2).
//!
//! Rows `0..n` of the tableau hold destabilizers, rows `n..2n`
//! stabilizers; one scratch row supports deterministic-measurement
//! phase accumulation. X/Z components are bit-packed in `u64` words.

use rand::Rng;

use crate::circuit::{Circuit, Instruction, Operation};
use crate::gate::Gate;

/// A stabilizer tableau over `n` qubits.
///
/// # Example
///
/// ```
/// use hisq_quantum::Stabilizer;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut tab = Stabilizer::new(2);
/// tab.h(0);
/// tab.cx(0, 1);
/// let a = tab.measure(0, &mut rng);
/// let b = tab.measure(1, &mut rng);
/// assert_eq!(a, b); // Bell correlations
/// ```
#[derive(Debug, Clone)]
pub struct Stabilizer {
    n: usize,
    words: usize,
    /// X-component bit rows; `2n + 1` rows of `words` u64 each.
    x: Vec<Vec<u64>>,
    /// Z-component bit rows.
    z: Vec<Vec<u64>>,
    /// Phase bits (`true` = −1).
    r: Vec<bool>,
}

fn get_bit(row: &[u64], q: usize) -> bool {
    (row[q / 64] >> (q % 64)) & 1 == 1
}

fn set_bit(row: &mut [u64], q: usize, value: bool) {
    let mask = 1u64 << (q % 64);
    if value {
        row[q / 64] |= mask;
    } else {
        row[q / 64] &= !mask;
    }
}

impl Stabilizer {
    /// Creates the tableau stabilizing |0…0⟩.
    pub fn new(num_qubits: usize) -> Stabilizer {
        let n = num_qubits;
        let words = n.div_ceil(64).max(1);
        let rows = 2 * n + 1;
        let mut tab = Stabilizer {
            n,
            words,
            x: vec![vec![0u64; words]; rows],
            z: vec![vec![0u64; words]; rows],
            r: vec![false; rows],
        };
        for i in 0..n {
            set_bit(&mut tab.x[i], i, true); // destabilizer i = X_i
            set_bit(&mut tab.z[n + i], i, true); // stabilizer i = Z_i
        }
        tab
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Hadamard on `q`: swaps X↔Z, phase flips on Y.
    pub fn h(&mut self, q: usize) {
        for row in 0..2 * self.n {
            let xq = get_bit(&self.x[row], q);
            let zq = get_bit(&self.z[row], q);
            self.r[row] ^= xq & zq;
            set_bit(&mut self.x[row], q, zq);
            set_bit(&mut self.z[row], q, xq);
        }
    }

    /// Phase gate S on `q`.
    pub fn s(&mut self, q: usize) {
        for row in 0..2 * self.n {
            let xq = get_bit(&self.x[row], q);
            let zq = get_bit(&self.z[row], q);
            self.r[row] ^= xq & zq;
            set_bit(&mut self.z[row], q, zq ^ xq);
        }
    }

    /// Inverse phase gate (S·S·S).
    pub fn sdg(&mut self, q: usize) {
        self.s(q);
        self.s(q);
        self.s(q);
    }

    /// Pauli X on `q` (phase update only).
    pub fn x(&mut self, q: usize) {
        for row in 0..2 * self.n {
            self.r[row] ^= get_bit(&self.z[row], q);
        }
    }

    /// Pauli Z on `q`.
    pub fn z(&mut self, q: usize) {
        for row in 0..2 * self.n {
            self.r[row] ^= get_bit(&self.x[row], q);
        }
    }

    /// Pauli Y on `q`.
    pub fn y(&mut self, q: usize) {
        for row in 0..2 * self.n {
            self.r[row] ^= get_bit(&self.x[row], q) ^ get_bit(&self.z[row], q);
        }
    }

    /// CNOT with `control` and `target`.
    pub fn cx(&mut self, control: usize, target: usize) {
        for row in 0..2 * self.n {
            let xa = get_bit(&self.x[row], control);
            let za = get_bit(&self.z[row], control);
            let xb = get_bit(&self.x[row], target);
            let zb = get_bit(&self.z[row], target);
            self.r[row] ^= xa & zb & (xb ^ za ^ true);
            set_bit(&mut self.x[row], target, xb ^ xa);
            set_bit(&mut self.z[row], control, za ^ zb);
        }
    }

    /// CZ between `a` and `b` (H-conjugated CNOT).
    pub fn cz(&mut self, a: usize, b: usize) {
        self.h(b);
        self.cx(a, b);
        self.h(b);
    }

    /// SWAP via three CNOTs.
    pub fn swap(&mut self, a: usize, b: usize) {
        self.cx(a, b);
        self.cx(b, a);
        self.cx(a, b);
    }

    /// Applies a Clifford gate.
    ///
    /// # Panics
    ///
    /// Panics if `gate` is not Clifford (check [`Gate::is_clifford`] or
    /// [`Circuit::is_clifford`] first) or operand counts are wrong.
    pub fn apply_gate(&mut self, gate: Gate, qubits: &[usize]) {
        match gate {
            Gate::I => {}
            Gate::X => self.x(qubits[0]),
            Gate::Y => self.y(qubits[0]),
            Gate::Z => self.z(qubits[0]),
            Gate::H => self.h(qubits[0]),
            Gate::S => self.s(qubits[0]),
            Gate::Sdg => self.sdg(qubits[0]),
            Gate::Cx => self.cx(qubits[0], qubits[1]),
            Gate::Cz => self.cz(qubits[0], qubits[1]),
            Gate::Swap => self.swap(qubits[0], qubits[1]),
            other => panic!("gate {other:?} is not Clifford; use the state-vector backend"),
        }
    }

    /// The exponent contribution of multiplying single-qubit Paulis
    /// (x1,z1)·(x2,z2), in {−1, 0, +1} (mod-4 arithmetic of i powers).
    fn g(x1: bool, z1: bool, x2: bool, z2: bool) -> i32 {
        match (x1, z1) {
            (false, false) => 0,
            (true, true) => i32::from(z2) - i32::from(x2),
            (true, false) => i32::from(z2) * (2 * i32::from(x2) - 1),
            (false, true) => i32::from(x2) * (1 - 2 * i32::from(z2)),
        }
    }

    /// Row multiplication: row `h` *= row `i` (phases included).
    fn rowsum(&mut self, h: usize, i: usize) {
        let mut exponent: i32 = 2 * i32::from(self.r[h]) + 2 * i32::from(self.r[i]);
        for q in 0..self.n {
            exponent += Self::g(
                get_bit(&self.x[i], q),
                get_bit(&self.z[i], q),
                get_bit(&self.x[h], q),
                get_bit(&self.z[h], q),
            );
        }
        // For stabilizer–stabilizer products the exponent is always 0 or
        // 2 (mod 4). Destabilizer rows may yield odd exponents during
        // measurement updates; their phases are never read, so any
        // consistent assignment works.
        let exponent = exponent.rem_euclid(4);
        self.r[h] = exponent & 2 != 0;
        for w in 0..self.words {
            let xi = self.x[i][w];
            let zi = self.z[i][w];
            self.x[h][w] ^= xi;
            self.z[h][w] ^= zi;
        }
    }

    /// Returns `Some(outcome)` if measuring `q` would be deterministic,
    /// without modifying the state.
    pub fn peek_deterministic(&self, q: usize) -> Option<bool> {
        let random = (self.n..2 * self.n).any(|p| get_bit(&self.x[p], q));
        if random {
            return None;
        }
        let mut scratch = self.clone();
        Some(scratch.deterministic_outcome(q))
    }

    fn deterministic_outcome(&mut self, q: usize) -> bool {
        let scratch = 2 * self.n;
        self.x[scratch].iter_mut().for_each(|w| *w = 0);
        self.z[scratch].iter_mut().for_each(|w| *w = 0);
        self.r[scratch] = false;
        for i in 0..self.n {
            if get_bit(&self.x[i], q) {
                self.rowsum(scratch, i + self.n);
            }
        }
        self.r[scratch]
    }

    /// Measures `q` in the Z basis.
    pub fn measure(&mut self, q: usize, rng: &mut impl Rng) -> bool {
        let n = self.n;
        // Find a stabilizer anticommuting with Z_q.
        let pivot = (n..2 * n).find(|&p| get_bit(&self.x[p], q));
        match pivot {
            Some(p) => {
                // Random outcome.
                for i in 0..2 * n {
                    if i != p && get_bit(&self.x[i], q) {
                        self.rowsum(i, p);
                    }
                }
                // Destabilizer (p−n) becomes the old stabilizer row p.
                self.x[p - n] = self.x[p].clone();
                self.z[p - n] = self.z[p].clone();
                self.r[p - n] = self.r[p];
                // New stabilizer: ±Z_q.
                let outcome = rng.gen_bool(0.5);
                self.x[p].iter_mut().for_each(|w| *w = 0);
                self.z[p].iter_mut().for_each(|w| *w = 0);
                set_bit(&mut self.z[p], q, true);
                self.r[p] = outcome;
                outcome
            }
            None => self.deterministic_outcome(q),
        }
    }

    /// Resets `q` to |0⟩.
    pub fn reset(&mut self, q: usize, rng: &mut impl Rng) {
        if self.measure(q, rng) {
            self.x(q);
        }
    }

    /// Executes one instruction against this tableau and a classical
    /// register.
    ///
    /// # Panics
    ///
    /// Panics on non-Clifford gates.
    pub fn execute(
        &mut self,
        instruction: &Instruction,
        register: &mut [bool],
        rng: &mut impl Rng,
    ) {
        if let Some(cond) = &instruction.condition {
            if !cond.evaluate(register) {
                return;
            }
        }
        match &instruction.op {
            Operation::Gate { gate, qubits } => self.apply_gate(*gate, qubits),
            Operation::Measure { qubit, clbit } => {
                register[*clbit] = self.measure(*qubit, rng);
            }
            Operation::Reset { qubit } => self.reset(*qubit, rng),
            Operation::Barrier { .. } | Operation::Delay { .. } => {}
        }
    }

    /// Runs a Clifford dynamic circuit from |0…0⟩, returning the final
    /// classical register.
    ///
    /// # Panics
    ///
    /// Panics if the circuit contains non-Clifford gates.
    pub fn run(circuit: &Circuit, rng: &mut impl Rng) -> Vec<bool> {
        let mut tab = Stabilizer::new(circuit.num_qubits());
        let mut register = vec![false; circuit.num_clbits()];
        for instruction in circuit.instructions() {
            tab.execute(instruction, &mut register, rng);
        }
        register
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Condition;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC1F)
    }

    #[test]
    fn fresh_qubits_measure_zero_deterministically() {
        let mut tab = Stabilizer::new(3);
        assert_eq!(tab.peek_deterministic(1), Some(false));
        assert!(!tab.measure(1, &mut rng()));
    }

    #[test]
    fn x_makes_one_deterministic() {
        let mut tab = Stabilizer::new(2);
        tab.x(1);
        assert_eq!(tab.peek_deterministic(1), Some(true));
        assert!(tab.measure(1, &mut rng()));
        assert_eq!(tab.peek_deterministic(0), Some(false));
    }

    #[test]
    fn hadamard_measurement_is_random_then_stable() {
        let mut r = rng();
        let mut saw = [false; 2];
        for _ in 0..64 {
            let mut tab = Stabilizer::new(1);
            tab.h(0);
            assert_eq!(tab.peek_deterministic(0), None);
            let m1 = tab.measure(0, &mut r);
            // Remeasurement must repeat the collapsed value.
            let m2 = tab.measure(0, &mut r);
            assert_eq!(m1, m2);
            saw[usize::from(m1)] = true;
        }
        assert!(saw[0] && saw[1], "H measurement should produce both values");
    }

    #[test]
    fn bell_and_ghz_correlations() {
        let mut r = rng();
        for _ in 0..32 {
            let mut tab = Stabilizer::new(3);
            tab.h(0);
            tab.cx(0, 1);
            tab.cx(1, 2);
            let a = tab.measure(0, &mut r);
            let b = tab.measure(1, &mut r);
            let c = tab.measure(2, &mut r);
            assert_eq!(a, b);
            assert_eq!(b, c);
        }
    }

    #[test]
    fn z_then_h_gives_one() {
        // H Z H |0> = X |0> = |1>.
        let mut tab = Stabilizer::new(1);
        tab.h(0);
        tab.z(0);
        tab.h(0);
        assert_eq!(tab.peek_deterministic(0), Some(true));
    }

    #[test]
    fn s_gate_quarter_turns() {
        // H S S H |0> = H Z H |0> = |1>.
        let mut tab = Stabilizer::new(1);
        tab.h(0);
        tab.s(0);
        tab.s(0);
        tab.h(0);
        assert_eq!(tab.peek_deterministic(0), Some(true));
        // sdg undoes s.
        let mut tab = Stabilizer::new(1);
        tab.h(0);
        tab.s(0);
        tab.sdg(0);
        tab.h(0);
        assert_eq!(tab.peek_deterministic(0), Some(false));
    }

    #[test]
    fn y_is_consistent_with_sxsdg() {
        let mut a = Stabilizer::new(1);
        a.h(0);
        a.y(0);
        a.h(0);
        let mut b = Stabilizer::new(1);
        b.h(0);
        b.sdg(0);
        b.x(0);
        b.s(0);
        b.h(0);
        assert_eq!(a.peek_deterministic(0), b.peek_deterministic(0));
    }

    #[test]
    fn cz_symmetry() {
        // CZ in |++> then H both gives |00> iff CZ ordering is symmetric.
        let mut r = rng();
        let mut forward = Stabilizer::new(2);
        forward.h(0);
        forward.h(1);
        forward.cz(0, 1);
        let mut backward = forward.clone();
        backward.cz(1, 0);
        backward.cz(0, 1); // net: same as forward
        let _ = forward.measure(0, &mut r);
        let _ = backward.measure(0, &mut r);
    }

    #[test]
    fn swap_moves_excitation() {
        let mut tab = Stabilizer::new(2);
        tab.x(0);
        tab.swap(0, 1);
        assert_eq!(tab.peek_deterministic(0), Some(false));
        assert_eq!(tab.peek_deterministic(1), Some(true));
    }

    #[test]
    fn teleportation_with_feedback_runs_clifford() {
        let mut r = rng();
        for _ in 0..32 {
            // Teleport |1> from q0 to q2 through measurement + feedback.
            let mut c = Circuit::new(3, 2);
            c.x(0);
            c.h(1).cx(1, 2);
            c.cx(0, 1).h(0);
            c.measure(0, 0).measure(1, 1);
            c.x_if(2, Condition::bit(1, true));
            c.z_if(2, Condition::bit(0, true));
            c.measure(2, 0); // reuse c0 for the verification readout
            let reg = Stabilizer::run(&c, &mut r);
            assert!(reg[0], "teleported |1> must measure 1");
        }
    }

    #[test]
    fn large_register_uses_multiple_words() {
        let mut r = rng();
        let n = 150; // crosses two u64 words
        let mut tab = Stabilizer::new(n);
        tab.h(0);
        for q in 1..n {
            tab.cx(q - 1, q);
        }
        let first = tab.measure(0, &mut r);
        assert_eq!(tab.peek_deterministic(149), Some(first));
    }

    #[test]
    fn reset_after_superposition() {
        let mut r = rng();
        let mut tab = Stabilizer::new(1);
        tab.h(0);
        tab.reset(0, &mut r);
        assert_eq!(tab.peek_deterministic(0), Some(false));
    }
}
