//! The T1/T2 idle-decay fidelity model behind Figure 16.
//!
//! The paper compares *infidelity* of the long-range CNOT circuit under
//! Distributed-HISQ vs the lock-step baseline while sweeping qubit
//! relaxation times from 30 µs to 300 µs. Exactly as in the paper, the
//! only noise source modelled is **decoherence during the circuit's
//! wall-clock schedule**: the scheme that finishes earlier exposes its
//! qubits for less time and therefore scores lower infidelity.
//!
//! Per qubit we use the average fidelity of the combined amplitude- and
//! phase-damping (idle) channel over exposure time `t`:
//!
//! ```text
//! F_q(t) = 1/2 + exp(-t/T2)/3 + exp(-t/T1)/6
//! ```
//!
//! and aggregate multiplicatively across qubits:
//! `infidelity = 1 − ∏_q F_q(t_q)`.

use std::fmt;

/// Coherence parameters of a qubit (or a uniform device).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoherenceParams {
    /// Relaxation (amplitude-damping) time constant, in microseconds.
    pub t1_us: f64,
    /// Dephasing time constant, in microseconds.
    pub t2_us: f64,
}

impl CoherenceParams {
    /// Uniform T1 = T2 device, the sweep axis of Figure 16.
    pub fn uniform(t_us: f64) -> CoherenceParams {
        CoherenceParams {
            t1_us: t_us,
            t2_us: t_us,
        }
    }

    /// Average idle-channel fidelity after `t_ns` nanoseconds.
    ///
    /// Monotonically decreasing in `t_ns`, equal to 1 at `t = 0`, and
    /// approaching 1/2 (the fully-decohered average fidelity of a
    /// two-level system) as `t → ∞`.
    pub fn idle_fidelity(&self, t_ns: f64) -> f64 {
        let t_us = t_ns / 1000.0;
        0.5 + (-t_us / self.t2_us).exp() / 3.0 + (-t_us / self.t1_us).exp() / 6.0
    }
}

impl Default for CoherenceParams {
    fn default() -> CoherenceParams {
        // The paper's measured device: T1 ≈ 9.9 µs (Figure 11d); sweeps
        // explore 30–300 µs.
        CoherenceParams::uniform(30.0)
    }
}

impl fmt::Display for CoherenceParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T1={}us T2={}us", self.t1_us, self.t2_us)
    }
}

/// Accumulates per-qubit exposure (decoherence-relevant wall-clock) time
/// during a simulated schedule.
///
/// The exposure window of a qubit runs from its first operation to its
/// final measurement — before initialization and after readout the qubit
/// state no longer matters. The scheduler reports absolute start/end
/// times per qubit; the ledger turns them into exposure durations.
///
/// # Example
///
/// ```
/// use hisq_quantum::{CoherenceParams, ExposureLedger};
///
/// let mut ledger = ExposureLedger::new();
/// ledger.record_span(0, 0, 1_000); // qubit 0 active for 1 µs
/// ledger.record_span(1, 0, 2_000); // qubit 1 active for 2 µs
/// let infid = ledger.infidelity(CoherenceParams::uniform(100.0));
/// assert!(infid > 0.0 && infid < 1.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExposureLedger {
    /// Per-qubit (first_activity_ns, last_activity_ns), indexed by
    /// qubit id (`None` = never active). Dense indexing keeps the
    /// per-commit recording on the simulator's hot path an array
    /// access instead of a map walk; qubit ids are small and dense by
    /// construction (allocator-assigned), so the vector stays compact.
    spans: Vec<Option<(u64, u64)>>,
}

impl ExposureLedger {
    /// Creates an empty ledger.
    pub fn new() -> ExposureLedger {
        ExposureLedger::default()
    }

    /// The recorded spans in ascending qubit order.
    fn iter_spans(&self) -> impl Iterator<Item = (usize, (u64, u64))> + '_ {
        self.spans
            .iter()
            .enumerate()
            .filter_map(|(q, span)| span.map(|s| (q, s)))
    }

    /// Records that `qubit` was active over `[start_ns, end_ns]`,
    /// widening any existing span.
    pub fn record_span(&mut self, qubit: usize, start_ns: u64, end_ns: u64) {
        if qubit >= self.spans.len() {
            self.spans.resize(qubit + 1, None);
        }
        let entry = self.spans[qubit].get_or_insert((start_ns, end_ns));
        entry.0 = entry.0.min(start_ns);
        entry.1 = entry.1.max(end_ns);
    }

    /// Records a single activity time-point.
    pub fn record_point(&mut self, qubit: usize, at_ns: u64) {
        self.record_span(qubit, at_ns, at_ns);
    }

    /// Exposure duration of `qubit` in nanoseconds (0 if never active).
    pub fn exposure_ns(&self, qubit: usize) -> u64 {
        self.spans
            .get(qubit)
            .copied()
            .flatten()
            .map_or(0, |(s, e)| e - s)
    }

    /// Iterates `(qubit, exposure_ns)` pairs in ascending qubit order —
    /// the duration source both fidelity regimes score from (idle decay
    /// here, per-nanosecond idle error in
    /// [`NoiseModel`](crate::NoiseModel)).
    pub fn exposures_ns(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.iter_spans().map(|(q, (s, e))| (q, e - s))
    }

    /// Number of qubits with recorded activity.
    pub fn qubit_count(&self) -> usize {
        self.iter_spans().count()
    }

    /// Total exposure across all qubits, in nanoseconds.
    pub fn total_exposure_ns(&self) -> u64 {
        self.iter_spans().map(|(_, (s, e))| e - s).sum()
    }

    /// Latest recorded activity (the schedule's makespan), in ns.
    pub fn makespan_ns(&self) -> u64 {
        self.iter_spans().map(|(_, (_, e))| e).max().unwrap_or(0)
    }

    /// Circuit fidelity under uniform coherence parameters:
    /// `∏_q F_q(exposure_q)`.
    pub fn fidelity(&self, params: CoherenceParams) -> f64 {
        self.iter_spans()
            .map(|(_, (s, e))| params.idle_fidelity((e - s) as f64))
            .product()
    }

    /// Circuit infidelity `1 − fidelity`.
    pub fn infidelity(&self, params: CoherenceParams) -> f64 {
        1.0 - self.fidelity(params)
    }
}

impl FromIterator<(usize, u64, u64)> for ExposureLedger {
    fn from_iter<T: IntoIterator<Item = (usize, u64, u64)>>(iter: T) -> ExposureLedger {
        let mut ledger = ExposureLedger::new();
        for (q, s, e) in iter {
            ledger.record_span(q, s, e);
        }
        ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_fidelity_limits() {
        let p = CoherenceParams::uniform(100.0);
        assert!((p.idle_fidelity(0.0) - 1.0).abs() < 1e-12);
        let long = p.idle_fidelity(1e12);
        assert!((long - 0.5).abs() < 1e-9);
    }

    #[test]
    fn idle_fidelity_monotone_in_time_and_coherence() {
        let p = CoherenceParams::uniform(100.0);
        assert!(p.idle_fidelity(1_000.0) > p.idle_fidelity(10_000.0));
        let better = CoherenceParams::uniform(300.0);
        assert!(better.idle_fidelity(10_000.0) > p.idle_fidelity(10_000.0));
    }

    #[test]
    fn ledger_widens_spans() {
        let mut ledger = ExposureLedger::new();
        ledger.record_span(3, 100, 200);
        ledger.record_span(3, 50, 150);
        ledger.record_point(3, 500);
        assert_eq!(ledger.exposure_ns(3), 450);
        assert_eq!(ledger.exposure_ns(4), 0);
        assert_eq!(ledger.qubit_count(), 1);
        assert_eq!(ledger.makespan_ns(), 500);
    }

    #[test]
    fn shorter_schedules_give_lower_infidelity() {
        let params = CoherenceParams::uniform(100.0);
        let fast: ExposureLedger = [(0, 0, 1_000), (1, 0, 1_000)].into_iter().collect();
        let slow: ExposureLedger = [(0, 0, 5_000), (1, 0, 5_000)].into_iter().collect();
        assert!(fast.infidelity(params) < slow.infidelity(params));
    }

    #[test]
    fn infidelity_scales_with_coherence_sweep() {
        // The Figure 16 sweep shape: infidelity decreases as T1=T2 grows.
        let ledger: ExposureLedger = [(0, 0, 10_000), (1, 0, 12_000)].into_iter().collect();
        let mut previous = f64::INFINITY;
        for t_us in [30.0, 100.0, 200.0, 300.0] {
            let infid = ledger.infidelity(CoherenceParams::uniform(t_us));
            assert!(infid < previous, "infidelity must fall as T1 grows");
            previous = infid;
        }
    }

    #[test]
    fn total_exposure_sums_qubits() {
        let ledger: ExposureLedger = [(0, 0, 100), (1, 50, 250)].into_iter().collect();
        assert_eq!(ledger.total_exposure_ns(), 300);
    }
}
