//! JSON serialization of the quantum-model types, for the
//! scenario-file surface (`hisq run`).
//!
//! Formats (all decoders reject unknown fields):
//!
//! ```json
//! {"p_gate_1q": 0.001, "p_gate_2q": 0.01, "p_meas": 0.02,
//!  "p_idle_per_ns": 1e-6, "p_leak": 0.0005}
//! ```
//!
//! Gates render as a bare string (`"cx"`) when parameterless, or as
//! `{"gate": "rz", "angle": 0.7853981633974483}` when carrying a
//! rotation angle.

use hisq_json::{Json, JsonError, ObjReader};

use crate::gate::Gate;
use crate::noise::{NoiseMap, NoiseModel};
use crate::timing::GateDurations;

impl NoiseModel {
    /// Serializes the error rates. Zero rates are emitted too (the
    /// noiseless model renders as five explicit zeros), so files state
    /// their physics assumptions in full.
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("p_gate_1q".into(), Json::float(self.p_gate_1q)),
            ("p_gate_2q".into(), Json::float(self.p_gate_2q)),
            ("p_meas".into(), Json::float(self.p_meas)),
            ("p_idle_per_ns".into(), Json::float(self.p_idle_per_ns)),
            ("p_leak".into(), Json::float(self.p_leak)),
        ])
    }

    /// Parses a noise model serialized by [`NoiseModel::to_json`].
    /// Omitted fields are zero (noiseless), so `{}` is
    /// [`NoiseModel::NOISELESS`].
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] at `path` for unknown fields, wrong
    /// types, or rates outside `[0, 1]`.
    pub fn from_json(value: &Json, path: &str) -> Result<NoiseModel, JsonError> {
        let mut obj = ObjReader::new(value, path)?;
        let mut model = NoiseModel::NOISELESS;
        let rate = |obj: &mut ObjReader, name: &str, default: f64| -> Result<f64, JsonError> {
            let Some(v) = obj.optional(name) else {
                return Ok(default);
            };
            let field_path = obj.field_path(name);
            let rate = v.as_f64(&field_path)?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(JsonError::decode(
                    field_path,
                    format!("probability {rate} is outside [0, 1]"),
                ));
            }
            Ok(rate)
        };
        model.p_gate_1q = rate(&mut obj, "p_gate_1q", 0.0)?;
        model.p_gate_2q = rate(&mut obj, "p_gate_2q", 0.0)?;
        model.p_meas = rate(&mut obj, "p_meas", 0.0)?;
        model.p_idle_per_ns = rate(&mut obj, "p_idle_per_ns", 0.0)?;
        model.p_leak = rate(&mut obj, "p_leak", 0.0)?;
        obj.reject_unknown()?;
        Ok(model)
    }
}

impl NoiseMap {
    /// Serializes the map. A uniform map emits **exactly** the
    /// [`NoiseModel::to_json`] shape (no `overrides` key), so scenario
    /// files that never touch per-qubit noise are byte-identical to the
    /// historical format; overrides append an
    /// `"overrides": [{"qubit": q, "noise": {...}}]` array in ascending
    /// qubit order.
    pub fn to_json(&self) -> Json {
        let mut json = self.default_model().to_json();
        if !self.is_uniform() {
            let overrides: Vec<Json> = self
                .overrides()
                .map(|(qubit, noise)| {
                    Json::Object(vec![
                        ("qubit".into(), (qubit as u64).into()),
                        ("noise".into(), noise.to_json()),
                    ])
                })
                .collect();
            if let Json::Object(fields) = &mut json {
                fields.push(("overrides".into(), Json::Array(overrides)));
            }
        }
        json
    }

    /// Parses a map serialized by [`NoiseMap::to_json`]. The plain
    /// [`NoiseModel`] shape parses as a uniform map, so every
    /// historical noise field remains valid.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] at `path` for unknown fields, wrong
    /// types, rates outside `[0, 1]`, or duplicate qubit overrides.
    pub fn from_json(value: &Json, path: &str) -> Result<NoiseMap, JsonError> {
        let Json::Object(fields) = value else {
            // Delegate for the uniform error message ("expected an
            // object, got ...").
            return Ok(NoiseMap::uniform(NoiseModel::from_json(value, path)?));
        };
        let model_fields: Vec<(String, Json)> = fields
            .iter()
            .filter(|(name, _)| name != "overrides")
            .cloned()
            .collect();
        let default = NoiseModel::from_json(&Json::Object(model_fields), path)?;
        let mut map = NoiseMap::uniform(default);
        let Some((_, overrides)) = fields.iter().find(|(name, _)| name == "overrides") else {
            return Ok(map);
        };
        let overrides_path = format!("{path}.overrides");
        let entries = overrides.as_array(&overrides_path)?;
        let mut seen = std::collections::BTreeSet::new();
        for (i, entry) in entries.iter().enumerate() {
            let entry_path = format!("{overrides_path}[{i}]");
            let mut obj = ObjReader::new(entry, &entry_path)?;
            let qubit = obj.required("qubit")?.as_u64(&obj.field_path("qubit"))? as usize;
            let noise = NoiseModel::from_json(obj.required("noise")?, &obj.field_path("noise"))?;
            obj.reject_unknown()?;
            if !seen.insert(qubit) {
                return Err(JsonError::decode(
                    entry_path,
                    format!("duplicate override for qubit {qubit}"),
                ));
            }
            map.set_qubit(qubit, noise);
        }
        Ok(map)
    }
}

impl GateDurations {
    /// Serializes the gate durations (nanoseconds).
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("single_qubit_ns".into(), self.single_qubit_ns.into()),
            ("two_qubit_ns".into(), self.two_qubit_ns.into()),
            ("measurement_ns".into(), self.measurement_ns.into()),
            ("reset_ns".into(), self.reset_ns.into()),
        ])
    }

    /// Parses durations serialized by [`GateDurations::to_json`].
    /// Omitted fields take the paper's values ([`GateDurations::PAPER`]).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] at `path` for unknown fields or wrong
    /// types.
    pub fn from_json(value: &Json, path: &str) -> Result<GateDurations, JsonError> {
        let mut obj = ObjReader::new(value, path)?;
        let mut durations = GateDurations::PAPER;
        if let Some(v) = obj.optional("single_qubit_ns") {
            durations.single_qubit_ns = v.as_u64(&obj.field_path("single_qubit_ns"))?;
        }
        if let Some(v) = obj.optional("two_qubit_ns") {
            durations.two_qubit_ns = v.as_u64(&obj.field_path("two_qubit_ns"))?;
        }
        if let Some(v) = obj.optional("measurement_ns") {
            durations.measurement_ns = v.as_u64(&obj.field_path("measurement_ns"))?;
        }
        if let Some(v) = obj.optional("reset_ns") {
            durations.reset_ns = v.as_u64(&obj.field_path("reset_ns"))?;
        }
        obj.reject_unknown()?;
        Ok(durations)
    }
}

impl Gate {
    /// The wire name of this gate (lower-case, matching the usual
    /// OpenQASM spellings).
    fn wire_name(self) -> &'static str {
        match self {
            Gate::I => "i",
            Gate::X => "x",
            Gate::Y => "y",
            Gate::Z => "z",
            Gate::H => "h",
            Gate::S => "s",
            Gate::Sdg => "sdg",
            Gate::T => "t",
            Gate::Tdg => "tdg",
            Gate::Rx(_) => "rx",
            Gate::Ry(_) => "ry",
            Gate::Rz(_) => "rz",
            Gate::Phase(_) => "p",
            Gate::Cx => "cx",
            Gate::Cz => "cz",
            Gate::Cphase(_) => "cp",
            Gate::Swap => "swap",
        }
    }

    /// Serializes the gate: a bare string for parameterless gates, an
    /// object carrying the angle for rotations.
    pub fn to_json(&self) -> Json {
        match *self {
            Gate::Rx(a) | Gate::Ry(a) | Gate::Rz(a) | Gate::Phase(a) | Gate::Cphase(a) => {
                Json::Object(vec![
                    ("gate".into(), Json::str(self.wire_name())),
                    ("angle".into(), Json::float(a)),
                ])
            }
            _ => Json::str(self.wire_name()),
        }
    }

    /// Parses a gate serialized by [`Gate::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] at `path` for unknown gate names, a
    /// missing/superfluous `angle`, or wrong types.
    pub fn from_json(value: &Json, path: &str) -> Result<Gate, JsonError> {
        let (name, angle) = match value {
            Json::Str(name) => (name.as_str(), None),
            Json::Object(_) => {
                let mut obj = ObjReader::new(value, path)?;
                let name = obj.required("gate")?.as_str(&obj.field_path("gate"))?;
                let angle = match obj.optional("angle") {
                    Some(v) => Some(v.as_f64(&obj.field_path("angle"))?),
                    None => None,
                };
                obj.reject_unknown()?;
                (name, angle)
            }
            other => {
                return Err(JsonError::decode(
                    path,
                    format!("expected a gate name or object, got {}", other.type_name()),
                ))
            }
        };
        let parameterless = |gate: Gate| match angle {
            None => Ok(gate),
            Some(_) => Err(JsonError::decode(
                path,
                format!("gate \"{name}\" takes no angle"),
            )),
        };
        let rotation = |make: fn(f64) -> Gate| match angle {
            Some(a) => Ok(make(a)),
            None => Err(JsonError::decode(
                path,
                format!("gate \"{name}\" requires an `angle` field"),
            )),
        };
        match name {
            "i" => parameterless(Gate::I),
            "x" => parameterless(Gate::X),
            "y" => parameterless(Gate::Y),
            "z" => parameterless(Gate::Z),
            "h" => parameterless(Gate::H),
            "s" => parameterless(Gate::S),
            "sdg" => parameterless(Gate::Sdg),
            "t" => parameterless(Gate::T),
            "tdg" => parameterless(Gate::Tdg),
            "rx" => rotation(Gate::Rx),
            "ry" => rotation(Gate::Ry),
            "rz" => rotation(Gate::Rz),
            "p" => rotation(Gate::Phase),
            "cx" => parameterless(Gate::Cx),
            "cz" => parameterless(Gate::Cz),
            "cp" => rotation(Gate::Cphase),
            "swap" => parameterless(Gate::Swap),
            other => Err(JsonError::decode(path, format!("unknown gate \"{other}\""))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisq_json::Json;

    #[test]
    fn noise_model_round_trips() {
        for model in [
            NoiseModel::NOISELESS,
            NoiseModel::NOISELESS
                .with_gate_errors(1e-3, 1e-2)
                .with_meas_error(0.02)
                .with_idle_error(1e-6)
                .with_leak(5e-4),
        ] {
            let text = model.to_json().to_string_compact();
            let back = NoiseModel::from_json(&Json::parse(&text).unwrap(), "noise").unwrap();
            assert_eq!(model, back, "{text}");
        }
        // `{}` is the noiseless model.
        assert_eq!(
            NoiseModel::from_json(&Json::parse("{}").unwrap(), "noise").unwrap(),
            NoiseModel::NOISELESS
        );
    }

    #[test]
    fn noise_model_rejects_bad_rates() {
        let err = NoiseModel::from_json(&Json::parse(r#"{"p_meas": 1.5}"#).unwrap(), "noise")
            .unwrap_err();
        assert!(err.to_string().contains("outside [0, 1]"), "{err}");
        let err =
            NoiseModel::from_json(&Json::parse(r#"{"p_mea": 0.1}"#).unwrap(), "noise").unwrap_err();
        assert_eq!(err.to_string(), "noise: unknown field `p_mea`");
    }

    #[test]
    fn noise_map_round_trips_and_uniform_matches_model_shape() {
        let default = NoiseModel::NOISELESS.with_gate_errors(1e-3, 1e-2);
        let hot = NoiseModel::NOISELESS.with_gate_errors(5e-2, 1e-1);
        // Uniform maps emit exactly the NoiseModel shape.
        let uniform = NoiseMap::uniform(default);
        assert_eq!(
            uniform.to_json().to_string_compact(),
            default.to_json().to_string_compact()
        );
        // And the NoiseModel shape parses as a uniform map.
        let back = NoiseMap::from_json(&default.to_json(), "noise").unwrap();
        assert_eq!(back, uniform);
        // Overrides round-trip.
        let mut map = uniform.clone();
        map.set_qubit(2, hot);
        map.set_qubit(7, NoiseModel::NOISELESS);
        let text = map.to_json().to_string_compact();
        assert!(text.contains(r#""overrides":[{"qubit":2,"#), "{text}");
        let back = NoiseMap::from_json(&Json::parse(&text).unwrap(), "noise").unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn noise_map_rejects_bad_overrides() {
        let dup = r#"{"p_gate_1q": 0.001, "p_gate_2q": 0.0, "p_meas": 0.0,
                      "p_idle_per_ns": 0.0, "p_leak": 0.0,
                      "overrides": [{"qubit": 1, "noise": {}},
                                    {"qubit": 1, "noise": {"p_meas": 0.1}}]}"#;
        let err = NoiseMap::from_json(&Json::parse(dup).unwrap(), "noise").unwrap_err();
        assert_eq!(
            err.to_string(),
            "noise.overrides[1]: duplicate override for qubit 1"
        );
        let unknown = r#"{"overrides": [{"qubit": 0, "noise": {}, "p_one": 0.5}]}"#;
        let err = NoiseMap::from_json(&Json::parse(unknown).unwrap(), "noise").unwrap_err();
        assert_eq!(err.to_string(), "noise.overrides[0]: unknown field `p_one`");
        let missing = r#"{"overrides": [{"noise": {}}]}"#;
        let err = NoiseMap::from_json(&Json::parse(missing).unwrap(), "noise").unwrap_err();
        assert_eq!(err.to_string(), "noise.overrides[0]: missing field `qubit`");
        let bad_rate = r#"{"overrides": [{"qubit": 0, "noise": {"p_meas": 2.0}}]}"#;
        let err = NoiseMap::from_json(&Json::parse(bad_rate).unwrap(), "noise").unwrap_err();
        assert!(err.to_string().contains("outside [0, 1]"), "{err}");
    }

    #[test]
    fn gate_durations_round_trip() {
        let durations = GateDurations {
            single_qubit_ns: 25,
            two_qubit_ns: 50,
            measurement_ns: 400,
            reset_ns: 350,
        };
        let back = GateDurations::from_json(&durations.to_json(), "durations").unwrap();
        assert_eq!(durations, back);
        assert_eq!(
            GateDurations::from_json(&Json::parse("{}").unwrap(), "durations").unwrap(),
            GateDurations::PAPER
        );
    }

    #[test]
    fn gates_round_trip() {
        let gates = [
            Gate::I,
            Gate::X,
            Gate::H,
            Gate::Sdg,
            Gate::Tdg,
            Gate::Rx(0.25),
            Gate::Ry(-1.5),
            Gate::Rz(std::f64::consts::PI),
            Gate::Phase(0.5),
            Gate::Cx,
            Gate::Cz,
            Gate::Cphase(std::f64::consts::FRAC_PI_4),
            Gate::Swap,
        ];
        for gate in gates {
            let text = gate.to_json().to_string_compact();
            let back = Gate::from_json(&Json::parse(&text).unwrap(), "gate").unwrap();
            assert_eq!(gate, back, "{text}");
        }
    }

    #[test]
    fn gate_errors_are_loud() {
        for (text, needle) in [
            (r#""warp""#, "unknown gate"),
            (r#""rx""#, "requires an `angle`"),
            (r#"{"gate": "cx", "angle": 1.0}"#, "takes no angle"),
            (r#"{"gate": "rx"}"#, "requires an `angle`"),
            ("42", "expected a gate name or object"),
        ] {
            let err = Gate::from_json(&Json::parse(text).unwrap(), "gate").unwrap_err();
            assert!(err.to_string().contains(needle), "{text}: {err}");
        }
    }
}
