//! The gate set of the dynamic-circuit IR.

use std::f64::consts::FRAC_1_SQRT_2;
use std::fmt;

use crate::complex::C64;

/// A quantum gate.
///
/// The set covers everything the paper's benchmarks need: the Clifford
/// group generators (`H`, `S`, `CX`, `CZ`), Paulis, the non-Clifford `T`
/// family, and parameterized rotations (used by QFT's controlled phases
/// after decomposition, and by calibration experiments).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    /// Identity (explicit idle).
    I,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate `S = diag(1, i)`.
    S,
    /// Inverse phase gate.
    Sdg,
    /// `T = diag(1, e^{iπ/4})`.
    T,
    /// Inverse T.
    Tdg,
    /// X-axis rotation by an angle in radians.
    Rx(f64),
    /// Y-axis rotation by an angle in radians.
    Ry(f64),
    /// Z-axis rotation by an angle in radians.
    Rz(f64),
    /// Phase gate `diag(1, e^{iθ})`.
    Phase(f64),
    /// Controlled-X (CNOT). Qubit order: control, target.
    Cx,
    /// Controlled-Z (symmetric).
    Cz,
    /// Controlled phase `diag(1,1,1,e^{iθ})` — the QFT workhorse.
    Cphase(f64),
    /// SWAP.
    Swap,
}

impl Gate {
    /// Number of qubits the gate acts on.
    pub fn arity(self) -> usize {
        match self {
            Gate::I
            | Gate::X
            | Gate::Y
            | Gate::Z
            | Gate::H
            | Gate::S
            | Gate::Sdg
            | Gate::T
            | Gate::Tdg
            | Gate::Rx(_)
            | Gate::Ry(_)
            | Gate::Rz(_)
            | Gate::Phase(_) => 1,
            Gate::Cx | Gate::Cz | Gate::Cphase(_) | Gate::Swap => 2,
        }
    }

    /// `true` if the gate is a member of the Clifford group (and thus
    /// executable by the [`crate::Stabilizer`] backend).
    pub fn is_clifford(self) -> bool {
        match self {
            Gate::I
            | Gate::X
            | Gate::Y
            | Gate::Z
            | Gate::H
            | Gate::S
            | Gate::Sdg
            | Gate::Cx
            | Gate::Cz
            | Gate::Swap => true,
            Gate::T | Gate::Tdg => false,
            // Rotations are Clifford only at multiples of π/2; we treat
            // parameterized gates as non-Clifford for backend selection.
            Gate::Rx(_) | Gate::Ry(_) | Gate::Rz(_) | Gate::Phase(_) | Gate::Cphase(_) => false,
        }
    }

    /// Short lowercase name used in textual dumps, e.g. `"cx"`.
    pub fn name(self) -> &'static str {
        match self {
            Gate::I => "id",
            Gate::X => "x",
            Gate::Y => "y",
            Gate::Z => "z",
            Gate::H => "h",
            Gate::S => "s",
            Gate::Sdg => "sdg",
            Gate::T => "t",
            Gate::Tdg => "tdg",
            Gate::Rx(_) => "rx",
            Gate::Ry(_) => "ry",
            Gate::Rz(_) => "rz",
            Gate::Phase(_) => "p",
            Gate::Cx => "cx",
            Gate::Cz => "cz",
            Gate::Cphase(_) => "cp",
            Gate::Swap => "swap",
        }
    }

    /// The 2×2 unitary of a single-qubit gate, row-major.
    ///
    /// # Panics
    ///
    /// Panics if called on a two-qubit gate; use [`Gate::matrix2q`].
    pub fn matrix1q(self) -> [[C64; 2]; 2] {
        let o = C64::ONE;
        let z = C64::ZERO;
        let i = C64::I;
        let h = C64::real(FRAC_1_SQRT_2);
        match self {
            Gate::I => [[o, z], [z, o]],
            Gate::X => [[z, o], [o, z]],
            Gate::Y => [[z, -i], [i, z]],
            Gate::Z => [[o, z], [z, -o]],
            Gate::H => [[h, h], [h, -h]],
            Gate::S => [[o, z], [z, i]],
            Gate::Sdg => [[o, z], [z, -i]],
            Gate::T => [[o, z], [z, C64::from_polar(std::f64::consts::FRAC_PI_4)]],
            Gate::Tdg => [[o, z], [z, C64::from_polar(-std::f64::consts::FRAC_PI_4)]],
            Gate::Rx(theta) => {
                let c = C64::real((theta / 2.0).cos());
                let s = C64::new(0.0, -(theta / 2.0).sin());
                [[c, s], [s, c]]
            }
            Gate::Ry(theta) => {
                let c = C64::real((theta / 2.0).cos());
                let s = C64::real((theta / 2.0).sin());
                [[c, -s], [s, c]]
            }
            Gate::Rz(theta) => [
                [C64::from_polar(-theta / 2.0), z],
                [z, C64::from_polar(theta / 2.0)],
            ],
            Gate::Phase(theta) => [[o, z], [z, C64::from_polar(theta)]],
            _ => panic!("matrix1q called on two-qubit gate {self:?}"),
        }
    }

    /// The 4×4 unitary of a two-qubit gate in the basis
    /// `|q1 q0⟩ ∈ {00, 01, 10, 11}` with the **first** listed qubit as
    /// the low-order bit.
    ///
    /// # Panics
    ///
    /// Panics if called on a single-qubit gate; use [`Gate::matrix1q`].
    pub fn matrix2q(self) -> [[C64; 4]; 4] {
        let o = C64::ONE;
        let z = C64::ZERO;
        match self {
            // Basis order: index = (second_qubit << 1) | first_qubit,
            // first listed qubit = control for Cx.
            Gate::Cx => [[o, z, z, z], [z, z, z, o], [z, z, o, z], [z, o, z, z]],
            Gate::Cz => [[o, z, z, z], [z, o, z, z], [z, z, o, z], [z, z, z, -o]],
            Gate::Cphase(theta) => [
                [o, z, z, z],
                [z, o, z, z],
                [z, z, o, z],
                [z, z, z, C64::from_polar(theta)],
            ],
            Gate::Swap => [[o, z, z, z], [z, z, o, z], [z, o, z, z], [z, z, z, o]],
            _ => panic!("matrix2q called on single-qubit gate {self:?}"),
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gate::Rx(t) | Gate::Ry(t) | Gate::Rz(t) | Gate::Phase(t) | Gate::Cphase(t) => {
                write!(f, "{}({t:.6})", self.name())
            }
            _ => f.write_str(self.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat_mul2(a: [[C64; 2]; 2], b: [[C64; 2]; 2]) -> [[C64; 2]; 2] {
        let mut out = [[C64::ZERO; 2]; 2];
        for r in 0..2 {
            for c in 0..2 {
                for k in 0..2 {
                    out[r][c] += a[r][k] * b[k][c];
                }
            }
        }
        out
    }

    fn assert_identity2(m: [[C64; 2]; 2]) {
        for (r, row) in m.iter().enumerate() {
            for (c, entry) in row.iter().enumerate() {
                let expect = if r == c { C64::ONE } else { C64::ZERO };
                assert!(entry.approx_eq(expect, 1e-12), "entry ({r},{c}) = {entry}");
            }
        }
    }

    #[test]
    fn single_qubit_gates_are_unitary() {
        for gate in [
            Gate::I,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::Rx(0.7),
            Gate::Ry(1.3),
            Gate::Rz(-0.4),
            Gate::Phase(2.2),
        ] {
            let m = gate.matrix1q();
            let dagger = [
                [m[0][0].conj(), m[1][0].conj()],
                [m[0][1].conj(), m[1][1].conj()],
            ];
            assert_identity2(mat_mul2(m, dagger));
        }
    }

    #[test]
    fn two_qubit_gates_are_unitary() {
        for gate in [Gate::Cx, Gate::Cz, Gate::Swap, Gate::Cphase(0.9)] {
            let m = gate.matrix2q();
            for r in 0..4 {
                for c in 0..4 {
                    let mut dot = C64::ZERO;
                    for (x, y) in m[r].iter().zip(&m[c]) {
                        dot += *x * y.conj();
                    }
                    let expect = if r == c { C64::ONE } else { C64::ZERO };
                    assert!(dot.approx_eq(expect, 1e-12));
                }
            }
        }
    }

    #[test]
    fn s_squared_is_z() {
        let s = Gate::S.matrix1q();
        let z = Gate::Z.matrix1q();
        let ss = mat_mul2(s, s);
        for r in 0..2 {
            for c in 0..2 {
                assert!(ss[r][c].approx_eq(z[r][c], 1e-12));
            }
        }
    }

    #[test]
    fn t_squared_is_s() {
        let t = Gate::T.matrix1q();
        let s = Gate::S.matrix1q();
        let tt = mat_mul2(t, t);
        for r in 0..2 {
            for c in 0..2 {
                assert!(tt[r][c].approx_eq(s[r][c], 1e-12));
            }
        }
    }

    #[test]
    fn arity_and_cliffordness() {
        assert_eq!(Gate::H.arity(), 1);
        assert_eq!(Gate::Cx.arity(), 2);
        assert!(Gate::Cz.is_clifford());
        assert!(!Gate::T.is_clifford());
        assert!(!Gate::Cphase(0.1).is_clifford());
    }

    #[test]
    fn display_includes_angles() {
        assert_eq!(Gate::H.to_string(), "h");
        assert!(Gate::Rz(0.5).to_string().starts_with("rz(0.5"));
    }
}
