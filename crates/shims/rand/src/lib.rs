//! Offline stand-in for the `rand` crate, exposing the 0.8-era API
//! subset this workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer/float ranges, and [`Rng::gen_bool`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64, so streams
//! are deterministic per seed — which is exactly what the seeded tests
//! and benches rely on.

pub mod rngs;

/// Low-level source of random words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic stream).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`low..high` or `low..=high`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Marker for types [`Rng::gen_range`] can sample.
pub trait SampleUniform: Sized {}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a random word to the unit interval `[0, 1)` with 53 bits of
/// precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {}

        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = rng.next_u64() as u128 % span;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = rng.next_u64() as u128 % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        // The closed upper endpoint has measure zero; sampling the
        // half-open interval is indistinguishable for f64 consumers.
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(-2048i32..=2047);
            assert!((-2048..=2047).contains(&v));
            let u = rng.gen_range(3usize..7);
            assert!((3..7).contains(&u));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "suspicious bias: {heads}");
    }
}
