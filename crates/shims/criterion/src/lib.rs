//! Offline stand-in for the `criterion` crate.
//!
//! Supports the API subset the workspace benches use —
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] with [`BenchmarkGroup::throughput`] and
//! [`BenchmarkGroup::sample_size`], and [`Bencher::iter`] — and reports a
//! simple mean wall-clock time per iteration instead of criterion's full
//! statistical analysis. Good enough to keep the benches compiling,
//! runnable, and honest about relative cost; not a measurement-grade
//! replacement.

use std::time::{Duration, Instant};

/// Wall-clock budget per benchmark: enough iterations to amortize timer
/// overhead while keeping `cargo bench` runs short.
const TARGET_TIME: Duration = Duration::from_millis(200);
const WARMUP_ITERS: u64 = 3;

/// Entry point handed to each bench function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        bencher.report(id.as_ref(), None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.as_ref().to_string(),
            throughput: None,
        }
    }
}

/// Units-per-iteration annotation for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A named collection of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benches with a units-per-iteration rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the shim sizes runs by wall
    /// clock, not sample count.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id.as_ref()), self.throughput);
        self
    }

    /// Ends the group (criterion finalizes reports here; the shim
    /// reports eagerly, so this is a no-op).
    pub fn finish(self) {}
}

/// Times closures handed to [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    mean_ns: f64,
}

impl Bencher {
    /// Measures the mean wall-clock time of `routine`.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(routine());
        }
        // Calibrate a batch size from a single timed call, then run
        // whole batches until the time budget is spent.
        let start = Instant::now();
        std::hint::black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(10).as_nanos() / once.as_nanos()).clamp(1, 100_000);
        let mut iters = 1u64;
        let mut elapsed = once;
        while elapsed < TARGET_TIME {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            elapsed += start.elapsed();
            iters += batch as u64;
        }
        self.mean_ns = elapsed.as_nanos() as f64 / iters as f64;
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        let rate = match throughput {
            Some(Throughput::Elements(n)) => {
                format!("  ({:.1} Melem/s)", n as f64 * 1e3 / self.mean_ns)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  ({:.1} MB/s)", n as f64 * 1e3 / self.mean_ns)
            }
            None => String::new(),
        };
        println!("{id:<40} time: {:>12.1} ns/iter{rate}", self.mean_ns);
    }
}

/// Declares a function running a list of bench functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
