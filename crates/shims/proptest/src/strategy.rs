//! Value-generation strategies: the sampling core of the shim.

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for producing random values of one type.
///
/// Real proptest separates strategies from value trees to support
/// shrinking; this shim samples directly.
pub trait Strategy {
    type Value;

    /// Draws one value from the strategy.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms every sampled value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        (**self).sample(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice over type-erased arms; built by [`crate::prop_oneof!`].
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// # Panics
    ///
    /// Panics when given no arms.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        let arm = rng.gen_range(0..self.arms.len());
        self.arms[arm].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
