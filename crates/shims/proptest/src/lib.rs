//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset of the proptest 1.x API this workspace uses:
//! the [`proptest!`] test macro, [`prop_oneof!`], the assertion macros,
//! [`strategy::Strategy`] with `prop_map`, range/tuple/[`strategy::Just`]
//! strategies, [`arbitrary::any`], [`collection::vec`], and
//! [`test_runner::Config`] (a.k.a. `ProptestConfig`).
//!
//! Unlike real proptest this shim does **no shrinking**: a failing case
//! reports the case number and seed so the run can be reproduced (the
//! sampling is fully deterministic), but inputs are not minimized.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies, mirroring `proptest::proptest!`.
///
/// Each body runs once per generated case; assertion macros abort the
/// whole test on the first failing case.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let strategy = ($($strategy,)+);
                $crate::test_runner::TestRunner::new(config).run(
                    &strategy,
                    |($($arg,)+)| {
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

/// Uniform choice between strategies producing the same value type,
/// mirroring `proptest::prop_oneof!` (unweighted arms only).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current test case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}: `{:?}` != `{:?}`",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Fails the current test case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Discards the current case (does not count toward the case budget)
/// unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}
