//! `any::<T>()` — full-domain strategies for primitive types.

use core::marker::PhantomData;

use rand::rngs::StdRng;
use rand::RngCore;

use crate::strategy::Strategy;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

/// Returns the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}
