//! Collection strategies (`proptest::collection::vec`).

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Strategy for `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
    assert!(!size.is_empty(), "vec size range must be non-empty");
    VecStrategy { element, size }
}

/// Strategy returned by [`vec()`](fn@vec).
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: core::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
