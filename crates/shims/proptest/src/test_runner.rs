//! The case loop: draws inputs, runs the property, reports failures.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::strategy::Strategy;

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of successful (non-rejected) cases required.
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// A `prop_assert*!` failed: the whole test fails.
    Fail(String),
    /// A `prop_assume!` did not hold: the case is discarded.
    Reject(String),
}

/// Result type the `proptest!`-generated closures return.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Base seed for case generation. Overridable via `PROPTEST_SEED` so a
/// reported failure can be replayed exactly.
const DEFAULT_SEED: u64 = 0x4849_5351_2025; // "HISQ" 2025

/// Executes a property over `config.cases` sampled inputs.
pub struct TestRunner {
    config: Config,
}

impl TestRunner {
    pub fn new(config: Config) -> Self {
        TestRunner { config }
    }

    /// Runs `test` on freshly sampled values until the case budget is
    /// met, a case fails, or the reject budget is exhausted.
    ///
    /// # Panics
    ///
    /// Panics on the first failing case (with its seed, for replay) and
    /// when rejects outnumber `cases * 16`.
    pub fn run<S, F>(&mut self, strategy: &S, test: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> TestCaseResult,
    {
        let base_seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_SEED);
        let max_rejects = self.config.cases as u64 * 16;
        let mut rejects = 0u64;
        let mut case = 0u32;
        let mut attempt = 0u64;
        while case < self.config.cases {
            let seed = base_seed ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            attempt += 1;
            let mut rng = StdRng::seed_from_u64(seed);
            match test(strategy.sample(&mut rng)) {
                Ok(()) => case += 1,
                Err(TestCaseError::Reject(why)) => {
                    rejects += 1;
                    assert!(
                        rejects <= max_rejects,
                        "too many rejected cases ({rejects}); last: {why}"
                    );
                }
                Err(TestCaseError::Fail(message)) => {
                    panic!(
                        "property failed at case {case} (replay with PROPTEST_SEED={base_seed}, \
                         case seed {seed}): {message}"
                    );
                }
            }
        }
    }
}
