//! Drive-pulse synthesis: envelopes modulated by a numerically
//! controlled oscillator (NCO).
//!
//! A codeword on an XY channel resolves to a [`Pulse`]: the direct
//! microwave-synthesis path of §2.2 (set NCO frequency/phase, trigger a
//! DAC envelope).

/// A pulse envelope shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Envelope {
    /// Constant amplitude over the pulse duration.
    Square,
    /// Gaussian with the given sigma as a fraction of the duration
    /// (typical: 0.25).
    Gaussian {
        /// Standard deviation relative to the pulse duration.
        sigma_fraction: f64,
    },
}

impl Envelope {
    /// Envelope value at normalized time `t ∈ [0, 1]` (peak 1).
    pub fn value(&self, t: f64) -> f64 {
        match *self {
            Envelope::Square => 1.0,
            Envelope::Gaussian { sigma_fraction } => {
                let x = (t - 0.5) / sigma_fraction;
                (-0.5 * x * x).exp()
            }
        }
    }

    /// The envelope's area relative to a unit square pulse — the
    /// effective rotation-angle fraction.
    pub fn area_fraction(&self) -> f64 {
        match *self {
            Envelope::Square => 1.0,
            Envelope::Gaussian { .. } => {
                // ∫ exp(-(t-.5)²/2σ²) dt over [0,1] ≈ σ√(2π) for σ ≪ 1;
                // numeric quadrature keeps it exact for any σ.
                let n = 256;
                (0..n)
                    .map(|i| self.value((i as f64 + 0.5) / n as f64))
                    .sum::<f64>()
                    / n as f64
            }
        }
    }
}

/// A fully parameterized drive pulse.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pulse {
    /// Envelope shape.
    pub envelope: Envelope,
    /// Duration in nanoseconds.
    pub duration_ns: f64,
    /// Dimensionless amplitude (1.0 = full DAC scale).
    pub amplitude: f64,
    /// NCO carrier frequency in Hz.
    pub frequency_hz: f64,
    /// NCO phase in radians (the drive axis on the Bloch equator).
    pub phase_rad: f64,
}

impl Pulse {
    /// A square pulse with every knob explicit.
    pub fn square(duration_ns: f64, amplitude: f64, frequency_hz: f64, phase_rad: f64) -> Pulse {
        Pulse {
            envelope: Envelope::Square,
            duration_ns,
            amplitude,
            frequency_hz,
            phase_rad,
        }
    }

    /// A Gaussian pulse (σ = duration/4).
    pub fn gaussian(duration_ns: f64, amplitude: f64, frequency_hz: f64, phase_rad: f64) -> Pulse {
        Pulse {
            envelope: Envelope::Gaussian {
                sigma_fraction: 0.25,
            },
            duration_ns,
            amplitude,
            frequency_hz,
            phase_rad,
        }
    }

    /// Effective drive area: amplitude × duration × envelope area.
    pub fn area_ns(&self) -> f64 {
        self.amplitude * self.duration_ns * self.envelope.area_fraction()
    }

    /// DAC samples at `rate_hz` (baseband-modulated envelope), for
    /// waveform-level inspection.
    pub fn samples(&self, rate_hz: f64) -> Vec<f64> {
        let count = ((self.duration_ns * 1e-9) * rate_hz).round().max(1.0) as usize;
        (0..count)
            .map(|i| {
                let t_norm = (i as f64 + 0.5) / count as f64;
                let t_s = t_norm * self.duration_ns * 1e-9;
                let carrier =
                    (2.0 * std::f64::consts::PI * self.frequency_hz * t_s + self.phase_rad).cos();
                self.amplitude * self.envelope.value(t_norm) * carrier
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_envelope_is_flat() {
        assert_eq!(Envelope::Square.value(0.1), 1.0);
        assert_eq!(Envelope::Square.value(0.9), 1.0);
        assert!((Envelope::Square.area_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gaussian_envelope_peaks_at_center() {
        let g = Envelope::Gaussian {
            sigma_fraction: 0.25,
        };
        assert!((g.value(0.5) - 1.0).abs() < 1e-12);
        assert!(g.value(0.0) < g.value(0.25));
        assert!(g.value(0.25) < g.value(0.5));
        let area = g.area_fraction();
        assert!(area > 0.4 && area < 0.8, "gaussian area {area}");
    }

    #[test]
    fn pulse_area_scales_with_amplitude_and_duration() {
        let base = Pulse::square(20.0, 0.5, 4.62e9, 0.0);
        let double_amp = Pulse::square(20.0, 1.0, 4.62e9, 0.0);
        let double_dur = Pulse::square(40.0, 0.5, 4.62e9, 0.0);
        assert!((double_amp.area_ns() - 2.0 * base.area_ns()).abs() < 1e-9);
        assert!((double_dur.area_ns() - 2.0 * base.area_ns()).abs() < 1e-9);
    }

    #[test]
    fn samples_follow_envelope_and_carrier() {
        let pulse = Pulse::square(10.0, 1.0, 1e8, 0.0);
        let samples = pulse.samples(2e9); // 20 samples
        assert_eq!(samples.len(), 20);
        assert!(samples.iter().all(|s| s.abs() <= 1.0 + 1e-12));
        // A 100 MHz carrier completes one period per 10 ns: sign changes.
        assert!(samples.iter().any(|&s| s < 0.0));
    }
}
