//! Least-squares fitters used by the calibration analysis.
//!
//! Each fitter reduces to linear least squares over the linear
//! parameters with a grid + golden-section refinement over the
//! non-linear ones — robust and dependency-free.

/// Result of a circle fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CircleFit {
    /// Centre x.
    pub cx: f64,
    /// Centre y.
    pub cy: f64,
    /// Radius.
    pub radius: f64,
    /// RMS radial residual.
    pub rms_residual: f64,
}

/// Kåsa algebraic circle fit.
///
/// # Panics
///
/// Panics if fewer than three points are supplied.
pub fn fit_circle(points: &[(f64, f64)]) -> CircleFit {
    assert!(points.len() >= 3, "circle fit needs at least 3 points");
    // Solve: x² + y² + D·x + E·y + F = 0 in least squares.
    let n = points.len() as f64;
    let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0, 0.0, 0.0, 0.0, 0.0);
    let (mut sxz, mut syz, mut sz) = (0.0, 0.0, 0.0);
    for &(x, y) in points {
        let z = x * x + y * y;
        sx += x;
        sy += y;
        sxx += x * x;
        syy += y * y;
        sxy += x * y;
        sxz += x * z;
        syz += y * z;
        sz += z;
    }
    // Normal equations for [D, E, F].
    let a = [[sxx, sxy, sx], [sxy, syy, sy], [sx, sy, n]];
    let b = [-sxz, -syz, -sz];
    let [d, e, f] = solve3(a, b);
    let cx = -d / 2.0;
    let cy = -e / 2.0;
    let radius = (cx * cx + cy * cy - f).max(0.0).sqrt();
    let rms = (points
        .iter()
        .map(|&(x, y)| {
            let r = ((x - cx).powi(2) + (y - cy).powi(2)).sqrt();
            (r - radius).powi(2)
        })
        .sum::<f64>()
        / n)
        .sqrt();
    CircleFit {
        cx,
        cy,
        radius,
        rms_residual: rms,
    }
}

/// Solves a 3×3 linear system by Gaussian elimination.
fn solve3(mut a: [[f64; 3]; 3], mut b: [f64; 3]) -> [f64; 3] {
    for col in 0..3 {
        let pivot = (col..3)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("non-empty");
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        let pivot_row = a[col];
        for row in col + 1..3 {
            let factor = a[row][col] / diag;
            for (dst, src) in a[row][col..].iter_mut().zip(&pivot_row[col..]) {
                *dst -= factor * src;
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = [0.0; 3];
    for row in (0..3).rev() {
        let mut acc = b[row];
        for k in row + 1..3 {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    x
}

/// Solves a 2×2 linear system.
fn solve2(a: [[f64; 2]; 2], b: [f64; 2]) -> [f64; 2] {
    let det = a[0][0] * a[1][1] - a[0][1] * a[1][0];
    [
        (b[0] * a[1][1] - b[1] * a[0][1]) / det,
        (a[0][0] * b[1] - a[1][0] * b[0]) / det,
    ]
}

/// Result of an exponential-decay fit `y = A·exp(−x/τ) + C`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialFit {
    /// Amplitude A.
    pub amplitude: f64,
    /// Decay constant τ (same units as x).
    pub tau: f64,
    /// Offset C.
    pub offset: f64,
}

fn exp_sse(x: &[f64], y: &[f64], tau: f64) -> (f64, f64, f64) {
    // For fixed τ the model is linear in (A, C).
    let n = x.len() as f64;
    let e: Vec<f64> = x.iter().map(|&xi| (-xi / tau).exp()).collect();
    let se: f64 = e.iter().sum();
    let see: f64 = e.iter().map(|v| v * v).sum();
    let sy: f64 = y.iter().sum();
    let sey: f64 = e.iter().zip(y).map(|(ei, yi)| ei * yi).sum();
    let [a, c] = solve2([[see, se], [se, n]], [sey, sy]);
    let sse: f64 = e
        .iter()
        .zip(y)
        .map(|(ei, yi)| (a * ei + c - yi).powi(2))
        .sum();
    (sse, a, c)
}

/// Fits `y = A·exp(−x/τ) + C` by golden-section search over τ.
///
/// # Panics
///
/// Panics if the series have mismatched lengths or fewer than 3 points.
pub fn fit_exponential(x: &[f64], y: &[f64]) -> ExponentialFit {
    assert_eq!(x.len(), y.len());
    assert!(x.len() >= 3, "exponential fit needs at least 3 points");
    let span = x.iter().cloned().fold(0.0, f64::max).max(1e-12);
    let (mut lo, mut hi) = (span * 1e-3, span * 100.0);
    // Coarse log-grid then golden-section refinement.
    let mut best = (f64::INFINITY, lo);
    let steps = 200;
    for i in 0..=steps {
        let tau = lo * (hi / lo).powf(i as f64 / steps as f64);
        let (sse, _, _) = exp_sse(x, y, tau);
        if sse < best.0 {
            best = (sse, tau);
        }
    }
    lo = best.1 / 2.0;
    hi = best.1 * 2.0;
    let phi = (5f64.sqrt() - 1.0) / 2.0;
    for _ in 0..80 {
        let m1 = hi - phi * (hi - lo);
        let m2 = lo + phi * (hi - lo);
        if exp_sse(x, y, m1).0 < exp_sse(x, y, m2).0 {
            hi = m2;
        } else {
            lo = m1;
        }
    }
    let tau = (lo + hi) / 2.0;
    let (_, amplitude, offset) = exp_sse(x, y, tau);
    ExponentialFit {
        amplitude,
        tau,
        offset,
    }
}

/// Result of a Lorentzian fit `y = A·w²/((x−x0)² + w²) + C`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LorentzianFit {
    /// Peak centre x₀.
    pub center: f64,
    /// Half-width at half-maximum w.
    pub width: f64,
    /// Peak amplitude A.
    pub amplitude: f64,
    /// Offset C.
    pub offset: f64,
}

fn lorentz_sse(x: &[f64], y: &[f64], center: f64, width: f64) -> (f64, f64, f64) {
    let n = x.len() as f64;
    let g: Vec<f64> = x
        .iter()
        .map(|&xi| width * width / ((xi - center).powi(2) + width * width))
        .collect();
    let sg: f64 = g.iter().sum();
    let sgg: f64 = g.iter().map(|v| v * v).sum();
    let sy: f64 = y.iter().sum();
    let sgy: f64 = g.iter().zip(y).map(|(gi, yi)| gi * yi).sum();
    let [a, c] = solve2([[sgg, sg], [sg, n]], [sgy, sy]);
    let sse: f64 = g
        .iter()
        .zip(y)
        .map(|(gi, yi)| (a * gi + c - yi).powi(2))
        .sum();
    (sse, a, c)
}

/// Fits a Lorentzian by grid search over centre and width.
///
/// # Panics
///
/// Panics on mismatched or too-short series.
pub fn fit_lorentzian(x: &[f64], y: &[f64]) -> LorentzianFit {
    assert_eq!(x.len(), y.len());
    assert!(x.len() >= 4, "Lorentzian fit needs at least 4 points");
    let lo = x.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    let mut best = (f64::INFINITY, lo, span / 10.0);
    for ci in 0..=120 {
        let center = lo + span * ci as f64 / 120.0;
        for wi in 1..=40 {
            let width = span * wi as f64 / 80.0;
            let (sse, _, _) = lorentz_sse(x, y, center, width);
            if sse < best.0 {
                best = (sse, center, width);
            }
        }
    }
    // Local refinement on the centre.
    let (_, mut center, width) = best;
    let mut step = span / 120.0;
    for _ in 0..40 {
        let left = lorentz_sse(x, y, center - step, width).0;
        let here = lorentz_sse(x, y, center, width).0;
        let right = lorentz_sse(x, y, center + step, width).0;
        if left < here {
            center -= step;
        } else if right < here {
            center += step;
        } else {
            step /= 2.0;
        }
    }
    let (_, amplitude, offset) = lorentz_sse(x, y, center, width);
    LorentzianFit {
        center,
        width,
        amplitude,
        offset,
    }
}

/// Result of a sinusoid fit `y = A·sin(2π·f·x + φ) + C`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SinusoidFit {
    /// Frequency f (cycles per unit x).
    pub frequency: f64,
    /// Phase φ in radians.
    pub phase: f64,
    /// Amplitude A (non-negative).
    pub amplitude: f64,
    /// Offset C.
    pub offset: f64,
}

fn sin_sse(x: &[f64], y: &[f64], freq: f64) -> (f64, f64, f64, f64) {
    // Linear in (a, b, c) with y = a·sin + b·cos + c.
    let n = x.len() as f64;
    let s: Vec<f64> = x
        .iter()
        .map(|&xi| (2.0 * std::f64::consts::PI * freq * xi).sin())
        .collect();
    let c: Vec<f64> = x
        .iter()
        .map(|&xi| (2.0 * std::f64::consts::PI * freq * xi).cos())
        .collect();
    let ss: f64 = s.iter().map(|v| v * v).sum();
    let cc: f64 = c.iter().map(|v| v * v).sum();
    let sc: f64 = s.iter().zip(&c).map(|(a, b)| a * b).sum();
    let s1: f64 = s.iter().sum();
    let c1: f64 = c.iter().sum();
    let sy: f64 = s.iter().zip(y).map(|(a, b)| a * b).sum();
    let cy: f64 = c.iter().zip(y).map(|(a, b)| a * b).sum();
    let y1: f64 = y.iter().sum();
    let [a, b, off] = solve3([[ss, sc, s1], [sc, cc, c1], [s1, c1, n]], [sy, cy, y1]);
    let sse: f64 = x
        .iter()
        .zip(y)
        .map(|(&xi, &yi)| {
            let arg = 2.0 * std::f64::consts::PI * freq * xi;
            (a * arg.sin() + b * arg.cos() + off - yi).powi(2)
        })
        .sum();
    (sse, a, b, off)
}

/// Fits a sinusoid by scanning frequency, then solving the linear
/// parameters.
///
/// # Panics
///
/// Panics on mismatched or too-short series.
pub fn fit_sinusoid(x: &[f64], y: &[f64]) -> SinusoidFit {
    assert_eq!(x.len(), y.len());
    assert!(x.len() >= 4, "sinusoid fit needs at least 4 points");
    let span = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - x.iter().cloned().fold(f64::INFINITY, f64::min);
    let span = span.max(1e-12);
    // 0.25 to ~n/2 oscillations across the span.
    let max_cycles = (x.len() as f64) / 2.0;
    let mut best = (f64::INFINITY, 0.25 / span);
    let steps = 600;
    for i in 0..=steps {
        let cycles = 0.25 + (max_cycles - 0.25) * i as f64 / steps as f64;
        let freq = cycles / span;
        let (sse, ..) = sin_sse(x, y, freq);
        if sse < best.0 {
            best = (sse, freq);
        }
    }
    // Golden-section refinement around the best frequency.
    let phi = (5f64.sqrt() - 1.0) / 2.0;
    let (mut lo, mut hi) = (best.1 * 0.9, best.1 * 1.1);
    for _ in 0..60 {
        let m1 = hi - phi * (hi - lo);
        let m2 = lo + phi * (hi - lo);
        if sin_sse(x, y, m1).0 < sin_sse(x, y, m2).0 {
            hi = m2;
        } else {
            lo = m1;
        }
    }
    let frequency = (lo + hi) / 2.0;
    let (_, a, b, offset) = sin_sse(x, y, frequency);
    SinusoidFit {
        frequency,
        phase: b.atan2(a),
        amplitude: (a * a + b * b).sqrt(),
        offset,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circle_fit_recovers_parameters() {
        let points: Vec<(f64, f64)> = (0..24)
            .map(|i| {
                let t = i as f64 / 24.0 * std::f64::consts::TAU;
                (3.0 + 5.0 * t.cos(), -2.0 + 5.0 * t.sin())
            })
            .collect();
        let fit = fit_circle(&points);
        assert!((fit.cx - 3.0).abs() < 1e-9);
        assert!((fit.cy + 2.0).abs() < 1e-9);
        assert!((fit.radius - 5.0).abs() < 1e-9);
        assert!(fit.rms_residual < 1e-9);
    }

    #[test]
    fn exponential_fit_recovers_tau() {
        let x: Vec<f64> = (0..40).map(|i| i as f64 * 0.5).collect();
        let y: Vec<f64> = x.iter().map(|&xi| 0.9 * (-xi / 4.2).exp() + 0.05).collect();
        let fit = fit_exponential(&x, &y);
        assert!((fit.tau - 4.2).abs() < 0.01, "tau = {}", fit.tau);
        assert!((fit.amplitude - 0.9).abs() < 0.01);
        assert!((fit.offset - 0.05).abs() < 0.01);
    }

    #[test]
    fn lorentzian_fit_finds_the_peak() {
        let x: Vec<f64> = (0..81).map(|i| 4.5 + i as f64 * 0.005).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&xi| 0.8 * 0.02f64.powi(2) / ((xi - 4.62).powi(2) + 0.02f64.powi(2)) + 0.1)
            .collect();
        let fit = fit_lorentzian(&x, &y);
        assert!((fit.center - 4.62).abs() < 0.003, "center {}", fit.center);
        assert!(fit.amplitude > 0.5);
    }

    #[test]
    fn sinusoid_fit_recovers_frequency() {
        let x: Vec<f64> = (0..60).map(|i| i as f64 * 0.02).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&xi| 0.45 * (2.0 * std::f64::consts::PI * 2.5 * xi + 0.7).sin() + 0.5)
            .collect();
        let fit = fit_sinusoid(&x, &y);
        assert!((fit.frequency - 2.5).abs() < 0.02, "f = {}", fit.frequency);
        assert!((fit.amplitude - 0.45).abs() < 0.02);
        assert!((fit.offset - 0.5).abs() < 0.02);
    }

    #[test]
    fn fits_tolerate_noise() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&xi| (-xi / 12.0).exp() + rng.gen_range(-0.02..0.02))
            .collect();
        let fit = fit_exponential(&x, &y);
        assert!((fit.tau - 12.0).abs() < 1.5, "tau {}", fit.tau);
    }
}
