//! # hisq-analog — the technology-dependent analog implementation
//!
//! The paper's single-node architecture (Figure 3c) splits a controller
//! into the hardware-agnostic **HISQ core** and a **technology-dependent
//! analog implementation** that interprets codewords as pulses. This
//! crate is that analog layer for a superconducting-qubit system, plus
//! the physics needed to reproduce the four qubit-level calibration
//! experiments of Figure 11:
//!
//! - [`pulse`] — envelopes and NCO-modulated drive pulses (phase,
//!   frequency, amplitude, duration: the four control dimensions the
//!   experiments probe);
//! - [`qubit`] — a two-level system with Rabi dynamics under detuned
//!   drive and T1/T2 decay;
//! - [`readout`] — dispersive readout producing IQ-plane points,
//!   including the neighbour-interference distortion seen in
//!   Figure 11(a);
//! - [`fit`] — the least-squares fitters (circle, Lorentzian, sinusoid,
//!   exponential) the calibration analysis uses;
//! - [`experiments`] — the four experiments, each driven end-to-end
//!   through real HISQ programs executing on a [`hisq_core::Controller`]
//!   whose codeword commits trigger the analog chain.
//!
//! # Example
//!
//! ```
//! use hisq_analog::experiments::{t1_experiment, T1Config};
//!
//! let result = t1_experiment(&T1Config::default());
//! // The paper measures T1 = 9.9 µs on this qubit.
//! assert!((result.fitted_t1_us - 9.9).abs() < 1.0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod experiments;
pub mod fit;
pub mod pulse;
pub mod qubit;
pub mod readout;

pub use pulse::{Envelope, Pulse};
pub use qubit::TwoLevelQubit;
pub use readout::ReadoutChain;
