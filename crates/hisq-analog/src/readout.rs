//! Dispersive readout: measurement-excitation pulses, IQ demodulation,
//! and state discrimination.
//!
//! Figure 11(a) is the readout board's self-verification: sweeping the
//! excitation pulse's *phase* traces a circle in the demodulated IQ
//! plane, with a small deviation "from small but non-negligible
//! interference from adjacent qubits coupled to the same feedline".

use rand::Rng;

/// The readout signal chain of one acquisition channel.
#[derive(Debug, Clone)]
pub struct ReadoutChain {
    /// Demodulated signal magnitude for the ground state (arbitrary
    /// units).
    pub ground_radius: f64,
    /// Additional dispersive shift magnitude when the qubit is excited.
    pub excited_shift: f64,
    /// IQ-plane centre offset (electronics baseline).
    pub center: (f64, f64),
    /// Gaussian noise sigma on each quadrature.
    pub noise_sigma: f64,
    /// Amplitude of the adjacent-qubit interference ripple (fraction of
    /// the radius) and its harmonic order.
    pub interference: (f64, u32),
}

impl Default for ReadoutChain {
    fn default() -> ReadoutChain {
        ReadoutChain {
            ground_radius: 1000.0,
            excited_shift: 350.0,
            center: (120.0, -80.0),
            noise_sigma: 18.0,
            interference: (0.04, 3),
        }
    }
}

impl ReadoutChain {
    /// Demodulates one acquisition: excitation phase `phase_rad`, qubit
    /// excited-state population `p_excited`. Returns the integrated
    /// (I, Q) point.
    pub fn acquire(&self, phase_rad: f64, p_excited: f64, rng: &mut impl Rng) -> (f64, f64) {
        let radius = self.ground_radius + self.excited_shift * p_excited;
        // Feedline interference: a small phase-dependent ripple.
        let (frac, order) = self.interference;
        let ripple = 1.0 + frac * (phase_rad * f64::from(order)).sin();
        let r = radius * ripple;
        let i = self.center.0 + r * phase_rad.cos() + self.gaussian(rng) * self.noise_sigma;
        let q = self.center.1 + r * phase_rad.sin() + self.gaussian(rng) * self.noise_sigma;
        (i, q)
    }

    /// State discrimination: compares the demodulated magnitude against
    /// the mid-threshold between ground and excited responses.
    pub fn discriminate(&self, iq: (f64, f64)) -> bool {
        let di = iq.0 - self.center.0;
        let dq = iq.1 - self.center.1;
        let magnitude = (di * di + dq * dq).sqrt();
        magnitude > self.ground_radius + self.excited_shift / 2.0
    }

    /// Box–Muller standard normal sample.
    fn gaussian(&self, rng: &mut impl Rng) -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn phase_sweep_traces_a_circle() {
        let chain = ReadoutChain {
            noise_sigma: 0.0,
            interference: (0.0, 1),
            ..ReadoutChain::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        for step in 0..16 {
            let phase = step as f64 / 16.0 * std::f64::consts::TAU;
            let (i, q) = chain.acquire(phase, 0.0, &mut rng);
            let r = ((i - chain.center.0).powi(2) + (q - chain.center.1).powi(2)).sqrt();
            assert!((r - chain.ground_radius).abs() < 1e-9);
        }
    }

    #[test]
    fn interference_distorts_the_circle() {
        let chain = ReadoutChain {
            noise_sigma: 0.0,
            ..ReadoutChain::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let radii: Vec<f64> = (0..64)
            .map(|step| {
                let phase = step as f64 / 64.0 * std::f64::consts::TAU;
                let (i, q) = chain.acquire(phase, 0.0, &mut rng);
                ((i - chain.center.0).powi(2) + (q - chain.center.1).powi(2)).sqrt()
            })
            .collect();
        let min = radii.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = radii.iter().cloned().fold(0.0, f64::max);
        assert!(max - min > 10.0, "ripple visible: {min}..{max}");
        assert!(max - min < chain.ground_radius * 0.2, "but small");
    }

    #[test]
    fn discrimination_separates_states() {
        let chain = ReadoutChain {
            noise_sigma: 5.0,
            ..ReadoutChain::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let mut correct = 0;
        for _ in 0..200 {
            let g = chain.acquire(0.3, 0.0, &mut rng);
            let e = chain.acquire(0.3, 1.0, &mut rng);
            correct += usize::from(!chain.discriminate(g));
            correct += usize::from(chain.discriminate(e));
        }
        assert!(correct >= 395, "discrimination fidelity: {correct}/400");
    }
}
