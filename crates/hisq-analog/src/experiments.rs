//! The four qubit-level calibration experiments of Figure 11, each
//! driven end-to-end through the HISQ stack: the experiment compiles a
//! small HISQ program, executes it on a [`Controller`], and feeds the
//! committed codewords — in TCU-grid time order — into the analog chain
//! (pulses → qubit physics → readout).
//!
//! | Experiment | Controlled dimension | Expected response |
//! |---|---|---|
//! | Draw circle | pulse **phase** | circle in the IQ plane |
//! | Spectroscopy | pulse **frequency** | Lorentzian dip/peak at f01 |
//! | Rabi | pulse **amplitude** | sinusoidal oscillation |
//! | T1 | pulse **timing** | exponential decay, T1 ≈ 9.9 µs |

use rand::rngs::StdRng;
use rand::SeedableRng;

use hisq_core::{Controller, NodeConfig};
use hisq_isa::{Assembler, CYCLE_NS};

use crate::fit::{
    fit_circle, fit_exponential, fit_lorentzian, fit_sinusoid, CircleFit, ExponentialFit,
    LorentzianFit, SinusoidFit,
};
use crate::pulse::Pulse;
use crate::qubit::TwoLevelQubit;
use crate::readout::ReadoutChain;

/// What a committed codeword does in the analog front-end.
#[derive(Debug, Clone)]
enum AnalogAction {
    /// Drive the qubit with a pulse (XY channel).
    Drive(Pulse),
    /// Excite the readout resonator with the given phase and acquire.
    Acquire {
        /// Excitation phase in radians.
        phase_rad: f64,
    },
}

/// One analog acquisition record.
#[derive(Debug, Clone, Copy)]
struct Acquisition {
    iq: (f64, f64),
    excited: bool,
}

/// Runs a single-controller HISQ program against the analog chain.
///
/// Commits are replayed on the 4 ns grid; gaps between commits idle the
/// qubit (T1/T2 decay), which is exactly how the T1 experiment's delay
/// sweep acts on the physics.
fn run_analog(
    source: &str,
    table: &[(u32, u32, AnalogAction)],
    qubit: &mut TwoLevelQubit,
    chain: &ReadoutChain,
    rng: &mut StdRng,
) -> Vec<Acquisition> {
    let program = Assembler::new()
        .assemble(source)
        .expect("experiment programs are valid HISQ assembly");
    let mut controller = Controller::new(NodeConfig::new(0), program.insts().to_vec());
    let mut outbox = Vec::new();
    let outcome = controller.step(&mut outbox);
    assert!(outcome.is_halted(), "experiment program must halt");

    let mut acquisitions = Vec::new();
    let mut last_cycle = 0u64;
    for commit in controller.commits() {
        let gap_ns = (commit.cycle - last_cycle) * CYCLE_NS;
        qubit.idle(gap_ns as f64);
        last_cycle = commit.cycle;
        let action = table
            .iter()
            .find(|(port, cw, _)| *port == commit.port && *cw == commit.codeword)
            .map(|(_, _, action)| action)
            .expect("committed codeword must be in the analog table");
        match action {
            AnalogAction::Drive(pulse) => qubit.drive(pulse),
            AnalogAction::Acquire { phase_rad } => {
                let iq = chain.acquire(*phase_rad, qubit.p_excited(), rng);
                let excited = qubit.measure(rng);
                acquisitions.push(Acquisition { iq, excited });
            }
        }
    }
    acquisitions
}

// ---------------------------------------------------------------------
// (a) Draw circle
// ---------------------------------------------------------------------

/// Configuration for the Figure 11(a) readout self-verification.
#[derive(Debug, Clone)]
pub struct CircleConfig {
    /// Number of phase steps over 2π.
    pub points: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CircleConfig {
    fn default() -> CircleConfig {
        CircleConfig {
            points: 48,
            seed: 0xC1C1,
        }
    }
}

/// Result of the draw-circle experiment.
#[derive(Debug, Clone)]
pub struct CircleResult {
    /// Demodulated IQ points, one per phase step.
    pub iq: Vec<(f64, f64)>,
    /// Fitted circle.
    pub fit: CircleFit,
    /// Peak-to-peak radial deviation relative to the radius — the
    /// adjacent-qubit interference signature.
    pub relative_deviation: f64,
}

/// Runs the phase-sweep circle experiment.
pub fn circle_experiment(config: &CircleConfig) -> CircleResult {
    let chain = ReadoutChain::default();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut iq = Vec::with_capacity(config.points);
    for step in 0..config.points {
        let phase = step as f64 / config.points as f64 * std::f64::consts::TAU;
        let table = vec![(2u32, 1u32, AnalogAction::Acquire { phase_rad: phase })];
        let source = "waiti 25\ncw.i.i 2, 1\nwaiti 75\nstop";
        let mut qubit = TwoLevelQubit::paper_device();
        let acq = run_analog(source, &table, &mut qubit, &chain, &mut rng);
        iq.push(acq[0].iq);
    }
    let fit = fit_circle(&iq);
    let radii: Vec<f64> = iq
        .iter()
        .map(|&(x, y)| ((x - fit.cx).powi(2) + (y - fit.cy).powi(2)).sqrt())
        .collect();
    let min = radii.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = radii.iter().cloned().fold(0.0f64, f64::max);
    CircleResult {
        iq,
        relative_deviation: (max - min) / fit.radius,
        fit,
    }
}

// ---------------------------------------------------------------------
// (b) Qubit spectroscopy
// ---------------------------------------------------------------------

/// Configuration for the Figure 11(b) frequency sweep.
#[derive(Debug, Clone)]
pub struct SpectroscopyConfig {
    /// Sweep centre in GHz.
    pub center_ghz: f64,
    /// Sweep span in MHz.
    pub span_mhz: f64,
    /// Number of frequency points.
    pub points: usize,
    /// Shots per point.
    pub shots: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SpectroscopyConfig {
    fn default() -> SpectroscopyConfig {
        SpectroscopyConfig {
            center_ghz: 4.60,
            span_mhz: 120.0,
            points: 41,
            shots: 200,
            seed: 0x5EC,
        }
    }
}

/// Result of the spectroscopy experiment.
#[derive(Debug, Clone)]
pub struct SpectroscopyResult {
    /// Drive frequencies in GHz.
    pub frequency_ghz: Vec<f64>,
    /// Measured excitation probability per point.
    pub p_excited: Vec<f64>,
    /// Lorentzian fit over the response.
    pub fit: LorentzianFit,
    /// The extracted qubit frequency in GHz.
    pub fitted_frequency_ghz: f64,
}

/// Runs the spectroscopy experiment.
pub fn spectroscopy_experiment(config: &SpectroscopyConfig) -> SpectroscopyResult {
    let chain = ReadoutChain::default();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut frequency_ghz = Vec::new();
    let mut p_excited = Vec::new();
    // A long, weak pulse: saturation-style spectroscopy.
    let duration_ns = 400.0;
    let amplitude = 1.0 / (2.0 * 12.5e6 * duration_ns * 1e-9); // π on resonance

    for step in 0..config.points {
        let offset_mhz = (step as f64 / (config.points - 1) as f64 - 0.5) * config.span_mhz;
        let f_hz = config.center_ghz * 1e9 + offset_mhz * 1e6;
        let pulse = Pulse::square(duration_ns, amplitude, f_hz, 0.0);
        let table = vec![
            (0u32, 1u32, AnalogAction::Drive(pulse)),
            (2u32, 1u32, AnalogAction::Acquire { phase_rad: 0.0 }),
        ];
        let source = "cw.i.i 0, 1\nwaiti 100\ncw.i.i 2, 1\nwaiti 75\nstop";
        let mut ones = 0usize;
        for _ in 0..config.shots {
            let mut qubit = TwoLevelQubit::paper_device();
            let acq = run_analog(source, &table, &mut qubit, &chain, &mut rng);
            ones += usize::from(acq[0].excited);
        }
        frequency_ghz.push(f_hz / 1e9);
        p_excited.push(ones as f64 / config.shots as f64);
    }
    let fit = fit_lorentzian(&frequency_ghz, &p_excited);
    SpectroscopyResult {
        fitted_frequency_ghz: fit.center,
        frequency_ghz,
        p_excited,
        fit,
    }
}

// ---------------------------------------------------------------------
// (c) Rabi oscillation
// ---------------------------------------------------------------------

/// Configuration for the Figure 11(c) amplitude sweep.
#[derive(Debug, Clone)]
pub struct RabiConfig {
    /// Maximum drive amplitude (DAC fraction).
    pub max_amplitude: f64,
    /// Number of amplitude points.
    pub points: usize,
    /// Shots per point.
    pub shots: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RabiConfig {
    fn default() -> RabiConfig {
        RabiConfig {
            max_amplitude: 1.0,
            points: 41,
            shots: 200,
            seed: 0xAB1,
        }
    }
}

/// Result of the Rabi experiment.
#[derive(Debug, Clone)]
pub struct RabiResult {
    /// Drive amplitudes.
    pub amplitude: Vec<f64>,
    /// Measured excitation probability per point.
    pub p_excited: Vec<f64>,
    /// Sinusoid fit of the oscillation.
    pub fit: SinusoidFit,
    /// The extracted π-pulse amplitude.
    pub pi_amplitude: f64,
}

/// Runs the Rabi experiment (80 ns square pulses).
pub fn rabi_experiment(config: &RabiConfig) -> RabiResult {
    let chain = ReadoutChain::default();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut amplitude = Vec::new();
    let mut p_excited = Vec::new();
    let duration_ns = 80.0;

    for step in 0..config.points {
        let amp = config.max_amplitude * step as f64 / (config.points - 1) as f64;
        let pulse = Pulse::square(duration_ns, amp, 4.62e9, 0.0);
        let table = vec![
            (0u32, 1u32, AnalogAction::Drive(pulse)),
            (2u32, 1u32, AnalogAction::Acquire { phase_rad: 0.0 }),
        ];
        let source = "cw.i.i 0, 1\nwaiti 20\ncw.i.i 2, 1\nwaiti 75\nstop";
        let mut ones = 0usize;
        for _ in 0..config.shots {
            let mut qubit = TwoLevelQubit::paper_device();
            let acq = run_analog(source, &table, &mut qubit, &chain, &mut rng);
            ones += usize::from(acq[0].excited);
        }
        amplitude.push(amp);
        p_excited.push(ones as f64 / config.shots as f64);
    }
    let fit = fit_sinusoid(&amplitude, &p_excited);
    // First maximum of A·sin(2πf·a + φ) + C.
    let mut pi_amplitude =
        (std::f64::consts::FRAC_PI_2 - fit.phase) / (2.0 * std::f64::consts::PI * fit.frequency);
    let period = 1.0 / fit.frequency;
    while pi_amplitude < 0.0 {
        pi_amplitude += period;
    }
    while pi_amplitude > period {
        pi_amplitude -= period;
    }
    RabiResult {
        amplitude,
        p_excited,
        fit,
        pi_amplitude,
    }
}

// ---------------------------------------------------------------------
// (d) Relaxation time (T1)
// ---------------------------------------------------------------------

/// Configuration for the Figure 11(d) delay sweep.
#[derive(Debug, Clone)]
pub struct T1Config {
    /// Maximum delay in microseconds.
    pub max_delay_us: f64,
    /// Number of delay points.
    pub points: usize,
    /// Shots per point.
    pub shots: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for T1Config {
    fn default() -> T1Config {
        T1Config {
            max_delay_us: 30.0,
            points: 25,
            shots: 400,
            seed: 0x71,
        }
    }
}

/// Result of the T1 experiment.
#[derive(Debug, Clone)]
pub struct T1Result {
    /// Delays in microseconds.
    pub delay_us: Vec<f64>,
    /// Measured excitation probability per point.
    pub p_excited: Vec<f64>,
    /// Exponential fit.
    pub fit: ExponentialFit,
    /// Extracted relaxation time in microseconds.
    pub fitted_t1_us: f64,
    /// The reference value measured with the mature firmware stack
    /// (§6.2 of the paper).
    pub reference_t1_us: f64,
}

/// Runs the T1 experiment: π pulse, variable delay, measure.
pub fn t1_experiment(config: &T1Config) -> T1Result {
    let chain = ReadoutChain::default();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut delay_us = Vec::new();
    let mut p_excited = Vec::new();
    let duration_ns = 80.0;
    let pi_amp = 1.0 / (2.0 * 12.5e6 * duration_ns * 1e-9);

    for step in 0..config.points {
        let delay = config.max_delay_us * step as f64 / (config.points - 1) as f64;
        let delay_cycles = ((delay * 1000.0) / CYCLE_NS as f64).round().max(1.0) as u64;
        let pulse = Pulse::square(duration_ns, pi_amp, 4.62e9, 0.0);
        let table = vec![
            (0u32, 1u32, AnalogAction::Drive(pulse)),
            (2u32, 1u32, AnalogAction::Acquire { phase_rad: 0.0 }),
        ];
        // The delay is the HISQ program's wait — the timing dimension.
        let source = format!("cw.i.i 0, 1\nwaiti {delay_cycles}\ncw.i.i 2, 1\nwaiti 75\nstop");
        let mut ones = 0usize;
        for _ in 0..config.shots {
            let mut qubit = TwoLevelQubit::paper_device();
            let acq = run_analog(&source, &table, &mut qubit, &chain, &mut rng);
            ones += usize::from(acq[0].excited);
        }
        delay_us.push(delay);
        p_excited.push(ones as f64 / config.shots as f64);
    }
    let fit = fit_exponential(&delay_us, &p_excited);
    T1Result {
        delay_us,
        p_excited,
        fitted_t1_us: fit.tau,
        fit,
        reference_t1_us: 10.2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circle_experiment_traces_a_circle() {
        let result = circle_experiment(&CircleConfig::default());
        assert_eq!(result.iq.len(), 48);
        // Radius near the chain's ground response, centred near the
        // electronics offset.
        assert!((result.fit.radius - 1000.0).abs() < 60.0);
        assert!((result.fit.cx - 120.0).abs() < 30.0);
        assert!((result.fit.cy + 80.0).abs() < 30.0);
        // The interference deviation is visible but small.
        assert!(result.relative_deviation > 0.02);
        assert!(result.relative_deviation < 0.25);
    }

    #[test]
    fn spectroscopy_finds_the_qubit_frequency() {
        let config = SpectroscopyConfig {
            shots: 120,
            points: 31,
            ..SpectroscopyConfig::default()
        };
        let result = spectroscopy_experiment(&config);
        assert!(
            (result.fitted_frequency_ghz - 4.62).abs() < 0.01,
            "fitted {} GHz",
            result.fitted_frequency_ghz
        );
        // The peak response dominates the baseline.
        let max = result.p_excited.iter().cloned().fold(0.0f64, f64::max);
        assert!(max > 0.7);
    }

    #[test]
    fn rabi_oscillation_and_pi_amplitude() {
        let config = RabiConfig {
            shots: 150,
            ..RabiConfig::default()
        };
        let result = rabi_experiment(&config);
        // Ω t = 12.5 MHz × 80 ns × amp → π at amp = 0.5.
        assert!(
            (result.pi_amplitude - 0.5).abs() < 0.05,
            "pi amplitude {}",
            result.pi_amplitude
        );
        assert!(result.fit.amplitude > 0.3, "oscillation visible");
    }

    #[test]
    fn t1_matches_the_device() {
        let result = t1_experiment(&T1Config::default());
        assert!(
            (result.fitted_t1_us - 9.9).abs() < 0.8,
            "fitted T1 {} µs",
            result.fitted_t1_us
        );
        // Within natural-fluctuation range of the reference stack.
        assert!((result.fitted_t1_us - result.reference_t1_us).abs() < 1.5);
    }
}
