//! Two-level-system physics: Rabi dynamics under detuned drive plus
//! T1/T2 relaxation, on the Bloch sphere.

use rand::Rng;

use crate::pulse::Pulse;

/// A superconducting transmon modelled as a driven, decaying two-level
/// system. The Bloch convention is `z = +1` for |0⟩.
#[derive(Debug, Clone)]
pub struct TwoLevelQubit {
    /// Qubit transition frequency in Hz.
    pub frequency_hz: f64,
    /// Relaxation time in microseconds.
    pub t1_us: f64,
    /// Dephasing time in microseconds.
    pub t2_us: f64,
    /// Rabi frequency per unit drive amplitude, in Hz (how hard the
    /// drive line couples).
    pub rabi_hz_per_amp: f64,
    /// Bloch vector (x, y, z).
    pub bloch: (f64, f64, f64),
}

impl TwoLevelQubit {
    /// The paper's measured device values: f01 = 4.62 GHz, T1 = 9.9 µs
    /// (Figure 11), with a typical 10 MHz full-scale Rabi rate.
    pub fn paper_device() -> TwoLevelQubit {
        TwoLevelQubit {
            frequency_hz: 4.62e9,
            t1_us: 9.9,
            t2_us: 7.5,
            rabi_hz_per_amp: 12.5e6,
            bloch: (0.0, 0.0, 1.0),
        }
    }

    /// Resets to |0⟩.
    pub fn reset(&mut self) {
        self.bloch = (0.0, 0.0, 1.0);
    }

    /// Excited-state population `P(|1⟩) = (1 − z)/2`.
    pub fn p_excited(&self) -> f64 {
        ((1.0 - self.bloch.2) / 2.0).clamp(0.0, 1.0)
    }

    /// Rotates the Bloch vector by `angle` around the (unit) `axis`.
    fn rotate(&mut self, axis: (f64, f64, f64), angle: f64) {
        let (x, y, z) = self.bloch;
        let (ux, uy, uz) = axis;
        let (sin, cos) = angle.sin_cos();
        let dot = ux * x + uy * y + uz * z;
        let cross = (uy * z - uz * y, uz * x - ux * z, ux * y - uy * x);
        self.bloch = (
            x * cos + cross.0 * sin + ux * dot * (1.0 - cos),
            y * cos + cross.1 * sin + uy * dot * (1.0 - cos),
            z * cos + cross.2 * sin + uz * dot * (1.0 - cos),
        );
    }

    /// Applies a drive pulse in the rotating frame: Rabi rate
    /// `Ω = rabi_hz_per_amp × amplitude × envelope_area`, detuning
    /// `Δ = f_drive − f_qubit`; rotation about the tilted axis
    /// `(Ω cosφ, Ω sinφ, Δ)` by `2π √(Ω² + Δ²) · t`.
    pub fn drive(&mut self, pulse: &Pulse) {
        let t_s = pulse.duration_ns * 1e-9;
        let omega = self.rabi_hz_per_amp * pulse.amplitude * pulse.envelope.area_fraction();
        let detuning = pulse.frequency_hz - self.frequency_hz;
        let effective = (omega * omega + detuning * detuning).sqrt();
        if effective <= 0.0 {
            return;
        }
        let axis = (
            omega * pulse.phase_rad.cos() / effective,
            omega * pulse.phase_rad.sin() / effective,
            detuning / effective,
        );
        let angle = 2.0 * std::f64::consts::PI * effective * t_s;
        self.rotate(axis, angle);
        // Decay over the pulse duration as well.
        self.idle(pulse.duration_ns);
    }

    /// Free evolution for `duration_ns`: amplitude damping toward |0⟩
    /// with T1 and transverse decay with T2.
    pub fn idle(&mut self, duration_ns: f64) {
        let t_us = duration_ns / 1000.0;
        let amp = (-t_us / self.t1_us).exp();
        let coherence = (-t_us / self.t2_us).exp();
        let (x, y, z) = self.bloch;
        self.bloch = (x * coherence, y * coherence, 1.0 - (1.0 - z) * amp);
    }

    /// Projective Z measurement: samples from `P(|1⟩)` and collapses.
    pub fn measure(&mut self, rng: &mut impl Rng) -> bool {
        let one = rng.gen_bool(self.p_excited());
        self.bloch = if one {
            (0.0, 0.0, -1.0)
        } else {
            (0.0, 0.0, 1.0)
        };
        one
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pulse::Pulse;

    /// The amplitude giving a π rotation for a square pulse of the given
    /// duration.
    fn pi_amplitude(qubit: &TwoLevelQubit, duration_ns: f64) -> f64 {
        // Ω · t = 1/2  →  amp = 1 / (2 · rabi_rate · t).
        1.0 / (2.0 * qubit.rabi_hz_per_amp * duration_ns * 1e-9)
    }

    fn no_decay() -> TwoLevelQubit {
        TwoLevelQubit {
            t1_us: 1e12,
            t2_us: 1e12,
            ..TwoLevelQubit::paper_device()
        }
    }

    #[test]
    fn resonant_pi_pulse_inverts() {
        let mut q = no_decay();
        let amp = pi_amplitude(&q, 20.0);
        q.drive(&Pulse::square(20.0, amp, q.frequency_hz, 0.0));
        assert!((q.p_excited() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn half_pi_gives_even_superposition() {
        let mut q = no_decay();
        let amp = pi_amplitude(&q, 20.0) / 2.0;
        q.drive(&Pulse::square(20.0, amp, q.frequency_hz, 0.0));
        assert!((q.p_excited() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn detuned_drive_is_less_effective() {
        let mut on_resonance = no_decay();
        let amp = pi_amplitude(&on_resonance, 20.0);
        on_resonance.drive(&Pulse::square(20.0, amp, on_resonance.frequency_hz, 0.0));

        let mut detuned = no_decay();
        let f = detuned.frequency_hz + 40e6; // 40 MHz off
        detuned.drive(&Pulse::square(20.0, amp, f, 0.0));
        assert!(detuned.p_excited() < on_resonance.p_excited());
        assert!(detuned.p_excited() < 0.5);
    }

    #[test]
    fn t1_decay_is_exponential() {
        let mut q = TwoLevelQubit::paper_device();
        q.bloch = (0.0, 0.0, -1.0); // |1⟩
        q.idle(9_900.0); // one T1
        let expected = (-1.0f64).exp();
        assert!((q.p_excited() - expected).abs() < 1e-9);
    }

    #[test]
    fn measurement_collapses() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut q = no_decay();
        let amp = pi_amplitude(&q, 20.0) / 2.0;
        q.drive(&Pulse::square(20.0, amp, q.frequency_hz, 0.0));
        let first = q.measure(&mut rng);
        // Post-collapse the state is definite.
        assert_eq!(q.p_excited() > 0.5, first);
        let second = q.measure(&mut rng);
        assert_eq!(first, second);
    }

    #[test]
    fn phase_sets_the_rotation_axis() {
        // Two π/2 pulses with opposite phases cancel.
        let mut q = no_decay();
        let amp = pi_amplitude(&q, 20.0) / 2.0;
        q.drive(&Pulse::square(20.0, amp, q.frequency_hz, 0.0));
        q.drive(&Pulse::square(
            20.0,
            amp,
            q.frequency_hz,
            std::f64::consts::PI,
        ));
        assert!(q.p_excited() < 1e-9);
    }
}
