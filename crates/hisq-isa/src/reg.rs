//! General-purpose register names for the HISQ classical pipeline.
//!
//! HISQ reuses the RV32I integer register file: 32 registers, with `x0`
//! hard-wired to zero. The assembler accepts three spellings:
//!
//! - architectural: `x0` … `x31`;
//! - paper-style: `$0` … `$31` (used throughout the paper's listings);
//! - ABI aliases: `zero`, `ra`, `sp`, `gp`, `tp`, `t0`–`t6`, `s0`/`fp`,
//!   `s1`–`s11`, `a0`–`a7`.

use std::fmt;

/// A general-purpose register index (`x0` … `x31`).
///
/// The wrapped index is guaranteed to be in `0..=31`.
///
/// # Example
///
/// ```
/// use hisq_isa::Reg;
///
/// let t0 = Reg::parse("t0").unwrap();
/// assert_eq!(t0, Reg::new(5).unwrap());
/// assert_eq!(t0.abi_name(), "t0");
/// assert_eq!(Reg::parse("$5"), Some(t0));
/// assert_eq!(Reg::parse("x5"), Some(t0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

/// ABI names indexed by register number.
const ABI_NAMES: [&str; 32] = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
    "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
    "t5", "t6",
];

impl Reg {
    /// The hard-wired zero register `x0`.
    pub const X0: Reg = Reg(0);

    /// Creates a register from its index, returning `None` if out of range.
    pub fn new(index: u8) -> Option<Reg> {
        (index < 32).then_some(Reg(index))
    }

    /// The register index in `0..=31`.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// The raw 5-bit field value used in instruction encodings.
    pub fn bits(self) -> u32 {
        u32::from(self.0)
    }

    /// The architectural name, e.g. `"x5"`.
    pub fn arch_name(self) -> String {
        format!("x{}", self.0)
    }

    /// The RISC-V ABI alias, e.g. `"t0"` for `x5`.
    pub fn abi_name(self) -> &'static str {
        ABI_NAMES[self.index()]
    }

    /// Parses a register in any accepted spelling (`x5`, `$5`, `t0`, …).
    ///
    /// Returns `None` if the text names no register.
    pub fn parse(text: &str) -> Option<Reg> {
        let text = text.trim();
        if let Some(rest) = text.strip_prefix('x').or_else(|| text.strip_prefix('$')) {
            let index: u8 = rest.parse().ok()?;
            return Reg::new(index);
        }
        if text == "fp" {
            return Some(Reg(8));
        }
        ABI_NAMES
            .iter()
            .position(|&name| name == text)
            .map(|i| Reg(i as u8))
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl From<Reg> for u8 {
    fn from(reg: Reg) -> u8 {
        reg.0
    }
}

impl TryFrom<u8> for Reg {
    type Error = crate::DecodeError;

    fn try_from(index: u8) -> Result<Reg, Self::Error> {
        Reg::new(index).ok_or(crate::DecodeError::BadRegister(index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_out_of_range() {
        assert!(Reg::new(31).is_some());
        assert!(Reg::new(32).is_none());
        assert!(Reg::new(255).is_none());
    }

    #[test]
    fn parse_arch_names() {
        for i in 0..32u8 {
            let r = Reg::parse(&format!("x{i}")).unwrap();
            assert_eq!(r.index(), usize::from(i));
        }
        assert!(Reg::parse("x32").is_none());
        assert!(Reg::parse("x-1").is_none());
    }

    #[test]
    fn parse_paper_style_names() {
        assert_eq!(Reg::parse("$0"), Some(Reg::X0));
        assert_eq!(Reg::parse("$31"), Reg::new(31));
        assert!(Reg::parse("$32").is_none());
    }

    #[test]
    fn parse_abi_names() {
        assert_eq!(Reg::parse("zero"), Some(Reg::X0));
        assert_eq!(Reg::parse("ra"), Reg::new(1));
        assert_eq!(Reg::parse("sp"), Reg::new(2));
        assert_eq!(Reg::parse("fp"), Reg::new(8));
        assert_eq!(Reg::parse("s0"), Reg::new(8));
        assert_eq!(Reg::parse("a0"), Reg::new(10));
        assert_eq!(Reg::parse("t6"), Reg::new(31));
        assert!(Reg::parse("q0").is_none());
    }

    #[test]
    fn abi_names_round_trip() {
        for i in 0..32u8 {
            let r = Reg::new(i).unwrap();
            assert_eq!(Reg::parse(r.abi_name()), Some(r));
        }
    }

    #[test]
    fn display_uses_arch_name() {
        assert_eq!(Reg::new(17).unwrap().to_string(), "x17");
    }
}
