//! # hisq-isa — the HISQ hardware instruction set
//!
//! HISQ (*Hardware Instruction Set for Quantum computing*) is the
//! hardware-agnostic quantum-control ISA proposed by the Distributed-HISQ
//! paper (MICRO '25). It extends the RISC-V RV32I base integer set with a
//! small family of timing, triggering, synchronization, and communication
//! instructions. The quantum-facing abstraction is deliberately minimal:
//!
//! > *"sending particular codewords, to particular ports, at particular
//! > time-points"* (Insight #3)
//!
//! This crate provides the complete toolchain for that ISA:
//!
//! - [`Inst`] — the structured instruction representation (RV32I subset
//!   plus the HISQ extension: `cw`, `waiti`/`waitr`, `sync`,
//!   `send`/`recv`, `stop`);
//! - [`encode`]/[`decode`] — the 32-bit binary encoding, with the HISQ
//!   extension living in the RISC-V *custom-0*/*custom-1* opcode space;
//! - [`Assembler`] — a two-pass assembler accepting the syntax used in
//!   the paper's listings (Figures 6 and 12), including `$n`-style
//!   register names, labels, and pseudo-instructions;
//! - [`disasm`] — a round-trippable disassembler;
//! - [`Program`] — an assembled program with its symbol table.
//!
//! # Example
//!
//! The control-board inner loop of the paper's Figure 12:
//!
//! ```
//! use hisq_isa::Assembler;
//!
//! let src = "
//!     addi $2, $0, 120
//!     addi $1, $0, 0
//! loop:
//!     waiti 1
//!     cw.i.i 21, 2
//!     addi $1, $1, 40
//!     cw.i.i 20, 2
//!     waitr $1
//!     sync 2
//!     waiti 8
//!     cw.i.i 7, 1
//!     waiti 50
//!     bne $1, $2, loop
//!     stop
//! ";
//! let program = Assembler::new().assemble(src)?;
//! assert_eq!(program.len(), 13);
//!
//! // Binary round-trip.
//! let words = program.encode()?;
//! let back = hisq_isa::Program::decode(&words)?;
//! assert_eq!(program.insts(), back.insts());
//! # Ok::<(), hisq_isa::IsaError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod asm;
pub mod decode;
pub mod disasm;
pub mod encode;
pub mod inst;
pub mod program;
pub mod reg;

mod error;

pub use asm::Assembler;
pub use error::{AsmError, DecodeError, EncodeError, IsaError};
pub use inst::{AluOp, BranchOp, CwOperand, Inst, LoadOp, StoreOp};
pub use program::Program;
pub use reg::Reg;

/// The TCU clock frequency of the reference implementation (§6.1): 250 MHz.
pub const TCU_CLOCK_HZ: u64 = 250_000_000;

/// Duration of one TCU cycle in nanoseconds (4 ns at 250 MHz).
pub const CYCLE_NS: u64 = 1_000_000_000 / TCU_CLOCK_HZ;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_time_matches_paper() {
        // §6.1: "the TCU operates at 250 MHz, enabling a 4 ns resolution grid".
        assert_eq!(CYCLE_NS, 4);
    }
}
