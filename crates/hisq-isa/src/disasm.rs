//! Disassembly of HISQ instructions back to assembly text.
//!
//! The produced text re-assembles to the identical instruction sequence
//! (a property verified by this crate's test suite), enabling
//! binary → text → binary round trips for debugging deployed programs.

use std::fmt::Write as _;

use crate::inst::Inst;

/// Disassembles a sequence of instructions, one per line.
///
/// Control-flow targets are printed as relative byte offsets, matching
/// the paper's listing style.
///
/// # Example
///
/// ```
/// use hisq_isa::{disasm::disassemble, Inst};
///
/// let text = disassemble(&[Inst::WaitI { cycles: 57 }, Inst::Stop]);
/// assert_eq!(text, "waiti 57\nstop\n");
/// ```
pub fn disassemble(insts: &[Inst]) -> String {
    let mut out = String::new();
    for inst in insts {
        // Inst's Display is already valid assembler input.
        let _ = writeln!(out, "{inst}");
    }
    out
}

/// Disassembles with instruction indices and byte addresses, for
/// human-oriented dumps.
pub fn disassemble_annotated(insts: &[Inst]) -> String {
    let mut out = String::new();
    for (i, inst) in insts.iter().enumerate() {
        let _ = writeln!(out, "{:4}  {:#06x}  {}", i, i * 4, inst);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;

    #[test]
    fn disassembly_reassembles_identically() {
        let src = "
            addi $2,$0,120
            addi $1,$0,0
            waiti 1
            cw.i.i 21,2
            cw.i.r 3, x4
            cw.r.i x5, 9
            cw.r.r x5, x6
            waitr $1
            sync 2
            send 3, x7
            recv x8, 3
            lw x9, -4(x2)
            sw x9, 4(x2)
            bne $1,$2,-28
            jal $0,-44
            stop
        ";
        let p = Assembler::new().assemble(src).unwrap();
        let text = disassemble(p.insts());
        let p2 = Assembler::new().assemble(&text).unwrap();
        assert_eq!(p.insts(), p2.insts());
    }

    #[test]
    fn annotated_dump_contains_addresses() {
        let p = Assembler::new().assemble("nop\nstop").unwrap();
        let text = disassemble_annotated(p.insts());
        assert!(text.contains("0x0000"));
        assert!(text.contains("0x0004"));
        assert!(text.contains("stop"));
    }
}
