//! Binary encoding of HISQ instructions.
//!
//! RV32I base instructions use their standard RISC-V encodings. The HISQ
//! quantum-control extension occupies the RISC-V *custom-0* (`0x0B`) and
//! *custom-1* (`0x2B`) major opcodes so that a HISQ core remains a
//! conforming RV32I implementation:
//!
//! | funct3 | custom-0 (`0x0B`) | field layout |
//! |---|---|---|
//! | `000` | `waiti`  | `cycles[4:0]` in `[11:7]`, `cycles[21:5]` in `[31:15]` |
//! | `001` | `waitr`  | `rs1` in bits `[19:15]` |
//! | `010` | `cw.i.i` | `port[4:0]` in `[11:7]`, `cw[16:0]` in `[31:15]` |
//! | `011` | `cw.i.r` | `port[4:0]` in `[11:7]`, `rs1` in `[19:15]` |
//! | `100` | `cw.r.i` | `rs1` in `[19:15]`, `cw[11:0]` in `[31:20]` |
//! | `101` | `cw.r.r` | `rs1` in `[19:15]`, `rs2` in `[24:20]` |
//! | `110` | `sync`   | `tgt[11:0]` in `[31:20]` |
//! | `111` | `stop`   | all other bits zero |
//!
//! | funct3 | custom-1 (`0x2B`) | field layout |
//! |---|---|---|
//! | `000` | `send` | `tgt[11:0]` in `[31:20]`, `rs1` in `[19:15]` |
//! | `001` | `recv` | `src[11:0]` in `[31:20]`, `rd` in `[11:7]` |

use crate::error::EncodeError;
use crate::inst::{AluOp, BranchOp, CwOperand, Inst, LoadOp, StoreOp};
use crate::reg::Reg;

/// Major opcode of the RV32I `lui` instruction.
pub const OPC_LUI: u32 = 0b011_0111;
/// Major opcode of `auipc`.
pub const OPC_AUIPC: u32 = 0b001_0111;
/// Major opcode of `jal`.
pub const OPC_JAL: u32 = 0b110_1111;
/// Major opcode of `jalr`.
pub const OPC_JALR: u32 = 0b110_0111;
/// Major opcode of conditional branches.
pub const OPC_BRANCH: u32 = 0b110_0011;
/// Major opcode of loads.
pub const OPC_LOAD: u32 = 0b000_0011;
/// Major opcode of stores.
pub const OPC_STORE: u32 = 0b010_0011;
/// Major opcode of register-immediate ALU operations.
pub const OPC_OP_IMM: u32 = 0b001_0011;
/// Major opcode of register-register ALU operations.
pub const OPC_OP: u32 = 0b011_0011;
/// RISC-V custom-0 opcode, hosting the HISQ timing/trigger/sync group.
pub const OPC_HISQ: u32 = 0b000_1011;
/// RISC-V custom-1 opcode, hosting the HISQ message-unit group.
pub const OPC_MSG: u32 = 0b010_1011;

fn imm_range(mnemonic: &'static str, value: i64, min: i64, max: i64) -> Result<(), EncodeError> {
    if value < min || value > max {
        return Err(EncodeError::ImmediateOutOfRange {
            mnemonic,
            value,
            min,
            max,
        });
    }
    Ok(())
}

fn aligned(mnemonic: &'static str, offset: i32) -> Result<(), EncodeError> {
    if offset % 4 != 0 {
        return Err(EncodeError::MisalignedOffset { mnemonic, offset });
    }
    Ok(())
}

fn rd(reg: Reg) -> u32 {
    reg.bits() << 7
}

fn rs1(reg: Reg) -> u32 {
    reg.bits() << 15
}

fn rs2(reg: Reg) -> u32 {
    reg.bits() << 20
}

fn funct3(bits: u32) -> u32 {
    bits << 12
}

fn i_type(opcode: u32, f3: u32, dst: Reg, src: Reg, imm: i32) -> u32 {
    opcode | rd(dst) | funct3(f3) | rs1(src) | (((imm as u32) & 0xfff) << 20)
}

fn b_type(f3: u32, left: Reg, right: Reg, offset: i32) -> u32 {
    let imm = offset as u32;
    let imm12 = (imm >> 12) & 1;
    let imm11 = (imm >> 11) & 1;
    let imm10_5 = (imm >> 5) & 0x3f;
    let imm4_1 = (imm >> 1) & 0xf;
    OPC_BRANCH
        | (imm11 << 7)
        | (imm4_1 << 8)
        | funct3(f3)
        | rs1(left)
        | rs2(right)
        | (imm10_5 << 25)
        | (imm12 << 31)
}

fn s_type(f3: u32, base: Reg, src: Reg, offset: i32) -> u32 {
    let imm = offset as u32;
    OPC_STORE
        | ((imm & 0x1f) << 7)
        | funct3(f3)
        | rs1(base)
        | rs2(src)
        | (((imm >> 5) & 0x7f) << 25)
}

fn j_type(dst: Reg, offset: i32) -> u32 {
    let imm = offset as u32;
    let imm20 = (imm >> 20) & 1;
    let imm19_12 = (imm >> 12) & 0xff;
    let imm11 = (imm >> 11) & 1;
    let imm10_1 = (imm >> 1) & 0x3ff;
    OPC_JAL | rd(dst) | (imm19_12 << 12) | (imm11 << 20) | (imm10_1 << 21) | (imm20 << 31)
}

/// Encodes one instruction into its 32-bit word.
///
/// # Errors
///
/// Returns [`EncodeError`] if an immediate operand does not fit its field
/// or a control-flow offset is not 4-byte aligned. `subi` (an
/// [`Inst::OpImm`] with [`AluOp::Sub`]) is rejected as in RV32I.
///
/// # Example
///
/// ```
/// use hisq_isa::{encode::encode, Inst};
///
/// let word = encode(&Inst::Stop)?;
/// assert_eq!(word & 0x7f, 0x0b); // custom-0 opcode
/// # Ok::<(), hisq_isa::EncodeError>(())
/// ```
pub fn encode(inst: &Inst) -> Result<u32, EncodeError> {
    match *inst {
        Inst::Lui { rd: dst, imm20 } => {
            imm_range("lui", i64::from(imm20), 0, (1 << 20) - 1)?;
            Ok(OPC_LUI | rd(dst) | (imm20 << 12))
        }
        Inst::Auipc { rd: dst, imm20 } => {
            imm_range("auipc", i64::from(imm20), 0, (1 << 20) - 1)?;
            Ok(OPC_AUIPC | rd(dst) | (imm20 << 12))
        }
        Inst::Jal { rd: dst, offset } => {
            imm_range("jal", i64::from(offset), -(1 << 20), (1 << 20) - 2)?;
            aligned("jal", offset)?;
            Ok(j_type(dst, offset))
        }
        Inst::Jalr {
            rd: dst,
            rs1: base,
            offset,
        } => {
            imm_range("jalr", i64::from(offset), -2048, 2047)?;
            Ok(i_type(OPC_JALR, 0b000, dst, base, offset))
        }
        Inst::Branch {
            op,
            rs1: left,
            rs2: right,
            offset,
        } => {
            imm_range(op.mnemonic(), i64::from(offset), -4096, 4094)?;
            aligned(op.mnemonic(), offset)?;
            let f3 = match op {
                BranchOp::Eq => 0b000,
                BranchOp::Ne => 0b001,
                BranchOp::Lt => 0b100,
                BranchOp::Ge => 0b101,
                BranchOp::Ltu => 0b110,
                BranchOp::Geu => 0b111,
            };
            Ok(b_type(f3, left, right, offset))
        }
        Inst::Load {
            op,
            rd: dst,
            rs1: base,
            offset,
        } => {
            imm_range(op.mnemonic(), i64::from(offset), -2048, 2047)?;
            let f3 = match op {
                LoadOp::Byte => 0b000,
                LoadOp::Half => 0b001,
                LoadOp::Word => 0b010,
                LoadOp::ByteU => 0b100,
                LoadOp::HalfU => 0b101,
            };
            Ok(i_type(OPC_LOAD, f3, dst, base, offset))
        }
        Inst::Store {
            op,
            rs1: base,
            rs2: src,
            offset,
        } => {
            imm_range(op.mnemonic(), i64::from(offset), -2048, 2047)?;
            let f3 = match op {
                StoreOp::Byte => 0b000,
                StoreOp::Half => 0b001,
                StoreOp::Word => 0b010,
            };
            Ok(s_type(f3, base, src, offset))
        }
        Inst::OpImm {
            op,
            rd: dst,
            rs1: src,
            imm,
        } => {
            let (f3, imm_field) = match op {
                AluOp::Add => (0b000, imm),
                AluOp::Slt => (0b010, imm),
                AluOp::Sltu => (0b011, imm),
                AluOp::Xor => (0b100, imm),
                AluOp::Or => (0b110, imm),
                AluOp::And => (0b111, imm),
                AluOp::Sll => {
                    imm_range("slli", i64::from(imm), 0, 31)?;
                    (0b001, imm)
                }
                AluOp::Srl => {
                    imm_range("srli", i64::from(imm), 0, 31)?;
                    (0b101, imm)
                }
                AluOp::Sra => {
                    imm_range("srai", i64::from(imm), 0, 31)?;
                    (0b101, imm | (0b010_0000 << 5))
                }
                AluOp::Sub => {
                    return Err(EncodeError::ImmediateOutOfRange {
                        mnemonic: "subi",
                        value: i64::from(imm),
                        min: 0,
                        max: -1, // empty range: no such instruction
                    });
                }
            };
            if !matches!(op, AluOp::Sll | AluOp::Srl | AluOp::Sra) {
                imm_range(inst.mnemonic(), i64::from(imm), -2048, 2047)?;
            }
            Ok(i_type(OPC_OP_IMM, f3, dst, src, imm_field))
        }
        Inst::Op {
            op,
            rd: dst,
            rs1: left,
            rs2: right,
        } => {
            let (f3, f7) = match op {
                AluOp::Add => (0b000, 0b000_0000),
                AluOp::Sub => (0b000, 0b010_0000),
                AluOp::Sll => (0b001, 0b000_0000),
                AluOp::Slt => (0b010, 0b000_0000),
                AluOp::Sltu => (0b011, 0b000_0000),
                AluOp::Xor => (0b100, 0b000_0000),
                AluOp::Srl => (0b101, 0b000_0000),
                AluOp::Sra => (0b101, 0b010_0000),
                AluOp::Or => (0b110, 0b000_0000),
                AluOp::And => (0b111, 0b000_0000),
            };
            Ok(OPC_OP | rd(dst) | funct3(f3) | rs1(left) | rs2(right) | (f7 << 25))
        }

        Inst::WaitI { cycles } => {
            imm_range("waiti", i64::from(cycles), 0, (1 << 22) - 1)?;
            Ok(OPC_HISQ | funct3(0b000) | ((cycles & 0x1f) << 7) | ((cycles >> 5) << 15))
        }
        Inst::WaitR { rs1: src } => Ok(OPC_HISQ | funct3(0b001) | rs1(src)),
        Inst::Cw { port, codeword } => match (port, codeword) {
            (CwOperand::Imm(p), CwOperand::Imm(cw)) => {
                imm_range("cw.i.i", i64::from(p), 0, 31)?;
                imm_range("cw.i.i", i64::from(cw), 0, (1 << 17) - 1)?;
                Ok(OPC_HISQ | (p << 7) | funct3(0b010) | (cw << 15))
            }
            (CwOperand::Imm(p), CwOperand::Reg(r)) => {
                imm_range("cw.i.r", i64::from(p), 0, 31)?;
                Ok(OPC_HISQ | (p << 7) | funct3(0b011) | rs1(r))
            }
            (CwOperand::Reg(r), CwOperand::Imm(cw)) => {
                imm_range("cw.r.i", i64::from(cw), 0, (1 << 12) - 1)?;
                Ok(OPC_HISQ | funct3(0b100) | rs1(r) | (cw << 20))
            }
            (CwOperand::Reg(rp), CwOperand::Reg(rc)) => {
                Ok(OPC_HISQ | funct3(0b101) | rs1(rp) | rs2(rc))
            }
        },
        Inst::Sync { target, horizon } => {
            imm_range("sync", i64::from(target), 0, (1 << 12) - 1)?;
            Ok(OPC_HISQ | funct3(0b110) | rs1(horizon) | (u32::from(target) << 20))
        }
        Inst::Stop => Ok(OPC_HISQ | funct3(0b111)),
        Inst::Send { target, rs1: src } => {
            imm_range("send", i64::from(target), 0, (1 << 12) - 1)?;
            Ok(OPC_MSG | funct3(0b000) | rs1(src) | (u32::from(target) << 20))
        }
        Inst::Recv { rd: dst, source } => {
            imm_range("recv", i64::from(source), 0, (1 << 12) - 1)?;
            Ok(OPC_MSG | funct3(0b001) | rd(dst) | (u32::from(source) << 20))
        }
    }
}

/// Encodes a slice of instructions into a contiguous word vector.
///
/// # Errors
///
/// Propagates the first [`EncodeError`] encountered.
pub fn encode_all(insts: &[Inst]) -> Result<Vec<u32>, EncodeError> {
    insts.iter().map(encode).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg(i: u8) -> Reg {
        Reg::new(i).unwrap()
    }

    #[test]
    fn addi_matches_reference_encoding() {
        // addi x2, x0, 120 — reference encoding 0x07800113.
        let word = encode(&Inst::OpImm {
            op: AluOp::Add,
            rd: reg(2),
            rs1: reg(0),
            imm: 120,
        })
        .unwrap();
        assert_eq!(word, 0x0780_0113);
    }

    #[test]
    fn bne_negative_offset_matches_reference() {
        // bne x1, x2, -28 — reference encoding 0xfe2092e3 computed by hand:
        // imm = -28 = 0xFFFFFFE4; imm[12]=1 imm[10:5]=0b111111 imm[4:1]=0b0010 imm[11]=1.
        let word = encode(&Inst::Branch {
            op: BranchOp::Ne,
            rs1: reg(1),
            rs2: reg(2),
            offset: -28,
        })
        .unwrap();
        assert_eq!(word, 0xfe20_92e3);
    }

    #[test]
    fn jal_negative_offset_round_numbers() {
        // jal x0, -44 from the paper's Figure 12.
        let word = encode(&Inst::Jal {
            rd: reg(0),
            offset: -44,
        })
        .unwrap();
        let decoded = crate::decode::decode(word).unwrap();
        assert_eq!(
            decoded,
            Inst::Jal {
                rd: reg(0),
                offset: -44
            }
        );
    }

    #[test]
    fn misaligned_offsets_rejected() {
        let err = encode(&Inst::Jal {
            rd: reg(0),
            offset: -42,
        })
        .unwrap_err();
        assert!(matches!(err, EncodeError::MisalignedOffset { .. }));

        let err = encode(&Inst::Branch {
            op: BranchOp::Eq,
            rs1: reg(1),
            rs2: reg(2),
            offset: 6,
        })
        .unwrap_err();
        assert!(matches!(err, EncodeError::MisalignedOffset { .. }));
    }

    #[test]
    fn immediates_out_of_range_rejected() {
        assert!(encode(&Inst::OpImm {
            op: AluOp::Add,
            rd: reg(1),
            rs1: reg(0),
            imm: 2048,
        })
        .is_err());
        assert!(encode(&Inst::WaitI { cycles: 1 << 22 }).is_err());
        assert!(encode(&Inst::Cw {
            port: CwOperand::Imm(32),
            codeword: CwOperand::Imm(0),
        })
        .is_err());
        assert!(encode(&Inst::Cw {
            port: CwOperand::Imm(0),
            codeword: CwOperand::Imm(1 << 17),
        })
        .is_err());
        assert!(encode(&Inst::Sync {
            target: 4096,
            horizon: Reg::X0
        })
        .is_err());
    }

    #[test]
    fn subi_is_not_an_instruction() {
        assert!(encode(&Inst::OpImm {
            op: AluOp::Sub,
            rd: reg(1),
            rs1: reg(1),
            imm: 1,
        })
        .is_err());
    }

    #[test]
    fn hisq_extension_uses_custom_opcodes() {
        for inst in [
            Inst::WaitI { cycles: 57 },
            Inst::WaitR { rs1: reg(1) },
            Inst::Sync {
                target: 2,
                horizon: Reg::X0,
            },
            Inst::Stop,
        ] {
            assert_eq!(encode(&inst).unwrap() & 0x7f, OPC_HISQ);
        }
        for inst in [
            Inst::Send {
                target: 3,
                rs1: reg(5),
            },
            Inst::Recv {
                rd: reg(6),
                source: 3,
            },
        ] {
            assert_eq!(encode(&inst).unwrap() & 0x7f, OPC_MSG);
        }
    }
}
