//! A two-pass assembler for HISQ assembly text.
//!
//! The accepted syntax matches the listings in the paper (Figures 6
//! and 12) and conventional RISC-V assembly:
//!
//! - registers may be written `$1` (paper style), `x1`, or by ABI name;
//! - comments start with `#`, `//`, or `;` and run to end of line;
//! - `label:` definitions may stand alone or prefix an instruction;
//! - branch/jump targets are either **labels** or **relative byte
//!   offsets** (the paper writes `bne $1,$2,-28`);
//! - loads/stores use `offset(base)` addressing;
//! - supported pseudo-instructions: `nop`, `mv`, `li`, `j`, `beqz`,
//!   `bnez`, `not`, `neg`, `seqz`, `snez`.
//!
//! # Example
//!
//! ```
//! use hisq_isa::Assembler;
//!
//! let program = Assembler::new().assemble(
//!     "li t0, 1000000\nloop: waitr t0\n  cw.i.i 1, 1\n  j loop\n",
//! )?;
//! assert_eq!(program.len(), 5); // li expands to lui + addi
//! # Ok::<(), hisq_isa::AsmError>(())
//! ```

use std::collections::BTreeMap;

use crate::error::AsmError;
use crate::inst::{AluOp, BranchOp, CwOperand, Inst, LoadOp, StoreOp};
use crate::program::Program;
use crate::reg::Reg;

/// The HISQ two-pass assembler.
///
/// The assembler is stateless between [`Assembler::assemble`] calls; the
/// builder exists to host future options (e.g. alternative immediate
/// bases) without breaking the API.
#[derive(Debug, Clone, Default)]
pub struct Assembler {
    _private: (),
}

impl Assembler {
    /// Creates an assembler with default options.
    pub fn new() -> Assembler {
        Assembler::default()
    }

    /// Assembles HISQ source text into a [`Program`].
    ///
    /// # Errors
    ///
    /// Returns an [`AsmError`] carrying the 1-based source line of the
    /// first problem: unknown mnemonics, malformed operands, duplicate or
    /// undefined labels, and out-of-range immediates detectable at parse
    /// time.
    pub fn assemble(&self, source: &str) -> Result<Program, AsmError> {
        let mut stmts: Vec<Stmt> = Vec::new();
        let mut labels: BTreeMap<String, usize> = BTreeMap::new();
        let mut index = 0usize; // instruction index after pseudo expansion

        // Pass 1: parse lines, record label addresses.
        for (line_no, raw_line) in source.lines().enumerate() {
            let line_no = line_no + 1;
            let mut text = strip_comment(raw_line).trim();
            // Peel any number of leading `label:` definitions.
            while let Some(colon) = find_label_colon(text) {
                let name = text[..colon].trim();
                if !is_valid_label(name) {
                    return Err(AsmError::new(line_no, format!("invalid label `{name}`")));
                }
                if labels.insert(name.to_string(), index).is_some() {
                    return Err(AsmError::new(line_no, format!("duplicate label `{name}`")));
                }
                text = text[colon + 1..].trim();
            }
            if text.is_empty() {
                continue;
            }
            let stmt = parse_stmt(text, line_no)?;
            index += stmt.expanded_len();
            stmts.push(stmt);
        }

        // Pass 2: emit instructions with resolved label targets.
        let mut insts: Vec<Inst> = Vec::with_capacity(index);
        for stmt in &stmts {
            stmt.emit(&labels, insts.len(), &mut insts)?;
        }
        Ok(Program::with_symbols(insts, labels))
    }
}

/// Removes a trailing comment from a source line.
fn strip_comment(line: &str) -> &str {
    let mut end = line.len();
    for marker in ["#", "//", ";"] {
        if let Some(pos) = line.find(marker) {
            end = end.min(pos);
        }
    }
    &line[..end]
}

/// Finds the colon of a leading `label:` definition, if any.
///
/// A colon only introduces a label when it appears before any whitespace-
/// separated operand list — i.e. in the first token.
fn find_label_colon(text: &str) -> Option<usize> {
    let colon = text.find(':')?;
    let head = &text[..colon];
    if head.trim().is_empty() || head.trim().contains(char::is_whitespace) {
        return None;
    }
    Some(colon)
}

fn is_valid_label(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == '.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

/// A parsed operand.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Operand {
    Reg(Reg),
    Imm(i64),
    Label(String),
    /// `offset(base)` memory operand.
    Mem {
        offset: i64,
        base: Reg,
    },
}

impl Operand {
    fn describe(&self) -> &'static str {
        match self {
            Operand::Reg(_) => "register",
            Operand::Imm(_) => "immediate",
            Operand::Label(_) => "label",
            Operand::Mem { .. } => "memory operand",
        }
    }
}

fn parse_imm_text(text: &str) -> Option<i64> {
    let text = text.trim();
    let (negative, body) = match text.strip_prefix('-') {
        Some(rest) => (true, rest.trim()),
        None => (false, text),
    };
    let magnitude = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else if let Some(bin) = body.strip_prefix("0b").or_else(|| body.strip_prefix("0B")) {
        i64::from_str_radix(bin, 2).ok()?
    } else {
        body.parse::<i64>().ok()?
    };
    Some(if negative { -magnitude } else { magnitude })
}

fn parse_operand(text: &str, line: usize) -> Result<Operand, AsmError> {
    let text = text.trim();
    if text.is_empty() {
        return Err(AsmError::new(line, "empty operand"));
    }
    // `offset(base)` or `(base)`.
    if text.ends_with(')') {
        if let Some(open) = text.find('(') {
            let offset_text = text[..open].trim();
            let base_text = text[open + 1..text.len() - 1].trim();
            let base = Reg::parse(base_text).ok_or_else(|| {
                AsmError::new(line, format!("invalid base register `{base_text}`"))
            })?;
            let offset = if offset_text.is_empty() {
                0
            } else {
                parse_imm_text(offset_text)
                    .ok_or_else(|| AsmError::new(line, format!("invalid offset `{offset_text}`")))?
            };
            return Ok(Operand::Mem { offset, base });
        }
    }
    if let Some(reg) = Reg::parse(text) {
        return Ok(Operand::Reg(reg));
    }
    if let Some(imm) = parse_imm_text(text) {
        return Ok(Operand::Imm(imm));
    }
    if is_valid_label(text) {
        return Ok(Operand::Label(text.to_string()));
    }
    Err(AsmError::new(line, format!("unparseable operand `{text}`")))
}

/// A parsed statement: mnemonic plus operands, before label resolution.
#[derive(Debug, Clone)]
struct Stmt {
    mnemonic: String,
    operands: Vec<Operand>,
    line: usize,
}

fn parse_stmt(text: &str, line: usize) -> Result<Stmt, AsmError> {
    let (mnemonic, rest) = match text.find(char::is_whitespace) {
        Some(pos) => (&text[..pos], text[pos..].trim()),
        None => (text, ""),
    };
    let mnemonic = mnemonic.to_ascii_lowercase();
    let operands = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',')
            .map(|part| parse_operand(part, line))
            .collect::<Result<Vec<_>, _>>()?
    };
    Ok(Stmt {
        mnemonic,
        operands,
        line,
    })
}

/// Splits a `li` immediate into (hi20, lo12) such that
/// `(hi20 << 12) + sign_extend(lo12) == imm` in wrapping 32-bit arithmetic.
fn split_li(imm: i32) -> (u32, i32) {
    let hi = ((imm as u32).wrapping_add(0x800)) >> 12;
    let lo = imm.wrapping_sub((hi << 12) as i32);
    (hi & 0xfffff, lo)
}

/// `true` if `imm` fits a 12-bit signed immediate.
fn fits_i12(imm: i64) -> bool {
    (-2048..=2047).contains(&imm)
}

impl Stmt {
    /// Number of concrete instructions this statement expands to.
    fn expanded_len(&self) -> usize {
        if self.mnemonic == "li" {
            if let [Operand::Reg(_), Operand::Imm(imm)] = self.operands.as_slice() {
                if !fits_i12(*imm) {
                    return 2;
                }
            }
        }
        1
    }

    fn err(&self, message: impl Into<String>) -> AsmError {
        AsmError::new(self.line, message.into())
    }

    fn expect_len(&self, n: usize) -> Result<(), AsmError> {
        if self.operands.len() != n {
            return Err(self.err(format!(
                "`{}` expects {n} operand(s), found {}",
                self.mnemonic,
                self.operands.len()
            )));
        }
        Ok(())
    }

    fn reg_at(&self, i: usize) -> Result<Reg, AsmError> {
        match &self.operands[i] {
            Operand::Reg(r) => Ok(*r),
            other => Err(self.err(format!(
                "operand {} of `{}` must be a register, found {}",
                i + 1,
                self.mnemonic,
                other.describe()
            ))),
        }
    }

    fn imm_at(&self, i: usize) -> Result<i64, AsmError> {
        match &self.operands[i] {
            Operand::Imm(v) => Ok(*v),
            other => Err(self.err(format!(
                "operand {} of `{}` must be an immediate, found {}",
                i + 1,
                self.mnemonic,
                other.describe()
            ))),
        }
    }

    fn mem_at(&self, i: usize) -> Result<(i64, Reg), AsmError> {
        match &self.operands[i] {
            Operand::Mem { offset, base } => Ok((*offset, *base)),
            other => Err(self.err(format!(
                "operand {} of `{}` must be `offset(base)`, found {}",
                i + 1,
                self.mnemonic,
                other.describe()
            ))),
        }
    }

    /// Resolves operand `i` as a control-flow target: a raw byte offset or
    /// a label relative to the current instruction index.
    fn target_at(
        &self,
        i: usize,
        labels: &BTreeMap<String, usize>,
        current_index: usize,
    ) -> Result<i32, AsmError> {
        match &self.operands[i] {
            Operand::Imm(v) => {
                i32::try_from(*v).map_err(|_| self.err(format!("offset {v} out of 32-bit range")))
            }
            Operand::Label(name) => {
                let target = labels
                    .get(name)
                    .ok_or_else(|| self.err(format!("undefined label `{name}`")))?;
                let delta = (*target as i64 - current_index as i64) * 4;
                i32::try_from(delta).map_err(|_| self.err(format!("label `{name}` too far away")))
            }
            other => Err(self.err(format!(
                "operand {} of `{}` must be an offset or label, found {}",
                i + 1,
                self.mnemonic,
                other.describe()
            ))),
        }
    }

    fn cw_operand_at(&self, i: usize) -> Result<CwOperand, AsmError> {
        match &self.operands[i] {
            Operand::Reg(r) => Ok(CwOperand::Reg(*r)),
            Operand::Imm(v) => {
                let v = u32::try_from(*v).map_err(|_| {
                    self.err(format!("`{}` operand must be non-negative", self.mnemonic))
                })?;
                Ok(CwOperand::Imm(v))
            }
            other => Err(self.err(format!(
                "operand {} of `{}` must be a register or immediate, found {}",
                i + 1,
                self.mnemonic,
                other.describe()
            ))),
        }
    }

    fn u16_at(&self, i: usize) -> Result<u16, AsmError> {
        let v = self.imm_at(i)?;
        u16::try_from(v).map_err(|_| self.err(format!("value {v} does not fit 16 bits")))
    }

    /// Emits the concrete instruction(s) for this statement.
    fn emit(
        &self,
        labels: &BTreeMap<String, usize>,
        current_index: usize,
        out: &mut Vec<Inst>,
    ) -> Result<(), AsmError> {
        let m = self.mnemonic.as_str();

        let alu_imm = |op: AluOp| -> Result<Inst, AsmError> {
            self.expect_len(3)?;
            let imm = self.imm_at(2)?;
            let imm = i32::try_from(imm)
                .map_err(|_| self.err(format!("immediate {imm} out of 32-bit range")))?;
            Ok(Inst::OpImm {
                op,
                rd: self.reg_at(0)?,
                rs1: self.reg_at(1)?,
                imm,
            })
        };
        let alu_reg = |op: AluOp| -> Result<Inst, AsmError> {
            self.expect_len(3)?;
            Ok(Inst::Op {
                op,
                rd: self.reg_at(0)?,
                rs1: self.reg_at(1)?,
                rs2: self.reg_at(2)?,
            })
        };
        let branch = |op: BranchOp| -> Result<Inst, AsmError> {
            self.expect_len(3)?;
            Ok(Inst::Branch {
                op,
                rs1: self.reg_at(0)?,
                rs2: self.reg_at(1)?,
                offset: self.target_at(2, labels, current_index)?,
            })
        };
        let branch_zero = |op: BranchOp| -> Result<Inst, AsmError> {
            self.expect_len(2)?;
            Ok(Inst::Branch {
                op,
                rs1: self.reg_at(0)?,
                rs2: Reg::X0,
                offset: self.target_at(1, labels, current_index)?,
            })
        };
        let load = |op: LoadOp| -> Result<Inst, AsmError> {
            self.expect_len(2)?;
            let (offset, base) = self.mem_at(1)?;
            let offset = i32::try_from(offset)
                .map_err(|_| self.err(format!("offset {offset} out of range")))?;
            Ok(Inst::Load {
                op,
                rd: self.reg_at(0)?,
                rs1: base,
                offset,
            })
        };
        let store = |op: StoreOp| -> Result<Inst, AsmError> {
            self.expect_len(2)?;
            let (offset, base) = self.mem_at(1)?;
            let offset = i32::try_from(offset)
                .map_err(|_| self.err(format!("offset {offset} out of range")))?;
            Ok(Inst::Store {
                op,
                rs1: base,
                rs2: self.reg_at(0)?,
                offset,
            })
        };

        let inst = match m {
            "addi" => alu_imm(AluOp::Add)?,
            "slti" => alu_imm(AluOp::Slt)?,
            "sltiu" => alu_imm(AluOp::Sltu)?,
            "xori" => alu_imm(AluOp::Xor)?,
            "ori" => alu_imm(AluOp::Or)?,
            "andi" => alu_imm(AluOp::And)?,
            "slli" => alu_imm(AluOp::Sll)?,
            "srli" => alu_imm(AluOp::Srl)?,
            "srai" => alu_imm(AluOp::Sra)?,
            "add" => alu_reg(AluOp::Add)?,
            "sub" => alu_reg(AluOp::Sub)?,
            "sll" => alu_reg(AluOp::Sll)?,
            "slt" => alu_reg(AluOp::Slt)?,
            "sltu" => alu_reg(AluOp::Sltu)?,
            "xor" => alu_reg(AluOp::Xor)?,
            "srl" => alu_reg(AluOp::Srl)?,
            "sra" => alu_reg(AluOp::Sra)?,
            "or" => alu_reg(AluOp::Or)?,
            "and" => alu_reg(AluOp::And)?,
            "beq" => branch(BranchOp::Eq)?,
            "bne" => branch(BranchOp::Ne)?,
            "blt" => branch(BranchOp::Lt)?,
            "bge" => branch(BranchOp::Ge)?,
            "bltu" => branch(BranchOp::Ltu)?,
            "bgeu" => branch(BranchOp::Geu)?,
            "beqz" => branch_zero(BranchOp::Eq)?,
            "bnez" => branch_zero(BranchOp::Ne)?,
            "lb" => load(LoadOp::Byte)?,
            "lh" => load(LoadOp::Half)?,
            "lw" => load(LoadOp::Word)?,
            "lbu" => load(LoadOp::ByteU)?,
            "lhu" => load(LoadOp::HalfU)?,
            "sb" => store(StoreOp::Byte)?,
            "sh" => store(StoreOp::Half)?,
            "sw" => store(StoreOp::Word)?,
            "lui" | "auipc" => {
                self.expect_len(2)?;
                let imm = self.imm_at(1)?;
                let imm20 = u32::try_from(imm)
                    .ok()
                    .filter(|v| *v < (1 << 20))
                    .ok_or_else(|| self.err(format!("immediate {imm} does not fit 20 bits")))?;
                let rd = self.reg_at(0)?;
                if m == "lui" {
                    Inst::Lui { rd, imm20 }
                } else {
                    Inst::Auipc { rd, imm20 }
                }
            }
            "jal" => match self.operands.len() {
                1 => Inst::Jal {
                    rd: Reg::parse("ra").expect("ra exists"),
                    offset: self.target_at(0, labels, current_index)?,
                },
                2 => Inst::Jal {
                    rd: self.reg_at(0)?,
                    offset: self.target_at(1, labels, current_index)?,
                },
                n => return Err(self.err(format!("`jal` expects 1 or 2 operands, found {n}"))),
            },
            "jalr" => match self.operands.len() {
                1 => Inst::Jalr {
                    rd: Reg::parse("ra").expect("ra exists"),
                    rs1: self.reg_at(0)?,
                    offset: 0,
                },
                3 => {
                    let imm = self.imm_at(2)?;
                    Inst::Jalr {
                        rd: self.reg_at(0)?,
                        rs1: self.reg_at(1)?,
                        offset: i32::try_from(imm)
                            .map_err(|_| self.err(format!("offset {imm} out of range")))?,
                    }
                }
                n => return Err(self.err(format!("`jalr` expects 1 or 3 operands, found {n}"))),
            },
            "j" => {
                self.expect_len(1)?;
                Inst::Jal {
                    rd: Reg::X0,
                    offset: self.target_at(0, labels, current_index)?,
                }
            }
            "nop" => {
                self.expect_len(0)?;
                Inst::NOP
            }
            "mv" => {
                self.expect_len(2)?;
                Inst::OpImm {
                    op: AluOp::Add,
                    rd: self.reg_at(0)?,
                    rs1: self.reg_at(1)?,
                    imm: 0,
                }
            }
            "not" => {
                self.expect_len(2)?;
                Inst::OpImm {
                    op: AluOp::Xor,
                    rd: self.reg_at(0)?,
                    rs1: self.reg_at(1)?,
                    imm: -1,
                }
            }
            "neg" => {
                self.expect_len(2)?;
                Inst::Op {
                    op: AluOp::Sub,
                    rd: self.reg_at(0)?,
                    rs1: Reg::X0,
                    rs2: self.reg_at(1)?,
                }
            }
            "seqz" => {
                self.expect_len(2)?;
                Inst::OpImm {
                    op: AluOp::Sltu,
                    rd: self.reg_at(0)?,
                    rs1: self.reg_at(1)?,
                    imm: 1,
                }
            }
            "snez" => {
                self.expect_len(2)?;
                Inst::Op {
                    op: AluOp::Sltu,
                    rd: self.reg_at(0)?,
                    rs1: Reg::X0,
                    rs2: self.reg_at(1)?,
                }
            }
            "li" => {
                self.expect_len(2)?;
                let rd = self.reg_at(0)?;
                let imm = self.imm_at(1)?;
                if !(i64::from(i32::MIN)..=i64::from(u32::MAX)).contains(&imm) {
                    return Err(self.err(format!("`li` immediate {imm} out of 32-bit range")));
                }
                let imm = imm as i32;
                if fits_i12(i64::from(imm)) {
                    Inst::OpImm {
                        op: AluOp::Add,
                        rd,
                        rs1: Reg::X0,
                        imm,
                    }
                } else {
                    let (hi, lo) = split_li(imm);
                    out.push(Inst::Lui { rd, imm20: hi });
                    Inst::OpImm {
                        op: AluOp::Add,
                        rd,
                        rs1: rd,
                        imm: lo,
                    }
                }
            }
            "waiti" => {
                self.expect_len(1)?;
                let v = self.imm_at(0)?;
                let cycles = u32::try_from(v)
                    .ok()
                    .filter(|v| *v < (1 << 22))
                    .ok_or_else(|| self.err(format!("`waiti` count {v} does not fit 22 bits")))?;
                Inst::WaitI { cycles }
            }
            "waitr" => {
                self.expect_len(1)?;
                Inst::WaitR {
                    rs1: self.reg_at(0)?,
                }
            }
            "cw.i.i" | "cw.i.r" | "cw.r.i" | "cw.r.r" => {
                self.expect_len(2)?;
                let port = self.cw_operand_at(0)?;
                let codeword = self.cw_operand_at(1)?;
                let expect = |imm: bool| if imm { "immediate" } else { "register" };
                let want_port_imm = m.as_bytes()[3] == b'i';
                let want_cw_imm = m.as_bytes()[5] == b'i';
                if port.is_imm() != want_port_imm {
                    return Err(self.err(format!(
                        "`{m}` port operand must be a {}",
                        expect(want_port_imm)
                    )));
                }
                if codeword.is_imm() != want_cw_imm {
                    return Err(self.err(format!(
                        "`{m}` codeword operand must be a {}",
                        expect(want_cw_imm)
                    )));
                }
                Inst::Cw { port, codeword }
            }
            "sync" => match self.operands.len() {
                1 => Inst::Sync {
                    target: self.u16_at(0)?,
                    horizon: Reg::X0,
                },
                2 => Inst::Sync {
                    target: self.u16_at(0)?,
                    horizon: self.reg_at(1)?,
                },
                n => return Err(self.err(format!("`sync` expects 1 or 2 operands, found {n}"))),
            },
            "send" => {
                self.expect_len(2)?;
                Inst::Send {
                    target: self.u16_at(0)?,
                    rs1: self.reg_at(1)?,
                }
            }
            "recv" => {
                self.expect_len(2)?;
                Inst::Recv {
                    rd: self.reg_at(0)?,
                    source: self.u16_at(1)?,
                }
            }
            "stop" => {
                self.expect_len(0)?;
                Inst::Stop
            }
            other => return Err(self.err(format!("unknown mnemonic `{other}`"))),
        };
        out.push(inst);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asm(src: &str) -> Program {
        Assembler::new().assemble(src).unwrap()
    }

    fn reg(i: u8) -> Reg {
        Reg::new(i).unwrap()
    }

    #[test]
    fn assembles_paper_figure12_control_board() {
        let src = "
            # Control board
            addi $2,$0,120
            addi $1,$0,0
            waiti 1
            cw.i.i 21,2
            addi $1,$1,40
            cw.i.i 20,2
            waitr $1
            sync 2
            waiti 8
            cw.i.i 7,1
            waiti 50
            bne $1,$2,-28
            jal $0,-44
        ";
        let p = asm(src);
        assert_eq!(p.len(), 13);
        assert_eq!(
            p.insts()[3],
            Inst::Cw {
                port: CwOperand::Imm(21),
                codeword: CwOperand::Imm(2)
            }
        );
        assert_eq!(p.insts()[6], Inst::WaitR { rs1: reg(1) });
        assert_eq!(
            p.insts()[7],
            Inst::Sync {
                target: 2,
                horizon: Reg::X0
            }
        );
        assert_eq!(
            p.insts()[11],
            Inst::Branch {
                op: BranchOp::Ne,
                rs1: reg(1),
                rs2: reg(2),
                offset: -28
            }
        );
        assert_eq!(
            p.insts()[12],
            Inst::Jal {
                rd: reg(0),
                offset: -44
            }
        );
    }

    #[test]
    fn assembles_paper_figure12_readout_board() {
        let src = "
            waiti 2
            sync 1
            waiti 6
            waiti 57
            cw.i.i 5,1
            jal $0,-20
        ";
        let p = asm(src);
        assert_eq!(p.len(), 6);
        assert_eq!(
            p.insts()[1],
            Inst::Sync {
                target: 1,
                horizon: Reg::X0
            }
        );
    }

    #[test]
    fn labels_resolve_to_relative_offsets() {
        let src = "
        top:
            addi x1, x1, 1
            bne x1, x2, top
            j top
        ";
        let p = asm(src);
        assert_eq!(
            p.insts()[1],
            Inst::Branch {
                op: BranchOp::Ne,
                rs1: reg(1),
                rs2: reg(2),
                offset: -4
            }
        );
        assert_eq!(
            p.insts()[2],
            Inst::Jal {
                rd: Reg::X0,
                offset: -8
            }
        );
        assert_eq!(p.symbol("top"), Some(0));
    }

    #[test]
    fn forward_labels_and_same_line_labels() {
        let src = "
            beqz x1, done
            addi x1, x0, 5
        done: stop
        ";
        let p = asm(src);
        assert_eq!(
            p.insts()[0],
            Inst::Branch {
                op: BranchOp::Eq,
                rs1: reg(1),
                rs2: Reg::X0,
                offset: 8
            }
        );
        assert_eq!(p.insts()[2], Inst::Stop);
    }

    #[test]
    fn li_expansion_small_and_large() {
        let p = asm("li t0, 100");
        assert_eq!(p.len(), 1);

        let p = asm("li t0, 1000000");
        assert_eq!(p.len(), 2);
        // Verify the expansion reconstructs the value.
        if let [Inst::Lui { imm20, .. }, Inst::OpImm { imm, .. }] = p.insts() {
            let value = ((imm20 << 12) as i32).wrapping_add(*imm);
            assert_eq!(value, 1_000_000);
        } else {
            panic!("unexpected expansion: {:?}", p.insts());
        }

        // Negative value needing the hi/lo split carry adjustment.
        let p = asm("li t0, -1000000");
        if let [Inst::Lui { imm20, .. }, Inst::OpImm { imm, .. }] = p.insts() {
            let value = ((imm20 << 12) as i32).wrapping_add(*imm);
            assert_eq!(value, -1_000_000);
        } else {
            panic!("unexpected expansion: {:?}", p.insts());
        }
    }

    #[test]
    fn li_expansion_preserves_label_addresses() {
        let src = "
            li t0, 1000000
        target:
            j target
        ";
        let p = asm(src);
        assert_eq!(p.symbol("target"), Some(2));
        assert_eq!(
            p.insts()[2],
            Inst::Jal {
                rd: Reg::X0,
                offset: 0
            }
        );
    }

    #[test]
    fn loads_and_stores_with_memory_operands() {
        let p = asm("lw a0, -4(sp)\nsw a0, 8(s0)\nlb t0, (a1)");
        assert_eq!(
            p.insts()[0],
            Inst::Load {
                op: LoadOp::Word,
                rd: Reg::parse("a0").unwrap(),
                rs1: Reg::parse("sp").unwrap(),
                offset: -4
            }
        );
        assert_eq!(
            p.insts()[1],
            Inst::Store {
                op: StoreOp::Word,
                rs1: Reg::parse("s0").unwrap(),
                rs2: Reg::parse("a0").unwrap(),
                offset: 8
            }
        );
        assert_eq!(
            p.insts()[2],
            Inst::Load {
                op: LoadOp::Byte,
                rd: reg(5),
                rs1: Reg::parse("a1").unwrap(),
                offset: 0
            }
        );
    }

    #[test]
    fn hex_and_binary_immediates() {
        let p = asm("addi x1, x0, 0x7f\naddi x2, x0, 0b101\naddi x3, x0, -0x10");
        assert!(matches!(p.insts()[0], Inst::OpImm { imm: 127, .. }));
        assert!(matches!(p.insts()[1], Inst::OpImm { imm: 5, .. }));
        assert!(matches!(p.insts()[2], Inst::OpImm { imm: -16, .. }));
    }

    #[test]
    fn comments_in_all_styles() {
        let p = asm("addi x1, x0, 1 # hash\naddi x2, x0, 2 // slash\naddi x3, x0, 3 ; semi");
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn cw_operand_kind_mismatch_is_an_error() {
        let err = Assembler::new().assemble("cw.i.r 3, 5").unwrap_err();
        assert!(err.message.contains("codeword"));
        let err = Assembler::new().assemble("cw.r.i 3, 5").unwrap_err();
        assert!(err.message.contains("port"));
    }

    #[test]
    fn error_reporting_carries_line_numbers() {
        let err = Assembler::new()
            .assemble("nop\nnop\nbogus x1, x2\n")
            .unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("bogus"));
    }

    #[test]
    fn duplicate_and_undefined_labels_rejected() {
        let err = Assembler::new().assemble("a:\na:\n").unwrap_err();
        assert!(err.message.contains("duplicate"));
        let err = Assembler::new().assemble("j nowhere\n").unwrap_err();
        assert!(err.message.contains("undefined"));
    }

    #[test]
    fn pseudo_instructions() {
        let p = asm("nop\nmv x1, x2\nnot x3, x4\nneg x5, x6\nseqz x7, x8\nsnez x9, x10");
        assert_eq!(p.insts()[0], Inst::NOP);
        assert_eq!(
            p.insts()[1],
            Inst::OpImm {
                op: AluOp::Add,
                rd: reg(1),
                rs1: reg(2),
                imm: 0
            }
        );
        assert_eq!(
            p.insts()[3],
            Inst::Op {
                op: AluOp::Sub,
                rd: reg(5),
                rs1: Reg::X0,
                rs2: reg(6)
            }
        );
    }
}
