//! The HISQ instruction set: RV32I base subset plus the quantum-control
//! extension.
//!
//! Per §3.1.1 of the paper, HISQ is *"an extension to the RISC-V 32I
//! instruction set"* with interrupt- and fence-related functionality
//! disabled. The extension adds (§3.1.2–3.1.4):
//!
//! | Mnemonic | Purpose |
//! |---|---|
//! | `waiti`/`waitr` | advance the TCU timing grid (QuMA-style timing control) |
//! | `cw.{i,r}.{i,r}` | enqueue *codeword → port* trigger events |
//! | `sync <tgt>` | BISP synchronization with a neighbour or ancestor router |
//! | `send`/`recv` | classical messages between controllers (Message Unit) |
//! | `stop` | halt the controller (simulation-friendly program end) |

use std::fmt;

use crate::reg::Reg;

/// ALU operation selector shared by register-register and
/// register-immediate instruction forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition (`add`/`addi`).
    Add,
    /// Subtraction (`sub`; no immediate form in RV32I).
    Sub,
    /// Logical left shift (`sll`/`slli`).
    Sll,
    /// Signed set-less-than (`slt`/`slti`).
    Slt,
    /// Unsigned set-less-than (`sltu`/`sltiu`).
    Sltu,
    /// Bitwise exclusive or (`xor`/`xori`).
    Xor,
    /// Logical right shift (`srl`/`srli`).
    Srl,
    /// Arithmetic right shift (`sra`/`srai`).
    Sra,
    /// Bitwise or (`or`/`ori`).
    Or,
    /// Bitwise and (`and`/`andi`).
    And,
}

impl AluOp {
    /// The mnemonic of the register-register form.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Sll => "sll",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Xor => "xor",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Or => "or",
            AluOp::And => "and",
        }
    }
}

/// Branch comparison selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchOp {
    /// Branch if equal (`beq`).
    Eq,
    /// Branch if not equal (`bne`).
    Ne,
    /// Branch if signed less-than (`blt`).
    Lt,
    /// Branch if signed greater-or-equal (`bge`).
    Ge,
    /// Branch if unsigned less-than (`bltu`).
    Ltu,
    /// Branch if unsigned greater-or-equal (`bgeu`).
    Geu,
}

impl BranchOp {
    /// The branch mnemonic, e.g. `"bne"`.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchOp::Eq => "beq",
            BranchOp::Ne => "bne",
            BranchOp::Lt => "blt",
            BranchOp::Ge => "bge",
            BranchOp::Ltu => "bltu",
            BranchOp::Geu => "bgeu",
        }
    }

    /// Evaluates the comparison on two register values.
    pub fn evaluate(self, lhs: u32, rhs: u32) -> bool {
        match self {
            BranchOp::Eq => lhs == rhs,
            BranchOp::Ne => lhs != rhs,
            BranchOp::Lt => (lhs as i32) < (rhs as i32),
            BranchOp::Ge => (lhs as i32) >= (rhs as i32),
            BranchOp::Ltu => lhs < rhs,
            BranchOp::Geu => lhs >= rhs,
        }
    }
}

/// Load width/sign selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadOp {
    /// Load signed byte (`lb`).
    Byte,
    /// Load signed half-word (`lh`).
    Half,
    /// Load word (`lw`).
    Word,
    /// Load unsigned byte (`lbu`).
    ByteU,
    /// Load unsigned half-word (`lhu`).
    HalfU,
}

impl LoadOp {
    /// The load mnemonic, e.g. `"lw"`.
    pub fn mnemonic(self) -> &'static str {
        match self {
            LoadOp::Byte => "lb",
            LoadOp::Half => "lh",
            LoadOp::Word => "lw",
            LoadOp::ByteU => "lbu",
            LoadOp::HalfU => "lhu",
        }
    }
}

/// Store width selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreOp {
    /// Store byte (`sb`).
    Byte,
    /// Store half-word (`sh`).
    Half,
    /// Store word (`sw`).
    Word,
}

impl StoreOp {
    /// The store mnemonic, e.g. `"sw"`.
    pub fn mnemonic(self) -> &'static str {
        match self {
            StoreOp::Byte => "sb",
            StoreOp::Half => "sh",
            StoreOp::Word => "sw",
        }
    }
}

/// An operand of a `cw` instruction: either an immediate or a
/// general-purpose register, mirroring the `cw.x.x` syntax of §3.1.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CwOperand {
    /// Immediate operand (the `.i` form).
    Imm(u32),
    /// Register operand (the `.r` form).
    Reg(Reg),
}

impl CwOperand {
    /// `true` for the immediate form.
    pub fn is_imm(self) -> bool {
        matches!(self, CwOperand::Imm(_))
    }
}

impl fmt::Display for CwOperand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CwOperand::Imm(v) => write!(f, "{v}"),
            CwOperand::Reg(r) => write!(f, "{r}"),
        }
    }
}

/// A single HISQ instruction.
///
/// Offsets on control-transfer instructions are **byte** offsets relative
/// to the instruction's own address, matching both RISC-V convention and
/// the paper's listings (e.g. `bne $1,$2,-28`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    // ---- RV32I base subset -------------------------------------------
    /// `lui rd, imm20`: load `imm20 << 12` into `rd`.
    Lui {
        /// Destination register.
        rd: Reg,
        /// Upper 20-bit immediate (raw field value, `0..2^20`).
        imm20: u32,
    },
    /// `auipc rd, imm20`: `rd = pc + (imm20 << 12)`.
    Auipc {
        /// Destination register.
        rd: Reg,
        /// Upper 20-bit immediate (raw field value, `0..2^20`).
        imm20: u32,
    },
    /// `jal rd, offset`: jump and link.
    Jal {
        /// Link register (often `x0` for plain jumps).
        rd: Reg,
        /// Signed byte offset from this instruction.
        offset: i32,
    },
    /// `jalr rd, rs1, offset`: indirect jump and link.
    Jalr {
        /// Link register.
        rd: Reg,
        /// Base address register.
        rs1: Reg,
        /// Signed byte offset added to `rs1`.
        offset: i32,
    },
    /// Conditional branch, e.g. `bne rs1, rs2, offset`.
    Branch {
        /// Comparison kind.
        op: BranchOp,
        /// Left operand register.
        rs1: Reg,
        /// Right operand register.
        rs2: Reg,
        /// Signed byte offset from this instruction.
        offset: i32,
    },
    /// Memory load, e.g. `lw rd, offset(rs1)`.
    Load {
        /// Width/sign kind.
        op: LoadOp,
        /// Destination register.
        rd: Reg,
        /// Base address register.
        rs1: Reg,
        /// Signed byte offset.
        offset: i32,
    },
    /// Memory store, e.g. `sw rs2, offset(rs1)`.
    Store {
        /// Width kind.
        op: StoreOp,
        /// Base address register.
        rs1: Reg,
        /// Source register.
        rs2: Reg,
        /// Signed byte offset.
        offset: i32,
    },
    /// Register-immediate ALU operation, e.g. `addi rd, rs1, imm`.
    ///
    /// For shift kinds the immediate is the 5-bit shift amount.
    OpImm {
        /// Operation kind ([`AluOp::Sub`] is not valid here).
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// 12-bit signed immediate (or 5-bit shamt for shifts).
        imm: i32,
    },
    /// Register-register ALU operation, e.g. `add rd, rs1, rs2`.
    Op {
        /// Operation kind.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// Left source register.
        rs1: Reg,
        /// Right source register.
        rs2: Reg,
    },

    // ---- HISQ quantum-control extension ------------------------------
    /// `waiti cycles`: advance the TCU timing grid by an immediate number
    /// of cycles (22-bit unsigned, i.e. up to ~16.8 ms at 4 ns/cycle).
    WaitI {
        /// Number of TCU cycles to advance.
        cycles: u32,
    },
    /// `waitr rs1`: advance the TCU timing grid by the value of `rs1`.
    ///
    /// This is the source of run-time timing non-determinism in the
    /// paper's Figure 12 experiment.
    WaitR {
        /// Register holding the cycle count.
        rs1: Reg,
    },
    /// `cw.x.x port, codeword`: enqueue the codeword into the event queue
    /// of `port`, to be committed at the current timing-grid time-point.
    Cw {
        /// Target port (immediate `0..32` or register).
        port: CwOperand,
        /// Codeword value (immediate or register).
        codeword: CwOperand,
    },
    /// `sync tgt[, rs1]`: BISP synchronization against a neighbour
    /// controller or an ancestor router (the booking instruction).
    ///
    /// For **region-level** sync the controller books a synchronization
    /// time-point `T_i = now + horizon` with its ancestor router (§4.3);
    /// `horizon` is read from `rs1` (in TCU cycles). `x0` books `T_i =
    /// now`, which is also the convention for nearby sync where the
    /// booked point is implied by the calibrated link countdown.
    Sync {
        /// Network address of the sync partner (controller) or region
        /// coordinator (router).
        target: u16,
        /// Register holding the deterministic-work horizon in cycles
        /// (`x0` = zero horizon).
        horizon: Reg,
    },
    /// `send tgt, rs1`: send the value of `rs1` to controller `tgt`.
    Send {
        /// Destination controller address.
        target: u16,
        /// Register holding the payload (e.g. a measurement result).
        rs1: Reg,
    },
    /// `recv rd, src`: blocking receive from controller `src` into `rd`.
    Recv {
        /// Destination register for the payload.
        rd: Reg,
        /// Source controller address.
        source: u16,
    },
    /// `stop`: halt this controller.
    Stop,
}

impl Inst {
    /// A canonical no-op (`addi x0, x0, 0`).
    pub const NOP: Inst = Inst::OpImm {
        op: AluOp::Add,
        rd: Reg::X0,
        rs1: Reg::X0,
        imm: 0,
    };

    /// The primary mnemonic of this instruction.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Inst::Lui { .. } => "lui",
            Inst::Auipc { .. } => "auipc",
            Inst::Jal { .. } => "jal",
            Inst::Jalr { .. } => "jalr",
            Inst::Branch { op, .. } => op.mnemonic(),
            Inst::Load { op, .. } => op.mnemonic(),
            Inst::Store { op, .. } => op.mnemonic(),
            Inst::OpImm { op, .. } => match op {
                AluOp::Add => "addi",
                AluOp::Sub => "subi", // rejected by the encoder
                AluOp::Sll => "slli",
                AluOp::Slt => "slti",
                AluOp::Sltu => "sltiu",
                AluOp::Xor => "xori",
                AluOp::Srl => "srli",
                AluOp::Sra => "srai",
                AluOp::Or => "ori",
                AluOp::And => "andi",
            },
            Inst::Op { op, .. } => op.mnemonic(),
            Inst::WaitI { .. } => "waiti",
            Inst::WaitR { .. } => "waitr",
            Inst::Cw { port, codeword } => match (port.is_imm(), codeword.is_imm()) {
                (true, true) => "cw.i.i",
                (true, false) => "cw.i.r",
                (false, true) => "cw.r.i",
                (false, false) => "cw.r.r",
            },
            Inst::Sync { .. } => "sync",
            Inst::Send { .. } => "send",
            Inst::Recv { .. } => "recv",
            Inst::Stop => "stop",
        }
    }

    /// `true` if this instruction is part of the HISQ quantum-control
    /// extension (as opposed to the RV32I base).
    pub fn is_quantum_extension(&self) -> bool {
        matches!(
            self,
            Inst::WaitI { .. }
                | Inst::WaitR { .. }
                | Inst::Cw { .. }
                | Inst::Sync { .. }
                | Inst::Send { .. }
                | Inst::Recv { .. }
                | Inst::Stop
        )
    }

    /// `true` if this instruction may redirect control flow.
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Inst::Jal { .. } | Inst::Jalr { .. } | Inst::Branch { .. }
        )
    }

    /// `true` if the instruction's duration is unknowable at compile time
    /// (it depends on run-time register values or remote controllers).
    ///
    /// These are the *non-deterministic tasks* of the BISP analysis
    /// (§4.2): `waitr`, `recv`, and `sync` itself.
    pub fn is_nondeterministic(&self) -> bool {
        matches!(
            self,
            Inst::WaitR { .. } | Inst::Recv { .. } | Inst::Sync { .. }
        )
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Lui { rd, imm20 } => write!(f, "lui {rd}, {imm20}"),
            Inst::Auipc { rd, imm20 } => write!(f, "auipc {rd}, {imm20}"),
            Inst::Jal { rd, offset } => write!(f, "jal {rd}, {offset}"),
            Inst::Jalr { rd, rs1, offset } => write!(f, "jalr {rd}, {rs1}, {offset}"),
            Inst::Branch {
                op,
                rs1,
                rs2,
                offset,
            } => write!(f, "{} {rs1}, {rs2}, {offset}", op.mnemonic()),
            Inst::Load {
                op,
                rd,
                rs1,
                offset,
            } => write!(f, "{} {rd}, {offset}({rs1})", op.mnemonic()),
            Inst::Store {
                op,
                rs1,
                rs2,
                offset,
            } => write!(f, "{} {rs2}, {offset}({rs1})", op.mnemonic()),
            Inst::OpImm { rd, rs1, imm, .. } => {
                write!(f, "{} {rd}, {rs1}, {imm}", self.mnemonic())
            }
            Inst::Op { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())
            }
            Inst::WaitI { cycles } => write!(f, "waiti {cycles}"),
            Inst::WaitR { rs1 } => write!(f, "waitr {rs1}"),
            Inst::Cw { port, codeword } => {
                write!(f, "{} {port}, {codeword}", self.mnemonic())
            }
            Inst::Sync { target, horizon } => {
                if horizon == Reg::X0 {
                    write!(f, "sync {target}")
                } else {
                    write!(f, "sync {target}, {horizon}")
                }
            }
            Inst::Send { target, rs1 } => write!(f, "send {target}, {rs1}"),
            Inst::Recv { rd, source } => write!(f, "recv {rd}, {source}"),
            Inst::Stop => write!(f, "stop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg(i: u8) -> Reg {
        Reg::new(i).unwrap()
    }

    #[test]
    fn branch_evaluation_signed_vs_unsigned() {
        let minus_one = -1i32 as u32;
        assert!(BranchOp::Lt.evaluate(minus_one, 0)); // signed: -1 < 0
        assert!(!BranchOp::Ltu.evaluate(minus_one, 0)); // unsigned: max > 0
        assert!(BranchOp::Geu.evaluate(minus_one, 0));
        assert!(BranchOp::Eq.evaluate(7, 7));
        assert!(BranchOp::Ne.evaluate(7, 8));
        assert!(BranchOp::Ge.evaluate(0, minus_one));
    }

    #[test]
    fn cw_mnemonics_follow_operand_kinds() {
        let cases = [
            (CwOperand::Imm(3), CwOperand::Imm(1), "cw.i.i"),
            (CwOperand::Imm(3), CwOperand::Reg(reg(3)), "cw.i.r"),
            (CwOperand::Reg(reg(4)), CwOperand::Imm(1), "cw.r.i"),
            (CwOperand::Reg(reg(4)), CwOperand::Reg(reg(3)), "cw.r.r"),
        ];
        for (port, codeword, expected) in cases {
            assert_eq!(Inst::Cw { port, codeword }.mnemonic(), expected);
        }
    }

    #[test]
    fn extension_classification() {
        assert!(Inst::WaitI { cycles: 1 }.is_quantum_extension());
        assert!(Inst::Sync {
            target: 2,
            horizon: Reg::X0
        }
        .is_quantum_extension());
        assert!(!Inst::NOP.is_quantum_extension());
        assert!(Inst::NOP == Inst::NOP);
    }

    #[test]
    fn nondeterminism_classification() {
        assert!(Inst::WaitR { rs1: reg(1) }.is_nondeterministic());
        assert!(Inst::Recv {
            rd: reg(1),
            source: 0
        }
        .is_nondeterministic());
        assert!(Inst::Sync {
            target: 1,
            horizon: Reg::X0
        }
        .is_nondeterministic());
        assert!(!Inst::WaitI { cycles: 100 }.is_nondeterministic());
        assert!(!Inst::Send {
            target: 1,
            rs1: reg(2)
        }
        .is_nondeterministic());
    }

    #[test]
    fn display_matches_paper_syntax() {
        let i = Inst::Cw {
            port: CwOperand::Imm(21),
            codeword: CwOperand::Imm(2),
        };
        assert_eq!(i.to_string(), "cw.i.i 21, 2");
        assert_eq!(
            Inst::Sync {
                target: 2,
                horizon: Reg::X0
            }
            .to_string(),
            "sync 2"
        );
        assert_eq!(
            Inst::Sync {
                target: 3,
                horizon: reg(5)
            }
            .to_string(),
            "sync 3, x5"
        );
        assert_eq!(Inst::WaitR { rs1: reg(1) }.to_string(), "waitr x1");
    }
}
