//! Binary decoding of HISQ instructions (inverse of [`crate::encode`]).

use crate::error::DecodeError;
use crate::inst::{AluOp, BranchOp, CwOperand, Inst, LoadOp, StoreOp};
use crate::reg::Reg;

use crate::encode::{
    OPC_AUIPC, OPC_BRANCH, OPC_HISQ, OPC_JAL, OPC_JALR, OPC_LOAD, OPC_LUI, OPC_MSG, OPC_OP,
    OPC_OP_IMM, OPC_STORE,
};

fn field_rd(word: u32) -> Result<Reg, DecodeError> {
    Reg::try_from(((word >> 7) & 0x1f) as u8)
}

fn field_rs1(word: u32) -> Result<Reg, DecodeError> {
    Reg::try_from(((word >> 15) & 0x1f) as u8)
}

fn field_rs2(word: u32) -> Result<Reg, DecodeError> {
    Reg::try_from(((word >> 20) & 0x1f) as u8)
}

fn field_funct3(word: u32) -> u32 {
    (word >> 12) & 0x7
}

fn field_funct7(word: u32) -> u32 {
    word >> 25
}

/// Sign-extends the low `bits` bits of `value`.
fn sign_extend(value: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((value << shift) as i32) >> shift
}

fn i_imm(word: u32) -> i32 {
    sign_extend(word >> 20, 12)
}

fn s_imm(word: u32) -> i32 {
    let imm = ((word >> 25) << 5) | ((word >> 7) & 0x1f);
    sign_extend(imm, 12)
}

fn b_imm(word: u32) -> i32 {
    let imm12 = (word >> 31) & 1;
    let imm11 = (word >> 7) & 1;
    let imm10_5 = (word >> 25) & 0x3f;
    let imm4_1 = (word >> 8) & 0xf;
    let imm = (imm12 << 12) | (imm11 << 11) | (imm10_5 << 5) | (imm4_1 << 1);
    sign_extend(imm, 13)
}

fn j_imm(word: u32) -> i32 {
    let imm20 = (word >> 31) & 1;
    let imm19_12 = (word >> 12) & 0xff;
    let imm11 = (word >> 20) & 1;
    let imm10_1 = (word >> 21) & 0x3ff;
    let imm = (imm20 << 20) | (imm19_12 << 12) | (imm11 << 11) | (imm10_1 << 1);
    sign_extend(imm, 21)
}

/// Decodes a 32-bit word into an [`Inst`].
///
/// # Errors
///
/// Returns [`DecodeError`] for opcodes outside HISQ (including the RV32I
/// instructions HISQ disables, such as `fence` and `ecall`) and for
/// undefined funct3/funct7 combinations.
///
/// # Example
///
/// ```
/// use hisq_isa::{decode::decode, encode::encode, Inst};
///
/// let inst = Inst::WaitI { cycles: 57 };
/// assert_eq!(decode(encode(&inst)?)?, inst);
/// # Ok::<(), hisq_isa::IsaError>(())
/// ```
pub fn decode(word: u32) -> Result<Inst, DecodeError> {
    let opcode = word & 0x7f;
    match opcode {
        OPC_LUI => Ok(Inst::Lui {
            rd: field_rd(word)?,
            imm20: word >> 12,
        }),
        OPC_AUIPC => Ok(Inst::Auipc {
            rd: field_rd(word)?,
            imm20: word >> 12,
        }),
        OPC_JAL => {
            let offset = j_imm(word);
            if offset % 4 != 0 {
                return Err(DecodeError::MisalignedTarget { offset });
            }
            Ok(Inst::Jal {
                rd: field_rd(word)?,
                offset,
            })
        }
        OPC_JALR => Ok(Inst::Jalr {
            rd: field_rd(word)?,
            rs1: field_rs1(word)?,
            offset: i_imm(word),
        }),
        OPC_BRANCH => {
            let op = match field_funct3(word) {
                0b000 => BranchOp::Eq,
                0b001 => BranchOp::Ne,
                0b100 => BranchOp::Lt,
                0b101 => BranchOp::Ge,
                0b110 => BranchOp::Ltu,
                0b111 => BranchOp::Geu,
                _ => return Err(DecodeError::UnknownFunction { word }),
            };
            let offset = b_imm(word);
            if offset % 4 != 0 {
                return Err(DecodeError::MisalignedTarget { offset });
            }
            Ok(Inst::Branch {
                op,
                rs1: field_rs1(word)?,
                rs2: field_rs2(word)?,
                offset,
            })
        }
        OPC_LOAD => {
            let op = match field_funct3(word) {
                0b000 => LoadOp::Byte,
                0b001 => LoadOp::Half,
                0b010 => LoadOp::Word,
                0b100 => LoadOp::ByteU,
                0b101 => LoadOp::HalfU,
                _ => return Err(DecodeError::UnknownFunction { word }),
            };
            Ok(Inst::Load {
                op,
                rd: field_rd(word)?,
                rs1: field_rs1(word)?,
                offset: i_imm(word),
            })
        }
        OPC_STORE => {
            let op = match field_funct3(word) {
                0b000 => StoreOp::Byte,
                0b001 => StoreOp::Half,
                0b010 => StoreOp::Word,
                _ => return Err(DecodeError::UnknownFunction { word }),
            };
            Ok(Inst::Store {
                op,
                rs1: field_rs1(word)?,
                rs2: field_rs2(word)?,
                offset: s_imm(word),
            })
        }
        OPC_OP_IMM => {
            let rd = field_rd(word)?;
            let rs1 = field_rs1(word)?;
            let (op, imm) = match field_funct3(word) {
                0b000 => (AluOp::Add, i_imm(word)),
                0b010 => (AluOp::Slt, i_imm(word)),
                0b011 => (AluOp::Sltu, i_imm(word)),
                0b100 => (AluOp::Xor, i_imm(word)),
                0b110 => (AluOp::Or, i_imm(word)),
                0b111 => (AluOp::And, i_imm(word)),
                0b001 => {
                    if field_funct7(word) != 0 {
                        return Err(DecodeError::UnknownFunction { word });
                    }
                    (AluOp::Sll, ((word >> 20) & 0x1f) as i32)
                }
                0b101 => match field_funct7(word) {
                    0b000_0000 => (AluOp::Srl, ((word >> 20) & 0x1f) as i32),
                    0b010_0000 => (AluOp::Sra, ((word >> 20) & 0x1f) as i32),
                    _ => return Err(DecodeError::UnknownFunction { word }),
                },
                _ => unreachable!("funct3 is 3 bits"),
            };
            Ok(Inst::OpImm { op, rd, rs1, imm })
        }
        OPC_OP => {
            let op = match (field_funct3(word), field_funct7(word)) {
                (0b000, 0b000_0000) => AluOp::Add,
                (0b000, 0b010_0000) => AluOp::Sub,
                (0b001, 0b000_0000) => AluOp::Sll,
                (0b010, 0b000_0000) => AluOp::Slt,
                (0b011, 0b000_0000) => AluOp::Sltu,
                (0b100, 0b000_0000) => AluOp::Xor,
                (0b101, 0b000_0000) => AluOp::Srl,
                (0b101, 0b010_0000) => AluOp::Sra,
                (0b110, 0b000_0000) => AluOp::Or,
                (0b111, 0b000_0000) => AluOp::And,
                _ => return Err(DecodeError::UnknownFunction { word }),
            };
            Ok(Inst::Op {
                op,
                rd: field_rd(word)?,
                rs1: field_rs1(word)?,
                rs2: field_rs2(word)?,
            })
        }
        OPC_HISQ => match field_funct3(word) {
            0b000 => Ok(Inst::WaitI {
                cycles: ((word >> 7) & 0x1f) | ((word >> 15) << 5),
            }),
            0b001 => Ok(Inst::WaitR {
                rs1: field_rs1(word)?,
            }),
            0b010 => Ok(Inst::Cw {
                port: CwOperand::Imm((word >> 7) & 0x1f),
                codeword: CwOperand::Imm(word >> 15),
            }),
            0b011 => Ok(Inst::Cw {
                port: CwOperand::Imm((word >> 7) & 0x1f),
                codeword: CwOperand::Reg(field_rs1(word)?),
            }),
            0b100 => Ok(Inst::Cw {
                port: CwOperand::Reg(field_rs1(word)?),
                codeword: CwOperand::Imm(word >> 20),
            }),
            0b101 => Ok(Inst::Cw {
                port: CwOperand::Reg(field_rs1(word)?),
                codeword: CwOperand::Reg(field_rs2(word)?),
            }),
            0b110 => Ok(Inst::Sync {
                target: (word >> 20) as u16,
                horizon: field_rs1(word)?,
            }),
            0b111 => Ok(Inst::Stop),
            _ => unreachable!("funct3 is 3 bits"),
        },
        OPC_MSG => match field_funct3(word) {
            0b000 => Ok(Inst::Send {
                target: (word >> 20) as u16,
                rs1: field_rs1(word)?,
            }),
            0b001 => Ok(Inst::Recv {
                rd: field_rd(word)?,
                source: (word >> 20) as u16,
            }),
            _ => Err(DecodeError::UnknownFunction { word }),
        },
        other => Err(DecodeError::UnknownOpcode(other)),
    }
}

/// Decodes a contiguous word slice into instructions.
///
/// # Errors
///
/// Propagates the first [`DecodeError`] encountered.
pub fn decode_all(words: &[u32]) -> Result<Vec<Inst>, DecodeError> {
    words.iter().map(|&w| decode(w)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    fn reg(i: u8) -> Reg {
        Reg::new(i).unwrap()
    }

    fn round_trip(inst: Inst) {
        let word = encode(&inst).unwrap();
        assert_eq!(decode(word).unwrap(), inst, "word {word:#010x}");
    }

    #[test]
    fn round_trips_representative_base_instructions() {
        round_trip(Inst::Lui {
            rd: reg(5),
            imm20: 0xfffff,
        });
        round_trip(Inst::Auipc {
            rd: reg(5),
            imm20: 1,
        });
        round_trip(Inst::Jal {
            rd: reg(1),
            offset: 2044,
        });
        round_trip(Inst::Jalr {
            rd: reg(0),
            rs1: reg(1),
            offset: -4,
        });
        for op in [
            BranchOp::Eq,
            BranchOp::Ne,
            BranchOp::Lt,
            BranchOp::Ge,
            BranchOp::Ltu,
            BranchOp::Geu,
        ] {
            round_trip(Inst::Branch {
                op,
                rs1: reg(1),
                rs2: reg(2),
                offset: -28,
            });
        }
        for op in [
            LoadOp::Byte,
            LoadOp::Half,
            LoadOp::Word,
            LoadOp::ByteU,
            LoadOp::HalfU,
        ] {
            round_trip(Inst::Load {
                op,
                rd: reg(3),
                rs1: reg(4),
                offset: -2048,
            });
        }
        for op in [StoreOp::Byte, StoreOp::Half, StoreOp::Word] {
            round_trip(Inst::Store {
                op,
                rs1: reg(3),
                rs2: reg(4),
                offset: 2047,
            });
        }
    }

    #[test]
    fn round_trips_alu_operations() {
        for op in [
            AluOp::Add,
            AluOp::Sub,
            AluOp::Sll,
            AluOp::Slt,
            AluOp::Sltu,
            AluOp::Xor,
            AluOp::Srl,
            AluOp::Sra,
            AluOp::Or,
            AluOp::And,
        ] {
            round_trip(Inst::Op {
                op,
                rd: reg(1),
                rs1: reg(2),
                rs2: reg(3),
            });
        }
        for op in [
            AluOp::Add,
            AluOp::Slt,
            AluOp::Sltu,
            AluOp::Xor,
            AluOp::Or,
            AluOp::And,
        ] {
            round_trip(Inst::OpImm {
                op,
                rd: reg(1),
                rs1: reg(2),
                imm: -1,
            });
        }
        for op in [AluOp::Sll, AluOp::Srl, AluOp::Sra] {
            round_trip(Inst::OpImm {
                op,
                rd: reg(1),
                rs1: reg(2),
                imm: 31,
            });
        }
    }

    #[test]
    fn round_trips_hisq_extension() {
        round_trip(Inst::WaitI {
            cycles: (1 << 22) - 1,
        });
        round_trip(Inst::WaitI { cycles: 2 });
        round_trip(Inst::WaitR { rs1: reg(1) });
        round_trip(Inst::Cw {
            port: CwOperand::Imm(21),
            codeword: CwOperand::Imm(2),
        });
        round_trip(Inst::Cw {
            port: CwOperand::Imm(31),
            codeword: CwOperand::Imm((1 << 17) - 1),
        });
        round_trip(Inst::Cw {
            port: CwOperand::Imm(3),
            codeword: CwOperand::Reg(reg(3)),
        });
        round_trip(Inst::Cw {
            port: CwOperand::Reg(reg(7)),
            codeword: CwOperand::Imm(4095),
        });
        round_trip(Inst::Cw {
            port: CwOperand::Reg(reg(7)),
            codeword: CwOperand::Reg(reg(8)),
        });
        round_trip(Inst::Sync {
            target: 4095,
            horizon: Reg::X0,
        });
        round_trip(Inst::Sync {
            target: 7,
            horizon: reg(11),
        });
        round_trip(Inst::Send {
            target: 9,
            rs1: reg(5),
        });
        round_trip(Inst::Recv {
            rd: reg(6),
            source: 9,
        });
        round_trip(Inst::Stop);
    }

    #[test]
    fn disabled_rv32i_instructions_do_not_decode() {
        // fence (0x0ff0000f) and ecall (0x00000073) are outside HISQ.
        assert!(matches!(
            decode(0x0ff0_000f),
            Err(DecodeError::UnknownOpcode(_))
        ));
        assert!(matches!(
            decode(0x0000_0073),
            Err(DecodeError::UnknownOpcode(_))
        ));
    }

    #[test]
    fn undefined_function_bits_rejected() {
        // OP opcode with funct7 garbage.
        let word = OPC_OP | (0b011_1111 << 25);
        assert!(matches!(
            decode(word),
            Err(DecodeError::UnknownFunction { .. })
        ));
        // custom-1 with funct3 that is not send/recv.
        let word = OPC_MSG | (0b111 << 12);
        assert!(matches!(
            decode(word),
            Err(DecodeError::UnknownFunction { .. })
        ));
    }

    #[test]
    fn sign_extension_helpers() {
        assert_eq!(sign_extend(0xfff, 12), -1);
        assert_eq!(sign_extend(0x7ff, 12), 2047);
        assert_eq!(sign_extend(0x800, 12), -2048);
    }
}
