//! Assembled HISQ programs.

use std::collections::BTreeMap;
use std::fmt;

use crate::decode::decode_all;
use crate::encode::encode_all;
use crate::error::{DecodeError, EncodeError};
use crate::inst::Inst;

/// An assembled HISQ program: a sequence of instructions plus the symbol
/// table produced by the assembler.
///
/// Instruction addresses are word-granular: instruction `i` lives at byte
/// address `4 * i`.
///
/// # Example
///
/// ```
/// use hisq_isa::{Assembler, Program};
///
/// let p = Assembler::new().assemble("start: waiti 4\n j start")?;
/// assert_eq!(p.symbol("start"), Some(0));
/// let words = p.encode()?;
/// assert_eq!(Program::decode(&words)?.insts(), p.insts());
/// # Ok::<(), hisq_isa::IsaError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    insts: Vec<Inst>,
    symbols: BTreeMap<String, usize>,
}

impl Program {
    /// Creates a program from raw instructions with an empty symbol table.
    pub fn new(insts: Vec<Inst>) -> Program {
        Program {
            insts,
            symbols: BTreeMap::new(),
        }
    }

    /// Creates a program with an explicit symbol table (used by the
    /// assembler). Symbol values are instruction indices.
    pub fn with_symbols(insts: Vec<Inst>, symbols: BTreeMap<String, usize>) -> Program {
        Program { insts, symbols }
    }

    /// The number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// `true` if the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The instruction sequence.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// The instruction at index `index`, if in range.
    pub fn get(&self, index: usize) -> Option<&Inst> {
        self.insts.get(index)
    }

    /// Looks up a label, returning its instruction index.
    pub fn symbol(&self, name: &str) -> Option<usize> {
        self.symbols.get(name).copied()
    }

    /// All symbols in name order.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, usize)> {
        self.symbols.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Encodes the program to its binary form.
    ///
    /// # Errors
    ///
    /// Propagates the first [`EncodeError`].
    pub fn encode(&self) -> Result<Vec<u32>, EncodeError> {
        encode_all(&self.insts)
    }

    /// Decodes a binary back into a program (without symbols).
    ///
    /// # Errors
    ///
    /// Propagates the first [`DecodeError`].
    pub fn decode(words: &[u32]) -> Result<Program, DecodeError> {
        Ok(Program::new(decode_all(words)?))
    }

    /// Serializes the binary to little-endian bytes (the on-flash format
    /// of the reference control system).
    pub fn to_le_bytes(&self) -> Result<Vec<u8>, EncodeError> {
        let words = self.encode()?;
        let mut bytes = Vec::with_capacity(words.len() * 4);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        Ok(bytes)
    }

    /// Deserializes little-endian bytes into a program.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on any undecodable word; trailing bytes
    /// that do not form a whole word are rejected as an unknown opcode.
    pub fn from_le_bytes(bytes: &[u8]) -> Result<Program, DecodeError> {
        if bytes.len() % 4 != 0 {
            return Err(DecodeError::UnknownOpcode(0x7f + 1));
        }
        let words: Vec<u32> = bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        Program::decode(&words)
    }
}

impl FromIterator<Inst> for Program {
    fn from_iter<T: IntoIterator<Item = Inst>>(iter: T) -> Program {
        Program::new(iter.into_iter().collect())
    }
}

impl Extend<Inst> for Program {
    fn extend<T: IntoIterator<Item = Inst>>(&mut self, iter: T) {
        self.insts.extend(iter);
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::disasm::disassemble(&self.insts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;

    #[test]
    fn byte_serialization_round_trips() {
        let p = Program::new(vec![
            Inst::WaitI { cycles: 2 },
            Inst::Sync {
                target: 1,
                horizon: crate::Reg::X0,
            },
            Inst::Stop,
        ]);
        let bytes = p.to_le_bytes().unwrap();
        assert_eq!(bytes.len(), 12);
        let back = Program::from_le_bytes(&bytes).unwrap();
        assert_eq!(back.insts(), p.insts());
    }

    #[test]
    fn ragged_byte_input_rejected() {
        assert!(Program::from_le_bytes(&[1, 2, 3]).is_err());
    }

    #[test]
    fn collect_and_extend() {
        let mut p: Program = [Inst::Stop].into_iter().collect();
        p.extend([Inst::WaitI { cycles: 1 }]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.get(1), Some(&Inst::WaitI { cycles: 1 }));
        assert_eq!(p.get(2), None);
    }
}
