//! Error types for the ISA toolchain.

use std::error::Error;
use std::fmt;

/// Errors produced while encoding an [`crate::Inst`] to its 32-bit word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// An immediate operand does not fit its encoding field.
    ImmediateOutOfRange {
        /// Instruction mnemonic.
        mnemonic: &'static str,
        /// The offending value.
        value: i64,
        /// Inclusive lower bound of the field.
        min: i64,
        /// Inclusive upper bound of the field.
        max: i64,
    },
    /// A branch or jump offset is not a multiple of four bytes.
    MisalignedOffset {
        /// Instruction mnemonic.
        mnemonic: &'static str,
        /// The offending byte offset.
        offset: i32,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::ImmediateOutOfRange {
                mnemonic,
                value,
                min,
                max,
            } => write!(
                f,
                "immediate {value} out of range [{min}, {max}] for `{mnemonic}`"
            ),
            EncodeError::MisalignedOffset { mnemonic, offset } => {
                write!(f, "offset {offset} for `{mnemonic}` is not 4-byte aligned")
            }
        }
    }
}

impl Error for EncodeError {}

/// Errors produced while decoding a 32-bit word back to an [`crate::Inst`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The major opcode is not part of HISQ.
    UnknownOpcode(u32),
    /// The funct3/funct7 combination is not a defined instruction.
    UnknownFunction {
        /// The 32-bit word being decoded.
        word: u32,
    },
    /// A register field decoded to an out-of-range index.
    BadRegister(u8),
    /// A branch or jump target is not 4-byte aligned. HISQ instruction
    /// memory is word-addressed, so such targets can never be taken.
    MisalignedTarget {
        /// The decoded byte offset.
        offset: i32,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnknownOpcode(op) => write!(f, "unknown major opcode {op:#04x}"),
            DecodeError::UnknownFunction { word } => {
                write!(f, "undefined function bits in word {word:#010x}")
            }
            DecodeError::BadRegister(index) => write!(f, "register index {index} out of range"),
            DecodeError::MisalignedTarget { offset } => {
                write!(
                    f,
                    "control-flow target offset {offset} is not 4-byte aligned"
                )
            }
        }
    }
}

impl Error for DecodeError {}

/// Errors produced by the assembler, carrying 1-based source line numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl AsmError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> AsmError {
        AsmError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

/// Umbrella error for any ISA toolchain failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaError {
    /// Assembly-time failure.
    Asm(AsmError),
    /// Encoding failure.
    Encode(EncodeError),
    /// Decoding failure.
    Decode(DecodeError),
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::Asm(e) => write!(f, "assembly error: {e}"),
            IsaError::Encode(e) => write!(f, "encode error: {e}"),
            IsaError::Decode(e) => write!(f, "decode error: {e}"),
        }
    }
}

impl Error for IsaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IsaError::Asm(e) => Some(e),
            IsaError::Encode(e) => Some(e),
            IsaError::Decode(e) => Some(e),
        }
    }
}

impl From<AsmError> for IsaError {
    fn from(e: AsmError) -> IsaError {
        IsaError::Asm(e)
    }
}

impl From<EncodeError> for IsaError {
    fn from(e: EncodeError) -> IsaError {
        IsaError::Encode(e)
    }
}

impl From<DecodeError> for IsaError {
    fn from(e: DecodeError) -> IsaError {
        IsaError::Decode(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = EncodeError::ImmediateOutOfRange {
            mnemonic: "addi",
            value: 5000,
            min: -2048,
            max: 2047,
        };
        let text = e.to_string();
        assert!(text.contains("5000"));
        assert!(text.contains("addi"));

        let a = AsmError::new(7, "unknown mnemonic `frobnicate`");
        assert!(a.to_string().starts_with("line 7:"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IsaError>();
        assert_send_sync::<AsmError>();
        assert_send_sync::<EncodeError>();
        assert_send_sync::<DecodeError>();
    }
}
