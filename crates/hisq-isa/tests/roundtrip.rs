//! Property-based tests for the HISQ ISA toolchain: arbitrary valid
//! instructions must survive encode → decode and disassemble → assemble
//! round trips unchanged.

use proptest::prelude::*;

use hisq_isa::{
    decode::decode, disasm::disassemble, encode::encode, AluOp, Assembler, BranchOp, CwOperand,
    Inst, LoadOp, Reg, StoreOp,
};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|i| Reg::new(i).expect("in range"))
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Sll),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Or),
        Just(AluOp::And),
    ]
}

fn arb_imm_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Or),
        Just(AluOp::And),
    ]
}

fn arb_shift_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![Just(AluOp::Sll), Just(AluOp::Srl), Just(AluOp::Sra)]
}

fn arb_branch_op() -> impl Strategy<Value = BranchOp> {
    prop_oneof![
        Just(BranchOp::Eq),
        Just(BranchOp::Ne),
        Just(BranchOp::Lt),
        Just(BranchOp::Ge),
        Just(BranchOp::Ltu),
        Just(BranchOp::Geu),
    ]
}

fn arb_load_op() -> impl Strategy<Value = LoadOp> {
    prop_oneof![
        Just(LoadOp::Byte),
        Just(LoadOp::Half),
        Just(LoadOp::Word),
        Just(LoadOp::ByteU),
        Just(LoadOp::HalfU),
    ]
}

fn arb_store_op() -> impl Strategy<Value = StoreOp> {
    prop_oneof![
        Just(StoreOp::Byte),
        Just(StoreOp::Half),
        Just(StoreOp::Word)
    ]
}

/// Strategy producing any encodable HISQ instruction.
fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (arb_reg(), 0u32..(1 << 20)).prop_map(|(rd, imm20)| Inst::Lui { rd, imm20 }),
        (arb_reg(), 0u32..(1 << 20)).prop_map(|(rd, imm20)| Inst::Auipc { rd, imm20 }),
        (arb_reg(), -(1i32 << 18)..(1 << 18)).prop_map(|(rd, words)| Inst::Jal {
            rd,
            offset: words * 4
        }),
        (arb_reg(), arb_reg(), -2048i32..=2047).prop_map(|(rd, rs1, offset)| Inst::Jalr {
            rd,
            rs1,
            offset
        }),
        (arb_branch_op(), arb_reg(), arb_reg(), -1024i32..=1023).prop_map(
            |(op, rs1, rs2, words)| Inst::Branch {
                op,
                rs1,
                rs2,
                offset: words * 4
            }
        ),
        (arb_load_op(), arb_reg(), arb_reg(), -2048i32..=2047).prop_map(|(op, rd, rs1, offset)| {
            Inst::Load {
                op,
                rd,
                rs1,
                offset,
            }
        }),
        (arb_store_op(), arb_reg(), arb_reg(), -2048i32..=2047).prop_map(
            |(op, rs1, rs2, offset)| Inst::Store {
                op,
                rs1,
                rs2,
                offset
            }
        ),
        (arb_imm_alu_op(), arb_reg(), arb_reg(), -2048i32..=2047)
            .prop_map(|(op, rd, rs1, imm)| Inst::OpImm { op, rd, rs1, imm }),
        (arb_shift_op(), arb_reg(), arb_reg(), 0i32..=31)
            .prop_map(|(op, rd, rs1, imm)| Inst::OpImm { op, rd, rs1, imm }),
        (arb_alu_op(), arb_reg(), arb_reg(), arb_reg()).prop_map(|(op, rd, rs1, rs2)| Inst::Op {
            op,
            rd,
            rs1,
            rs2
        }),
        (0u32..(1 << 22)).prop_map(|cycles| Inst::WaitI { cycles }),
        arb_reg().prop_map(|rs1| Inst::WaitR { rs1 }),
        (0u32..32, 0u32..(1 << 17)).prop_map(|(p, c)| Inst::Cw {
            port: CwOperand::Imm(p),
            codeword: CwOperand::Imm(c)
        }),
        (0u32..32, arb_reg()).prop_map(|(p, r)| Inst::Cw {
            port: CwOperand::Imm(p),
            codeword: CwOperand::Reg(r)
        }),
        (arb_reg(), 0u32..(1 << 12)).prop_map(|(r, c)| Inst::Cw {
            port: CwOperand::Reg(r),
            codeword: CwOperand::Imm(c)
        }),
        (arb_reg(), arb_reg()).prop_map(|(rp, rc)| Inst::Cw {
            port: CwOperand::Reg(rp),
            codeword: CwOperand::Reg(rc)
        }),
        (0u16..(1 << 12), arb_reg()).prop_map(|(target, horizon)| Inst::Sync { target, horizon }),
        (0u16..(1 << 12), arb_reg()).prop_map(|(target, rs1)| Inst::Send { target, rs1 }),
        (arb_reg(), 0u16..(1 << 12)).prop_map(|(rd, source)| Inst::Recv { rd, source }),
        Just(Inst::Stop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn encode_decode_round_trip(inst in arb_inst()) {
        let word = encode(&inst).expect("strategy only yields encodable instructions");
        let back = decode(word).expect("encoded words must decode");
        prop_assert_eq!(inst, back);
    }

    #[test]
    fn disassemble_assemble_round_trip(insts in proptest::collection::vec(arb_inst(), 1..40)) {
        let text = disassemble(&insts);
        let program = Assembler::new()
            .assemble(&text)
            .expect("disassembly must be valid assembly");
        prop_assert_eq!(program.insts(), insts.as_slice());
    }

    #[test]
    fn decode_never_panics(word in any::<u32>()) {
        let _ = decode(word); // must return Ok or Err, never panic
    }

    #[test]
    fn decoded_instructions_reencode_to_same_word(word in any::<u32>()) {
        if let Ok(inst) = decode(word) {
            // Any word that decodes must re-encode canonically; we only
            // require semantic stability (decode(encode(decode(w))) ==
            // decode(w)) because don't-care bits may differ.
            let reencoded = encode(&inst).expect("decoded instruction must encode");
            let back = decode(reencoded).expect("re-encoded word must decode");
            prop_assert_eq!(inst, back);
        }
    }
}
