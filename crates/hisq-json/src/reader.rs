//! Field-cursor for object decoders with unknown-field rejection.

use crate::value::{Json, JsonError};

/// A cursor over one JSON object's fields.
///
/// Decoders take the fields they understand with [`ObjReader::required`]
/// / [`ObjReader::optional`], then call [`ObjReader::reject_unknown`]:
/// any field the decoder never asked for becomes an error naming the
/// JSON path — the contract that makes typos in hand-edited scenario
/// files loud instead of silently ignored.
#[derive(Debug)]
pub struct ObjReader<'a> {
    path: String,
    entries: &'a [(String, Json)],
    taken: Vec<bool>,
}

impl<'a> ObjReader<'a> {
    /// Opens a reader over `value`, which must be a JSON object.
    /// `path` names the object's location for error messages (use the
    /// document root's name at top level).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError::Decode`] if `value` is not an object.
    pub fn new(value: &'a Json, path: impl Into<String>) -> Result<ObjReader<'a>, JsonError> {
        let path = path.into();
        match value {
            Json::Object(entries) => Ok(ObjReader {
                taken: vec![false; entries.len()],
                entries,
                path,
            }),
            other => Err(JsonError::decode(
                path,
                format!("expected an object, got {}", other.type_name()),
            )),
        }
    }

    /// This object's path (for composing error messages).
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The dotted path of a field of this object.
    pub fn field_path(&self, name: &str) -> String {
        format!("{}.{name}", self.path)
    }

    /// Takes a required field.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError::Decode`] naming the missing field.
    pub fn required(&mut self, name: &str) -> Result<&'a Json, JsonError> {
        self.optional(name)
            .ok_or_else(|| JsonError::decode(&self.path, format!("missing field `{name}`")))
    }

    /// Takes an optional field (`None` when absent).
    pub fn optional(&mut self, name: &str) -> Option<&'a Json> {
        let index = self.entries.iter().position(|(key, _)| key == name)?;
        self.taken[index] = true;
        Some(&self.entries[index].1)
    }

    /// Fails if any field was never taken — the unknown-field
    /// rejection pass every decoder ends with.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError::Decode`] listing every unrecognized
    /// field name.
    pub fn reject_unknown(self) -> Result<(), JsonError> {
        let unknown: Vec<&str> = self
            .entries
            .iter()
            .zip(&self.taken)
            .filter(|(_, &taken)| !taken)
            .map(|((key, _), _)| key.as_str())
            .collect();
        if unknown.is_empty() {
            return Ok(());
        }
        let names = unknown
            .iter()
            .map(|n| format!("`{n}`"))
            .collect::<Vec<_>>()
            .join(", ");
        Err(JsonError::decode(
            self.path,
            format!(
                "unknown field{} {names}",
                if unknown.len() == 1 { "" } else { "s" }
            ),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_fields_and_rejects_leftovers() {
        let doc = Json::parse(r#"{"a": 1, "b": true, "typo": 0}"#).unwrap();
        let mut obj = ObjReader::new(&doc, "root").unwrap();
        assert_eq!(obj.required("a").unwrap().as_u64("root.a").unwrap(), 1);
        assert!(obj.optional("b").is_some());
        assert!(obj.optional("absent").is_none());
        let err = obj.reject_unknown().unwrap_err();
        assert_eq!(err.to_string(), "root: unknown field `typo`");
    }

    #[test]
    fn missing_required_field_names_itself() {
        let doc = Json::parse("{}").unwrap();
        let mut obj = ObjReader::new(&doc, "scenario").unwrap();
        let err = obj.required("workload").unwrap_err();
        assert_eq!(err.to_string(), "scenario: missing field `workload`");
    }

    #[test]
    fn non_objects_are_reported_at_their_path() {
        let doc = Json::parse("[1]").unwrap();
        let err = ObjReader::new(&doc, "base.params").unwrap_err();
        assert_eq!(
            err.to_string(),
            "base.params: expected an object, got an array"
        );
    }
}
