//! Offline JSON support for the scenario-file surface.
//!
//! The build environment has no crates.io access, so — like the
//! `rand`/`proptest` shims — this crate hand-rolls the small JSON
//! subset the workspace needs to make `Scenario`/`SystemSpec` and
//! friends **versioned, serializable data**:
//!
//! - [`Json`] — an exact value tree. Integers keep their full `u64`/
//!   `i64` width (seeds are 64-bit; a float-only model would corrupt
//!   them past 2⁵³).
//! - [`Json::parse`] — a recursive-descent parser reporting **line and
//!   column** for every syntax error, and rejecting duplicate object
//!   keys (a classic silent-misconfiguration source in hand-edited
//!   scenario files).
//! - [`Json::to_string_compact`] / [`Json::to_string_pretty`] —
//!   deterministic writers (insertion-ordered objects, shortest
//!   round-trip float form, the same rendering the sweep reports use).
//! - [`ObjReader`] — a field cursor for decoders: every `from_json`
//!   impl takes required/optional fields and then calls
//!   [`ObjReader::reject_unknown`], so a typoed field name is a
//!   readable error naming the JSON path, never silently ignored.
//!
//! # Example
//!
//! ```
//! use hisq_json::{Json, ObjReader};
//!
//! let value = Json::parse(r#"{"seed": 7, "quick": true}"#).unwrap();
//! let mut obj = ObjReader::new(&value, "scenario").unwrap();
//! let seed = obj.required("seed").unwrap().as_u64("scenario.seed").unwrap();
//! let quick = obj.required("quick").unwrap().as_bool("scenario.quick").unwrap();
//! obj.reject_unknown().unwrap();
//! assert_eq!((seed, quick), (7, true));
//!
//! let err = Json::parse("{\"a\": 1,\n  \"a\": 2}").unwrap_err();
//! assert!(err.to_string().contains("line 2"), "{err}");
//! ```

#![deny(missing_docs)]

mod emit;
mod parse;
mod reader;
mod value;

pub use reader::ObjReader;
pub use value::{Json, JsonError};
