//! Deterministic JSON writers: compact (the sweep-report convention)
//! and pretty (the committed scenario-file convention, 2-space indent).

use crate::value::Json;

impl Json {
    /// Renders the value on one line with no whitespace — the same
    /// convention the sweep reports use, so byte-for-byte comparisons
    /// in CI stay trivial.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders the value with 2-space indentation and a trailing
    /// newline — the convention for committed `scenarios/*.json` files.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) => out.push_str(&float_repr(*v)),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                newline(out, indent, level);
                out.push(']');
            }
            Json::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, level + 1);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, level + 1);
                }
                newline(out, indent, level);
                out.push('}');
            }
        }
    }
}

fn newline(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

/// Shortest round-trip form via `{:?}` — integral floats keep their
/// `.0` so the value re-parses as [`Json::Float`], not an integer.
fn float_repr(v: f64) -> String {
    debug_assert!(v.is_finite(), "Json::Float holds finite values");
    format!("{v:?}")
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Json {
        Json::Object(vec![
            ("seed".into(), Json::UInt(7)),
            ("t1_us".into(), Json::Float(300.0)),
            ("name".into(), Json::Str("a\"b".into())),
            (
                "axes".into(),
                Json::Array(vec![Json::UInt(1), Json::Int(-2)]),
            ),
            ("empty".into(), Json::Object(vec![])),
        ])
    }

    #[test]
    fn compact_matches_the_report_convention() {
        assert_eq!(
            doc().to_string_compact(),
            r#"{"seed":7,"t1_us":300.0,"name":"a\"b","axes":[1,-2],"empty":{}}"#
        );
    }

    #[test]
    fn pretty_round_trips_through_the_parser() {
        let pretty = doc().to_string_pretty();
        assert!(pretty.starts_with("{\n  \"seed\": 7"), "{pretty}");
        assert!(pretty.ends_with("}\n"), "{pretty}");
        assert_eq!(Json::parse(&pretty).unwrap(), doc());
        assert_eq!(Json::parse(&doc().to_string_compact()).unwrap(), doc());
    }

    #[test]
    fn floats_keep_their_fraction_marker() {
        // 300.0 must not collapse to "300": it would re-parse as UInt
        // and break the typed round-trip.
        assert_eq!(Json::Float(300.0).to_string_compact(), "300.0");
        assert_eq!(Json::Float(1e-6).to_string_compact(), "1e-6");
        assert_eq!(
            Json::parse(&Json::Float(1e-6).to_string_compact()).unwrap(),
            Json::Float(1e-6)
        );
    }
}
