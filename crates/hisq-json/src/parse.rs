//! Recursive-descent JSON parser with line/column error reporting.

use crate::value::{Json, JsonError};

/// Parser state over the raw bytes. Positions are tracked eagerly so
/// every error carries the 1-based line and column of the offending
/// character — scenario files are hand-edited, and "line 14, column 7"
/// beats "invalid JSON".
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

/// Nesting limit (arrays + objects). Scenario documents are a few
/// levels deep; the limit exists so malicious or corrupted input cannot
/// overflow the parser's stack.
const MAX_DEPTH: usize = 64;

impl Json {
    /// Parses a complete JSON document (one value, then end of input).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError::Parse`] with the 1-based line/column of the
    /// first offending character for any syntax error, duplicate object
    /// key, malformed number/string/escape, or trailing content.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        };
        parser.skip_ws();
        let value = parser.value(0)?;
        parser.skip_ws();
        if parser.pos < parser.bytes.len() {
            return Err(parser.error("trailing content after the JSON document"));
        }
        Ok(value)
    }
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError::Parse {
            line: self.line,
            col: self.col,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    /// Advances one byte, maintaining the line/column counters.
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            // Count columns in bytes for ASCII, and only for the first
            // byte of a multi-byte UTF-8 sequence, so columns stay
            // meaningful in annotated scenario names.
            if !(0x80..0xC0).contains(&b) {
                self.col += 1;
            }
        }
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.bump();
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        match self.peek() {
            Some(b) if b == byte => {
                self.bump();
                Ok(())
            }
            Some(b) => Err(self.error(format!(
                "expected '{}', found '{}'",
                byte as char, b as char
            ))),
            None => Err(self.error(format!("expected '{}', found end of input", byte as char))),
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("document nests deeper than 64 levels"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.error(format!("unexpected character '{}'", b as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        for expected in word.bytes() {
            match self.peek() {
                Some(b) if b == expected => {
                    self.bump();
                }
                _ => return Err(self.error(format!("malformed literal (expected `{word}`)"))),
            }
        }
        Ok(value)
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut entries: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(Json::Object(entries));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.error("expected a string object key"));
            }
            // Remember where the key started for the duplicate report.
            let (key_line, key_col) = (self.line, self.col);
            let key = self.string()?;
            if entries.iter().any(|(existing, _)| *existing == key) {
                return Err(JsonError::Parse {
                    line: key_line,
                    col: key_col,
                    message: format!("duplicate object key \"{key}\""),
                });
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.bump();
                }
                Some(b'}') => {
                    self.bump();
                    return Ok(Json::Object(entries));
                }
                Some(b) => {
                    return Err(self.error(format!(
                        "expected ',' or '}}' after object entry, found '{}'",
                        b as char
                    )))
                }
                None => return Err(self.error("unterminated object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.bump();
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.bump();
                }
                Some(b']') => {
                    self.bump();
                    return Ok(Json::Array(items));
                }
                Some(b) => {
                    return Err(self.error(format!(
                        "expected ',' or ']' after array element, found '{}'",
                        b as char
                    )))
                }
                None => return Err(self.error("unterminated array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy unescaped runs wholesale (the common case).
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.bump();
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos]).expect("input is a &str"),
            );
            match self.peek() {
                Some(b'"') => {
                    self.bump();
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.bump();
                    match self.bump() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                    return Err(self.error("unpaired surrogate in \\u escape"));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate in \\u escape"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.error("invalid \\u escape")),
                            }
                        }
                        Some(b) => {
                            return Err(self.error(format!("invalid escape '\\{}'", b as char)))
                        }
                        None => return Err(self.error("unterminated string")),
                    }
                }
                Some(_) => return Err(self.error("raw control character in string")),
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.error("\\u escape wants four hex digits")),
            };
            code = (code << 4) | digit;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.bump();
        }
        if !matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            return Err(self.error("malformed number"));
        }
        // Leading zeros are invalid JSON ("01"), but a lone "0" is fine.
        if self.peek() == Some(b'0') {
            self.bump();
            if matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                return Err(self.error("numbers may not have leading zeros"));
            }
        } else {
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.bump();
            }
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.bump();
            if !matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                return Err(self.error("expected digits after the decimal point"));
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.bump();
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.bump();
            }
            if !matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                return Err(self.error("expected digits in the exponent"));
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.bump();
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        if fractional {
            let v: f64 = text.parse().map_err(|_| self.error("malformed number"))?;
            if !v.is_finite() {
                return Err(self.error("number overflows f64"));
            }
            Ok(Json::Float(v))
        } else if negative {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.error("integer does not fit in i64"))
        } else {
            text.parse::<u64>()
                .map(Json::UInt)
                .map_err(|_| self.error("integer does not fit in u64"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<Json, JsonError> {
        Json::parse(text)
    }

    #[test]
    fn parses_scalars_exactly() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(
            parse("18446744073709551615").unwrap(),
            Json::UInt(u64::MAX),
            "u64::MAX survives exactly"
        );
        assert_eq!(
            parse("-9223372036854775808").unwrap(),
            Json::Int(i64::MIN),
            "i64::MIN survives exactly"
        );
        assert_eq!(parse("2.5").unwrap(), Json::Float(2.5));
        assert_eq!(parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(parse("-0.5").unwrap(), Json::Float(-0.5));
        assert_eq!(
            parse("\"a\\nb\\u00e9\"").unwrap(),
            Json::Str("a\nbé".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(
            doc,
            Json::Object(vec![
                (
                    "a".into(),
                    Json::Array(vec![
                        Json::UInt(1),
                        Json::Object(vec![("b".into(), Json::Null)])
                    ])
                ),
                ("c".into(), Json::Str("x".into())),
            ])
        );
    }

    #[test]
    fn reports_line_and_column() {
        let err = parse("{\n  \"a\": 1,\n  \"a\": 2\n}").unwrap_err();
        assert_eq!(
            err,
            JsonError::Parse {
                line: 3,
                col: 3,
                message: "duplicate object key \"a\"".into()
            }
        );
        let err = parse("{\"a\": tru}").unwrap_err();
        assert!(
            matches!(
                err,
                JsonError::Parse {
                    line: 1,
                    col: 10,
                    ..
                }
            ),
            "{err}"
        );
        let err = parse("[1, 2").unwrap_err();
        assert!(err.to_string().contains("unterminated array"), "{err}");
    }

    #[test]
    fn rejects_trailing_and_malformed_input() {
        assert!(parse("1 2").unwrap_err().to_string().contains("trailing"));
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("01")
            .unwrap_err()
            .to_string()
            .contains("leading zeros"));
        assert!(parse("1.").is_err());
        assert!(parse("[,]").is_err());
        assert!(parse("\"\\q\"").is_err());
        assert!(parse("").is_err());
        assert!(parse("1e400")
            .unwrap_err()
            .to_string()
            .contains("overflows"));
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap(), Json::Str("😀".into()));
        assert!(parse("\"\\ud83d\"").is_err(), "unpaired high surrogate");
    }

    #[test]
    fn depth_limit_guards_the_stack() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).unwrap_err().to_string().contains("64 levels"));
        let ok = "[".repeat(30) + &"]".repeat(30);
        assert!(parse(&ok).is_ok());
    }
}
