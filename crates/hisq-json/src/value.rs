//! The JSON value tree and the error type shared by parsing and
//! decoding.

use std::error::Error;
use std::fmt;

/// An exact JSON value.
///
/// Numbers are split into three variants so that 64-bit counters and
/// seeds survive a round-trip bit-exactly: a token with no fraction or
/// exponent parses as [`Json::UInt`] (or [`Json::Int`] when negative),
/// everything else as [`Json::Float`].
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (exact, full `u64` range).
    UInt(u64),
    /// A negative integer (exact, full `i64` range).
    Int(i64),
    /// A fractional or exponent-form number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object. Entries keep insertion order (the writers are
    /// deterministic); the parser rejects duplicate keys outright.
    Object(Vec<(String, Json)>),
}

/// A failure while parsing JSON text or decoding a [`Json`] tree into a
/// typed value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonError {
    /// The text is not well-formed JSON (or contains a duplicate
    /// object key). Positions are 1-based.
    Parse {
        /// Line of the offending character.
        line: usize,
        /// Column of the offending character.
        col: usize,
        /// What went wrong.
        message: String,
    },
    /// The JSON is well-formed but does not describe the expected
    /// value (wrong type, missing field, unknown field, out-of-range
    /// number).
    Decode {
        /// Dotted path from the document root, e.g.
        /// `scenario.params.link_model`.
        path: String,
        /// What went wrong.
        message: String,
    },
}

impl JsonError {
    /// A decode error at `path`.
    pub fn decode(path: impl Into<String>, message: impl Into<String>) -> JsonError {
        JsonError::Decode {
            path: path.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Parse { line, col, message } => {
                write!(f, "line {line}, column {col}: {message}")
            }
            JsonError::Decode { path, message } => write!(f, "{path}: {message}"),
        }
    }
}

impl Error for JsonError {}

impl Json {
    /// A human label for the value's JSON type (for decode errors).
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "a boolean",
            Json::UInt(_) | Json::Int(_) => "an integer",
            Json::Float(_) => "a number",
            Json::Str(_) => "a string",
            Json::Array(_) => "an array",
            Json::Object(_) => "an object",
        }
    }

    fn expected(&self, path: &str, what: &str) -> JsonError {
        JsonError::decode(path, format!("expected {what}, got {}", self.type_name()))
    }

    /// The value as a boolean.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError::Decode`] at `path` for any other type.
    pub fn as_bool(&self, path: &str) -> Result<bool, JsonError> {
        match *self {
            Json::Bool(b) => Ok(b),
            ref other => Err(other.expected(path, "a boolean")),
        }
    }

    /// The value as an unsigned 64-bit integer.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError::Decode`] at `path` for non-integers and
    /// negative integers.
    pub fn as_u64(&self, path: &str) -> Result<u64, JsonError> {
        match *self {
            Json::UInt(v) => Ok(v),
            ref other => Err(other.expected(path, "a non-negative integer")),
        }
    }

    /// The value as a `u32`.
    ///
    /// # Errors
    ///
    /// As [`Json::as_u64`], plus a range check.
    pub fn as_u32(&self, path: &str) -> Result<u32, JsonError> {
        let v = self.as_u64(path)?;
        u32::try_from(v).map_err(|_| JsonError::decode(path, format!("{v} does not fit in u32")))
    }

    /// The value as a `u16` (node addresses).
    ///
    /// # Errors
    ///
    /// As [`Json::as_u64`], plus a range check.
    pub fn as_u16(&self, path: &str) -> Result<u16, JsonError> {
        let v = self.as_u64(path)?;
        u16::try_from(v).map_err(|_| JsonError::decode(path, format!("{v} does not fit in u16")))
    }

    /// The value as a `usize`.
    ///
    /// # Errors
    ///
    /// As [`Json::as_u64`], plus a range check.
    pub fn as_usize(&self, path: &str) -> Result<usize, JsonError> {
        let v = self.as_u64(path)?;
        usize::try_from(v)
            .map_err(|_| JsonError::decode(path, format!("{v} does not fit in usize")))
    }

    /// The value as a float. Integers widen (with the usual `u64 → f64`
    /// rounding above 2⁵³); use [`Json::as_u64`] where exactness
    /// matters.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError::Decode`] at `path` for non-numbers.
    pub fn as_f64(&self, path: &str) -> Result<f64, JsonError> {
        match *self {
            Json::UInt(v) => Ok(v as f64),
            Json::Int(v) => Ok(v as f64),
            Json::Float(v) => Ok(v),
            ref other => Err(other.expected(path, "a number")),
        }
    }

    /// The value as a string slice.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError::Decode`] at `path` for any other type.
    pub fn as_str(&self, path: &str) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(other.expected(path, "a string")),
        }
    }

    /// The value as an array slice.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError::Decode`] at `path` for any other type.
    pub fn as_array(&self, path: &str) -> Result<&[Json], JsonError> {
        match self {
            Json::Array(items) => Ok(items),
            other => Err(other.expected(path, "an array")),
        }
    }

    /// The value as a list of unsigned 64-bit integers (trace-driven
    /// arrival lists and other bulk integer fields). Errors name the
    /// offending element: `path[i]`.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError::Decode`] for non-arrays, or at `path[i]`
    /// for the first element that is not a non-negative integer.
    pub fn as_u64_array(&self, path: &str) -> Result<Vec<u64>, JsonError> {
        self.as_array(path)?
            .iter()
            .enumerate()
            .map(|(i, item)| item.as_u64(&format!("{path}[{i}]")))
            .collect()
    }

    /// Builds a float value, which must be finite (JSON has no
    /// NaN/infinity).
    ///
    /// # Panics
    ///
    /// Panics on non-finite input — serializers only ever hold finite
    /// model parameters.
    pub fn float(v: f64) -> Json {
        assert!(v.is_finite(), "JSON cannot represent {v}");
        Json::Float(v)
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(u64::from(v))
    }
}

impl From<u16> for Json {
    fn from(v: u16) -> Json {
        Json::UInt(u64::from(v))
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}
