//! Codeword tables: the binding between HISQ's hardware-agnostic
//! `(port, codeword)` pairs and the quantum operations they trigger.
//!
//! HISQ deliberately knows nothing about quantum semantics (Insight #3);
//! "the meaning of a codeword depends on the compiler and hardware
//! configurations" (§3.1.2). The compiler therefore emits, alongside the
//! per-controller binaries, a table telling the analog front-end (or the
//! simulator's quantum backend) what each committed codeword does.

use std::collections::BTreeMap;

use hisq_core::NodeAddr;
use hisq_quantum::Gate;

/// The port carrying gate-trigger codewords on every controller.
pub const PORT_GATE: u32 = 0;
/// The port carrying readout (measurement) triggers.
pub const PORT_READOUT: u32 = 2;

/// What a committed codeword does, from the quantum backend's view.
#[derive(Debug, Clone, PartialEq)]
pub enum BindingAction {
    /// Apply a unitary gate.
    Gate {
        /// The gate.
        gate: Gate,
        /// Target qubits (global indices).
        qubits: Vec<usize>,
    },
    /// Trigger a measurement of `qubit`; the result returns to the
    /// committing controller's measurement FIFO.
    Measure {
        /// The measured qubit.
        qubit: usize,
    },
    /// Reset `qubit` to |0⟩.
    Reset {
        /// The reset qubit.
        qubit: usize,
    },
    /// A pulse with no backend action (e.g. the second half of a
    /// two-qubit gate, emitted by the partner controller).
    Pulse,
}

/// One `(node, port, codeword) → action` binding.
#[derive(Debug, Clone, PartialEq)]
pub struct Binding {
    /// The committing controller.
    pub node: NodeAddr,
    /// Port the codeword is sent to.
    pub port: u32,
    /// The codeword value.
    pub codeword: u32,
    /// The triggered action.
    pub action: BindingAction,
}

/// Canonical key for gate identity, including quantized rotation angles
/// so that floating-point parameters can index a table.
/// Deduplication identity of a bindable action: (kind id, quantized
/// angle, qubit operands).
type ActionKey = (u8, i64, Vec<usize>);

fn gate_key(gate: Gate, qubits: &[usize]) -> ActionKey {
    let quantize = |theta: f64| (theta * 1e9).round() as i64;
    let (id, angle) = match gate {
        Gate::I => (0, 0),
        Gate::X => (1, 0),
        Gate::Y => (2, 0),
        Gate::Z => (3, 0),
        Gate::H => (4, 0),
        Gate::S => (5, 0),
        Gate::Sdg => (6, 0),
        Gate::T => (7, 0),
        Gate::Tdg => (8, 0),
        Gate::Rx(t) => (9, quantize(t)),
        Gate::Ry(t) => (10, quantize(t)),
        Gate::Rz(t) => (11, quantize(t)),
        Gate::Phase(t) => (12, quantize(t)),
        Gate::Cx => (13, 0),
        Gate::Cz => (14, 0),
        Gate::Cphase(t) => (15, quantize(t)),
        Gate::Swap => (16, 0),
    };
    (id, angle, qubits.to_vec())
}

/// Per-controller codeword allocator and binding collector.
#[derive(Debug, Clone, Default)]
pub struct CodewordTable {
    /// Next free codeword per (node, port).
    next: BTreeMap<(NodeAddr, u32), u32>,
    /// Allocated codewords for repeated actions.
    known: BTreeMap<(NodeAddr, u32, ActionKey), u32>,
    bindings: Vec<Binding>,
}

impl CodewordTable {
    /// Creates an empty table.
    pub fn new() -> CodewordTable {
        CodewordTable::default()
    }

    fn alloc(&mut self, node: NodeAddr, port: u32) -> u32 {
        let next = self.next.entry((node, port)).or_insert(1);
        let cw = *next;
        *next += 1;
        cw
    }

    /// Allocates (or reuses) the codeword triggering `gate` on `qubits`
    /// from `node`.
    pub fn gate(&mut self, node: NodeAddr, gate: Gate, qubits: &[usize]) -> u32 {
        let key = (node, PORT_GATE, gate_key(gate, qubits));
        if let Some(&cw) = self.known.get(&key) {
            return cw;
        }
        let cw = self.alloc(node, PORT_GATE);
        self.known.insert(key, cw);
        self.bindings.push(Binding {
            node,
            port: PORT_GATE,
            codeword: cw,
            action: BindingAction::Gate {
                gate,
                qubits: qubits.to_vec(),
            },
        });
        cw
    }

    /// Allocates (or reuses) the silent pulse codeword of `node` (the
    /// partner half of a two-qubit gate).
    pub fn pulse(&mut self, node: NodeAddr) -> u32 {
        let key = (node, PORT_GATE, (u8::MAX, 0, Vec::new()));
        if let Some(&cw) = self.known.get(&key) {
            return cw;
        }
        let cw = self.alloc(node, PORT_GATE);
        self.known.insert(key, cw);
        self.bindings.push(Binding {
            node,
            port: PORT_GATE,
            codeword: cw,
            action: BindingAction::Pulse,
        });
        cw
    }

    /// Allocates (or reuses) the measurement-trigger codeword of `node`
    /// for `qubit`.
    pub fn measure(&mut self, node: NodeAddr, qubit: usize) -> u32 {
        let key = (node, PORT_READOUT, (u8::MAX - 1, qubit as i64, Vec::new()));
        if let Some(&cw) = self.known.get(&key) {
            return cw;
        }
        let cw = self.alloc(node, PORT_READOUT);
        self.known.insert(key, cw);
        self.bindings.push(Binding {
            node,
            port: PORT_READOUT,
            codeword: cw,
            action: BindingAction::Measure { qubit },
        });
        cw
    }

    /// Allocates (or reuses) the reset codeword of `node` for `qubit`.
    pub fn reset(&mut self, node: NodeAddr, qubit: usize) -> u32 {
        let key = (node, PORT_GATE, (u8::MAX - 2, qubit as i64, Vec::new()));
        if let Some(&cw) = self.known.get(&key) {
            return cw;
        }
        let cw = self.alloc(node, PORT_GATE);
        self.known.insert(key, cw);
        self.bindings.push(Binding {
            node,
            port: PORT_GATE,
            codeword: cw,
            action: BindingAction::Reset { qubit },
        });
        cw
    }

    /// All bindings collected so far.
    pub fn bindings(&self) -> &[Binding] {
        &self.bindings
    }

    /// Consumes the table, returning the bindings.
    pub fn into_bindings(self) -> Vec<Binding> {
        self.bindings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codewords_are_reused_for_identical_actions() {
        let mut table = CodewordTable::new();
        let a = table.gate(0, Gate::H, &[0]);
        let b = table.gate(0, Gate::H, &[0]);
        assert_eq!(a, b);
        let c = table.gate(0, Gate::H, &[1]);
        assert_ne!(a, c);
        assert_eq!(table.bindings().len(), 2);
    }

    #[test]
    fn angles_distinguish_rotations() {
        let mut table = CodewordTable::new();
        let a = table.gate(0, Gate::Rz(0.5), &[0]);
        let b = table.gate(0, Gate::Rz(0.25), &[0]);
        let c = table.gate(0, Gate::Rz(0.5), &[0]);
        assert_ne!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn namespaces_per_node_and_port() {
        let mut table = CodewordTable::new();
        let g = table.gate(3, Gate::X, &[3]);
        let m = table.measure(3, 3);
        let p = table.pulse(3);
        let r = table.reset(3, 3);
        // Gate/pulse/reset share the gate port's numbering; measure has
        // its own port namespace.
        assert_eq!(g, 1);
        assert_eq!(m, 1);
        assert_eq!(p, 2);
        assert_eq!(r, 3);
        assert_eq!(table.bindings().len(), 4);
        // Same action on another node allocates independently.
        assert_eq!(table.gate(4, Gate::X, &[4]), 1);
    }
}
