//! # hisq-compiler — the Distributed-HISQ software stack
//!
//! Lowers [`hisq_quantum::Circuit`] dynamic circuits to per-controller
//! HISQ binaries, standing in for the paper's Quingo → SISQ → HISQ
//! pipeline (Figure 10). Two complete backends implement the two
//! execution schemes the evaluation compares:
//!
//! - [`compile_bisp`] — **Distributed-HISQ**: independent per-controller
//!   streams, nearby `sync` pairs with booking advance for two-qubit
//!   gates, direct producer→consumer feedback messages, region-level
//!   synchronization between repetitions;
//! - [`compile_lockstep`] — the **lock-step baseline** (§6.4.3):
//!   IBM-style shared program flow through a central broadcast hub on a
//!   star topology with size-independent latency.
//!
//! A third pass, [`longrange::map_to_physical`], rewrites logical
//! circuits onto the interleaved data/ancilla layout, substituting
//! long-range CNOTs with the constant-depth dynamic gadget of Figure 14.
//!
//! # Example
//!
//! ```
//! use hisq_compiler::{compile_bisp, BispOptions};
//! use hisq_net::TopologyBuilder;
//! use hisq_quantum::{Circuit, Condition};
//!
//! let mut circuit = Circuit::new(2, 1);
//! circuit.h(0);
//! circuit.measure(0, 0);
//! circuit.x_if(1, Condition::bit(0, true));
//!
//! let topology = TopologyBuilder::linear(2).build();
//! let compiled = compile_bisp(&circuit, &topology, &BispOptions::default())?;
//! assert_eq!(compiled.programs.len(), 2);
//! # Ok::<(), hisq_compiler::CompileError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod codegen_bisp;
pub mod codegen_lockstep;
pub mod codewords;
pub mod emit;
pub mod fabric;
pub mod longrange;

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use hisq_core::NodeAddr;
use hisq_isa::{AsmError, Program, CYCLE_NS};
use hisq_quantum::GateDurations;

pub use codegen_bisp::{compile_bisp, BispOptions};
pub use codegen_lockstep::{compile_lockstep, LockstepOptions};
pub use codewords::{Binding, BindingAction, CodewordTable, PORT_GATE, PORT_READOUT};
pub use emit::StreamBuilder;
pub use fabric::{apply_placement, plan_placement, FabricCosts};
pub use longrange::{map_to_physical, LongRangeConfig, LongRangeStats, PhysicalCircuit};

/// Operation durations quantized to TCU cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleDurations {
    /// Single-qubit gate duration (cycles).
    pub single: u64,
    /// Two-qubit gate duration (cycles).
    pub two_qubit: u64,
    /// Measurement duration (cycles).
    pub measurement: u64,
    /// Active reset duration (cycles).
    pub reset: u64,
}

impl CycleDurations {
    /// The paper's §6.4.1 durations on the 4 ns grid: 5 / 10 / 75 cycles.
    pub const PAPER: CycleDurations = CycleDurations {
        single: 5,
        two_qubit: 10,
        measurement: 75,
        reset: 75,
    };

    /// Quantizes nanosecond durations to cycles (rounding up).
    pub fn from_durations(durations: GateDurations) -> CycleDurations {
        CycleDurations {
            single: durations.single_qubit_ns.div_ceil(CYCLE_NS),
            two_qubit: durations.two_qubit_ns.div_ceil(CYCLE_NS),
            measurement: durations.measurement_ns.div_ceil(CYCLE_NS),
            reset: durations.reset_ns.div_ceil(CYCLE_NS),
        }
    }
}

impl Default for CycleDurations {
    fn default() -> CycleDurations {
        CycleDurations::PAPER
    }
}

/// The execution scheme a program was compiled for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Distributed-HISQ with BISP synchronization.
    Bisp,
    /// The lock-step shared-program-flow baseline.
    Lockstep,
}

/// Baseline broadcast-hub parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HubSpec {
    /// Hub network address.
    pub addr: NodeAddr,
    /// Producer → hub latency (cycles).
    pub up_latency: u64,
    /// Hub → subscriber latency (cycles).
    pub down_latency: u64,
}

/// Compilation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Total HISQ instructions across all controllers.
    pub instructions: u64,
    /// Nearby `sync` instructions emitted (two per synchronized gate).
    pub nearby_syncs: u64,
    /// Region-level `sync` instructions emitted.
    pub region_syncs: u64,
    /// Classical sends emitted.
    pub sends: u64,
    /// Classical receives emitted (excluding measurement-FIFO reads).
    pub recvs: u64,
    /// Feedback (conditioned) operations emitted.
    pub feedbacks: u64,
}

/// A compiled distributed program: one HISQ binary per controller plus
/// the codeword bindings and scheme metadata needed to run it.
#[derive(Debug, Clone)]
pub struct CompiledSystem {
    /// The scheme this system was compiled for.
    pub scheme: Scheme,
    /// Assembled programs per controller.
    pub programs: BTreeMap<NodeAddr, Program>,
    /// Generated assembly text per controller (human-readable artifact).
    pub sources: BTreeMap<NodeAddr, String>,
    /// Codeword → quantum action bindings.
    pub bindings: Vec<Binding>,
    /// Number of circuit qubits (= participating controllers).
    pub num_qubits: usize,
    /// Broadcast hub parameters (lock-step only).
    pub hub: Option<HubSpec>,
    /// Durations the schedule was built with.
    pub durations: CycleDurations,
    /// Compilation counters.
    pub stats: CompileStats,
}

impl CompiledSystem {
    /// Total instruction count across all controllers.
    pub fn total_instructions(&self) -> u64 {
        self.stats.instructions
    }

    /// FNV-1a fingerprint of the compiled *machine code*: the scheme
    /// tag plus, per controller in address order, the address and the
    /// encoded program words. Two compilations fingerprinting equal
    /// therefore emitted bit-identical programs for the same
    /// controllers — the property the sweep compile cache's
    /// equivalence suite checks (equal cache keys ⇒ equal
    /// fingerprints). Instructions outside the encodable ISA (none are
    /// compiler-emitted today) hash a sentinel plus their debug form
    /// instead of a word, keeping the fingerprint total.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(FNV_PRIME);
            }
        };
        eat(&[match self.scheme {
            Scheme::Bisp => 0u8,
            Scheme::Lockstep => 1u8,
        }]);
        for (&addr, program) in &self.programs {
            eat(&addr.to_le_bytes());
            for inst in program.insts() {
                match hisq_isa::encode::encode(inst) {
                    Ok(word) => eat(&word.to_le_bytes()),
                    Err(_) => {
                        eat(&[0xff]);
                        eat(format!("{inst:?}").as_bytes());
                    }
                }
            }
        }
        hash
    }
}

/// Compilation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The circuit has more qubits than the topology has controllers.
    TooManyQubits {
        /// Circuit qubits.
        qubits: usize,
        /// Available controllers.
        controllers: usize,
    },
    /// A two-qubit gate spans controllers without a mesh edge.
    NonAdjacentGate {
        /// Instruction index in the circuit.
        index: usize,
        /// The offending operand pair.
        qubits: (usize, usize),
    },
    /// A condition guards an unsupported operation (only single-qubit
    /// gates may be conditioned).
    UnsupportedConditional {
        /// Instruction index in the circuit.
        index: usize,
    },
    /// A condition reads a classical bit no measurement has written.
    ConditionBeforeMeasurement {
        /// Instruction index in the circuit.
        index: usize,
        /// The unwritten classical bit.
        clbit: usize,
    },
    /// The topology has no router to coordinate region synchronization.
    NoRootRouter,
    /// Generated assembly failed to assemble (a code-generation bug).
    Asm(AsmError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::TooManyQubits {
                qubits,
                controllers,
            } => write!(
                f,
                "circuit needs {qubits} controllers but the topology has {controllers}"
            ),
            CompileError::NonAdjacentGate { index, qubits } => write!(
                f,
                "instruction {index}: two-qubit gate on non-adjacent qubits {qubits:?} \
                 (run the long-range mapping pass first)"
            ),
            CompileError::UnsupportedConditional { index } => write!(
                f,
                "instruction {index}: only single-qubit gates may be conditioned"
            ),
            CompileError::ConditionBeforeMeasurement { index, clbit } => write!(
                f,
                "instruction {index}: condition reads clbit {clbit} before any measurement"
            ),
            CompileError::NoRootRouter => {
                write!(f, "topology has no router for region synchronization")
            }
            CompileError::Asm(e) => write!(f, "generated assembly failed to assemble: {e}"),
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Asm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AsmError> for CompileError {
    fn from(e: AsmError) -> CompileError {
        CompileError::Asm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_durations_quantize_correctly() {
        let d = CycleDurations::from_durations(GateDurations::PAPER);
        assert_eq!(d, CycleDurations::PAPER);
        assert_eq!(d.single, 5); // 20 ns at 4 ns/cycle
        assert_eq!(d.two_qubit, 10); // 40 ns
        assert_eq!(d.measurement, 75); // 300 ns
    }

    #[test]
    fn rounding_up_for_non_multiples() {
        let d = CycleDurations::from_durations(GateDurations {
            single_qubit_ns: 21,
            two_qubit_ns: 41,
            measurement_ns: 301,
            reset_ns: 1,
        });
        assert_eq!(d.single, 6);
        assert_eq!(d.two_qubit, 11);
        assert_eq!(d.measurement, 76);
        assert_eq!(d.reset, 1);
    }

    #[test]
    fn error_display() {
        let e = CompileError::NonAdjacentGate {
            index: 7,
            qubits: (0, 5),
        };
        assert!(e.to_string().contains("long-range"));
        let e = CompileError::TooManyQubits {
            qubits: 10,
            controllers: 4,
        };
        assert!(e.to_string().contains("10"));
    }
}
