//! The lock-step baseline code generator (§6.4.3 of the paper).
//!
//! Reproduces the IBM-style shared-program-flow scheme (the paper's
//! reference \[51\]) the paper
//! evaluates against:
//!
//! - a **central hub** (star topology) re-broadcasts every measurement
//!   result to **every** controller at a constant latency, independent
//!   of system size (the paper's deliberately generous assumption);
//! - all controllers follow the **same program flow**: every feedback
//!   operation is a global window — all controllers stall, evaluate the
//!   same branch, and advance together, so concurrent feedback
//!   operations serialize;
//! - deterministic regions are statically scheduled on a single global
//!   timeline, so two-qubit gates need no `sync` instructions at all.
//!
//! Broadcast values are index-tagged (`(measurement_index << 1) | bit`)
//! and stored to a ring buffer in data memory, making the receive stream
//! self-describing regardless of same-cycle delivery order.

use std::collections::{BTreeMap, BTreeSet};

use hisq_core::NodeAddr;
use hisq_quantum::{Circuit, Condition, Gate, Instruction, Operation};

use crate::codewords::{CodewordTable, PORT_GATE, PORT_READOUT};
use crate::emit::StreamBuilder;
use crate::{CompileError, CompileStats, CompiledSystem, CycleDurations, HubSpec, Scheme};

/// Ring-buffer slots for broadcast measurement bits (must be a power of
/// two; the `andi` mask must fit a 12-bit immediate).
const RING_SLOTS: u32 = 2048;

/// Pipeline margin after a measurement's result handling, in cycles
/// (recv + tag + send instructions), folded into the static schedule so
/// issue-rate effects cannot compound at run time.
const MEAS_PIPELINE_MARGIN: u64 = 16;

/// Pipeline margin closing a feedback window (branch evaluation).
const WINDOW_PIPELINE_MARGIN: u64 = 16;

/// Options for the lock-step baseline backend.
#[derive(Debug, Clone)]
pub struct LockstepOptions {
    /// Operation durations in TCU cycles.
    pub durations: CycleDurations,
    /// Producer → hub latency in cycles (constant, size-independent).
    pub star_up_latency: u64,
    /// Hub → controller broadcast latency in cycles.
    pub star_down_latency: u64,
    /// Number of program repetitions (statically unrolled; lock-step
    /// needs no re-synchronization between shots).
    pub shots: u32,
}

impl Default for LockstepOptions {
    fn default() -> LockstepOptions {
        LockstepOptions {
            durations: CycleDurations::PAPER,
            star_up_latency: 25,
            star_down_latency: 25,
            shots: 1,
        }
    }
}

/// A per-controller timed emission item.
#[derive(Debug, Clone)]
enum Item {
    /// Align the grid to `time` and fire a codeword.
    Trigger { time: u64, port: u32, cw: u32 },
    /// Measurement sequence: trigger at `time`, collect the local
    /// result, and publish it (index-tagged) to the hub.
    Measure {
        time: u64,
        cw: u32,
        meas_index: usize,
    },
    /// Receive one hub broadcast (no grid alignment; ordered by arrival).
    Broadcast { time: u64 },
    /// A shared-flow feedback window `[w0, w1]`: evaluate the branch and
    /// run the body (or idle for the same duration).
    Window {
        w0: u64,
        w1: u64,
        bits: Vec<usize>,
        value: bool,
        body: Vec<(u64, u32, u32, u64)>, // (start, port, cw, duration)
    },
}

impl Item {
    fn time(&self) -> u64 {
        match self {
            Item::Trigger { time, .. } | Item::Measure { time, .. } | Item::Broadcast { time } => {
                *time
            }
            Item::Window { w0, .. } => *w0,
        }
    }
}

/// Compiles a dynamic circuit for the lock-step baseline.
///
/// # Errors
///
/// Returns [`CompileError`] for conditions on multi-qubit operations,
/// conditions referencing unwritten clbits, or assembler failures.
pub fn compile_lockstep(
    circuit: &Circuit,
    options: &LockstepOptions,
) -> Result<CompiledSystem, CompileError> {
    let n = circuit.num_qubits();
    let hub_addr = n as NodeAddr;
    let d = options.durations;
    let broadcast_latency = options.star_up_latency + options.star_down_latency;

    let mut table = CodewordTable::new();
    let mut stats = CompileStats::default();
    let mut items: BTreeMap<NodeAddr, Vec<Item>> =
        (0..n as u16).map(|addr| (addr, Vec::new())).collect();

    // Pre-scan: which controllers consume each measurement's bit. The
    // central hub broadcasts in hardware; only consumers spend pipeline
    // cycles latching results (the paper's generous baseline).
    let consumers_of_clbit: BTreeMap<usize, BTreeSet<NodeAddr>> = {
        let mut writers: BTreeMap<usize, usize> = BTreeMap::new(); // clbit -> meas order idx
        let mut order = 0usize;
        let mut per_meas: BTreeMap<usize, BTreeSet<NodeAddr>> = BTreeMap::new();
        for instruction in circuit.instructions() {
            if let Some(condition) = &instruction.condition {
                for q in instruction.qubits() {
                    for clbit in condition.clbits() {
                        if let Some(&m) = writers.get(&clbit) {
                            per_meas.entry(m).or_default().insert(q as NodeAddr);
                        }
                    }
                }
            }
            if let Operation::Measure { clbit, .. } = instruction.op {
                writers.insert(clbit, order);
                order += 1;
            }
        }
        // Re-key by clbit writer order at schedule time below.
        per_meas
    };

    // ---- Pass 1: static global schedule -----------------------------
    let mut qubit_ready = vec![0u64; n];
    let mut feedback_cursor = 0u64;
    let mut meas_count = 0usize;
    // clbit → (meas_index, broadcast arrival time).
    let mut bit_sources: BTreeMap<usize, (usize, u64)> = BTreeMap::new();

    let shots = options.shots.max(1);
    for _ in 0..shots {
        let instructions = circuit.instructions();
        let mut idx = 0;
        while idx < instructions.len() {
            let instruction = &instructions[idx];
            match (&instruction.op, &instruction.condition) {
                (_, Some(condition)) => {
                    // Collect the maximal run sharing this condition into
                    // one shared-flow window.
                    let mut body: Vec<&Instruction> = Vec::new();
                    let mut end = idx;
                    while end < instructions.len()
                        && instructions[end].condition.as_ref() == Some(condition)
                    {
                        body.push(&instructions[end]);
                        end += 1;
                    }

                    let mut bits = Vec::new();
                    let mut bits_ready = 0u64;
                    for clbit in condition.clbits() {
                        let &(meas_index, arrival) = bit_sources.get(&clbit).ok_or(
                            CompileError::ConditionBeforeMeasurement { index: idx, clbit },
                        )?;
                        bits.push(meas_index);
                        bits_ready = bits_ready.max(arrival);
                    }
                    let value = match condition {
                        Condition::Bit { value, .. } | Condition::Parity { value, .. } => *value,
                    };

                    // Global barrier: every controller stalls.
                    let global_ready = qubit_ready.iter().copied().max().unwrap_or(0);
                    let w0 = feedback_cursor.max(bits_ready).max(global_ready);

                    // Schedule the body ASAP inside the window.
                    let mut local_ready = vec![w0; n];
                    let mut scheduled: BTreeMap<NodeAddr, Vec<(u64, u32, u32, u64)>> =
                        BTreeMap::new();
                    let mut w1 = w0;
                    let mut participants: BTreeSet<NodeAddr> = BTreeSet::new();
                    for inst in &body {
                        match &inst.op {
                            Operation::Gate { gate, qubits } if qubits.len() == 1 => {
                                let q = qubits[0];
                                let start = local_ready[q];
                                let dur = d.gate_cycles(*gate);
                                local_ready[q] = start + dur;
                                w1 = w1.max(start + dur);
                                let addr = q as NodeAddr;
                                let cw = table.gate(addr, *gate, qubits);
                                scheduled
                                    .entry(addr)
                                    .or_default()
                                    .push((start, PORT_GATE, cw, dur));
                                participants.insert(addr);
                                stats.feedbacks += 1;
                            }
                            Operation::Delay { qubit, duration_ns } => {
                                // Conditioned idle: occupies the window
                                // without a trigger.
                                let dur = duration_ns.div_ceil(hisq_isa::CYCLE_NS);
                                local_ready[*qubit] += dur;
                                w1 = w1.max(local_ready[*qubit]);
                                participants.insert(*qubit as NodeAddr);
                                stats.feedbacks += 1;
                            }
                            _ => {
                                return Err(CompileError::UnsupportedConditional { index: idx });
                            }
                        }
                    }
                    for (addr, body) in scheduled {
                        items
                            .get_mut(&addr)
                            .expect("controller exists")
                            .push(Item::Window {
                                w0,
                                w1,
                                bits: bits.clone(),
                                value,
                                body,
                            });
                    }
                    // Shared flow: everyone resumes together after the
                    // window plus the branch-evaluation margin.
                    let resume = w1 + WINDOW_PIPELINE_MARGIN;
                    qubit_ready.iter_mut().for_each(|r| *r = resume);
                    feedback_cursor = resume;
                    idx = end;
                    continue;
                }
                (Operation::Gate { gate, qubits }, None) => {
                    let start = qubits.iter().map(|&q| qubit_ready[q]).max().unwrap_or(0);
                    let dur = d.gate_cycles(*gate);
                    for &q in qubits {
                        qubit_ready[q] = start + dur;
                    }
                    let first = qubits[0] as NodeAddr;
                    let cw = table.gate(first, *gate, qubits);
                    items.get_mut(&first).expect("exists").push(Item::Trigger {
                        time: start,
                        port: PORT_GATE,
                        cw,
                    });
                    if qubits.len() == 2 {
                        let second = qubits[1] as NodeAddr;
                        let pulse = table.pulse(second);
                        items.get_mut(&second).expect("exists").push(Item::Trigger {
                            time: start,
                            port: PORT_GATE,
                            cw: pulse,
                        });
                    }
                }
                (Operation::Measure { qubit, clbit }, None) => {
                    let start = qubit_ready[*qubit];
                    qubit_ready[*qubit] = start + d.measurement + MEAS_PIPELINE_MARGIN;
                    let addr = *qubit as NodeAddr;
                    let cw = table.measure(addr, *qubit);
                    let meas_index = meas_count;
                    meas_count += 1;
                    let arrival = start + d.measurement + broadcast_latency;
                    bit_sources.insert(*clbit, (meas_index, arrival));
                    items.get_mut(&addr).expect("exists").push(Item::Measure {
                        time: start,
                        cw,
                        meas_index,
                    });
                    // Hardware broadcast bus: only consuming controllers
                    // spend pipeline cycles latching the result.
                    if let Some(consumers) = consumers_of_clbit.get(&meas_index) {
                        for &consumer in consumers {
                            items
                                .get_mut(&consumer)
                                .expect("exists")
                                .push(Item::Broadcast { time: arrival });
                            stats.recvs += 1;
                        }
                    }
                    stats.sends += 1;
                }
                (Operation::Reset { qubit }, None) => {
                    let start = qubit_ready[*qubit];
                    qubit_ready[*qubit] = start + d.reset;
                    let addr = *qubit as NodeAddr;
                    let cw = table.reset(addr, *qubit);
                    items.get_mut(&addr).expect("exists").push(Item::Trigger {
                        time: start,
                        port: PORT_GATE,
                        cw,
                    });
                }
                (Operation::Delay { qubit, duration_ns }, None) => {
                    qubit_ready[*qubit] += duration_ns.div_ceil(hisq_isa::CYCLE_NS);
                }
                (Operation::Barrier { qubits }, None) => {
                    let affected: Vec<usize> = if qubits.is_empty() {
                        (0..n).collect()
                    } else {
                        qubits.clone()
                    };
                    let sync = affected.iter().map(|&q| qubit_ready[q]).max().unwrap_or(0);
                    for q in affected {
                        qubit_ready[q] = sync;
                    }
                }
            }
            idx += 1;
        }
        // Shots are back-to-back on the shared timeline.
        let end = qubit_ready.iter().copied().max().unwrap_or(0);
        qubit_ready.iter_mut().for_each(|r| *r = end);
    }

    // ---- Pass 2: per-controller emission -----------------------------
    let mut programs = BTreeMap::new();
    let mut sources = BTreeMap::new();
    for (addr, mut node_items) in items {
        // Stable sort by time preserves schedule order for ties.
        node_items.sort_by_key(Item::time);
        let mut builder = StreamBuilder::new(addr);
        let mut cursor = 0u64;
        for item in node_items {
            match item {
                Item::Trigger { time, port, cw } => {
                    debug_assert!(time >= cursor, "static schedule went backwards");
                    builder.wait(time.saturating_sub(cursor));
                    cursor = cursor.max(time);
                    builder.cw(port, cw);
                }
                Item::Measure {
                    time,
                    cw,
                    meas_index,
                } => {
                    builder.wait(time.saturating_sub(cursor));
                    cursor = cursor.max(time) + d.measurement;
                    builder.cw(PORT_READOUT, cw);
                    builder.wait(d.measurement);
                    builder.recv("t0", 0xFFF);
                    builder.raw(format!("li t5, {}", (meas_index as u32) << 1));
                    builder.raw("add t5, t5, t0");
                    builder.send(hub_addr, "t5");
                    builder.mark_blocker();
                }
                Item::Broadcast { .. } => {
                    // Pipeline-only work: receive, decode the tag, store
                    // the bit into its ring slot.
                    builder.recv("t2", hub_addr);
                    builder.raw("andi t4, t2, 1");
                    builder.raw("srli t3, t2, 1");
                    builder.raw(format!("andi t3, t3, {}", RING_SLOTS - 1));
                    builder.raw("slli t3, t3, 2");
                    builder.raw("sw t4, 0(t3)");
                    builder.mark_blocker();
                }
                Item::Window {
                    w0,
                    w1,
                    bits,
                    value,
                    body,
                } => {
                    builder.wait(w0.saturating_sub(cursor));
                    cursor = w1;
                    for (i, meas_index) in bits.iter().enumerate() {
                        let slot = ((*meas_index as u32) % RING_SLOTS) * 4;
                        builder.raw(format!("li t3, {slot}"));
                        builder.raw("lw t2, 0(t3)");
                        if i == 0 {
                            builder.raw("mv t1, t2");
                        } else {
                            builder.raw("xor t1, t1, t2");
                        }
                    }
                    let skip = builder.fresh_label("skip");
                    let end = builder.fresh_label("end");
                    if value {
                        builder.raw(format!("beqz t1, {skip}"));
                    } else {
                        builder.raw(format!("bnez t1, {skip}"));
                    }
                    let mut local = w0;
                    for (start, port, cw, dur) in body {
                        builder.wait(start.saturating_sub(local));
                        builder.cw(port, cw);
                        builder.wait(dur);
                        local = start + dur;
                    }
                    builder.wait(w1.saturating_sub(local));
                    builder.raw(format!("j {end}"));
                    builder.label(&skip);
                    // The untaken path idles for the same window.
                    builder.wait(w1 - w0);
                    builder.label(&end);
                    builder.mark_blocker();
                }
            }
        }
        let (source, program) = builder.finish().map_err(CompileError::Asm)?;
        stats.instructions += program.len() as u64;
        sources.insert(addr, source);
        programs.insert(addr, program);
    }

    Ok(CompiledSystem {
        scheme: Scheme::Lockstep,
        programs,
        sources,
        bindings: table.into_bindings(),
        num_qubits: n,
        hub: Some(HubSpec {
            addr: hub_addr,
            up_latency: options.star_up_latency,
            down_latency: options.star_down_latency,
        }),
        durations: d,
        stats,
    })
}

/// Exposes gate durations on [`CycleDurations`] for scheduling.
impl CycleDurations {
    /// Duration of a gate in cycles.
    pub fn gate_cycles(&self, gate: Gate) -> u64 {
        if gate.arity() == 1 {
            self.single
        } else {
            self.two_qubit
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_circuit_needs_no_syncs() {
        let mut circuit = Circuit::new(3, 1);
        circuit.h(0).cx(0, 1).cx(1, 2);
        let compiled = compile_lockstep(&circuit, &LockstepOptions::default()).unwrap();
        assert_eq!(compiled.stats.nearby_syncs, 0);
        assert_eq!(compiled.stats.region_syncs, 0);
        for source in compiled.sources.values() {
            assert!(!source.contains("sync"));
        }
        assert!(compiled.hub.is_some());
    }

    #[test]
    fn only_consumers_receive_broadcasts() {
        let mut circuit = Circuit::new(3, 1);
        circuit.measure(0, 0);
        circuit.x_if(2, Condition::bit(0, true));
        let compiled = compile_lockstep(&circuit, &LockstepOptions::default()).unwrap();
        // Only controller 2 consumes the bit.
        assert_eq!(compiled.stats.recvs, 1);
        assert!(
            compiled.sources[&2].contains("recv t2, 3"),
            "consumer latches"
        );
        assert!(
            !compiled.sources[&1].contains("recv t2, 3"),
            "bystander skips"
        );
        // The producer publishes an index-tagged value through the hub.
        assert!(compiled.sources[&0].contains("send 3, t5"));
    }

    #[test]
    fn feedback_becomes_a_shared_window() {
        let mut circuit = Circuit::new(2, 1);
        circuit.measure(0, 0);
        circuit.x_if(1, Condition::bit(0, true));
        let compiled = compile_lockstep(&circuit, &LockstepOptions::default()).unwrap();
        let src1 = &compiled.sources[&1];
        assert!(src1.contains("lw t2, 0(t3)"));
        assert!(src1.contains("beqz t1"));
        // Both paths exist: a body and the idle arm.
        assert!(src1.contains("j .end_1_"), "{src1}");
    }

    #[test]
    fn consecutive_same_condition_ops_share_one_window() {
        let mut circuit = Circuit::new(3, 1);
        circuit.measure(0, 0);
        circuit.x_if(1, Condition::bit(0, true));
        circuit.z_if(2, Condition::bit(0, true));
        let compiled = compile_lockstep(&circuit, &LockstepOptions::default()).unwrap();
        // One window spans both ops: each participant branches once.
        assert_eq!(compiled.sources[&1].matches("beqz t1").count(), 1);
        assert_eq!(compiled.sources[&2].matches("beqz t1").count(), 1);
    }

    #[test]
    fn distinct_conditions_serialize_into_two_windows() {
        let mut circuit = Circuit::new(3, 2);
        circuit.measure(0, 0);
        circuit.measure(1, 1);
        circuit.x_if(2, Condition::bit(0, true));
        circuit.x_if(2, Condition::bit(1, true));
        let compiled = compile_lockstep(&circuit, &LockstepOptions::default()).unwrap();
        assert_eq!(compiled.sources[&2].matches("beqz t1").count(), 2);
        assert_eq!(compiled.stats.feedbacks, 2);
    }

    #[test]
    fn sources_assemble_and_carry_hub_spec() {
        let mut circuit = Circuit::new(2, 2);
        circuit.h(0).cx(0, 1);
        circuit.measure(0, 0).measure(1, 1);
        circuit.x_if(0, Condition::parity(vec![0, 1], true));
        let options = LockstepOptions {
            star_up_latency: 30,
            star_down_latency: 40,
            ..LockstepOptions::default()
        };
        let compiled = compile_lockstep(&circuit, &options).unwrap();
        let hub = compiled.hub.unwrap();
        assert_eq!(hub.addr, 2);
        assert_eq!(hub.up_latency, 30);
        assert_eq!(hub.down_latency, 40);
        assert!(compiled.programs.values().all(|p| !p.is_empty()));
    }
}
