//! Per-controller assembly stream builders.
//!
//! Code generation emits HISQ assembly *text* (labels and all), then
//! assembles it with the `hisq-isa` assembler — the generated programs
//! are human-readable artifacts, and the production assembler is
//! exercised on every compile.
//!
//! The builder also implements the **booking advance** of BISP (§4.2):
//! a `sync` is inserted at the *hoist point* — just after the last
//! instruction whose timing is non-deterministic (a `recv`, a branch, a
//! previous synchronization point) — so the calibrated countdown overlaps
//! the deterministic work emitted since.

use hisq_core::NodeAddr;
use hisq_isa::{AsmError, Assembler, Program};

/// Maximum immediate of a single `waiti` (22-bit field).
const MAX_WAITI: u64 = (1 << 22) - 1;

/// An append-mostly assembly stream for one controller.
#[derive(Debug, Clone)]
pub struct StreamBuilder {
    addr: NodeAddr,
    lines: Vec<String>,
    /// Grid cycles consumed by each line (non-zero only for `waiti`).
    line_cycles: Vec<u64>,
    labels: usize,
    /// Index into `lines` where a hoisted `sync` may be inserted.
    hoist_point: usize,
    /// Deterministic grid cycles accumulated since the hoist point.
    det_cycles: u64,
}

impl StreamBuilder {
    /// Creates an empty stream for controller `addr`.
    pub fn new(addr: NodeAddr) -> StreamBuilder {
        StreamBuilder {
            addr,
            lines: Vec::new(),
            line_cycles: Vec::new(),
            labels: 0,
            hoist_point: 0,
            det_cycles: 0,
        }
    }

    /// The owning controller's address.
    pub fn addr(&self) -> NodeAddr {
        self.addr
    }

    /// Deterministic cycles accumulated since the last blocker.
    pub fn det_cycles(&self) -> u64 {
        self.det_cycles
    }

    fn push_line(&mut self, line: String, cycles: u64) {
        self.lines.push(line);
        self.line_cycles.push(cycles);
    }

    /// Appends a raw assembly line.
    pub fn raw(&mut self, line: impl Into<String>) {
        self.push_line(line.into(), 0);
    }

    /// Returns a fresh unique label with the given prefix.
    pub fn fresh_label(&mut self, prefix: &str) -> String {
        self.labels += 1;
        format!(".{prefix}_{}_{}", self.addr, self.labels)
    }

    /// Places a label definition.
    pub fn label(&mut self, name: &str) {
        self.push_line(format!("{name}:"), 0);
    }

    /// Advances the timing grid by `cycles` (splitting waits that exceed
    /// the 22-bit `waiti` field). Zero-cycle waits emit nothing.
    pub fn wait(&mut self, mut cycles: u64) {
        self.det_cycles += cycles;
        while cycles > 0 {
            let chunk = cycles.min(MAX_WAITI);
            self.push_line(format!("waiti {chunk}"), chunk);
            cycles -= chunk;
        }
    }

    /// Emits a codeword trigger (does not advance the grid).
    pub fn cw(&mut self, port: u32, codeword: u32) {
        self.push_line(format!("cw.i.i {port}, {codeword}"), 0);
    }

    /// Emits a blocking receive into `reg`.
    ///
    /// Receives cap the hoist point: a later `sync` must not be hoisted
    /// above a message dependency, or the controller would block on the
    /// sync before satisfying it.
    pub fn recv(&mut self, reg: &str, source: NodeAddr) {
        self.push_line(format!("recv {reg}, {source}"), 0);
        self.hoist_point = self.lines.len();
    }

    /// Emits a send of `reg` to `target`.
    ///
    /// Sends also cap the hoist point: hoisting a blocking `sync` above
    /// a send would delay the message a remote consumer may need before
    /// *its* half of that very synchronization (deadlock). Sends take no
    /// grid time, so the accumulated deterministic cycles are kept.
    pub fn send(&mut self, target: NodeAddr, reg: &str) {
        self.push_line(format!("send {target}, {reg}"), 0);
        self.hoist_point = self.lines.len();
    }

    /// Inserts `sync target` exactly `cover` deterministic grid cycles
    /// before the current stream position (the optimal booking advance:
    /// booking further ahead than the countdown buys nothing and can
    /// replay overlappable work after a late partner). The hoist stops
    /// at the last blocker. Oversized `waiti` lines are split so the
    /// insertion point is exact. Returns the deterministic cycles that
    /// actually cover the countdown (`min(cover, available work)`).
    pub fn sync_covering(&mut self, target: NodeAddr, cover: u64) -> u64 {
        let mut acc = 0u64;
        let mut pos = self.lines.len();
        while pos > self.hoist_point && acc < cover {
            let cycles = self.line_cycles[pos - 1];
            if acc + cycles > cover {
                // Split the wait so exactly `cover` cycles follow the sync.
                let needed = cover - acc;
                let before = cycles - needed;
                self.lines[pos - 1] = format!("waiti {before}");
                self.line_cycles[pos - 1] = before;
                self.lines.insert(pos, format!("waiti {needed}"));
                self.line_cycles.insert(pos, needed);
                acc = cover;
                break;
            }
            acc += cycles;
            pos -= 1;
        }
        self.lines.insert(pos, format!("sync {target}"));
        self.line_cycles.insert(pos, 0);
        acc
    }

    /// Appends `sync target` at the current position (the QubiC-style
    /// placement immediately before the synchronization point; used by
    /// the no-booking-advance ablation).
    pub fn sync_here(&mut self, target: NodeAddr) {
        self.push_line(format!("sync {target}"), 0);
        // Everything accumulated so far is before the sync; the countdown
        // overlaps nothing.
        self.det_cycles = 0;
        self.hoist_point = self.lines.len();
    }

    /// Appends a region sync against `router` booking `horizon` cycles
    /// ahead (loads the horizon into `t6` first).
    pub fn region_sync(&mut self, router: NodeAddr, horizon: u64) {
        if horizon == 0 {
            self.push_line(format!("sync {router}"), 0);
        } else {
            self.push_line(format!("li t6, {horizon}"), 0);
            self.push_line(format!("sync {router}, t6"), 0);
        }
        self.mark_blocker();
    }

    /// Declares that the timing of everything after this point restarts
    /// from a non-deterministic event (recv, branch, synchronization
    /// point): future hoisted syncs will not cross it.
    pub fn mark_blocker(&mut self) {
        self.hoist_point = self.lines.len();
        self.det_cycles = 0;
    }

    /// Emits the program epilogue and assembles.
    ///
    /// # Errors
    ///
    /// Propagates assembler errors (a code-generation bug).
    pub fn finish(mut self) -> Result<(String, Program), AsmError> {
        self.push_line("stop".to_string(), 0);
        let source = self.lines.join("\n") + "\n";
        let program = Assembler::new().assemble(&source)?;
        Ok((source, program))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waits_are_split_and_merged_into_det_cycles() {
        let mut b = StreamBuilder::new(0);
        b.wait(MAX_WAITI + 10);
        assert_eq!(b.det_cycles(), MAX_WAITI + 10);
        b.wait(0); // no instruction
        let (source, program) = b.finish().unwrap();
        assert_eq!(source.matches("waiti").count(), 2);
        assert_eq!(program.len(), 3); // two waits + stop
    }

    #[test]
    fn sync_covering_inserts_at_exact_coverage() {
        let mut b = StreamBuilder::new(1);
        b.recv("t0", 7);
        b.mark_blocker();
        b.wait(5);
        b.cw(0, 1);
        let covered = b.sync_covering(2, 5);
        assert_eq!(covered, 5);
        let (source, _) = b.finish().unwrap();
        let lines: Vec<&str> = source.lines().collect();
        // sync sits right after the recv: exactly 5 deterministic cycles
        // of coverage follow it.
        assert_eq!(lines[0], "recv t0, 7");
        assert_eq!(lines[1], "sync 2");
        assert_eq!(lines[2], "waiti 5");
    }

    #[test]
    fn sync_covering_stops_at_blocker_when_short() {
        let mut b = StreamBuilder::new(1);
        b.recv("t0", 7);
        b.mark_blocker();
        b.wait(3);
        let covered = b.sync_covering(2, 10);
        assert_eq!(covered, 3, "only 3 cycles available to cover");
        let (source, _) = b.finish().unwrap();
        assert_eq!(source.lines().nth(1), Some("sync 2"));
    }

    #[test]
    fn sync_covering_splits_oversized_waits() {
        let mut b = StreamBuilder::new(1);
        b.wait(75); // one long measurement wait
        let covered = b.sync_covering(2, 5);
        assert_eq!(covered, 5);
        let (source, _) = b.finish().unwrap();
        let lines: Vec<&str> = source.lines().collect();
        assert_eq!(lines[0], "waiti 70");
        assert_eq!(lines[1], "sync 2");
        assert_eq!(lines[2], "waiti 5");
    }

    #[test]
    fn sync_covering_does_not_book_too_early() {
        // 30 cycles of work available, countdown only 5: the sync must
        // be placed 5 cycles before the end, not at the stream start.
        let mut b = StreamBuilder::new(1);
        b.wait(10);
        b.wait(10);
        b.wait(10);
        let covered = b.sync_covering(2, 5);
        assert_eq!(covered, 5);
        let (source, _) = b.finish().unwrap();
        let lines: Vec<&str> = source.lines().collect();
        assert_eq!(lines[0], "waiti 10");
        assert_eq!(lines[1], "waiti 10");
        assert_eq!(lines[2], "waiti 5");
        assert_eq!(lines[3], "sync 2");
        assert_eq!(lines[4], "waiti 5");
    }

    #[test]
    fn sync_here_overlaps_nothing() {
        let mut b = StreamBuilder::new(1);
        b.wait(50);
        b.sync_here(2);
        assert_eq!(b.det_cycles(), 0);
        let (source, _) = b.finish().unwrap();
        let lines: Vec<&str> = source.lines().collect();
        assert_eq!(lines[0], "waiti 50");
        assert_eq!(lines[1], "sync 2");
    }

    #[test]
    fn labels_are_unique_and_assemble() {
        let mut b = StreamBuilder::new(3);
        let l1 = b.fresh_label("skip");
        let l2 = b.fresh_label("skip");
        assert_ne!(l1, l2);
        b.raw(format!("beqz t0, {l1}"));
        b.cw(0, 1);
        b.label(&l1);
        let (_, program) = b.finish().unwrap();
        assert_eq!(program.len(), 3);
    }

    #[test]
    fn region_sync_with_horizon_loads_register() {
        let mut b = StreamBuilder::new(0);
        b.region_sync(100, 30);
        let (source, _) = b.finish().unwrap();
        assert!(source.contains("li t6, 30"));
        assert!(source.contains("sync 100, t6"));
    }
}
