//! Fabric-aware placement: choosing where circuit qubits live on a
//! heterogeneous grid *before* BISP compilation.
//!
//! The oblivious pipeline places circuit qubit `i` on controller `i`
//! unconditionally. On a uniform fabric that is as good as any other
//! placement — every mesh edge costs the same and every qubit errs the
//! same — but on a heterogeneous fabric (one heated link, one lossy
//! transmon) the identity placement can route the workload's hottest
//! traffic straight through the worst edge, or park an output data
//! qubit on the worst device site.
//!
//! This module scores the mesh automorphisms of the compilation grid
//! (the placements that preserve adjacency, so every compiled
//! two-qubit gate stays nearest-neighbour and the program structure is
//! unchanged) against a [`FabricCosts`] summary of the per-edge link
//! models and per-qubit noise models, and picks the cheapest:
//!
//! - **edge cost** — expected nanoseconds a classical message pays to
//!   cross the edge: serialization time scaled by the expected
//!   transmission count of the drop policy, plus the retransmission
//!   round trips themselves;
//! - **qubit error** — the site's noise-model rates charged per
//!   operation exactly as the runtime per-qubit infidelity accounting
//!   charges them (1q gates pay `p_gate_1q`, 2q-gate operands pay
//!   `p_gate_2q + p_leak`, measurements pay `p_meas`), plus a summed
//!   standing cost per instruction for workload data sites (which hold
//!   live state for the whole run).
//!
//! The search is exact and deterministic: a grid has at most eight
//! mesh automorphisms (the dihedral group of the rectangle), candidates
//! are enumerated identity-first, and ties keep the earlier candidate —
//! so a flat fabric always plans the identity and fabric-aware
//! compilation of a uniform scenario is byte-identical to oblivious.

use std::collections::{BTreeMap, BTreeSet};

use hisq_core::NodeAddr;
use hisq_isa::CYCLE_NS;
use hisq_net::{FabricMap, LinkModel, Topology};
use hisq_quantum::{Circuit, Instruction, NoiseMap, NoiseModel, Operation};

/// Idle-exposure proxy: nanoseconds of idle error a data site is
/// charged per circuit instruction when comparing placements (the real
/// exposure is makespan-dependent, which placement cannot know yet).
const IDLE_PROXY_NS: f64 = 1_000.0;

/// Score slack under which two placements count as tied (ties keep the
/// earlier — identity-first — candidate).
const TIE_EPS: f64 = 1e-9;

/// Scalar cost summary of a heterogeneous fabric, as placement sees
/// it: one expected-delay figure per overridden directed mesh edge
/// (plus the uniform default), and one error figure per controller
/// site.
#[derive(Debug, Clone)]
pub struct FabricCosts {
    edge_costs: BTreeMap<(NodeAddr, NodeAddr), f64>,
    default_edge_cost: f64,
    qubit_models: Vec<NoiseModel>,
    flat: bool,
}

impl FabricCosts {
    /// Distills `fabric` and `noise` into placement costs for
    /// `topology`'s grid.
    pub fn from_maps(topology: &Topology, fabric: &FabricMap, noise: &NoiseMap) -> FabricCosts {
        let retry_ns = 2 * topology.neighbor_latency() * CYCLE_NS;
        let default_edge_cost = link_cost(&fabric.default_model(), retry_ns);
        let edge_costs = fabric
            .overrides()
            .map(|(from, to, model)| ((from, to), link_cost(&model, retry_ns)))
            .collect();
        let qubit_models = (0..topology.num_controllers())
            .map(|q| noise.model_for(q))
            .collect();
        FabricCosts {
            edge_costs,
            default_edge_cost,
            qubit_models,
            flat: fabric.is_uniform() && noise.is_uniform(),
        }
    }

    /// Expected per-message cost (ns) of the directed edge `from → to`.
    pub fn edge_cost(&self, from: NodeAddr, to: NodeAddr) -> f64 {
        self.edge_costs
            .get(&(from, to))
            .copied()
            .unwrap_or(self.default_edge_cost)
    }

    /// The noise model of controller site `site` (noiseless when the
    /// site is beyond the scored grid).
    fn site_model(&self, site: usize) -> NoiseModel {
        self.qubit_models
            .get(site)
            .copied()
            .unwrap_or(NoiseModel::NOISELESS)
    }

    /// Summed per-operation error figure of controller site `site` (0
    /// when the site is beyond the scored grid) — the conservative
    /// standing-cost proxy data sites are charged: a data qubit holds
    /// live state for the whole run, so *any* elevated rate on its site
    /// is a reason to move it, even rates the circuit's own operations
    /// never trigger there.
    pub fn qubit_error(&self, site: usize) -> f64 {
        qubit_error(&self.site_model(site))
    }

    /// `true` when both maps were uniform: every placement scores
    /// identically, so the search is pointless and the identity wins.
    pub fn is_flat(&self) -> bool {
        self.flat
    }
}

/// Expected per-message delay (ns) of one directed link: serialization
/// scaled by the expected transmission count of the drop policy, plus
/// the retransmission round trips (`retry_ns` per extra attempt).
fn link_cost(model: &LinkModel, retry_ns: u64) -> f64 {
    let serialization = model.serialization_ns as f64;
    match model.drop {
        None => serialization,
        Some(drop) => {
            let p = (drop.loss_ppm as f64 / 1e6).min(0.999_999);
            let expected_attempts = (1.0 / (1.0 - p)).min(drop.max_attempts.max(1) as f64);
            serialization * expected_attempts + (expected_attempts - 1.0) * retry_ns as f64
        }
    }
}

/// Per-operation error figure of one site's noise model: the summed
/// gate/measurement/leakage rates plus a fixed idle-exposure proxy.
fn qubit_error(model: &NoiseModel) -> f64 {
    model.p_gate_1q
        + model.p_gate_2q
        + model.p_meas
        + model.p_leak
        + model.p_idle_per_ns * IDLE_PROXY_NS
}

/// Plans a placement of circuit qubits onto `topology`'s controllers:
/// the mesh automorphism of the grid minimizing the fabric-weighted
/// cost of `circuit` (two-qubit-gate traffic over heated edges, every
/// operation's site error, and `data_sites`' standing exposure).
///
/// Returns the permutation as `placement[qubit] = controller index`.
/// Identity-first enumeration plus a strict improvement threshold make
/// the result deterministic and the identity the tie-winner, so a flat
/// fabric (or an over-subscribed circuit the compiler will reject
/// anyway) always plans the identity.
pub fn plan_placement(
    circuit: &Circuit,
    data_sites: &[usize],
    topology: &Topology,
    costs: &FabricCosts,
) -> Vec<usize> {
    let n = topology.num_controllers().max(circuit.num_qubits());
    let identity: Vec<usize> = (0..n).collect();
    if costs.is_flat() || circuit.num_qubits() > topology.num_controllers() {
        return identity;
    }
    let mut best = identity;
    let mut best_score = f64::INFINITY;
    for candidate in grid_automorphisms(topology) {
        let score = placement_score(circuit, data_sites, costs, &candidate);
        if score < best_score - TIE_EPS {
            best_score = score;
            best = candidate;
        }
    }
    best
}

/// Rebuilds `circuit` (and remaps `data_sites`) with every qubit `q`
/// relocated to `placement[q]` — the concrete application of a
/// [`plan_placement`] result. Classical bits, conditions, and
/// instruction order are untouched, so the dataflow (and therefore the
/// feedback structure the compiler lowers) is preserved exactly.
pub fn apply_placement(
    circuit: &Circuit,
    data_sites: &[usize],
    placement: &[usize],
) -> (Circuit, Vec<usize>) {
    let num_qubits = circuit
        .num_qubits()
        .max(placement.iter().map(|&c| c + 1).max().unwrap_or(0));
    let mut placed = Circuit::named(circuit.name(), num_qubits, circuit.num_clbits());
    for instruction in circuit.instructions() {
        let op = match &instruction.op {
            Operation::Gate { gate, qubits } => Operation::Gate {
                gate: *gate,
                qubits: qubits.iter().map(|&q| placement[q]).collect(),
            },
            Operation::Measure { qubit, clbit } => Operation::Measure {
                qubit: placement[*qubit],
                clbit: *clbit,
            },
            Operation::Reset { qubit } => Operation::Reset {
                qubit: placement[*qubit],
            },
            Operation::Barrier { qubits } => Operation::Barrier {
                qubits: qubits.iter().map(|&q| placement[q]).collect(),
            },
            Operation::Delay { qubit, duration_ns } => Operation::Delay {
                qubit: placement[*qubit],
                duration_ns: *duration_ns,
            },
        };
        placed
            .push(Instruction {
                op,
                condition: instruction.condition.clone(),
            })
            .expect("an automorphism placement preserves circuit validity");
    }
    let sites = data_sites.iter().map(|&q| placement[q]).collect();
    (placed, sites)
}

/// Fabric-weighted cost of running `circuit` under `placement`.
fn placement_score(
    circuit: &Circuit,
    data_sites: &[usize],
    costs: &FabricCosts,
    placement: &[usize],
) -> f64 {
    let mut score = 0.0;
    // Operation error terms mirror the runtime per-qubit accounting
    // (`NoiseMap::survival`) rate for rate: 1q gates pay `p_gate_1q`,
    // each 2q-gate operand pays `p_gate_2q + p_leak`, measurements pay
    // `p_meas`, and resets are free — so minimizing the score
    // minimizes the `noise_infidelity` the run will report.
    for instruction in circuit.instructions() {
        match &instruction.op {
            Operation::Gate { qubits, .. } if qubits.len() == 2 => {
                let a = placement[qubits[0]] as NodeAddr;
                let b = placement[qubits[1]] as NodeAddr;
                // Each synchronized two-qubit gate exchanges one
                // booking message in each direction.
                score += costs.edge_cost(a, b) + costs.edge_cost(b, a);
                for &q in qubits {
                    let m = costs.site_model(placement[q]);
                    score += m.p_gate_2q + m.p_leak;
                }
            }
            Operation::Gate { qubits, .. } => {
                for &q in qubits {
                    score += costs.site_model(placement[q]).p_gate_1q;
                }
            }
            Operation::Measure { qubit, .. } => {
                score += costs.site_model(placement[*qubit]).p_meas;
            }
            Operation::Reset { .. } | Operation::Barrier { .. } | Operation::Delay { .. } => {}
        }
    }
    // Output data sites stay exposed from circuit start to finish, so
    // their site error is charged once per instruction as a standing
    // cost — parking a data qubit on a heated site must hurt more than
    // routing one gate through it.
    let standing = circuit.instructions().len().max(1) as f64;
    for &site in data_sites {
        score += standing * costs.qubit_error(placement[site]);
    }
    score
}

/// The mesh automorphisms of the compilation grid, as controller
/// permutations (`perm[q] = image controller`): the four rectangle
/// symmetries, plus the four diagonal ones when the grid is square,
/// deduplicated (a 1×N line yields exactly identity and reversal).
/// The identity is always first.
fn grid_automorphisms(topology: &Topology) -> Vec<Vec<usize>> {
    type CoordMap = Box<dyn Fn(usize, usize) -> (usize, usize)>;
    let (w, h) = (topology.width(), topology.height());
    let mut transforms: Vec<CoordMap> = vec![
        Box::new(|x, y| (x, y)),
        Box::new(move |x, y| (w - 1 - x, y)),
        Box::new(move |x, y| (x, h - 1 - y)),
        Box::new(move |x, y| (w - 1 - x, h - 1 - y)),
    ];
    if w == h {
        transforms.push(Box::new(|x, y| (y, x)));
        transforms.push(Box::new(move |x, y| (h - 1 - y, x)));
        transforms.push(Box::new(move |x, y| (y, w - 1 - x)));
        transforms.push(Box::new(move |x, y| (w - 1 - y, h - 1 - x)));
    }
    let n = topology.num_controllers();
    let mut seen = BTreeSet::new();
    let mut perms = Vec::new();
    for transform in transforms {
        let perm: Vec<usize> = (0..n)
            .map(|q| {
                let (x, y) = topology.coords(q as NodeAddr);
                let (tx, ty) = transform(x, y);
                usize::from(topology.controller_at(tx, ty))
            })
            .collect();
        if seen.insert(perm.clone()) {
            perms.push(perm);
        }
    }
    perms
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisq_net::TopologyBuilder;

    fn line(n: usize) -> Topology {
        TopologyBuilder::linear(n).build()
    }

    fn hot_edge_fabric(from: NodeAddr, to: NodeAddr) -> FabricMap {
        let mut fabric = FabricMap::default();
        fabric.set_edge(from, to, LinkModel::serialized(64));
        fabric
    }

    #[test]
    fn line_automorphisms_are_identity_and_reversal() {
        let topology = line(4);
        let perms = grid_automorphisms(&topology);
        assert_eq!(perms, [vec![0, 1, 2, 3], vec![3, 2, 1, 0]]);
    }

    #[test]
    fn square_has_eight_automorphisms() {
        let topology = TopologyBuilder::grid(3, 3).build();
        let perms = grid_automorphisms(&topology);
        assert_eq!(perms.len(), 8);
        assert_eq!(perms[0], (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn flat_fabric_plans_identity() {
        let topology = line(4);
        let costs = FabricCosts::from_maps(&topology, &FabricMap::default(), &NoiseMap::default());
        assert!(costs.is_flat());
        let mut circuit = Circuit::new(4, 0);
        circuit.cx(0, 1);
        let plan = plan_placement(&circuit, &[], &topology, &costs);
        assert_eq!(plan, [0, 1, 2, 3]);
    }

    #[test]
    fn placement_routes_traffic_off_a_heated_edge() {
        // All two-qubit traffic sits on the 0-1 end of a 4-line; heat
        // the 0→1 edge and the reversal (traffic moves to the 3-2 end)
        // must win.
        let topology = line(4);
        let costs = FabricCosts::from_maps(&topology, &hot_edge_fabric(0, 1), &NoiseMap::default());
        assert!(!costs.is_flat());
        let mut circuit = Circuit::new(4, 0);
        circuit.cx(0, 1);
        circuit.cx(1, 0);
        let plan = plan_placement(&circuit, &[], &topology, &costs);
        assert_eq!(plan, [3, 2, 1, 0]);
    }

    #[test]
    fn placement_parks_data_sites_away_from_a_heated_qubit() {
        // Data site at qubit 0; heat physical qubit 0 — the reversal
        // moves the data site to site 3.
        let topology = line(4);
        let mut noise = NoiseMap::default();
        noise.set_qubit(
            0,
            NoiseModel {
                p_meas: 0.05,
                ..NoiseModel::NOISELESS
            },
        );
        let costs = FabricCosts::from_maps(&topology, &FabricMap::default(), &noise);
        let mut circuit = Circuit::new(4, 1);
        circuit.h(0);
        circuit.cx(0, 1);
        let plan = plan_placement(&circuit, &[0], &topology, &costs);
        assert_eq!(plan, [3, 2, 1, 0]);
        let (placed, sites) = apply_placement(&circuit, &[0], &plan);
        assert_eq!(sites, [3]);
        assert_eq!(placed.num_qubits(), 4);
        assert_eq!(placed.two_qubit_gate_count(), 1);
    }

    #[test]
    fn apply_placement_preserves_conditions_and_clbits() {
        use hisq_quantum::Condition;
        let mut circuit = Circuit::new(2, 1);
        circuit.h(0);
        circuit.measure(0, 0);
        circuit.x_if(1, Condition::bit(0, true));
        let (placed, _) = apply_placement(&circuit, &[], &[1, 0]);
        assert_eq!(placed.num_clbits(), 1);
        assert_eq!(placed.feedback_count(), 1);
        // The measure moved to qubit 1, the conditioned X to qubit 0.
        let qubits: Vec<Vec<usize>> = placed
            .instructions()
            .iter()
            .map(|inst| inst.qubits())
            .collect();
        assert_eq!(qubits, [vec![1], vec![1], vec![0]]);
    }
}
